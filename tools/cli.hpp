// Argument parsing and command logic for the chenfd_calc CLI, separated
// from main() so the tests can drive it directly.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "dist/distribution.hpp"

namespace chenfd::cli {

/// Parsed "--key value" options plus the leading subcommand.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] bool has(const std::string& key) const {
    return options.count(key) > 0;
  }
  /// Returns the value of --key parsed as double, or nullopt when absent.
  /// Throws std::invalid_argument on malformed numbers.
  [[nodiscard]] std::optional<double> number(const std::string& key) const;
  /// Like number() but requires presence.
  [[nodiscard]] double require(const std::string& key) const;
};

/// Parses argv-style input: `calc <command> [--key value]...`.
/// Throws std::invalid_argument on stray tokens or missing values.
[[nodiscard]] Args parse(const std::vector<std::string>& argv);

/// Builds a delay distribution from --dist/--mean/--var/--alpha/--lo/--hi/
/// --stages/--value options.  Supported --dist values: exp (default),
/// uniform, constant, lognormal, pareto, erlang, weibull.
[[nodiscard]] std::unique_ptr<dist::DelayDistribution> make_distribution(
    const Args& args);

/// Executes the subcommand, writing human-readable output to `os`.
/// Returns the process exit code (0 ok, 1 QoS unachievable, 2 usage error).
int run(const Args& args, std::ostream& os);

/// Convenience: parse + run, mapping parse errors to usage output.
int run_main(const std::vector<std::string>& argv, std::ostream& os);

/// The usage text.
void print_usage(std::ostream& os);

}  // namespace chenfd::cli
