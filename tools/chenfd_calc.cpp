// chenfd_calc: command-line QoS calculator for the Chen/Toueg/Aguilera
// failure detectors.  See `chenfd_calc help`.

#include <iostream>
#include <string>
#include <vector>

#include "cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return chenfd::cli::run_main(args, std::cout);
}
