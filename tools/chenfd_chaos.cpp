// chenfd_chaos: fault-injection suites with oracle checks (see
// chaos_cli.hpp and DESIGN.md section 8).

#include <iostream>
#include <vector>

#include "chaos_cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return chenfd::chaoscli::run_main(args, std::cout);
}
