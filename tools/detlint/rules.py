"""detlint rule implementations.

Four project-specific rule families (see DESIGN.md section 10):

  R1  nondeterminism sources — unseeded/ambient RNGs, environment reads and
      wall clocks are banned outside the allow-listed real-time layer.
  R2  ordering hazards — iteration over std::unordered_* (or pointer-keyed
      ordered containers) in any function on a merge/reduction/serialization
      path; iteration order there must be deterministic for the bit-identical
      --jobs guarantee to hold.
  R3  time-unit safety — naked floor/ceil/round/integer-casts applied to
      time quantities (expressions involving Duration/TimePoint::seconds()),
      bypassing the snap-guarded helpers in common/rounding.hpp.
  R4  contracts coverage — public mutating methods of substance in the core
      state-bearing modules must state CHENFD_EXPECTS/ENSURES contracts.

Every finding carries a fix hint and a stable context key (enclosing
function + normalized source line) so the committed baseline survives
unrelated line drift.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cxxlex import KEYWORDS
from srcmodel import FileModel, Function

RULES = ("R1", "R2", "R3", "R4")


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    hint: str
    context: str  # stable baseline key component

    def key(self) -> str:
        return f"{self.rule}|{self.path}|{self.context}"


def _line_text(source_lines: list[str], line: int) -> str:
    if 1 <= line <= len(source_lines):
        return re.sub(r"\s+", " ", source_lines[line - 1].strip())
    return ""


def _context(fn_name: str | None, source_lines: list[str], line: int) -> str:
    return f"{fn_name or ''}|{_line_text(source_lines, line)}"


def _enclosing(model: FileModel, tok_idx: int) -> Function | None:
    for fn in model.functions:
        if fn.body[0] <= tok_idx < fn.body[1]:
            return fn
    return None


# --------------------------------------------------------------------------
# R1: nondeterminism sources
# --------------------------------------------------------------------------

# group -> (symbols flagged on bare mention, symbols flagged as free calls)
R1_GROUPS = {
    "rng": ({"random_device"},
            {"rand", "srand", "drand48", "srand48", "lrand48", "mrand48",
             "rand_r", "random"}),
    "wallclock": ({"system_clock", "steady_clock", "high_resolution_clock"},
                  {"time", "clock", "gettimeofday", "clock_gettime",
                   "localtime", "gmtime", "mktime", "ftime"}),
    "env": (set(), {"getenv", "secure_getenv", "setenv", "putenv",
                    "unsetenv"}),
}

_R1_HINTS = {
    "rng": "draw from the seeded chenfd::Rng substream plumbed into this "
           "component (common/rng.hpp)",
    "wallclock": "simulated components take time from sim::Simulator / "
                 "clock::Clock; wall clocks live only in the allow-listed "
                 "real-time layer",
    "env": "thread configuration through explicit options structs / CLI "
           "flags so a run is reproducible from its command line alone",
}


# Keywords a call expression can directly follow; any *other* identifier
# right before `name(` means a declaration (`double time(...)`) or a
# qualified project name, not a call of the libc symbol.
_CALL_ADJACENT = frozenset({"return", "co_return", "co_await", "co_yield",
                            "throw", "case", "else", "do", "goto", "while",
                            "if", "switch", "for", "and", "or", "not"})


def _is_free_call(model: FileModel, k: int) -> bool:
    """tokens[k] is an ident: true when followed by '(' and the context is
    a call of the free function — not a member access (x.time()), not a
    non-std qualified name (Foo::time) and not a declaration head
    (double time(...))."""
    toks = model.tokens
    if k + 1 >= len(toks) or toks[k + 1].text != "(":
        return False
    if k == 0:
        return True
    prev = toks[k - 1]
    if prev.kind == "ident":
        return prev.text in _CALL_ADJACENT
    if prev.kind == "punct" and prev.text in (".", "->"):
        return False
    if prev.kind == "punct" and prev.text == "::":
        if k >= 2 and toks[k - 2].kind == "ident" \
                and toks[k - 2].text not in KEYWORDS:
            return toks[k - 2].text == "std"  # std::time yes, Foo::time no
        return True  # ::time(nullptr), return ::time(...)
    return True


def run_r1(model: FileModel, config, source_lines) -> list[Finding]:
    allow = config.get("r1", {}).get("allow_paths", {})
    allowed_groups: set[str] = set()
    for prefix, groups in allow.items():
        if model.path.startswith(prefix):
            allowed_groups.update(groups)
    out: list[Finding] = []
    for k, t in enumerate(model.tokens):
        if t.kind != "ident":
            continue
        for group, (mentions, calls) in R1_GROUPS.items():
            if group in allowed_groups:
                continue
            hit = None
            if t.text in mentions:
                # `std::chrono::steady_clock` / bare `steady_clock` mentions
                hit = t.text
            elif t.text in calls and _is_free_call(model, k):
                hit = t.text + "()"
            if hit:
                fn = _enclosing(model, k)
                out.append(Finding(
                    "R1", model.path, t.line,
                    f"nondeterminism source `{hit}` ({group})",
                    _R1_HINTS[group],
                    _context(fn.qualname if fn else None, source_lines,
                             t.line)))
    return out


# --------------------------------------------------------------------------
# R2: ordering hazards on merge/reduction/serialization paths
# --------------------------------------------------------------------------

_UNORDERED_NAMES = frozenset({"unordered_map", "unordered_set",
                              "unordered_multimap", "unordered_multiset"})
_ORDERED_ASSOC = frozenset({"map", "set", "multimap", "multiset"})
# A lone `x.end()` appears in the find()-compare idiom, which never walks
# the container; only a begin-family call starts an ordered traversal.
_ITER_METHODS = frozenset({"begin", "cbegin", "rbegin", "crbegin"})


def _scan_hazard_vars(model: FileModel, span: tuple[int, int]) -> dict:
    """Hazardous container variable names declared inside a token span:
    name -> short type description."""
    toks = model.tokens
    out: dict[str, str] = {}
    k = span[0]
    while k < span[1]:
        t = toks[k]
        if t.kind == "ident" and (t.text in _UNORDERED_NAMES
                                  or t.text in _ORDERED_ASSOC):
            type_name = t.text
            j = k + 1
            if j < span[1] and toks[j].text == "<":
                depth = 0
                first_arg_has_ptr = False
                arg_depth_comma_seen = False
                while j < span[1]:
                    w = toks[j]
                    if w.text == "<":
                        depth += 1
                    elif w.text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif w.text == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    elif w.text == "," and depth == 1:
                        arg_depth_comma_seen = True
                    elif w.text == "*" and depth == 1 and \
                            not arg_depth_comma_seen:
                        first_arg_has_ptr = True
                    j += 1
                hazardous = (type_name in _UNORDERED_NAMES
                             or first_arg_has_ptr)
                if hazardous and j + 1 < span[1] and \
                        toks[j + 1].kind == "ident" and \
                        toks[j + 1].text not in KEYWORDS:
                    kind = ("std::" + type_name if type_name
                            in _UNORDERED_NAMES else
                            f"pointer-keyed std::{type_name}")
                    out[toks[j + 1].text] = kind
                k = j
        k += 1
    return out


def _iteration_sites(model: FileModel, fn: Function, hazard_vars: dict):
    """Yields (line, var, how) for iterations over hazardous vars in fn."""
    toks = model.tokens
    k = fn.body[0]
    while k < fn.body[1]:
        t = toks[k]
        # range-for:  for ( decl : expr )
        if t.kind == "ident" and t.text == "for" and k + 1 < fn.body[1] \
                and toks[k + 1].text == "(":
            depth = 0
            colon = None
            j = k + 1
            while j < fn.body[1]:
                w = toks[j]
                if w.text == "(":
                    depth += 1
                elif w.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif w.text == ":" and depth == 1 and colon is None:
                    colon = j
                j += 1
            if colon is not None:
                for m in range(colon + 1, j):
                    w = toks[m]
                    if w.kind == "ident" and w.text in hazard_vars:
                        yield (t.line, w.text, "range-for over")
                        break
                k = j + 1
            else:
                k += 1  # classic for: scan its header for .begin() walks
            continue
        # explicit iterators: var.begin() / var.cbegin() / ...
        if t.kind == "ident" and t.text in hazard_vars \
                and k + 2 < fn.body[1] \
                and toks[k + 1].text in (".", "->") \
                and toks[k + 2].kind == "ident" \
                and toks[k + 2].text in _ITER_METHODS:
            yield (t.line, t.text, "iterator walk over")
            k += 3
            continue
        k += 1


class CallGraph:
    def __init__(self, models: list[FileModel]):
        from srcmodel import called_names
        self.fns: dict[str, list[tuple[FileModel, Function]]] = {}
        self.by_name: dict[str, list[str]] = {}
        for m in models:
            for fn in m.functions:
                self.fns.setdefault(fn.qualname, []).append((m, fn))
                self.by_name.setdefault(fn.name, []).append(fn.qualname)
        self.edges: dict[str, set[str]] = {}
        self.redges: dict[str, set[str]] = {}
        for m in models:
            for fn in m.functions:
                callees: set[str] = set()
                for name in called_names(m, fn):
                    short = name.split("::")[-1]
                    for q in self.by_name.get(short, []):
                        if "::" in name and not q.endswith(name):
                            continue
                        callees.add(q)
                self.edges.setdefault(fn.qualname, set()).update(callees)
                for c in callees:
                    self.redges.setdefault(c, set()).add(fn.qualname)

    def reachable(self, seeds: set[str], edges) -> set[str]:
        seen = set(seeds)
        stack = list(seeds)
        while stack:
            q = stack.pop()
            for nxt in edges.get(q, ()):  # determinism: result is a set
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


def r2_on_path_set(models: list[FileModel], config) -> tuple[set, "CallGraph"]:
    r2cfg = config.get("r2", {})
    roots: set[str] = set()
    graph = CallGraph(models)
    patterns = r2cfg.get("roots", [])
    ser_paths = tuple(r2cfg.get("serialization_paths", []))
    for m in models:
        for fn in m.functions:
            for pat in patterns:
                if fn.qualname == pat or fn.qualname.endswith("::" + pat) \
                        or fn.name == pat:
                    roots.add(fn.qualname)
            if ser_paths and m.path.startswith(ser_paths):
                roots.add(fn.qualname)
    # A hazard matters both downstream of a root (helpers the merge calls)
    # and upstream (callers assembling the root's inputs).
    on_path = graph.reachable(roots, graph.edges) \
        | graph.reachable(roots, graph.redges)
    return on_path, graph


def run_r2(model: FileModel, config, source_lines, on_path: set
           ) -> list[Finding]:
    # member/global hazards recorded by the parser + per-function locals
    file_hazards = {h.name: h.type_text for h in model.hazards}
    out: list[Finding] = []
    for fn in model.functions:
        if fn.qualname not in on_path:
            continue
        hazard_vars = dict(file_hazards)
        hazard_vars.update(_scan_hazard_vars(model, fn.body))
        if not hazard_vars:
            continue
        seen: set[tuple[int, str]] = set()
        for line, var, how in _iteration_sites(model, fn, hazard_vars):
            if (line, var) in seen:
                continue  # x.begin()/x.end() on one line is one finding
            seen.add((line, var))
            kind = hazard_vars[var]
            if not kind.startswith("std::") and \
                    not kind.startswith("pointer-keyed"):
                kind = kind.split("<")[0].replace(" :: ", "::").strip()
                kind = kind.split()[-1] if kind.split() else kind
            out.append(Finding(
                "R2", model.path, line,
                f"{how} `{var}` ({kind}) in `{fn.qualname}`, which is on a "
                "merge/reduction/serialization path",
                "iterate a deterministically ordered view instead (sort "
                "keys into a vector, or switch the container to a "
                "value-ordered std::map/std::vector)",
                _context(fn.qualname, source_lines, line)))
    return out


# --------------------------------------------------------------------------
# R3: time-unit safety
# --------------------------------------------------------------------------

_R3_ROUNDERS = frozenset({"floor", "ceil", "round", "lround", "llround",
                          "trunc", "nearbyint", "rint"})
_R3_SANCTIONED = frozenset({"ceil_ratio", "floor_snapped",
                            "floor_ratio_snapped"})
_R3_INT_TYPES = frozenset({"int", "long", "short", "unsigned", "size_t",
                           "ptrdiff_t", "int8_t", "int16_t", "int32_t",
                           "int64_t", "uint8_t", "uint16_t", "uint32_t",
                           "uint64_t", "SeqNo"})


def _matching_paren(toks, open_idx, end):
    depth = 0
    j = open_idx
    while j < end:
        if toks[j].text == "(":
            depth += 1
        elif toks[j].text == ")":
            depth -= 1
            if depth == 0:
                return j
        j += 1
    return end - 1


def _sanctioned_spans(model: FileModel, span) -> list[tuple[int, int]]:
    toks = model.tokens
    spans = []
    for k in range(span[0], span[1] - 1):
        if toks[k].kind == "ident" and toks[k].text in _R3_SANCTIONED \
                and toks[k + 1].text == "(":
            spans.append((k, _matching_paren(toks, k + 1, span[1]) + 1))
    return spans


def _arg_has_time_quantity(model: FileModel, lo: int, hi: int,
                           sanctioned) -> bool:
    """True when tokens[lo:hi] contains a `.seconds()` escape-hatch read
    outside any sanctioned rounding-helper call."""
    toks = model.tokens
    for k in range(lo, hi - 2):
        if any(s <= k < e for s, e in sanctioned):
            continue
        if toks[k].text in (".", "->") and toks[k + 1].kind == "ident" \
                and toks[k + 1].text == "seconds" \
                and toks[k + 2].text == "(":
            return True
    return False


def run_r3(model: FileModel, config, source_lines) -> list[Finding]:
    toks = model.tokens
    out: list[Finding] = []
    whole = (0, len(toks))
    sanctioned = _sanctioned_spans(model, whole)
    k = 0
    while k < len(toks) - 1:
        t = toks[k]
        if t.kind == "ident" and t.text in _R3_ROUNDERS \
                and toks[k + 1].text == "(" \
                and _is_free_call(model, k):
            close = _matching_paren(toks, k + 1, len(toks))
            if _arg_has_time_quantity(model, k + 2, close, sanctioned):
                fn = _enclosing(model, k)
                out.append(Finding(
                    "R3", model.path, t.line,
                    f"naked `{t.text}()` on a time quantity "
                    "(argument reads Duration/TimePoint::seconds())",
                    "snap through common/rounding.hpp (ceil_ratio, "
                    "floor_snapped, floor_ratio_snapped) so a value one ULP "
                    "off an integer cannot misclassify an interval index",
                    _context(fn.qualname if fn else None, source_lines,
                             t.line)))
                k = close
                continue
        if t.kind == "ident" and t.text == "static_cast" \
                and toks[k + 1].text == "<":
            # collect the target type up to the matching '>'
            j = k + 1
            depth = 0
            type_toks = []
            while j < len(toks):
                w = toks[j]
                if w.text == "<":
                    depth += 1
                elif w.text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif depth >= 1:
                    type_toks.append(w.text)
                j += 1
            if j + 1 < len(toks) and toks[j + 1].text == "(" and \
                    any(w in _R3_INT_TYPES for w in type_toks):
                close = _matching_paren(toks, j + 1, len(toks))
                if _arg_has_time_quantity(model, j + 2, close, sanctioned):
                    fn = _enclosing(model, k)
                    out.append(Finding(
                        "R3", model.path, t.line,
                        "integer static_cast truncates a time quantity "
                        "(operand reads Duration/TimePoint::seconds())",
                        "round via common/rounding.hpp first, then cast the "
                        "already-snapped integral value",
                        _context(fn.qualname if fn else None, source_lines,
                                 t.line)))
                    k = close
                    continue
        k += 1
    return out


# --------------------------------------------------------------------------
# R4: contracts coverage
# --------------------------------------------------------------------------

# A delegated `params.validate()` counts: the contract lives one call away
# but the arguments are still checked before the mutation commits.
_CONTRACT_TOKENS = frozenset({"CHENFD_EXPECTS", "CHENFD_ENSURES",
                              "CHENFD_AUDIT", "expects", "ensures",
                              "validate"})


def run_r4(model: FileModel, config, source_lines,
           decl_access: dict) -> list[Finding]:
    r4cfg = config.get("r4", {})
    paths = tuple(r4cfg.get("paths", []))
    if paths and not model.path.startswith(paths):
        return []
    min_statements = int(r4cfg.get("min_statements", 2))
    out: list[Finding] = []
    for fn in model.functions:
        if fn.kind != "function" or fn.is_const or fn.is_static:
            continue
        if fn.class_name is None or fn.in_anon:
            continue  # free functions / TU-local helpers are not public API
        access = (fn.access, fn.is_static) if fn.access is not None else None
        if access is None:
            decl = decl_access.get(fn.qualname)
            if decl is None:
                # try suffix match (cpp may carry a shorter namespace chain)
                hits = [a for q, a in decl_access.items()
                        if q.endswith(fn.qualname) or fn.qualname.endswith(q)]
                decl = hits[0] if len(hits) == 1 else None
            access = decl
        if access is None or access[0] != "public" or access[1]:
            continue  # non-public, or static per the in-class declaration
        toks = model.tokens
        semis = sum(1 for kk in range(fn.body[0], fn.body[1])
                    if toks[kk].text == ";")
        if semis < min_statements:
            continue  # one-line setters have no precondition worth stating
        has_contract = any(
            toks[kk].kind == "ident" and toks[kk].text in _CONTRACT_TOKENS
            for kk in range(fn.body[0], fn.body[1]))
        if has_contract:
            continue
        out.append(Finding(
            "R4", model.path, fn.line,
            f"public mutating method `{fn.qualname}` has no "
            "CHENFD_EXPECTS/ENSURES contract",
            "state the method's pre/postconditions (common/check.hpp), or "
            "suppress with a reason if it genuinely has none",
            _context(fn.qualname, source_lines, fn.line)))
    return out
