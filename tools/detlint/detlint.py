#!/usr/bin/env python3
"""detlint — project-specific determinism & unit-safety lint for chenfd.

Scans src/, tools/ and bench/ (configurable) with four rule families:

  R1  nondeterminism sources (ambient RNGs, env reads, wall clocks)
  R2  unordered-container iteration on merge/reduction/serialization paths
  R3  naked rounding / integer casts on time quantities
  R4  public mutating methods without CHENFD_EXPECTS/ENSURES contracts

Usage:
    tools/detlint/detlint.py [options] [paths...]

Options:
    --root DIR             repository root (default: two levels up)
    --config FILE          rule configuration (default: <here>/detlint.json)
    --baseline FILE        accepted-findings baseline (default:
                           <here>/baseline.json); pass 'none' to disable
    --write-baseline       rewrite the baseline with current findings, exit 0
    --compile-commands F   also scan every in-root TU listed in a
                           compile_commands.json (CI reuses the tidy job's)
    --engine NAME          'lexer' (default) or 'clang-ast' (gated: needs a
                           clang with -Xclang -ast-dump=json on PATH)
    --format text|github   'github' adds ::error workflow annotations
    --summary FILE         append a per-rule markdown summary (step summary)
    --list FILE            write machine-readable findings JSON

Suppressions (reason is mandatory):
    // detlint: allow(R1) timing the bench harness, never simulation state
    // detlint: allow-file(R4) plain data carrier, no invariants to state

Exit status: 0 = clean, 1 = unsuppressed findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cxxlex  # noqa: E402
import rules as rules_mod  # noqa: E402
import srcmodel  # noqa: E402
from rules import RULES, Finding  # noqa: E402

_SUPPRESS_RE = re.compile(
    r"detlint\s*:\s*allow(?P<scope>-file)?\s*\(\s*(?P<rules>[^)]*?)\s*\)"
    r"\s*(?P<reason>.*)", re.DOTALL)

DEFAULT_CONFIG = {
    "paths": ["src", "tools", "bench"],
    "exclude": ["tools/detlint"],
    "extensions": [".hpp", ".cpp", ".h", ".cc"],
    "r1": {"allow_paths": {}},
    "r2": {"roots": [], "serialization_paths": []},
    "r3": {},
    "r4": {"paths": [], "min_statements": 2},
}


def _merge_config(base: dict, override: dict) -> dict:
    out = dict(base)
    for k, v in override.items():
        if isinstance(v, dict) and isinstance(out.get(k), dict):
            out[k] = _merge_config(out[k], v)
        else:
            out[k] = v
    return out


def load_config(path: str | None) -> dict:
    if path is None:
        return dict(DEFAULT_CONFIG)
    try:
        with open(path, encoding="utf-8") as f:
            user = json.load(f)
    except (OSError, ValueError) as err:
        raise _die(f"detlint: cannot read config {path}: {err}")
    return _merge_config(DEFAULT_CONFIG, user)


def discover_files(root: str, config: dict, extra_paths: list[str],
                   compile_commands: str | None) -> list[str]:
    paths = extra_paths or config["paths"]
    exts = tuple(config["extensions"])
    excludes = tuple(config["exclude"])
    found: set[str] = set()
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            found.add(os.path.normpath(p))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(exts):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                found.add(os.path.normpath(rel))
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as f:
                entries = json.load(f)
        except (OSError, ValueError) as err:
            raise _die(
                f"detlint: cannot read compile commands "
                f"{compile_commands}: {err}")
        # Compile commands ALIGN the file set with what actually builds;
        # they never widen the scope past the configured paths (a project's
        # compile_commands.json also lists tests/, examples/, ...).
        prefixes = tuple(os.path.normpath(p) + os.sep for p in paths)
        for e in entries:
            file = e.get("file", "")
            absf = os.path.normpath(
                os.path.join(e.get("directory", root), file))
            rel = os.path.relpath(absf, root)
            if (not rel.startswith("..") and rel.endswith(exts)
                    and os.path.normpath(rel).startswith(prefixes)):
                found.add(os.path.normpath(rel))
    return sorted(f for f in found
                  if not any(f.startswith(x) for x in excludes))


class Suppressions:
    def __init__(self, path: str, comments):
        self.line_allows: dict[int, set[str]] = {}
        self.file_allows: set[str] = set()
        self.errors: list[Finding] = []
        for c in comments:
            m = _SUPPRESS_RE.search(c.text)
            if not m:
                continue
            ruleset = {r.strip() for r in m.group("rules").split(",")
                       if r.strip()}
            bad = ruleset - set(RULES) - {"*"}
            reason = m.group("reason").strip()
            if bad or not ruleset:
                self.errors.append(Finding(
                    "suppression", path, c.line,
                    f"unknown rule id(s) in suppression: "
                    f"{', '.join(sorted(bad)) or '(empty)'}",
                    f"use one of {', '.join(RULES)} or *", f"|{c.text[:80]}"))
                continue
            if not reason:
                self.errors.append(Finding(
                    "suppression", path, c.line,
                    "suppression without a reason",
                    "detlint: allow(<rule>) <why this is sound>",
                    f"|{c.text[:80]}"))
                continue
            if m.group("scope"):
                self.file_allows.update(ruleset)
            else:
                self.line_allows.setdefault(c.line, set()).update(ruleset)

    def covers(self, finding: Finding) -> bool:
        if finding.rule in self.file_allows or "*" in self.file_allows:
            return True
        for line in (finding.line, finding.line - 1):
            allowed = self.line_allows.get(line, ())
            if finding.rule in allowed or "*" in allowed:
                return True
        return False


def _die(message: str) -> "SystemExit":
    # Tool errors (bad config/baseline, missing engine) exit 2 so CI can
    # distinguish "lint failed" (1) from "lint could not run" (2).
    print(message, file=sys.stderr)
    return SystemExit(2)


def load_baseline(path: str | None) -> set[str]:
    if path is None:
        return set()
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return set()
    except (OSError, ValueError) as err:
        raise _die(f"detlint: cannot read baseline {path}: {err}")
    if not isinstance(doc, list):
        raise _die(f"detlint: baseline {path} must be a JSON list")
    keys = set()
    for entry in doc:
        try:
            keys.add(f"{entry['rule']}|{entry['path']}|{entry['context']}")
        except (TypeError, KeyError):
            raise _die(
                f"detlint: malformed baseline entry in {path}: {entry!r}")
    return keys


def write_baseline(path: str, findings: list[Finding]) -> None:
    entries = [{"rule": f.rule, "path": f.path, "context": f.context}
               for f in findings]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["context"]))
    with open(path, "w", encoding="utf-8") as f:
        json.dump(entries, f, indent=2, sort_keys=True)
        f.write("\n")


def analyze(root: str, files: list[str], config: dict):
    """Returns (findings, per_file_suppressions, errors)."""
    models = []
    sources = {}
    suppressions = {}
    errors: list[Finding] = []
    for rel in files:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as err:
            raise _die(f"detlint: cannot read {full}: {err}")
        try:
            tokens, comments = cxxlex.lex(text, rel)
        except cxxlex.LexError as err:
            errors.append(Finding("parse", rel, 1, str(err),
                                  "fix the unterminated construct", "|"))
            continue
        model = srcmodel.parse_file(rel, tokens, comments)
        models.append(model)
        sources[rel] = text.splitlines()
        sup = Suppressions(rel, comments)
        suppressions[rel] = sup
        errors.extend(sup.errors)

    # qualname -> (access, is_static) from in-class declarations, so
    # out-of-line definitions (which repeat neither) can be classified.
    decl_access = {}
    for m in models:
        for d in m.method_decls:
            decl_access[d.qualname] = (d.access, d.is_static)
        for fn in m.functions:
            if fn.access is not None:
                decl_access.setdefault(fn.qualname,
                                       (fn.access, fn.is_static))

    on_path, _graph = rules_mod.r2_on_path_set(models, config)

    findings: list[Finding] = []
    for m in models:
        lines = sources[m.path]
        findings.extend(rules_mod.run_r1(m, config, lines))
        findings.extend(rules_mod.run_r2(m, config, lines, on_path))
        findings.extend(rules_mod.run_r3(m, config, lines))
        findings.extend(rules_mod.run_r4(m, config, lines, decl_access))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings, suppressions, errors


def main(argv: list[str]) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*")
    ap.add_argument("--root",
                    default=os.path.dirname(os.path.dirname(here)))
    ap.add_argument("--config", default=os.path.join(here, "detlint.json"))
    ap.add_argument("--baseline", default=os.path.join(here, "baseline.json"))
    ap.add_argument("--write-baseline", action="store_true")
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument("--engine", choices=("lexer", "clang-ast"),
                    default="lexer")
    ap.add_argument("--format", choices=("text", "github"), default="text")
    ap.add_argument("--summary", default=None)
    ap.add_argument("--list", dest="list_path", default=None)
    args = ap.parse_args(argv)

    if args.engine == "clang-ast":
        import shutil
        if shutil.which("clang") is None:
            print("detlint: the clang-ast engine needs a clang with "
                  "`-Xclang -ast-dump=json` on PATH; none found. The lexer "
                  "engine (default) is the supported front end on this "
                  "toolchain.", file=sys.stderr)
            return 2
        print("detlint: clang-ast engine is not implemented yet; it is "
              "reserved for when the toolchain ships clang (see "
              "tools/detlint/README.md).", file=sys.stderr)
        return 2

    config = load_config(args.config if os.path.exists(args.config)
                         else None)
    baseline_path = None if args.baseline == "none" else args.baseline
    baseline = set() if args.write_baseline else load_baseline(baseline_path)

    files = discover_files(args.root, config, args.paths,
                           args.compile_commands)
    if not files:
        print("detlint: no files to analyze", file=sys.stderr)
        return 2
    findings, suppressions, errors = analyze(args.root, files, config)

    unsuppressed: list[Finding] = []
    suppressed = baselined = 0
    per_rule = {r: [0, 0, 0] for r in RULES}  # open, suppressed, baselined
    for f in findings:
        bucket = per_rule.setdefault(f.rule, [0, 0, 0])
        if suppressions[f.path].covers(f):
            suppressed += 1
            bucket[1] += 1
        elif f.key() in baseline:
            baselined += 1
            bucket[2] += 1
        else:
            unsuppressed.append(f)
            bucket[0] += 1
    unsuppressed.extend(errors)

    if args.write_baseline:
        write_baseline(args.baseline, [f for f in unsuppressed
                                       if f.rule in RULES])
        print(f"detlint: baseline rewritten with "
              f"{len(unsuppressed)} finding(s) -> {args.baseline}")
        return 0

    for f in unsuppressed:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        print(f"    hint: {f.hint}")
        if args.format == "github":
            print(f"::error file={f.path},line={f.line},"
                  f"title=detlint {f.rule}::{f.message} — {f.hint}")

    if args.list_path:
        doc = [{"rule": f.rule, "path": f.path, "line": f.line,
                "message": f.message, "hint": f.hint}
               for f in unsuppressed]
        with open(args.list_path, "w", encoding="utf-8") as fobj:
            json.dump(doc, fobj, indent=2, sort_keys=True)
            fobj.write("\n")

    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fobj:
            fobj.write("## detlint\n\n")
            fobj.write(f"{len(files)} files scanned — "
                       f"**{len(unsuppressed)} unsuppressed**, "
                       f"{suppressed} suppressed, "
                       f"{baselined} baselined\n\n")
            fobj.write("| rule | open | suppressed | baselined |\n")
            fobj.write("|------|------|------------|----------|\n")
            for r in sorted(per_rule):
                o, s, b = per_rule[r]
                fobj.write(f"| {r} | {o} | {s} | {b} |\n")

    total = len(findings)
    print(f"detlint: {len(files)} files, {total} finding(s): "
          f"{len(unsuppressed)} unsuppressed, {suppressed} suppressed, "
          f"{baselined} baselined")
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
