// The allow-listed real-time layer: wall clocks are sanctioned here (the
// corpus config maps src/realtime/ -> ["wallclock"]), but ambient RNGs and
// environment reads stay banned everywhere.
#include <chrono>
#include <cstdlib>

namespace corpus {

double daemon_now() {
  const auto t = std::chrono::steady_clock::now();  // allowed by config
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int daemon_jitter() {
  return std::rand();  // EXPECT: R1
}

}  // namespace corpus
