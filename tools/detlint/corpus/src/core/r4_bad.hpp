// R4 known-bad: public mutating methods of substance with no contract.
#pragma once

namespace corpus {

class Accumulator {
 public:
  void add(double v) {  // EXPECT: R4
    total_ += v;
    ++count_;
  }

  struct Config {
    double scale = 1.0;
  };

  void reconfigure(const Config& cfg) {  // EXPECT: R4
    scale_ = cfg.scale;
    total_ = total_ * scale_;
    dirty_ = true;
  }

 private:
  double total_ = 0.0;
  double scale_ = 1.0;
  long count_ = 0;
  bool dirty_ = false;
};

// Out-of-line definition: the declaration here carries the access, the
// definition in r4_bad.cpp is where the finding lands.
class Sampler {
 public:
  void rebuild(int buckets);

 private:
  int buckets_ = 0;
  int version_ = 0;
};

}  // namespace corpus
