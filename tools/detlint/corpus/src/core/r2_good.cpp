// R2 known-good: ordered iteration on serialization paths, unordered
// lookups that never iterate, and unordered iteration in functions that are
// NOT on any merge/serialization path.
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace corpus {

// Value-keyed std::map iterates in key order: deterministic, allowed.
void merge_results(std::ostream& os,
                   const std::map<std::string, double>& table) {
  for (const auto& [key, value] : table) {
    os << key << ' ' << value;
  }
}

// Unordered lookup without iteration is fine on a serialization path.
double emit_json(std::ostream& os,
                 const std::unordered_map<int, double>& cache) {
  const auto it = cache.find(7);
  const double v = it == cache.end() ? 0.0 : it->second;
  os << v;
  return v;
}

// Iterating an unordered map in a function nowhere near a root is not an
// ordering hazard for the reproducibility guarantee.
double off_path_total(const std::unordered_map<int, double>& histo) {
  double total = 0.0;
  for (const auto& [k, v] : histo) {
    total += v;
  }
  return total;
}

}  // namespace corpus
