// R3 known-bad: naked rounding and integer casts on time quantities
// (expressions reading Duration/TimePoint::seconds()), bypassing the
// snap-guarded helpers in common/rounding.hpp.  One violation per line so
// the EXPECT markers pin the reported line exactly (detlint reports the
// outermost offending construct).
#include <cmath>

namespace corpus {

class Duration {
 public:
  explicit Duration(double s) : s_(s) {}
  double seconds() const { return s_; }

 private:
  double s_;
};

double freshness_index(Duration offset, Duration eta) {
  return std::floor(offset.seconds() / eta.seconds());  // EXPECT: R3
}

long long heartbeat_shift(Duration gap, double eta_s) {
  return std::llround(gap.seconds() / eta_s);  // EXPECT: R3
}

double window_size(Duration delta, Duration eta) {
  return std::ceil(delta.seconds() / eta.seconds());  // EXPECT: R3
}

unsigned long truncate_point(Duration t) {
  return static_cast<unsigned long>(t.seconds());  // EXPECT: R3
}

}  // namespace corpus
