// R2 known-bad: unordered iteration on merge/serialization paths.  The
// corpus config marks merge_results / emit_json as roots; reach() is a
// helper called by a root, builder() is a caller feeding a root.
#include <map>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace corpus {

struct Registry {
  std::unordered_map<int, double> weights_;
  std::unordered_set<int> members_;

  void merge_results(std::ostream& os) {
    for (const auto& [id, w] : weights_) {  // EXPECT: R2
      os << id << ' ' << w;
    }
  }
};

double reach_helper(const std::unordered_map<int, double>& other) {
  std::unordered_map<int, double> scratch(other);
  double total = 0.0;
  for (auto it = scratch.begin(); it != scratch.end(); ++it) {  // EXPECT: R2
    total += it->second;
  }
  return total;
}

void emit_json(std::ostream& os,
               const std::unordered_map<int, double>& table) {
  os << reach_helper(table);
}

// Pointer-keyed ordered containers iterate in address order: deterministic
// within a process, not across runs — the same hazard class.
struct Node {
  int id;
};

void builder(std::ostream& os) {
  std::map<Node*, double> by_node;
  for (const auto& [node, w] : by_node) {  // EXPECT: R2
    os << node->id << w;
  }
  std::unordered_map<int, double> table;
  Registry reg;
  reg.merge_results(os);
}

}  // namespace corpus
