// R4 known-good, out-of-line definitions: staticness and access come from
// the in-class declaration, which out-of-line definitions do not repeat.
#include "r4_good.hpp"

namespace corpus {

class Pool {
 public:
  static Pool& instance();

 private:
  void drain();

  int live_ = 0;
  int drained_ = 0;
};

// A static factory mutates no instance state; `static` is only on the
// declaration, so a naive reading of this definition would flag it.
Pool& Pool::instance() {
  static Pool pool;
  pool.live_ = 1;
  return pool;
}

// Private per the declaration above — not public API.
void Pool::drain() {
  live_ = 0;
  ++drained_;
}

}  // namespace corpus
