// R1 known-good: member functions and qualified names that merely *look*
// like banned symbols, plus the sanctioned seeded-RNG / virtual-clock idiom.
namespace corpus {

struct Rng {
  unsigned long state = 1;
  double uniform01() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  }
};

struct Simulator {
  double now = 0.0;
  // A member named time() is not libc time(): detlint must not flag calls
  // through an object.
  double time() const { return now; }
  double clock() const { return now; }
};

struct Scheduler {
  // Foo::time(...) is a project name, not ::time.
  static double time(double base) { return base; }
};

double virtual_now(const Simulator& sim) {
  return sim.time() + Scheduler::time(sim.clock());
}

double seeded_draw(Rng& rng) { return rng.uniform01(); }

}  // namespace corpus
