// R3 known-good: time-index arithmetic routed through the sanctioned
// helpers (common/rounding.hpp), rounding on plain doubles, and casts of
// already-snapped values.
#include <cmath>

namespace corpus {

class Duration {
 public:
  explicit Duration(double s) : s_(s) {}
  double seconds() const { return s_; }

 private:
  double s_;
};

// Stand-ins for the sanctioned helpers; detlint recognizes them by name.
long ceil_ratio(double a, double b) {
  return static_cast<long>(std::ceil(a / b - 1e-9));
}
double floor_ratio_snapped(double a, double b) { return std::floor(a / b); }
double floor_snapped(double r) { return std::floor(r); }

long window_size(Duration delta, Duration eta) {
  return ceil_ratio(delta.seconds(), eta.seconds());
}

double freshness_index(Duration offset, Duration eta) {
  return floor_ratio_snapped(offset.seconds(), eta.seconds());
}

// Casting the snapped result is the documented pattern: round first via the
// helper, then cast the already-integral value.
unsigned long heartbeat_shift(Duration gap, Duration eta) {
  const double shift = floor_ratio_snapped(gap.seconds(), eta.seconds());
  return static_cast<unsigned long>(shift < 0.0 ? 0.0 : shift);
}

// Rounding a quantity with no time units attached is out of scope.
double plain_math(double x) { return std::floor(x / 3.0) + std::ceil(x); }

// Reading seconds() without rounding or truncating it is fine.
double ratio(Duration a, Duration b) { return a.seconds() / b.seconds(); }

}  // namespace corpus
