// R1 known-bad: every ambient nondeterminism source must be flagged.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace corpus {

int ambient_rand() {
  return std::rand();  // EXPECT: R1
}

unsigned hardware_seed() {
  std::random_device rd;  // EXPECT: R1
  return rd();
}

long wall_seconds() {
  return ::time(nullptr);  // EXPECT: R1
}

double wall_now() {
  const auto t = std::chrono::steady_clock::now();  // EXPECT: R1
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double wall_now_sys() {
  const auto t = std::chrono::system_clock::now();  // EXPECT: R1
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

const char* env_knob() {
  return std::getenv("CORPUS_KNOB");  // EXPECT: R1
}

// Banned calls hiding inside macro definitions are still seen (the lexer
// scans preprocessor lines too).
#define CORPUS_NOW() time(nullptr)  // EXPECT: R1

long uses_macro() { return CORPUS_NOW(); }

}  // namespace corpus
