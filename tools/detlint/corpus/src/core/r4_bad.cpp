// R4 known-bad, out-of-line definition: access is looked up from the
// declaration in r4_bad.hpp.
#include "r4_bad.hpp"

namespace corpus {

void Sampler::rebuild(int buckets) {  // EXPECT: R4
  buckets_ = buckets;
  ++version_;
}

}  // namespace corpus
