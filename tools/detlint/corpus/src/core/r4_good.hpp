// R4 known-good: contracts present, const observers, trivial setters,
// non-public mutators and TU-local helpers are all exempt.
#pragma once

#include <stdexcept>

#define CHENFD_EXPECTS(cond, msg) \
  do {                            \
    if (!(cond)) throw std::invalid_argument(msg); \
  } while (false)

namespace corpus {

inline void expects(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

struct Params {
  double eta = 1.0;
  void validate() const { expects(eta > 0.0, "eta must be > 0"); }
};

class Monitor {
 public:
  // Direct contract macro.
  void advance(double dt) {
    CHENFD_EXPECTS(dt >= 0.0, "advance: negative dt");
    now_ += dt;
    ++steps_;
  }

  // Delegated validation counts as a contract.
  void set_params(Params p) {
    p.validate();
    params_ = p;
  }

  // Const observers are not mutating.
  double now() const {
    double shifted = now_;
    shifted += 0.0;
    return shifted;
  }

  // One-statement setters have no precondition worth stating.
  void mark() { dirty_ = true; }

 protected:
  // Non-public mutators are the class's own business.
  void reset_internal() {
    now_ = 0.0;
    steps_ = 0;
  }

 private:
  double now_ = 0.0;
  long steps_ = 0;
  bool dirty_ = false;
  Params params_;
};

}  // namespace corpus

// TU-local helper classes in anonymous namespaces are not public API.
namespace {
class Scratch {
 public:
  void fill(int n) {
    a_ = n;
    b_ = n * 2;
  }

 private:
  int a_ = 0;
  int b_ = 0;
};
}  // namespace
