// Suppression mechanics: same-line and previous-line allows silence a
// finding only when they carry a reason; a reasonless or unknown-rule allow
// is itself reported (rule id "suppression") and the original finding
// stays.  `EXPECT-NEXT` markers pin findings on the following line.
#include <cstdlib>
#include <ctime>

namespace corpus {

int same_line_allow() {
  return std::rand();  // detlint: allow(R1) corpus fixture, never shipped
}

long previous_line_allow() {
  // detlint: allow(R1) corpus fixture exercising previous-line suppression
  return ::time(nullptr);
}

int reasonless_allow() {
  // EXPECT-NEXT: R1, suppression
  return std::rand();  // detlint: allow(R1)
}

int unknown_rule() {
  // EXPECT-NEXT: R1, suppression
  return std::rand();  // detlint: allow(R9) bogus rule id
}

}  // namespace corpus
