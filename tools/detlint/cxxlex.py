"""Deterministic C++ lexer for detlint.

Produces a flat token stream (identifiers, numbers, string/char literals,
punctuation) plus a separate comment list, which is what the suppression
parser consumes.  Preprocessor directives are lexed like ordinary code but
their tokens are marked ``in_pp`` so structural parsing can skip them while
token-level rules (R1) still see, e.g., a banned call hidden in a ``#define``.

This is a lexer, not a preprocessor: macros are not expanded and headers are
not included.  detlint trades the full clang AST (the container toolchain
ships no clang — see tools/detlint/README.md) for a deterministic,
dependency-free front end whose behaviour is pinned by the corpus tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Longest-first so `::` wins over `:`, `->` over `-`, etc.
_PUNCTUATORS = [
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "<=>", "##",
]
_PUNCTUATORS.sort(key=len, reverse=True)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# pp-numbers are lexed loosely: we never interpret values, only positions.
_NUMBER_RE = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*")

KEYWORDS = frozenset("""
    alignas alignof asm auto bool break case catch char char8_t char16_t
    char32_t class concept const consteval constexpr constinit const_cast
    continue co_await co_return co_yield decltype default delete do double
    dynamic_cast else enum explicit export extern false float for friend goto
    if inline int long mutable namespace new noexcept nullptr operator
    private protected public register reinterpret_cast requires return short
    signed sizeof static static_assert static_cast struct switch template
    this thread_local throw true try typedef typeid typename union unsigned
    using virtual void volatile wchar_t while
""".split())


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'number' | 'string' | 'char' | 'punct'
    text: str
    line: int
    col: int
    in_pp: bool = False


@dataclass(frozen=True)
class Comment:
    text: str  # comment body without the // or /* */ markers, stripped
    line: int  # line the comment starts on


class LexError(Exception):
    pass


def lex(source: str, path: str = "<memory>"):
    """Returns (tokens, comments).  Raises LexError on an unterminated
    string/comment so malformed input fails loudly instead of silently
    dropping the rest of the file from analysis."""
    tokens: list[Token] = []
    comments: list[Comment] = []
    i = 0
    n = len(source)
    line = 1
    line_start = 0
    in_pp = False

    def col() -> int:
        return i - line_start + 1

    while i < n:
        c = source[i]

        if c == "\n":
            if in_pp:
                in_pp = False
            line += 1
            i += 1
            line_start = i
            continue
        if c in " \t\r\v\f":
            i += 1
            continue

        # Line continuation inside a preprocessor directive.
        if c == "\\" and in_pp and i + 1 < n and source[i + 1] == "\n":
            line += 1
            i += 2
            line_start = i
            continue

        if c == "/" and i + 1 < n and source[i + 1] == "/":
            end = source.find("\n", i)
            if end == -1:
                end = n
            comments.append(Comment(source[i + 2:end].strip(), line))
            i = end
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"{path}:{line}: unterminated block comment")
            body = source[i + 2:end]
            comments.append(Comment(body.strip(), line))
            line += body.count("\n")
            nl = source.rfind("\n", i, end + 2)
            if nl != -1:
                line_start = nl + 1
            i = end + 2
            continue

        if c == "#" and not in_pp:
            in_pp = True
            tokens.append(Token("punct", "#", line, col(), True))
            i += 1
            continue

        # Raw string literal: R"delim( ... )delim"
        if c == "R" and source.startswith('R"', i):
            m = re.match(r'R"([^()\\ \t\n]{0,16})\(', source[i:])
            if m:
                delim = m.group(1)
                close = ")" + delim + '"'
                end = source.find(close, i + m.end())
                if end == -1:
                    raise LexError(f"{path}:{line}: unterminated raw string")
                text = source[i:end + len(close)]
                tokens.append(Token("string", text, line, col(), in_pp))
                line += text.count("\n")
                nl = source.rfind("\n", i, end + len(close))
                if nl != -1:
                    line_start = nl + 1
                i = end + len(close)
                continue

        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == quote:
                    break
                if source[j] == "\n":
                    raise LexError(
                        f"{path}:{line}: newline in {quote}-literal")
                j += 1
            if j >= n:
                raise LexError(f"{path}:{line}: unterminated literal")
            kind = "string" if quote == '"' else "char"
            tokens.append(Token(kind, source[i:j + 1], line, col(), in_pp))
            i = j + 1
            continue

        m = _IDENT_RE.match(source, i)
        if m:
            tokens.append(Token("ident", m.group(), line, col(), in_pp))
            i = m.end()
            continue

        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            m = _NUMBER_RE.match(source, i)
            tokens.append(Token("number", m.group(), line, col(), in_pp))
            i = m.end()
            continue

        for p in _PUNCTUATORS:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, line, col(), in_pp))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line, col(), in_pp))
            i += 1

    return tokens, comments
