"""Structural source model for detlint.

Builds, from the token stream of each file, the pieces the rules need:

  * function definitions (qualified name, body token span, constness,
    access section for methods, enclosing class),
  * method *declarations* inside classes (so the access of an out-of-line
    ``Class::method`` definition in a .cpp can be looked up from its header),
  * declarations of ordering-hazardous containers (``std::unordered_map``,
    ``std::unordered_set``, and pointer-keyed ``std::map``/``std::set``),
  * a name-based call graph (caller qualname -> callee name tokens),
    deliberately over-approximate: any identifier followed by ``(`` counts.

The parser only classifies constructs at namespace/class scope; a function
body is consumed as one balanced-brace token span, so statement-level braces
(``if``/``for``/lambdas) never confuse it.  Heuristics are pinned by the
corpus under tools/detlint/corpus/.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from cxxlex import KEYWORDS, Token

_CONTROL = frozenset({"if", "for", "while", "switch", "catch", "return",
                      "do", "else", "new", "delete", "sizeof", "case",
                      "throw", "co_return", "co_yield", "co_await"})

# Container types whose iteration order is not deterministic across runs /
# implementations, or whose ordered iteration is keyed on pointer values
# (deterministic within one process, but not across processes or runs —
# exactly what the bit-identical --jobs guarantee forbids).
_UNORDERED_RE = re.compile(
    r"\b(?:std\s*::\s*)?(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset)\b")
_PTR_KEYED_RE = re.compile(
    r"\b(?:std\s*::\s*)?(map|set|multimap|multiset)\s*<[^,>]*\*")


@dataclass
class Function:
    qualname: str          # e.g. "chenfd::SampleSet::merge"
    name: str              # last component, e.g. "merge"
    class_name: str | None  # enclosing (or qualifier) class, if any
    access: str | None     # 'public'/'protected'/'private' for in-class defs
    is_const: bool
    is_static: bool
    kind: str              # 'function' | 'ctor' | 'dtor' | 'operator'
    in_anon: bool          # defined inside an anonymous namespace
    line: int
    body: tuple[int, int]  # [start, end) token indices of the body incl. {}
    head: tuple[int, int]  # [start, end) token indices of the declaration head


@dataclass
class MethodDecl:
    qualname: str
    access: str
    is_const: bool
    is_static: bool


@dataclass
class HazardDecl:
    name: str              # variable name
    type_text: str
    line: int
    owner: str | None      # qualname of owning function, or class for members


@dataclass
class FileModel:
    path: str
    tokens: list[Token]
    comments: list
    functions: list[Function] = field(default_factory=list)
    method_decls: list[MethodDecl] = field(default_factory=list)
    hazards: list[HazardDecl] = field(default_factory=list)


def _head_text(tokens: list[Token], span: tuple[int, int]) -> str:
    return " ".join(t.text for t in tokens[span[0]:span[1]])


def _match_brace(tokens: list[Token], open_idx: int) -> int:
    """Index just past the '}' matching tokens[open_idx] == '{'."""
    depth = 0
    i = open_idx
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _extract_callable_name(tokens: list[Token], head: tuple[int, int]):
    """Finds the `name(` of a function head.  Returns (name_parts, paren_idx)
    or (None, None).  name_parts is the ::-separated component list."""
    depth_p = depth_a = 0
    i = head[0]
    candidates = []
    while i < head[1]:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "(":
                if depth_p == 0 and depth_a == 0 and candidates:
                    return candidates, i
                depth_p += 1
            elif t.text == ")":
                depth_p = max(0, depth_p - 1)
            elif t.text == "<" and depth_p == 0:
                # Template argument list of the *name* only matters between
                # the name and its '('; approximate by bracket counting.
                depth_a += 1
            elif t.text == ">" and depth_p == 0 and depth_a > 0:
                depth_a -= 1
        if depth_p == 0 and depth_a == 0:
            if t.kind == "ident" and t.text == "operator":
                # Collect the operator token(s) up to '('.
                parts = [t.text]
                j = i + 1
                while j < head[1] and not (tokens[j].kind == "punct"
                                           and tokens[j].text == "("):
                    parts.append(tokens[j].text)
                    j += 1
                # `operator()` names the call operator: its '(' pair belongs
                # to the *name*; the parameter list opens after it.
                if (j + 1 < head[1] and tokens[j].text == "("
                        and tokens[j + 1].text == ")"
                        and "".join(parts) == "operator"):
                    parts.append("()")
                    j += 2
                    while j < head[1] and not (tokens[j].kind == "punct"
                                               and tokens[j].text == "("):
                        j += 1
                candidates = ["".join(parts)]
                if j < head[1]:
                    return candidates, j
                return None, None
            if t.kind == "ident" and t.text not in KEYWORDS:
                if (candidates and i >= 2
                        and tokens[i - 1].text == "::"):
                    candidates.append(t.text)
                else:
                    candidates = [t.text]
            elif t.kind == "punct" and t.text == "~" and candidates == []:
                candidates = ["~"]
            elif t.kind == "punct" and t.text == "~":
                if i >= 1 and tokens[i - 1].text == "::":
                    candidates.append("~")
            elif t.kind == "punct" and t.text == "::":
                pass
            elif t.kind == "punct" and t.text in {"&", "*", "[", "]"}:
                pass
        i += 1
    return None, None


def _merge_tilde(parts: list[str]) -> list[str]:
    out: list[str] = []
    for p in parts:
        if out and out[-1] == "~":
            out[-1] = "~" + p
        else:
            out.append(p)
    return out


def _const_after_params(tokens: list[Token], head: tuple[int, int],
                        paren: int | None) -> bool:
    """True when 'const' qualifies the method (appears after the parameter
    list's closing ')', before the body / end of head)."""
    if paren is None:
        return False
    depth = 0
    k = paren
    while k < head[1]:
        if tokens[k].text == "(":
            depth += 1
        elif tokens[k].text == ")":
            depth -= 1
            if depth == 0:
                break
        k += 1
    j = k + 1
    while j < head[1]:
        w = tokens[j]
        if w.kind == "ident" and w.text == "const":
            return True
        if w.kind == "ident" and w.text in ("noexcept", "override", "final"):
            j += 1
            continue
        if w.kind == "punct" and w.text == "(":
            d = 0
            while j < head[1]:  # noexcept(...) operand
                if tokens[j].text == "(":
                    d += 1
                elif tokens[j].text == ")":
                    d -= 1
                    if d == 0:
                        break
                j += 1
            j += 1
            continue
        if w.kind == "punct" and w.text in ("->", "&", "&&"):
            j += 1
            continue
        break
    return False


class _Scope:
    def __init__(self, kind: str, name: str, access: str | None = None):
        self.kind = kind          # 'namespace' | 'class' | 'skip'
        self.name = name
        self.access = access      # current access section for classes


def parse_file(path: str, tokens: list[Token], comments) -> FileModel:
    model = FileModel(path=path, tokens=tokens, comments=comments)
    scopes: list[_Scope] = []
    i = 0
    n = len(tokens)

    def qual_prefix() -> str:
        names = [s.name for s in scopes
                 if s.kind in ("namespace", "class") and s.name]
        return "::".join(names)

    def enclosing_class() -> _Scope | None:
        for s in reversed(scopes):
            if s.kind == "class":
                return s
        return None

    while i < n:
        t = tokens[i]
        if t.in_pp:
            i += 1
            continue
        if t.kind == "punct" and t.text == "}":
            if scopes:
                scopes.pop()
            i += 1
            continue

        cls = enclosing_class()
        if (cls is not None and t.kind == "ident"
                and t.text in ("public", "protected", "private")
                and i + 1 < n and tokens[i + 1].text == ":"):
            cls.access = t.text
            i += 2
            continue

        # Accumulate a declaration head until ';' or '{' at depth 0.
        start = i
        depth_p = 0
        saw_eq_at_top = False
        while i < n:
            t = tokens[i]
            if t.in_pp:
                i += 1
                continue
            if t.kind == "punct":
                if t.text in "([":
                    depth_p += 1
                elif t.text in ")]":
                    depth_p = max(0, depth_p - 1)
                elif t.text == "=" and depth_p == 0:
                    saw_eq_at_top = True
                elif t.text == ";" and depth_p == 0:
                    break
                elif t.text == "{" and depth_p == 0:
                    break
                elif t.text == "}" and depth_p == 0:
                    break  # stray close: let outer loop pop the scope
            i += 1
        head = (start, i)
        head_words = [tokens[k].text for k in range(start, i)
                      if tokens[k].kind == "ident"]

        if i >= n or tokens[i].text in (";", "}"):
            # Pure declaration (no body).  Record hazardous member/global
            # declarations and in-class method declarations.
            _record_decls(model, tokens, head, head_words,
                          enclosing_class(), qual_prefix())
            cls = enclosing_class()
            if cls is not None and head[1] > head[0]:
                name_parts, paren = _extract_callable_name(tokens, head)
                if name_parts is not None and \
                        name_parts[0] not in _CONTROL:
                    name_parts = _merge_tilde(name_parts)
                    prefix = qual_prefix()
                    qual = "::".join(([prefix] if prefix else [])
                                     + name_parts)
                    is_const = _const_after_params(tokens, head, paren)
                    model.method_decls.append(MethodDecl(
                        qualname=qual, access=cls.access or "public",
                        is_const=is_const,
                        is_static="static" in head_words[:6]))
            if i < n and tokens[i].text == ";":
                i += 1
            continue

        # tokens[i] == '{' : classify the construct that owns this body.
        if "namespace" in head_words:
            parts = [w for w in head_words
                     if w not in ("namespace", "inline")]
            scopes.append(_Scope("namespace", "::".join(parts)))
            i += 1
            continue
        is_record = any(w in ("class", "struct", "union") for w in head_words)
        has_enum = "enum" in head_words
        name_parts, paren = (None, None)
        if not saw_eq_at_top and not has_enum:
            name_parts, paren = _extract_callable_name(tokens, head)
        if name_parts is not None and name_parts[0] in _CONTROL:
            name_parts, paren = None, None
        if has_enum or (is_record and name_parts is None):
            if has_enum:
                end = _match_brace(tokens, i)
                i = end
                continue
            # class/struct definition
            name = ""
            for k in range(head[1] - 1, head[0] - 1, -1):
                w = tokens[k]
                if w.kind == "ident" and w.text in ("class", "struct",
                                                    "union"):
                    break
                if w.text == ":":  # inheritance list: name precedes it
                    continue
            # take the identifier right after class/struct (skipping
            # attributes and export macros is overkill here)
            for k in range(head[0], head[1]):
                if tokens[k].kind == "ident" and tokens[k].text in (
                        "class", "struct", "union"):
                    for j in range(k + 1, head[1]):
                        if tokens[j].kind == "ident" and \
                                tokens[j].text not in KEYWORDS:
                            name = tokens[j].text
                        elif tokens[j].text in (":", "{", "final"):
                            break
                        else:
                            continue
                        break
                    break
            default_access = "private" if "class" in head_words else "public"
            scopes.append(_Scope("class", name, default_access))
            i += 1
            continue
        if name_parts is None:
            # Brace-initialised variable, lambda assignment, extern "C" {,
            # requires-clause, ... : skip the balanced body conservatively,
            # except extern "C" which is transparent.
            if head_words == ["extern"] or (
                    head_words and head_words[0] == "extern"
                    and len(head_words) == 1):
                scopes.append(_Scope("namespace", ""))
                i += 1
                continue
            end = _match_brace(tokens, i)
            # still record hazardous decls like `std::unordered_map<...> m{};`
            _record_decls(model, tokens, head, head_words,
                          enclosing_class(), qual_prefix())
            i = end
            continue

        # Function definition.
        name_parts = _merge_tilde(name_parts)
        fname = name_parts[-1]
        cls = enclosing_class()
        class_name = cls.name if cls else (
            name_parts[-2] if len(name_parts) >= 2 else None)
        prefix = qual_prefix()
        qual = "::".join(([prefix] if prefix else []) + name_parts)
        kind = "function"
        if fname.startswith("~"):
            kind = "dtor"
        elif fname.startswith("operator"):
            kind = "operator"
        elif class_name is not None and fname == class_name:
            kind = "ctor"
        is_const = _const_after_params(tokens, head, paren)
        is_static = "static" in head_words[:6]
        in_anon = any(s.kind == "namespace" and s.name == "" for s in scopes)
        body_end = _match_brace(tokens, i)
        model.functions.append(Function(
            qualname=qual, name=fname, class_name=class_name,
            access=(cls.access if cls else None), is_const=is_const,
            is_static=is_static, kind=kind, in_anon=in_anon,
            line=tokens[start].line, body=(i, body_end), head=head))
        # Hazardous locals are found by the rules via a body scan; members
        # and params declared in the head still get recorded here.
        _record_decls(model, tokens, head, head_words, cls, prefix,
                      owner=qual)
        i = body_end

    return model


def _record_decls(model: FileModel, tokens, head, head_words, cls,
                  prefix: str, owner: str | None = None):
    text = _head_text(tokens, head)
    if not (_UNORDERED_RE.search(text) or _PTR_KEYED_RE.search(text)):
        return
    # Variable name: last plain identifier before '=', '{', or end.
    name = None
    for k in range(head[1] - 1, head[0] - 1, -1):
        t = tokens[k]
        if t.kind == "punct" and t.text in ("=", "{"):
            name = None
            continue
        if t.kind == "ident" and t.text not in KEYWORDS:
            name = t.text
            break
        if t.kind == "punct" and t.text in (">", ")", "&", "*"):
            break
    if name is None:
        return
    own = owner if owner is not None else (
        "::".join(p for p in (prefix,) if p) or None)
    model.hazards.append(HazardDecl(
        name=name, type_text=text[:120], line=tokens[head[0]].line,
        owner=own))


def body_tokens(model: FileModel, fn: Function) -> list[Token]:
    return model.tokens[fn.body[0]:fn.body[1]]


def called_names(model: FileModel, fn: Function) -> set[str]:
    """Names referenced as calls inside fn's body (over-approximate)."""
    toks = model.tokens
    out: set[str] = set()
    for k in range(fn.body[0], fn.body[1] - 1):
        t = toks[k]
        if t.kind != "ident" or t.text in KEYWORDS or t.text in _CONTROL:
            continue
        if toks[k + 1].kind == "punct" and toks[k + 1].text == "(":
            out.add(t.text)
            # qualified form A::b -> record "A::b" too
            if k >= 2 and toks[k - 1].text == "::" and \
                    toks[k - 2].kind == "ident":
                out.add(toks[k - 2].text + "::" + t.text)
    return out
