#!/usr/bin/env python3
"""Self-tests for detlint: corpus expectations, suppression mechanics,
baseline round trips, and the clang-ast engine gate.  Wired into ctest as
`detlint_selftest` (tools/CMakeLists.txt); runnable standalone:

    python3 tools/detlint/test_detlint.py -v

Corpus contract: every finding detlint emits over tools/detlint/corpus must
be pinned by an `// EXPECT: <rules>` marker on the same line (or an
`// EXPECT-NEXT: <rules>` marker on the previous line), and every marker
must be hit — no extra findings, no missing ones.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
DETLINT = os.path.join(HERE, "detlint.py")
CORPUS = os.path.join(HERE, "corpus")

_EXPECT_RE = re.compile(r"//\s*EXPECT(?P<next>-NEXT)?:\s*(?P<rules>[\w*,\s]+)")


def run_detlint(args, cwd=None):
    proc = subprocess.run(
        [sys.executable, DETLINT] + args,
        capture_output=True, text=True, cwd=cwd)
    return proc


def corpus_expectations():
    expected = set()
    for dirpath, _dirnames, filenames in os.walk(CORPUS):
        for name in sorted(filenames):
            if not name.endswith((".cpp", ".hpp", ".h", ".cc")):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, CORPUS)
            with open(full, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    m = _EXPECT_RE.search(line)
                    if not m:
                        continue
                    target = lineno + 1 if m.group("next") else lineno
                    for rule in m.group("rules").split(","):
                        rule = rule.strip()
                        if rule:
                            expected.add((rel, target, rule))
    return expected


class CorpusTest(unittest.TestCase):
    """Every rule family has a known-bad and a known-good corpus file; the
    finding set must equal the marker set exactly."""

    def test_corpus_matches_markers(self):
        with tempfile.TemporaryDirectory() as tmp:
            listing = os.path.join(tmp, "findings.json")
            proc = run_detlint([
                "--root", CORPUS,
                "--config", os.path.join(CORPUS, "detlint.json"),
                "--baseline", "none",
                "--list", listing,
            ])
            self.assertEqual(proc.returncode, 1,
                             f"corpus has known-bad files, expected exit 1:"
                             f"\n{proc.stdout}\n{proc.stderr}")
            with open(listing, encoding="utf-8") as f:
                findings = {(e["path"], e["line"], e["rule"])
                            for e in json.load(f)}
        expected = corpus_expectations()
        self.assertTrue(expected, "corpus has no EXPECT markers?")
        missing = expected - findings
        extra = findings - expected
        self.assertFalse(
            missing | extra,
            f"corpus mismatch — missing: {sorted(missing)}, "
            f"unexpected: {sorted(extra)}")

    def test_every_rule_has_bad_and_good_files(self):
        expected = corpus_expectations()
        rules_hit = {r for (_p, _l, r) in expected}
        for rule in ("R1", "R2", "R3", "R4"):
            self.assertIn(rule, rules_hit,
                          f"{rule} has no known-bad corpus coverage")
            good = os.path.join(
                CORPUS, "src", "core", f"{rule.lower()}_good")
            self.assertTrue(
                os.path.exists(good + ".cpp") or os.path.exists(
                    good + ".hpp"),
                f"{rule} has no known-good corpus file")

    def test_suppressed_findings_do_not_fail(self):
        # The two valid suppressions in suppress.cpp must be counted as
        # suppressed, and suppressing them is what keeps their lines out of
        # the marker set.
        proc = run_detlint([
            "--root", CORPUS,
            "--config", os.path.join(CORPUS, "detlint.json"),
            "--baseline", "none",
        ])
        self.assertIn("2 suppressed", proc.stdout)


class BaselineTest(unittest.TestCase):
    """--write-baseline / baseline matching round trip, and the incremental
    adoption story: old findings baselined, new findings still fail."""

    def _mini_project(self, tmp):
        src = os.path.join(tmp, "src")
        os.makedirs(src)
        with open(os.path.join(src, "old.cpp"), "w",
                  encoding="utf-8") as f:
            f.write("#include <cstdlib>\n"
                    "namespace p {\n"
                    "int legacy() { return std::rand(); }\n"
                    "}  // namespace p\n")
        with open(os.path.join(tmp, "detlint.json"), "w",
                  encoding="utf-8") as f:
            json.dump({"paths": ["src"], "exclude": []}, f)
        return src

    def test_round_trip(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = self._mini_project(tmp)
            baseline = os.path.join(tmp, "baseline.json")
            config = os.path.join(tmp, "detlint.json")
            base_args = ["--root", tmp, "--config", config,
                         "--baseline", baseline]

            # Without a baseline the legacy finding fails the run.
            proc = run_detlint(base_args)
            self.assertEqual(proc.returncode, 1, proc.stdout)

            # Writing a baseline accepts it ...
            proc = run_detlint(base_args + ["--write-baseline"])
            self.assertEqual(proc.returncode, 0, proc.stdout)
            with open(baseline, encoding="utf-8") as f:
                entries = json.load(f)
            self.assertEqual(len(entries), 1)
            self.assertEqual(entries[0]["rule"], "R1")

            # ... so the same tree now passes, with the finding reported as
            # baselined rather than open.
            proc = run_detlint(base_args)
            self.assertEqual(proc.returncode, 0, proc.stdout)
            self.assertIn("1 baselined", proc.stdout)

            # A new violation in a fresh file still fails; the baselined one
            # stays accepted.
            with open(os.path.join(src, "new.cpp"), "w",
                      encoding="utf-8") as f:
                f.write("#include <cstdlib>\n"
                        "namespace p {\n"
                        "int fresh() { return std::rand(); }\n"
                        "}  // namespace p\n")
            proc = run_detlint(base_args)
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("new.cpp", proc.stdout)
            self.assertNotIn("old.cpp:", proc.stdout.split("hint")[0])

    def test_baseline_survives_line_drift(self):
        # Keys are (rule, path, function, normalized line text): inserting
        # lines above the finding must not invalidate the baseline.
        with tempfile.TemporaryDirectory() as tmp:
            src = self._mini_project(tmp)
            baseline = os.path.join(tmp, "baseline.json")
            config = os.path.join(tmp, "detlint.json")
            base_args = ["--root", tmp, "--config", config,
                         "--baseline", baseline]
            run_detlint(base_args + ["--write-baseline"])
            old = os.path.join(src, "old.cpp")
            with open(old, encoding="utf-8") as f:
                text = f.read()
            with open(old, "w", encoding="utf-8") as f:
                f.write("// three\n// new\n// lines\n" + text)
            proc = run_detlint(base_args)
            self.assertEqual(proc.returncode, 0,
                             f"line drift broke the baseline:\n"
                             f"{proc.stdout}")

    def test_malformed_baseline_is_a_clear_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._mini_project(tmp)
            baseline = os.path.join(tmp, "baseline.json")
            with open(baseline, "w", encoding="utf-8") as f:
                f.write('{"not": "a list"}\n')
            proc = run_detlint(["--root", tmp,
                                "--config",
                                os.path.join(tmp, "detlint.json"),
                                "--baseline", baseline])
            self.assertEqual(proc.returncode, 2)
            self.assertIn("baseline", proc.stderr)


class EngineGateTest(unittest.TestCase):
    def test_clang_ast_engine_is_gated(self):
        if shutil.which("clang") is not None:
            self.skipTest("clang present; gate message not applicable")
        proc = run_detlint(["--engine", "clang-ast", "--root", CORPUS,
                            "--config",
                            os.path.join(CORPUS, "detlint.json")])
        self.assertEqual(proc.returncode, 2)
        self.assertIn("clang", proc.stderr)


class RepoCleanTest(unittest.TestCase):
    """The committed tree must be clean: zero unsuppressed findings over
    src/, tools/ and bench/ with the committed config and baseline."""

    def test_repo_is_clean(self):
        root = os.path.dirname(os.path.dirname(HERE))
        proc = run_detlint(["--root", root])
        self.assertEqual(
            proc.returncode, 0,
            f"detlint found unsuppressed violations:\n{proc.stdout}")


if __name__ == "__main__":
    unittest.main()
