// Command logic for the audit_qos tool, separated from main() so the tests
// can drive it directly (same pattern as cli.hpp / chenfd_calc).
//
// audit_qos replays a recorded failure-detector transition trace
// (qos::read_trace -> qos::replay) and verifies the Theorem 1 renewal
// identities (qos::audit_theorem1) against the recorder's output.  It can
// also record such a trace from a simulated NFD-S run, so the round trip
// record -> check is self-contained.

#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace chenfd::cli {

/// Executes `audit_qos <command> [--key value]...` where command is:
///   record  --eta E --delta D --ploss P --mean M --seconds T [--seed S]
///           writes a transition trace of a simulated NFD-S run to `os`
///   check   [--tol T] [--start S] [--end E]
///           reads a trace from `trace_in`, replays it, audits Theorem 1
/// Returns 0 on success, 1 if the audit found a violated identity, 2 on
/// usage errors or a malformed trace.
int run_audit(const std::vector<std::string>& argv, std::istream& trace_in,
              std::ostream& os);

void print_audit_usage(std::ostream& os);

}  // namespace chenfd::cli
