#include "audit_cli.hpp"

#include <iomanip>
#include <memory>

#include "cli.hpp"
#include "core/nfd_s.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/audit.hpp"
#include "qos/replay.hpp"
#include "qos/trace.hpp"

namespace chenfd::cli {
namespace {

/// Simulates a failure-free NFD-S run and returns its transition trace.
/// The audit window starts at the first freshness point tau_1 = eta + delta
/// (the detector's warm-up; Section 3.2), so every recorded interval is a
/// steady-state sample.
qos::TraceFile record_nfd_s_trace(const Args& args) {
  const core::NfdSParams params{seconds(args.require("eta")),
                                seconds(args.require("delta"))};
  const double horizon = args.require("seconds");
  expects(horizon > (params.eta + params.delta).seconds(),
          "record: --seconds must exceed the warm-up eta + delta");
  core::Testbed::Config tc;
  tc.delay = std::make_unique<dist::Exponential>(args.require("mean"));
  tc.loss = std::make_unique<net::BernoulliLoss>(args.require("ploss"));
  tc.eta = params.eta;
  tc.seed = args.number("seed")
                ? static_cast<std::uint64_t>(args.require("seed"))
                : 42u;
  core::Testbed tb(std::move(tc));
  core::NfdS detector(tb.simulator(), params);
  tb.attach(detector);

  qos::TraceFile trace;
  trace.start = TimePoint::zero() + params.eta + params.delta;
  trace.end = TimePoint(horizon);
  detector.add_listener([&trace](const Transition& t) {
    trace.transitions.push_back(t);
  });
  tb.start();
  tb.simulator().run_until(trace.end);
  detector.stop();
  return trace;
}

void print_report(const qos::AuditReport& report, double tolerance,
                  std::ostream& os) {
  os << "Theorem 1 renewal-identity audit over " << report.cycles
     << " complete mistake cycles (tolerance " << tolerance << "):\n";
  for (const auto& c : report.checks) {
    os << "  " << (c.ok ? "ok  " : "FAIL") << "  " << std::left
       << std::setw(28) << c.name << std::right << "  lhs=" << c.lhs
       << "  rhs=" << c.rhs << "  rel.err=" << c.rel_error << "\n";
  }
  os << (report.ok() ? "AUDIT PASSED" : "AUDIT FAILED") << "\n";
}

}  // namespace

void print_audit_usage(std::ostream& os) {
  os << "audit_qos — replay a failure-detector transition trace and verify\n"
        "the Theorem 1 renewal identities (lambda_M = 1/E(T_MR), "
        "P_A = 1 - E(T_M)/E(T_MR), ...)\n\n"
        "commands:\n"
        "  record --eta E --delta D --ploss P --mean M --seconds T "
        "[--seed S]\n"
        "      Simulate a failure-free NFD-S run (exponential delays) and\n"
        "      print its transition trace.\n"
        "  check [--trace FILE] [--tol T] [--start S] [--end E]\n"
        "      Read a trace (stdin unless --trace), replay it through the\n"
        "      QoS recorder, and audit the Theorem 1 identities.  Exits 0\n"
        "      if every identity holds within the tolerance (default "
        "0.05),\n"
        "      1 if any is violated, 2 on a malformed trace.\n\n"
        "example round trip:\n"
        "  audit_qos record --eta 1 --delta 1 --ploss 0.01 --mean 0.02 "
        "--seconds 200000 > trace.txt\n"
        "  audit_qos check --trace trace.txt\n";
}

int run_audit(const std::vector<std::string>& argv, std::istream& trace_in,
              std::ostream& os) {
  try {
    if (argv.empty()) {
      print_audit_usage(os);
      return 2;
    }
    const Args args = parse(argv);
    if (args.command == "record") {
      qos::write_trace(os, record_nfd_s_trace(args));
      return 0;
    }
    if (args.command == "check") {
      const double tolerance = args.number("tol").value_or(0.05);
      const qos::TraceFile trace = qos::read_trace(trace_in);
      const TimePoint start =
          args.number("start") ? TimePoint(args.require("start"))
                               : trace.start;
      const TimePoint end =
          args.number("end") ? TimePoint(args.require("end")) : trace.end;
      const qos::Recorder rec = qos::replay(trace.transitions, start, end);
      const qos::AuditReport report = qos::audit_theorem1(rec, tolerance);
      print_report(report, tolerance, os);
      return report.ok() ? 0 : 1;
    }
    if (args.command == "help" || args.command == "--help") {
      print_audit_usage(os);
      return 0;
    }
    os << "unknown command '" << args.command << "'\n\n";
    print_audit_usage(os);
    return 2;
  } catch (const std::invalid_argument& e) {
    os << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace chenfd::cli
