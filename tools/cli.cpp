#include "cli.hpp"

#include <cmath>
#include <stdexcept>

#include "core/analysis.hpp"
#include "core/fast_sim.hpp"
#include "core/chebyshev.hpp"
#include "core/config.hpp"
#include "dist/constant.hpp"
#include "dist/erlang.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"
#include "runner/parallel_sweep.hpp"

namespace chenfd::cli {
namespace {

qos::Requirements requirements_from(const Args& args) {
  return qos::Requirements{seconds(args.require("td")),
                           seconds(args.require("tmr")),
                           seconds(args.require("tm"))};
}

void print_params(std::ostream& os, const char* eta_name, double eta,
                  const char* shift_name, double shift) {
  os << "  " << eta_name << "   = " << eta << " s   (heartbeat every "
     << eta << " s, " << 60.0 / eta << "/min)\n"
     << "  " << shift_name << " = " << shift << " s\n";
}

}  // namespace

std::optional<double> Args::number(const std::string& key) const {
  const auto it = options.find(key);
  if (it == options.end()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size() || !std::isfinite(v)) {
      throw std::invalid_argument("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": not a number: '" +
                                it->second + "'");
  }
}

double Args::require(const std::string& key) const {
  const auto v = number(key);
  if (!v) throw std::invalid_argument("missing required option --" + key);
  return *v;
}

Args parse(const std::vector<std::string>& argv) {
  Args out;
  if (argv.empty()) throw std::invalid_argument("missing command");
  out.command = argv[0];
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected token '" + tok + "'");
    }
    if (i + 1 >= argv.size()) {
      throw std::invalid_argument("option " + tok + " needs a value");
    }
    out.options[tok.substr(2)] = argv[++i];
  }
  return out;
}

std::unique_ptr<dist::DelayDistribution> make_distribution(const Args& args) {
  const std::string kind =
      args.has("dist") ? args.options.at("dist") : std::string("exp");
  if (kind == "exp") {
    return std::make_unique<dist::Exponential>(args.require("mean"));
  }
  if (kind == "uniform") {
    return std::make_unique<dist::Uniform>(args.require("lo"),
                                           args.require("hi"));
  }
  if (kind == "constant") {
    return std::make_unique<dist::Constant>(args.require("value"));
  }
  if (kind == "lognormal") {
    return std::make_unique<dist::LogNormal>(dist::LogNormal::with_moments(
        args.require("mean"), args.require("var")));
  }
  if (kind == "pareto") {
    return std::make_unique<dist::Pareto>(
        dist::Pareto::with_mean(args.require("mean"), args.require("alpha")));
  }
  if (kind == "erlang") {
    return std::make_unique<dist::Erlang>(dist::Erlang::with_mean(
        static_cast<int>(args.require("stages")), args.require("mean")));
  }
  if (kind == "weibull") {
    const double k = args.require("shape");
    return std::make_unique<dist::Weibull>(
        k, args.require("mean") / std::tgamma(1.0 + 1.0 / k));
  }
  throw std::invalid_argument("unknown --dist '" + kind + "'");
}

void print_usage(std::ostream& os) {
  os << "chenfd_calc — failure detector QoS calculator "
        "(Chen/Toueg/Aguilera)\n\n"
        "commands:\n"
        "  configure-exact    --td T --tmr T --tm T --ploss P --mean M "
        "[--dist ...]\n"
        "      Section 4: compute (eta, delta) for NFD-S from the full "
        "delay distribution.\n"
        "  configure-moments  --td T --tmr T --tm T --ploss P --mean M "
        "--var V\n"
        "      Section 5: distribution-free configuration from (p_L, E(D), "
        "V(D)).\n"
        "  configure-nfdu     --td T --tmr T --tm T --ploss P --var V\n"
        "      Section 6: NFD-U/NFD-E (unsynchronized clocks); --td is "
        "relative to E(D).\n"
        "  analyze            --eta E --delta D --ploss P --mean M "
        "[--dist ...]\n"
        "      Theorem 5: exact QoS of NFD-S with the given parameters.\n"
        "  simulate           --eta E --delta D --ploss P --mean M "
        "[--mistakes N] [--seed S]\n"
        "                     [--reps R] [--jobs N]\n"
        "      Monte-Carlo NFD-S run, measured vs analytic.  --reps splits "
        "the run into R\n"
        "      replications merged on the parallel runner; --jobs caps the "
        "worker threads\n"
        "      (default: one per hardware thread).  Results depend on "
        "--reps, never --jobs.\n\n"
        "distributions (--dist, default exp):\n"
        "  exp --mean M | uniform --lo A --hi B | constant --value C\n"
        "  lognormal --mean M --var V | pareto --mean M --alpha A\n"
        "  erlang --mean M --stages K | weibull --mean M --shape K\n\n"
        "all times in seconds.  example (the paper's Section 4 case):\n"
        "  chenfd_calc configure-exact --td 30 --tmr 2592000 --tm 60 "
        "--ploss 0.01 --mean 0.02\n";
}

int run(const Args& args, std::ostream& os) {
  if (args.command == "configure-exact") {
    const auto delay = make_distribution(args);
    const auto req = requirements_from(args);
    const auto out = core::configure_exact(req, args.require("ploss"), *delay);
    if (!out.achievable()) {
      os << "QoS cannot be achieved: " << out.reason << "\n";
      return 1;
    }
    os << "NFD-S parameters meeting " << req << " on " << delay->name()
       << ":\n";
    print_params(os, "eta  ", out.params->eta.seconds(), "delta",
                 out.params->delta.seconds());
    const core::NfdSAnalysis a(*out.params, args.require("ploss"), *delay);
    os << "predicted QoS (Theorem 5): T_D <= "
       << a.detection_time_bound().seconds() << " s, E(T_MR) = "
       << a.e_tmr().seconds() << " s, E(T_M) = " << a.e_tm().seconds()
       << " s, P_A = " << a.query_accuracy() << "\n";
    return 0;
  }
  if (args.command == "configure-moments") {
    const auto req = requirements_from(args);
    const auto out =
        core::configure_from_moments(req, args.require("ploss"),
                                     args.require("mean"),
                                     args.require("var"));
    if (!out.achievable()) {
      os << "QoS cannot be achieved: " << out.reason << "\n";
      return 1;
    }
    os << "NFD-S parameters meeting " << req
       << " for ANY delay distribution with this mean/variance:\n";
    print_params(os, "eta  ", out.params->eta.seconds(), "delta",
                 out.params->delta.seconds());
    const auto b = core::nfd_s_bounds(*out.params, args.require("ploss"),
                                      args.require("mean"),
                                      args.require("var"));
    os << "guaranteed bounds (Theorem 9): E(T_MR) >= "
       << b.mistake_recurrence_lower.seconds() << " s, E(T_M) <= "
       << b.mistake_duration_upper.seconds() << " s\n";
    return 0;
  }
  if (args.command == "configure-nfdu") {
    const core::RelativeRequirements req{seconds(args.require("td")),
                                         seconds(args.require("tmr")),
                                         seconds(args.require("tm"))};
    const auto out = core::configure_nfd_u(req, args.require("ploss"),
                                           args.require("var"));
    if (!out.achievable()) {
      os << "QoS cannot be achieved: " << out.reason << "\n";
      return 1;
    }
    os << "NFD-U/NFD-E parameters (detection bound relative to E(D)):\n";
    print_params(os, "eta  ", out.params->eta.seconds(), "alpha",
                 out.params->alpha.seconds());
    const auto b = core::nfd_u_bounds(*out.params, args.require("ploss"),
                                      args.require("var"));
    os << "guaranteed bounds (Theorem 11): E(T_MR) >= "
       << b.mistake_recurrence_lower.seconds() << " s, E(T_M) <= "
       << b.mistake_duration_upper.seconds() << " s; T_D <= "
       << (out.params->eta + out.params->alpha).seconds() << " + E(D) s\n";
    return 0;
  }
  if (args.command == "analyze") {
    const auto delay = make_distribution(args);
    const core::NfdSParams params{seconds(args.require("eta")),
                                  seconds(args.require("delta"))};
    const core::NfdSAnalysis a(params, args.require("ploss"), *delay);
    os << "NFD-S " << params << " on " << delay->name() << ", p_L = "
       << args.require("ploss") << ":\n"
       << "  T_D      <= " << a.detection_time_bound().seconds()
       << " s (tight)\n"
       << "  E(T_MR)   = " << a.e_tmr().seconds() << " s\n"
       << "  E(T_M)    = " << a.e_tm().seconds() << " s\n"
       << "  P_A       = " << a.query_accuracy() << "\n"
       << "  lambda_M  = " << 1.0 / a.e_tmr().seconds() << " /s\n";
    return 0;
  }
  if (args.command == "simulate") {
    const auto delay = make_distribution(args);
    const core::NfdSParams params{seconds(args.require("eta")),
                                  seconds(args.require("delta"))};
    const double p_loss = args.require("ploss");
    core::StopCriteria stop;
    if (const auto m = args.number("mistakes")) {
      stop.target_s_transitions = static_cast<std::size_t>(*m);
    }
    if (const auto cap = args.number("max-heartbeats")) {
      stop.max_heartbeats = static_cast<std::uint64_t>(*cap);
    }
    const std::uint64_t seed =
        args.number("seed") ? static_cast<std::uint64_t>(args.require("seed"))
                            : 42u;
    // --reps splits the run into that many replications merged on the
    // parallel runner; --jobs caps the worker threads (default: one per
    // hardware thread).  Results depend on --reps but never on --jobs.
    const auto reps = static_cast<std::size_t>(
        args.number("reps") ? args.require("reps") : 1.0);
    if (reps == 0) throw std::invalid_argument("--reps must be >= 1");
    runner::RunnerOptions ropts;
    if (const auto jobs = args.number("jobs")) {
      ropts.jobs = static_cast<unsigned>(*jobs);
    }
    core::StopCriteria rep_stop = stop;
    rep_stop.target_s_transitions =
        (stop.target_s_transitions + reps - 1) / reps;
    rep_stop.max_heartbeats = stop.max_heartbeats / reps;
    const runner::ParallelSweep sweep(ropts);
    const auto r = sweep.run_one(
        runner::nfd_s_task(params, p_loss, *delay, rep_stop), reps, seed);
    const core::NfdSAnalysis a(params, p_loss, *delay);
    os << "Monte-Carlo NFD-S " << params << " on " << delay->name()
       << ", p_L = " << p_loss << " (" << r.s_transitions
       << " mistakes over " << r.heartbeats << " heartbeats, " << reps
       << " replication" << (reps == 1 ? "" : "s") << "):\n"
       << "                 measured      analytic (Thm 5)\n"
       << "  E(T_MR) (s)    " << r.e_tmr() << "      " << a.e_tmr().seconds()
       << "\n"
       << "  E(T_M)  (s)    " << r.e_tm() << "      " << a.e_tm().seconds()
       << "\n"
       << "  P_A            " << r.query_accuracy() << "      "
       << a.query_accuracy() << "\n";
    return 0;
  }
  if (args.command == "help" || args.command == "--help") {
    print_usage(os);
    return 0;
  }
  os << "unknown command '" << args.command << "'\n\n";
  print_usage(os);
  return 2;
}

int run_main(const std::vector<std::string>& argv, std::ostream& os) {
  try {
    if (argv.empty()) {
      print_usage(os);
      return 2;
    }
    return run(parse(argv), os);
  } catch (const std::invalid_argument& e) {
    os << "error: " << e.what() << "\n\n";
    print_usage(os);
    return 2;
  }
}

}  // namespace chenfd::cli
