#!/usr/bin/env python3
"""Unit tests for tools/perf_gate.py — wired into ctest as
`perf_gate_selftest`; runnable standalone:

    python3 tools/test_perf_gate.py -v
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
PERF_GATE = os.path.join(HERE, "perf_gate.py")


def bench_doc(**rates):
    return {"engines": [{"name": n, "items_per_sec": r}
                        for n, r in rates.items()]}


def leader_scenario(name="leader-crash-x1", family="crash", ok=True,
                    **overrides):
    s = {
        "name": name, "family": family, "fault_intensity": 1.0,
        "ok": ok, "violations": [] if ok else ["bound_violations > 0"],
        "election_bound_s": 10.5,
        "exactly_one_leader_fraction": 0.95,
        "no_leader_fraction": 0.05,
        "disagreement_fraction": 0.0,
        "undisturbed_violation_s": 0.0,
        "mean_stability_s": 400.0, "max_stability_s": 900.0,
        "agreed_leader_changes": 3, "elections": 2,
        "mean_election_latency_s": 2.5, "max_election_latency_s": 6.0,
        "bound_violations": 0, "spurious_demotions": 0,
        "total_leader_changes": 4,
        "warm_elector_restarts": 0, "cold_elector_restarts": 0,
        "stale_heartbeats_dropped": 0, "incarnation_rebases": 3,
    }
    s.update(overrides)
    return s


def leader_doc(*scenarios):
    scenarios = list(scenarios) or [leader_scenario()]
    return {
        "suite": "leader-smoke", "seed": 42, "scenarios": scenarios,
        "stability": [{"family": s["family"],
                       "points": [{"fault_intensity": s["fault_intensity"],
                                   "exactly_one_leader_fraction":
                                       s["exactly_one_leader_fraction"]}]}
                      for s in scenarios],
    }


def fleet_config(processes, hb_per_sec, **overrides):
    heartbeats = processes * 10
    c = {
        "processes": processes, "heartbeats": heartbeats,
        "ingested": heartbeats - 3, "dropped_stale": 1,
        "dropped_pre_epoch": 1, "dropped_duplicate": 1,
        "transitions": 2 * processes, "suspects": processes,
        "trusts": processes, "stream_crc32": "0badf00d",
        "shards": 16, "heartbeats_per_sec": hb_per_sec,
        "bytes_per_process": 250.0,
    }
    c.update(overrides)
    return c


def fleet_doc(*configs):
    configs = list(configs) or [fleet_config(10_000, 2e7),
                                fleet_config(100_000, 1e7),
                                fleet_config(1_000_000, 5e6)]
    return {"bench": "fleet", "fast_mode": False, "configs": configs}


def rt_config(shards, **overrides):
    c = {
        "shards": shards, "produced": 100_000, "accepted": 90_000,
        "shed": 10_000, "identity": True,
        "offered_hb_per_sec": 5e6, "sustained_hb_per_sec": 4.5e6,
        "p99_ingest_latency_us": 1.5,
    }
    c.update(overrides)
    return c


def rt_doc(**overload_overrides):
    overload = {
        "policy": "drop-newest", "produced": 6400, "accepted": 3200,
        "shed": 3200, "identity": True, "shed_fraction": 0.5,
        "qos_at_risk": True, "risk_reason": "overload",
        "replay_crc": "0badf00d",
    }
    overload.update(overload_overrides)
    return {"bench": "rt", "fast_mode": False,
            "configs": [rt_config(1), rt_config(4)], "overload": overload}


class PerfGateTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def path_for(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path

    def run_gate(self, fresh, baseline=None, env_extra=None):
        env = {k: v for k, v in os.environ.items()
               if not k.startswith("CHENFD_PERF_GATE")}
        env.update(env_extra or {})
        args = [sys.executable, PERF_GATE, fresh]
        if baseline is not None:
            args.append(baseline)
        return subprocess.run(args, capture_output=True, text=True, env=env)

    def test_pass_within_threshold(self):
        fresh = self.path_for("fresh.json", bench_doc(mono=0.9e6, multi=2e6))
        base = self.path_for("base.json", bench_doc(mono=1e6, multi=2e6))
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("PASS", proc.stdout)

    def test_regression_fails(self):
        fresh = self.path_for("fresh.json", bench_doc(mono=0.5e6))
        base = self.path_for("base.json", bench_doc(mono=1e6))
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)

    def test_skip_env_reports_but_passes(self):
        fresh = self.path_for("fresh.json", bench_doc(mono=0.5e6))
        base = self.path_for("base.json", bench_doc(mono=1e6))
        proc = self.run_gate(fresh, base,
                             env_extra={"CHENFD_PERF_GATE_SKIP": "1"})
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)  # still reported

    def test_threshold_env_is_honored(self):
        fresh = self.path_for("fresh.json", bench_doc(mono=0.7e6))
        base = self.path_for("base.json", bench_doc(mono=1e6))
        self.assertEqual(self.run_gate(fresh, base).returncode, 1)
        proc = self.run_gate(
            fresh, base, env_extra={"CHENFD_PERF_GATE_THRESHOLD": "0.40"})
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_bad_threshold_env_is_a_clear_error(self):
        fresh = self.path_for("fresh.json", bench_doc(mono=1e6))
        base = self.path_for("base.json", bench_doc(mono=1e6))
        proc = self.run_gate(
            fresh, base, env_extra={"CHENFD_PERF_GATE_THRESHOLD": "fast"})
        self.assertEqual(proc.returncode, 2)
        self.assertIn("THRESHOLD", proc.stderr)

    def test_missing_baseline_file_is_inert_not_fatal(self):
        fresh = self.path_for("fresh.json", bench_doc(mono=1e6))
        missing = os.path.join(self._tmp.name, "nonexistent.json")
        proc = self.run_gate(fresh, missing)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no baseline", proc.stdout)

    def test_missing_fresh_file_is_fatal(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        proc = self.run_gate(os.path.join(self._tmp.name, "nope.json"), base)
        self.assertEqual(proc.returncode, 2)

    def test_partial_baseline_gates_known_engines_only(self):
        # Engines the baseline has never seen are reported, not failed; the
        # regression in the known engine still fails the run.
        fresh = self.path_for("fresh.json",
                              bench_doc(mono=0.5e6, newengine=9e6))
        base = self.path_for("base.json", bench_doc(mono=1e6))
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("new engine", proc.stdout)
        # And with the known engine healthy, the unknown one cannot fail it.
        fresh_ok = self.path_for("fresh_ok.json",
                                 bench_doc(mono=1e6, newengine=9e6))
        self.assertEqual(self.run_gate(fresh_ok, base).returncode, 0)

    def test_engine_missing_from_fresh_fails(self):
        fresh = self.path_for("fresh.json", bench_doc(mono=1e6))
        base = self.path_for("base.json", bench_doc(mono=1e6, multi=2e6))
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("MISSING", proc.stdout)

    def test_entry_without_items_per_sec_names_the_entry(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        fresh = self.path_for(
            "fresh.json", {"engines": [{"name": "mono"}]})
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("engines[0]", proc.stderr)
        self.assertIn("items_per_sec", proc.stderr)

    def test_entry_without_name_names_the_index(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        fresh = self.path_for(
            "fresh.json", {"engines": [{"items_per_sec": 1e6}]})
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("engines[0]", proc.stderr)

    def test_non_numeric_rate_is_a_clear_error(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        fresh = self.path_for(
            "fresh.json",
            {"engines": [{"name": "mono", "items_per_sec": "quick"}]})
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("not a number", proc.stderr)

    def test_nonpositive_rate_is_a_clear_error(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        fresh = self.path_for(
            "fresh.json",
            {"engines": [{"name": "mono", "items_per_sec": 0.0}]})
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("finite and > 0", proc.stderr)

    def test_duplicate_engine_is_a_clear_error(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        fresh = self.path_for(
            "fresh.json",
            {"engines": [{"name": "mono", "items_per_sec": 1e6},
                         {"name": "mono", "items_per_sec": 2e6}]})
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("duplicates", proc.stderr)

    def test_malformed_json_is_a_clear_error(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        fresh = self.path_for("fresh.json", "{not json")
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_wrong_shape_is_a_clear_error(self):
        base = self.path_for("base.json", bench_doc(mono=1e6))
        fresh = self.path_for("fresh.json", {"engines": "mono"})
        proc = self.run_gate(fresh, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("engines", proc.stderr)

    def run_check_leader(self, path):
        return subprocess.run(
            [sys.executable, PERF_GATE, "--check-leader", path],
            capture_output=True, text=True)

    def test_check_leader_valid_report_passes(self):
        path = self.path_for("leader.json", leader_doc())
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("schema valid", proc.stdout)

    def test_check_leader_is_schema_only_not_an_oracle_gate(self):
        # A scenario whose oracles failed is still a *valid* report — the
        # chaos binary's own exit code gates oracles; this mode only guards
        # against malformed/truncated JSON.
        path = self.path_for("leader.json", leader_doc(
            leader_scenario(ok=False)))
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("1 oracle failure(s)", proc.stdout)

    def test_check_leader_empty_object_is_rejected(self):
        path = self.path_for("leader.json", {})
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("suite", proc.stderr)

    def test_check_leader_missing_metric_names_the_scenario(self):
        doc = leader_doc()
        del doc["scenarios"][0]["spurious_demotions"]
        path = self.path_for("leader.json", doc)
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("spurious_demotions", proc.stderr)
        self.assertIn("leader-crash-x1", proc.stderr)

    def test_check_leader_fractions_must_sum_to_one(self):
        path = self.path_for("leader.json", leader_doc(
            leader_scenario(no_leader_fraction=0.5)))
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("sum", proc.stderr)

    def test_check_leader_ok_must_match_violations(self):
        path = self.path_for("leader.json", leader_doc(
            leader_scenario(ok=True, violations=["lying"])))
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("contradicts", proc.stderr)

    def test_check_leader_orphan_stability_family_is_rejected(self):
        doc = leader_doc()
        doc["stability"][0]["family"] = "no-such-family"
        path = self.path_for("leader.json", doc)
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no-such-family", proc.stderr)

    def test_check_leader_nonfinite_metric_is_rejected(self):
        path = self.path_for("leader.json", leader_doc(
            leader_scenario(mean_stability_s=float("nan"))))
        proc = self.run_check_leader(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("mean_stability_s", proc.stderr)

    def run_check_fleet(self, path, baseline=None, env_extra=None):
        env = {k: v for k, v in os.environ.items()
               if not k.startswith("CHENFD_PERF_GATE")}
        env.update(env_extra or {})
        args = [sys.executable, PERF_GATE, "--check-fleet", path]
        if baseline is not None:
            args.append(baseline)
        return subprocess.run(args, capture_output=True, text=True, env=env)

    def test_check_fleet_valid_report_passes(self):
        path = self.path_for("fleet.json", fleet_doc())
        missing = os.path.join(self._tmp.name, "no_baseline.json")
        proc = self.run_check_fleet(path, missing)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("schema valid", proc.stdout)
        self.assertIn("no baseline", proc.stdout)

    def test_check_fleet_gates_throughput_per_fleet_size(self):
        base = self.path_for("base.json", fleet_doc())
        slow = fleet_doc()
        slow["configs"][-1]["heartbeats_per_sec"] = 1e6  # >20% below 5e6
        fresh = self.path_for("fresh.json", slow)
        proc = self.run_check_fleet(fresh, base)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("1000000p", proc.stdout)
        # Healthy rates against the same baseline pass.
        ok = self.path_for("ok.json", fleet_doc())
        self.assertEqual(self.run_check_fleet(ok, base).returncode, 0)

    def test_check_fleet_skip_env_reports_but_passes(self):
        base = self.path_for("base.json", fleet_doc())
        slow = fleet_doc()
        slow["configs"][0]["heartbeats_per_sec"] = 1.0
        fresh = self.path_for("fresh.json", slow)
        proc = self.run_check_fleet(
            fresh, base, env_extra={"CHENFD_PERF_GATE_SKIP": "1"})
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)

    def test_check_fleet_fast_mode_report_is_rejected(self):
        doc = fleet_doc()
        doc["fast_mode"] = True
        path = self.path_for("fleet.json", doc)
        proc = self.run_check_fleet(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("fast", proc.stderr)

    def test_check_fleet_requires_a_million_process_config(self):
        doc = fleet_doc()
        doc["configs"] = doc["configs"][:2]  # drop the 10^6 row
        path = self.path_for("fleet.json", doc)
        proc = self.run_check_fleet(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("10^6", proc.stderr)

    def test_check_fleet_counter_identity_is_enforced(self):
        doc = fleet_doc()
        doc["configs"][0]["ingested"] += 1
        path = self.path_for("fleet.json", doc)
        proc = self.run_check_fleet(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("heartbeats", proc.stderr)
        doc = fleet_doc()
        doc["configs"][0]["suspects"] += 1
        path = self.path_for("fleet2.json", doc)
        proc = self.run_check_fleet(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("suspects", proc.stderr)

    def test_check_fleet_bad_crc_names_the_config(self):
        doc = fleet_doc()
        doc["configs"][1]["stream_crc32"] = "XYZ"
        path = self.path_for("fleet.json", doc)
        proc = self.run_check_fleet(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("stream_crc32", proc.stderr)
        self.assertIn("processes=100000", proc.stderr)

    def test_check_fleet_size_missing_from_fresh_fails(self):
        base = self.path_for("base.json", fleet_doc())
        doc = fleet_doc()
        doc["configs"] = [doc["configs"][0], doc["configs"][2]]
        fresh = self.path_for("fresh.json", doc)
        proc = self.run_check_fleet(fresh, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("MISSING", proc.stdout)

    def test_check_fleet_committed_baseline_still_parses(self):
        committed = os.path.join(
            os.path.dirname(HERE), "bench", "BENCH_fleet_baseline.json")
        if not os.path.exists(committed):
            self.skipTest("no committed fleet baseline")
        proc = self.run_check_fleet(committed, committed)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def run_check_rt(self, path):
        return subprocess.run(
            [sys.executable, PERF_GATE, "--check-rt", path],
            capture_output=True, text=True)

    def test_check_rt_valid_report_passes(self):
        path = self.path_for("rt.json", rt_doc())
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("schema valid", proc.stdout)

    def test_check_rt_empty_configs_is_rejected(self):
        doc = rt_doc()
        doc["configs"] = []
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("configs", proc.stderr)

    def test_check_rt_counter_identity_is_enforced(self):
        doc = rt_doc()
        doc["configs"][0]["accepted"] += 1
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("accepted", proc.stderr)
        self.assertIn("shards=1", proc.stderr)

    def test_check_rt_nonpositive_rate_is_rejected(self):
        doc = rt_doc()
        doc["configs"][1]["sustained_hb_per_sec"] = 0.0
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("sustained_hb_per_sec", proc.stderr)

    def test_check_rt_negative_p99_is_rejected(self):
        doc = rt_doc()
        doc["configs"][0]["p99_ingest_latency_us"] = -1.0
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("p99_ingest_latency_us", proc.stderr)

    def test_check_rt_overload_must_shed(self):
        doc = rt_doc()
        doc["overload"]["shed"] = 0
        doc["overload"]["accepted"] = doc["overload"]["produced"]
        doc["overload"]["shed_fraction"] = 1e-9
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("shed nothing", proc.stderr)

    def test_check_rt_shed_fraction_must_match_counters(self):
        doc = rt_doc()
        doc["overload"]["shed_fraction"] = 0.9
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("inconsistent", proc.stderr)

    def test_check_rt_overload_must_latch_risk(self):
        doc = rt_doc()
        doc["overload"]["qos_at_risk"] = False
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("qos_at_risk", proc.stderr)
        doc = rt_doc()
        doc["overload"]["risk_reason"] = "none"
        path = self.path_for("rt2.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("risk_reason", proc.stderr)

    def test_check_rt_bad_crc_is_rejected(self):
        doc = rt_doc()
        doc["overload"]["replay_crc"] = "DEADBEEF"  # upper case
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("replay_crc", proc.stderr)

    def test_check_rt_duplicate_shard_count_is_rejected(self):
        doc = rt_doc()
        doc["configs"].append(dict(doc["configs"][0]))
        path = self.path_for("rt.json", doc)
        proc = self.run_check_rt(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("duplicates", proc.stderr)

    def test_committed_baseline_still_parses(self):
        # The real committed baseline must stay loadable by the validator.
        committed = os.path.join(
            os.path.dirname(HERE), "bench", "BENCH_fastsim_baseline.json")
        fresh = self.path_for("fresh.json", bench_doc(mono=1e15, multi=1e15))
        proc = self.run_gate(fresh, committed)
        self.assertNotEqual(proc.returncode, 2,
                            proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
