// Argument parsing and command logic for the chenfd_chaos CLI, separated
// from main() so the tests can drive it directly.
//
// chenfd_chaos runs a named chaos suite and emits a deterministic JSON
// report.  Two-process detector suites (fault/chaos.hpp) write
// BENCH_chaos.json: per-scenario oracle verdicts plus degradation curves
// (lambda_M, E(T_M), P_A against fault intensity) per scenario family.
// Suites whose name starts with "leader" are the N-process election
// suites (election/chaos.hpp) and write BENCH_leader.json instead:
// leader-stability and election-latency curves per fault family.  Either
// JSON contains no wall-clock, hardware or job-count fields and all
// randomness flows from --seed through per-scenario substreams, so the
// file is byte-identical for any --jobs value.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "election/chaos.hpp"
#include "fault/chaos.hpp"

namespace chenfd::chaoscli {

struct Options {
  std::string suite = "full";
  std::uint64_t seed = 42;
  unsigned jobs = 0;           ///< 0 = one per hardware thread
  std::string out = "BENCH_chaos.json";  ///< "-" = stdout only
  bool out_explicit = false;   ///< --out given (else leader suites switch
                               ///< the default to BENCH_leader.json)
  std::string trace_dir;       ///< when set, dump per-scenario traces here
  bool list = false;           ///< list suites and scenarios, run nothing

  /// True when `suite` dispatches to the election suites.
  [[nodiscard]] bool leader_suite() const {
    return suite.rfind("leader", 0) == 0;
  }
};

/// Parses argv-style input (flags only).  Throws std::invalid_argument on
/// unknown flags, missing values, or malformed numbers.
[[nodiscard]] Options parse(const std::vector<std::string>& argv);

/// Serializes suite results as the BENCH_chaos.json document.
void write_json(std::ostream& os, const std::string& suite_name,
                std::uint64_t seed,
                const std::vector<fault::ScenarioResult>& results);

/// Serializes leader suite results as the BENCH_leader.json document.
void write_leader_json(std::ostream& os, const std::string& suite_name,
                       std::uint64_t seed,
                       const std::vector<election::LeaderScenarioResult>&
                           results);

/// Parse + run.  Writes progress and a human-readable verdict table to
/// `os`.  Returns 0 when every oracle holds, 1 on an oracle violation,
/// 2 on a usage error.
int run_main(const std::vector<std::string>& argv, std::ostream& os);

void print_usage(std::ostream& os);

}  // namespace chenfd::chaoscli
