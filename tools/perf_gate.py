#!/usr/bin/env python3
"""Perf-regression gate for the batched fast-sim kernels.

Compares a freshly produced BENCH_fastsim.json (from bench_fastsim_throughput)
against the committed baseline bench/BENCH_fastsim_baseline.json and fails if
any engine's throughput regressed by more than the threshold (default 20%).

Usage:
    tools/perf_gate.py <fresh BENCH_fastsim.json> [<baseline json>]
    tools/perf_gate.py --check-leader <BENCH_leader.json>
    tools/perf_gate.py --check-fleet <BENCH_fleet.json> [<baseline json>]
    tools/perf_gate.py --check-rt <BENCH_rt.json>

Exit status: 0 = within threshold, 1 = regression, 2 = usage/format error.

The --check-leader mode is a schema gate, not a perf gate: it validates a
BENCH_leader.json produced by `chenfd_chaos --suite leader-*` (structure,
metric ranges, non-empty stability curves) so CI catches a malformed or
truncated report even when every oracle inside it passed.  Exit 0 = valid,
2 = invalid.

The --check-fleet mode is both: it validates a BENCH_fleet.json produced by
bench_fleet (full mode only — counter identities, CRC format, a config at
>= 10^6 processes) and then gates heartbeats_per_sec per fleet size against
bench/BENCH_fleet_baseline.json with the same threshold/skip/re-baseline
rules as the fastsim gate.

The --check-rt mode is a schema gate for BENCH_rt.json (bench_rt_throughput):
per-config ingestion counter identity (produced == accepted + shed) and
finite positive rates, plus the deterministic 2x-overload replay section —
shedding must have happened (shed_fraction consistent with the raw counters),
qos_at_risk must be latched with a non-"none" reason, and the replay CRC must
be 8 lowercase hex digits.  Absolute rates are machine-dependent and are NOT
gated.  Exit 0 = valid, 2 = invalid.

Overriding the gate
-------------------
CI machines vary, so a legitimate change can trip the gate without any code
being slower.  Two sanctioned overrides, in order of preference:

1. Re-baseline: run bench_fastsim_throughput on an idle machine in a Release
   build, copy BENCH_fastsim.json over bench/BENCH_fastsim_baseline.json, and
   commit it *in the same PR* with a note explaining the shift (new hardware,
   intentional algorithmic trade-off, ...).
2. One-off skip: set CHENFD_PERF_GATE_SKIP=1 in the job environment.  The
   gate still prints the comparison but always exits 0.  Use this only for
   emergencies (e.g. a shared runner got slower overnight); follow up with a
   re-baseline.

The threshold can be tuned with CHENFD_PERF_GATE_THRESHOLD (fraction, e.g.
0.25 for 25%); loosening it in CI requires the same justification as a
re-baseline.
"""

import json
import math
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "BENCH_fastsim_baseline.json")
DEFAULT_FLEET_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "BENCH_fleet_baseline.json")


def load_engines(path, *, missing_ok=False):
    """Parse {"engines": [{"name": ..., "items_per_sec": ...}, ...]}.

    Every entry is validated individually so a hand-edited or truncated
    baseline produces a message naming the offending entry instead of a
    KeyError traceback.  With missing_ok a nonexistent file returns None
    (the caller treats it as "nothing to gate against").
    """
    if missing_ok and not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("engines"), list):
        print(f"perf_gate: {path}: expected an object with an "
              "\"engines\" list", file=sys.stderr)
        sys.exit(2)
    engines = {}
    for i, e in enumerate(doc["engines"]):
        where = f"{path}: engines[{i}]"
        if not isinstance(e, dict):
            print(f"perf_gate: {where} is not an object", file=sys.stderr)
            sys.exit(2)
        name = e.get("name")
        if not isinstance(name, str) or not name:
            print(f"perf_gate: {where} has no \"name\"", file=sys.stderr)
            sys.exit(2)
        if name in engines:
            print(f"perf_gate: {where} duplicates engine \"{name}\"",
                  file=sys.stderr)
            sys.exit(2)
        try:
            rate = float(e["items_per_sec"])
        except KeyError:
            print(f"perf_gate: {where} (\"{name}\") has no "
                  "\"items_per_sec\"", file=sys.stderr)
            sys.exit(2)
        except (TypeError, ValueError):
            print(f"perf_gate: {where} (\"{name}\"): items_per_sec "
                  f"{e['items_per_sec']!r} is not a number", file=sys.stderr)
            sys.exit(2)
        if not math.isfinite(rate) or rate <= 0.0:
            print(f"perf_gate: {where} (\"{name}\"): items_per_sec must be "
                  f"finite and > 0, got {rate!r}", file=sys.stderr)
            sys.exit(2)
        engines[name] = rate
    if not engines:
        print(f"perf_gate: no engines in {path}", file=sys.stderr)
        sys.exit(2)
    return engines


def _fail(where, what):
    print(f"perf_gate: {where}: {what}", file=sys.stderr)
    sys.exit(2)


def check_leader(path):
    """Validate the structure of a BENCH_leader.json report.

    Mirrors the field-by-field diagnostics of load_engines: every problem
    names the offending scenario/field instead of raising.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        _fail(path, "expected a JSON object")
    if not isinstance(doc.get("suite"), str) or not doc["suite"]:
        _fail(path, 'missing or empty "suite"')
    if not isinstance(doc.get("seed"), int):
        _fail(path, '"seed" must be an integer')
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        _fail(path, 'expected a non-empty "scenarios" list')

    fraction_keys = ("exactly_one_leader_fraction", "no_leader_fraction",
                     "disagreement_fraction")
    count_keys = ("agreed_leader_changes", "elections", "bound_violations",
                  "spurious_demotions", "total_leader_changes",
                  "warm_elector_restarts", "cold_elector_restarts",
                  "stale_heartbeats_dropped", "incarnation_rebases")
    metric_keys = ("election_bound_s", "undisturbed_violation_s",
                   "mean_stability_s", "max_stability_s",
                   "mean_election_latency_s", "max_election_latency_s")
    all_ok = True
    for i, s in enumerate(scenarios):
        where = f"{path}: scenarios[{i}]"
        if not isinstance(s, dict):
            _fail(where, "is not an object")
        name = s.get("name")
        if not isinstance(name, str) or not name:
            _fail(where, 'has no "name"')
        where = f"{where} (\"{name}\")"
        if not isinstance(s.get("family"), str) or not s["family"]:
            _fail(where, 'has no "family"')
        if not isinstance(s.get("ok"), bool):
            _fail(where, '"ok" must be a boolean')
        if not isinstance(s.get("violations"), list):
            _fail(where, '"violations" must be a list')
        if s["ok"] != (not s["violations"]):
            _fail(where, '"ok" contradicts "violations"')
        all_ok = all_ok and s["ok"]
        for key in fraction_keys + count_keys + metric_keys:
            if key not in s:
                _fail(where, f'has no "{key}"')
            try:
                value = float(s[key])
            except (TypeError, ValueError):
                _fail(where, f'"{key}" {s[key]!r} is not a number')
            if not math.isfinite(value) or value < 0.0:
                _fail(where, f'"{key}" must be finite and >= 0, got {value!r}')
            if key in fraction_keys and value > 1.0:
                _fail(where, f'"{key}" must be <= 1, got {value!r}')
        total = sum(float(s[k]) for k in fraction_keys)
        if not 0.999 <= total <= 1.001:
            _fail(where, f"time fractions sum to {total!r}, expected 1")

    stability = doc.get("stability")
    if not isinstance(stability, list) or not stability:
        _fail(path, 'expected a non-empty "stability" curve list')
    families = {s["family"] for s in scenarios}
    for i, curve in enumerate(stability):
        where = f"{path}: stability[{i}]"
        if not isinstance(curve, dict):
            _fail(where, "is not an object")
        if curve.get("family") not in families:
            _fail(where, f'"family" {curve.get("family")!r} matches no '
                  "scenario")
        points = curve.get("points")
        if not isinstance(points, list) or not points:
            _fail(where, 'has no "points"')
    n_fail = sum(1 for s in scenarios if not s["ok"])
    print(f"perf_gate: {path}: {len(scenarios)} scenario(s), "
          f"{len(stability)} stability curve(s), {n_fail} oracle failure(s) "
          "— schema valid")
    return 0


def load_fleet_configs(path, *, missing_ok=False, require_million=False):
    """Parse and validate a BENCH_fleet.json; returns {processes: config}.

    Field-by-field validation in the load_engines style: a truncated or
    hand-edited report names the offending config and field.  Counter
    identities (ingested + drops == heartbeats, transitions == suspects +
    trusts) are checked here because the emitter computes them
    independently — a mismatch means the engine and its drain disagree.
    """
    if missing_ok and not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        _fail(path, "expected a JSON object")
    if doc.get("bench") != "fleet":
        _fail(path, '"bench" must be "fleet"')
    if doc.get("fast_mode") is not False:
        _fail(path, 'fast-mode report — the gate needs a full run '
              '("fast_mode": false)')
    configs = doc.get("configs")
    if not isinstance(configs, list) or not configs:
        _fail(path, 'expected a non-empty "configs" list')

    count_keys = ("heartbeats", "ingested", "dropped_stale",
                  "dropped_pre_epoch", "dropped_duplicate", "transitions",
                  "suspects", "trusts")
    rate_keys = ("heartbeats_per_sec", "bytes_per_process")
    out = {}
    for i, c in enumerate(configs):
        where = f"{path}: configs[{i}]"
        if not isinstance(c, dict):
            _fail(where, "is not an object")
        processes = c.get("processes")
        if not isinstance(processes, int) or processes < 1:
            _fail(where, f'"processes" must be a positive integer, '
                  f"got {processes!r}")
        where = f"{where} (processes={processes})"
        if processes in out:
            _fail(where, "duplicates an earlier fleet size")
        for key in count_keys:
            if not isinstance(c.get(key), int) or c[key] < 0:
                _fail(where, f'"{key}" must be a non-negative integer, '
                      f"got {c.get(key)!r}")
        if c["heartbeats"] == 0:
            _fail(where, '"heartbeats" is 0 — empty run')
        drops = (c["dropped_stale"] + c["dropped_pre_epoch"] +
                 c["dropped_duplicate"])
        if c["ingested"] + drops != c["heartbeats"]:
            _fail(where, f'ingested ({c["ingested"]}) + drops ({drops}) != '
                  f'heartbeats ({c["heartbeats"]})')
        if c["transitions"] != c["suspects"] + c["trusts"]:
            _fail(where, f'transitions ({c["transitions"]}) != suspects '
                  f'({c["suspects"]}) + trusts ({c["trusts"]})')
        crc = c.get("stream_crc32")
        if (not isinstance(crc, str) or len(crc) != 8
                or any(ch not in "0123456789abcdef" for ch in crc)):
            _fail(where, f'"stream_crc32" must be 8 lowercase hex digits, '
                  f"got {crc!r}")
        if not isinstance(c.get("shards"), int) or c["shards"] < 1:
            _fail(where, f'"shards" must be a positive integer, '
                  f"got {c.get('shards')!r}")
        for key in rate_keys:
            try:
                value = float(c[key])
            except KeyError:
                _fail(where, f'has no "{key}"')
            except (TypeError, ValueError):
                _fail(where, f'"{key}" {c[key]!r} is not a number')
            if not math.isfinite(value) or value <= 0.0:
                _fail(where, f'"{key}" must be finite and > 0, '
                      f"got {value!r}")
        out[processes] = c
    if require_million and max(out) < 1_000_000:
        _fail(path, "no config at >= 10^6 processes — the bench must "
              "demonstrate million-process scale (largest: "
              f"{max(out)})")
    return out


def check_fleet(fresh_path, baseline_path):
    """Schema-validate a fleet report, then gate throughput per fleet size."""
    try:
        threshold = float(
            os.environ.get("CHENFD_PERF_GATE_THRESHOLD", "0.20"))
    except ValueError:
        print("perf_gate: CHENFD_PERF_GATE_THRESHOLD is not a number",
              file=sys.stderr)
        return 2
    skip = os.environ.get("CHENFD_PERF_GATE_SKIP") == "1"

    fresh = load_fleet_configs(fresh_path, require_million=True)
    print(f"perf_gate: {fresh_path}: {len(fresh)} fleet config(s), largest "
          f"{max(fresh)} processes — schema valid")
    baseline = load_fleet_configs(baseline_path, missing_ok=True)
    if baseline is None:
        print(f"perf_gate: no baseline at {baseline_path} — nothing to "
              "compare.  Commit one (see the header) to arm the gate.")
        return 0

    failed = []
    print(f"perf_gate: threshold {threshold:.0%} "
          f"(baseline {os.path.relpath(baseline_path)})")
    for processes, base_cfg in sorted(baseline.items()):
        name = f"{processes}p"
        if processes not in fresh:
            print(f"  {name:9s}  MISSING from fresh results")
            failed.append(name)
            continue
        base = float(base_cfg["heartbeats_per_sec"])
        now = float(fresh[processes]["heartbeats_per_sec"])
        ratio = now / base
        verdict = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        print(f"  {name:9s}  baseline {base:.3e}  now {now:.3e}  "
              f"({ratio:6.1%})  {verdict}")
        if verdict != "ok":
            failed.append(name)
    for processes in sorted(set(fresh) - set(baseline)):
        print(f"  {processes}p  new fleet size (no baseline) — add it on "
              "the next re-baseline")

    if failed and skip:
        print("perf_gate: CHENFD_PERF_GATE_SKIP=1 set — reporting only, "
              "exiting 0.  Follow up with a re-baseline.")
        return 0
    if failed:
        print(f"perf_gate: FAIL ({', '.join(failed)}).  If the slowdown is "
              "expected, re-baseline per the header of this script.")
        return 1
    print("perf_gate: PASS")
    return 0


def check_rt(path):
    """Schema-validate a BENCH_rt.json report (see the module docstring)."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        _fail(path, "expected a JSON object")
    if doc.get("bench") != "rt":
        _fail(path, '"bench" must be "rt"')
    if not isinstance(doc.get("fast_mode"), bool):
        _fail(path, '"fast_mode" must be a boolean')

    configs = doc.get("configs")
    if not isinstance(configs, list) or not configs:
        _fail(path, 'expected a non-empty "configs" list')
    count_keys = ("produced", "accepted", "shed")
    rate_keys = ("offered_hb_per_sec", "sustained_hb_per_sec")
    seen_shards = set()
    for i, c in enumerate(configs):
        where = f"{path}: configs[{i}]"
        if not isinstance(c, dict):
            _fail(where, "is not an object")
        shards = c.get("shards")
        if not isinstance(shards, int) or shards < 1:
            _fail(where, f'"shards" must be a positive integer, got {shards!r}')
        where = f"{where} (shards={shards})"
        if shards in seen_shards:
            _fail(where, "duplicates an earlier shard count")
        seen_shards.add(shards)
        for key in count_keys:
            if not isinstance(c.get(key), int) or c[key] < 0:
                _fail(where, f'"{key}" must be a non-negative integer, '
                      f"got {c.get(key)!r}")
        if c["produced"] == 0:
            _fail(where, '"produced" is 0 — empty run')
        if c.get("identity") is not True:
            _fail(where, '"identity" must be true (produced == accepted '
                  "+ shed)")
        if c["produced"] != c["accepted"] + c["shed"]:
            _fail(where, f'produced ({c["produced"]}) != accepted '
                  f'({c["accepted"]}) + shed ({c["shed"]})')
        for key in rate_keys:
            try:
                value = float(c[key])
            except KeyError:
                _fail(where, f'has no "{key}"')
            except (TypeError, ValueError):
                _fail(where, f'"{key}" {c[key]!r} is not a number')
            if not math.isfinite(value) or value <= 0.0:
                _fail(where, f'"{key}" must be finite and > 0, got {value!r}')
        try:
            p99 = float(c["p99_ingest_latency_us"])
        except KeyError:
            _fail(where, 'has no "p99_ingest_latency_us"')
        except (TypeError, ValueError):
            _fail(where, f'"p99_ingest_latency_us" '
                  f"{c['p99_ingest_latency_us']!r} is not a number")
        if not math.isfinite(p99) or p99 < 0.0:
            _fail(where, f'"p99_ingest_latency_us" must be finite and >= 0, '
                  f"got {p99!r}")

    o = doc.get("overload")
    where = f"{path}: overload"
    if not isinstance(o, dict):
        _fail(path, 'expected an "overload" object')
    if not isinstance(o.get("policy"), str) or not o["policy"]:
        _fail(where, 'has no "policy"')
    for key in count_keys:
        if not isinstance(o.get(key), int) or o[key] < 0:
            _fail(where, f'"{key}" must be a non-negative integer, '
                  f"got {o.get(key)!r}")
    if o["produced"] == 0:
        _fail(where, '"produced" is 0 — empty replay')
    if o.get("identity") is not True:
        _fail(where, '"identity" must be true (produced == accepted + shed)')
    if o["produced"] != o["accepted"] + o["shed"]:
        _fail(where, f'produced ({o["produced"]}) != accepted '
              f'({o["accepted"]}) + shed ({o["shed"]})')
    if o["shed"] == 0:
        _fail(where, "a 2x-overload replay that shed nothing is broken")
    try:
        fraction = float(o["shed_fraction"])
    except KeyError:
        _fail(where, 'has no "shed_fraction"')
    except (TypeError, ValueError):
        _fail(where, f'"shed_fraction" {o["shed_fraction"]!r} is not a number')
    if not math.isfinite(fraction) or not 0.0 < fraction <= 1.0:
        _fail(where, f'"shed_fraction" must be in (0, 1], got {fraction!r}')
    expected = o["shed"] / o["produced"]
    if abs(fraction - expected) > 1e-6:
        _fail(where, f'"shed_fraction" {fraction!r} inconsistent with '
              f"shed/produced ({expected!r})")
    if o.get("qos_at_risk") is not True:
        _fail(where, '"qos_at_risk" must be true — overload must latch')
    reason = o.get("risk_reason")
    if not isinstance(reason, str) or not reason or reason == "none":
        _fail(where, f'"risk_reason" must be a latched reason, got {reason!r}')
    crc = o.get("replay_crc")
    if (not isinstance(crc, str) or len(crc) != 8
            or any(ch not in "0123456789abcdef" for ch in crc)):
        _fail(where, f'"replay_crc" must be 8 lowercase hex digits, '
              f"got {crc!r}")

    print(f"perf_gate: {path}: {len(configs)} ingestion config(s), overload "
          f"shed fraction {fraction:.3f} (reason \"{reason}\", crc {crc}) — "
          "schema valid")
    return 0


def main(argv):
    if len(argv) == 3 and argv[1] == "--check-leader":
        return check_leader(argv[2])
    if len(argv) == 3 and argv[1] == "--check-rt":
        return check_rt(argv[2])
    if argv[1:2] == ["--check-fleet"] and len(argv) in (3, 4):
        baseline = argv[3] if len(argv) == 4 else DEFAULT_FLEET_BASELINE
        return check_fleet(argv[2], baseline)
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    fresh_path = argv[1]
    baseline_path = argv[2] if len(argv) == 3 else DEFAULT_BASELINE
    try:
        threshold = float(
            os.environ.get("CHENFD_PERF_GATE_THRESHOLD", "0.20"))
    except ValueError:
        print("perf_gate: CHENFD_PERF_GATE_THRESHOLD is not a number",
              file=sys.stderr)
        return 2
    skip = os.environ.get("CHENFD_PERF_GATE_SKIP") == "1"

    fresh = load_engines(fresh_path)
    # A missing baseline is not an error: a fresh fork or a machine that has
    # never been re-baselined has nothing to gate against yet.  Engines the
    # baseline lacks are likewise reported, not failed, below.
    baseline = load_engines(baseline_path, missing_ok=True)
    if baseline is None:
        print(f"perf_gate: no baseline at {baseline_path} — nothing to "
              "compare.  Commit one (see the header) to arm the gate.")
        return 0

    failed = []
    print(f"perf_gate: threshold {threshold:.0%} "
          f"(baseline {os.path.relpath(baseline_path)})")
    for name, base in sorted(baseline.items()):
        if name not in fresh:
            print(f"  {name:8s}  MISSING from fresh results")
            failed.append(name)
            continue
        now = fresh[name]
        ratio = now / base if base > 0 else float("inf")
        verdict = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        print(f"  {name:8s}  baseline {base:.3e}  now {now:.3e}  "
              f"({ratio:6.1%})  {verdict}")
        if verdict != "ok":
            failed.append(name)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name:8s}  new engine (no baseline) — add it on the next "
              "re-baseline")

    if failed and skip:
        print("perf_gate: CHENFD_PERF_GATE_SKIP=1 set — reporting only, "
              "exiting 0.  Follow up with a re-baseline.")
        return 0
    if failed:
        print(f"perf_gate: FAIL ({', '.join(failed)}).  If the slowdown is "
              "expected, re-baseline per the header of this script.")
        return 1
    print("perf_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
