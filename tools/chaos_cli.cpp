#include "chaos_cli.hpp"

#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "qos/trace.hpp"

namespace chenfd::chaoscli {

namespace {

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::uint64_t parsed = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("chenfd_chaos: " + flag +
                                " expects a non-negative integer, got '" +
                                value + "'");
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Options parse(const std::vector<std::string>& argv) {
  Options opts;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= argv.size()) {
        throw std::invalid_argument("chenfd_chaos: " + arg +
                                    " expects a value");
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      opts.suite = value();
    } else if (arg == "--seed") {
      opts.seed = parse_u64(arg, value());
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<unsigned>(parse_u64(arg, value()));
    } else if (arg == "--out") {
      opts.out = value();
      opts.out_explicit = true;
    } else if (arg == "--trace-dir") {
      opts.trace_dir = value();
    } else if (arg == "--list") {
      opts.list = true;
    } else {
      throw std::invalid_argument("chenfd_chaos: unknown option '" + arg +
                                  "'");
    }
  }
  return opts;
}

void write_json(std::ostream& os, const std::string& suite_name,
                std::uint64_t seed,
                const std::vector<fault::ScenarioResult>& results) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"suite\": \"" << json_escape(suite_name) << "\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const fault::ScenarioResult& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"family\": \"" << json_escape(r.family) << "\",\n";
    os << "      \"fault_intensity\": " << r.fault_intensity << ",\n";
    os << "      \"ok\": " << (r.ok ? "true" : "false") << ",\n";
    os << "      \"violations\": [";
    for (std::size_t v = 0; v < r.violations.size(); ++v) {
      if (v != 0) os << ", ";
      os << "\"" << json_escape(r.violations[v]) << "\"";
    }
    os << "],\n";
    os << "      \"availability\": " << r.availability << ",\n";
    os << "      \"mistake_rate\": " << r.mistake_rate << ",\n";
    os << "      \"mean_mistake_s\": " << r.mean_mistake_s << ",\n";
    os << "      \"s_transitions\": " << r.s_transitions << ",\n";
    os << "      \"transitions\": " << r.transitions << ",\n";
    os << "      \"outages\": " << r.outages << ",\n";
    os << "      \"audit_cycles\": " << r.audit_cycles << ",\n";
    os << "      \"adaptive\": " << (r.adaptive ? "true" : "false") << ",\n";
    os << "      \"epoch_resets\": " << r.epoch_resets << ",\n";
    os << "      \"reconfigurations\": " << r.reconfigurations << ",\n";
    os << "      \"supervised\": " << (r.supervised ? "true" : "false")
       << ",\n";
    os << "      \"monitor_outages\": " << r.monitor_outages << ",\n";
    os << "      \"warm_restarts\": " << r.warm_restarts << ",\n";
    os << "      \"cold_restarts\": " << r.cold_restarts << ",\n";
    os << "      \"snapshots_taken\": " << r.snapshots_taken << ",\n";
    os << "      \"snapshot_rejects\": " << r.snapshot_rejects << ",\n";
    os << "      \"mean_restart_retrust_s\": " << r.mean_restart_retrust_s
       << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // Degradation curves: per family, (intensity, lambda_M, E(T_M), P_A)
  // points in scenario order — how the accuracy metrics decay as the fault
  // intensity rises.
  std::map<std::string, std::vector<const fault::ScenarioResult*>> families;
  for (const fault::ScenarioResult& r : results) {
    families[r.family].push_back(&r);
  }
  os << "  \"degradation\": [\n";
  std::size_t f = 0;
  for (const auto& [family, members] : families) {
    os << "    {\"family\": \"" << json_escape(family) << "\", \"points\": [";
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (m != 0) os << ", ";
      os << "{\"intensity\": " << members[m]->fault_intensity
         << ", \"mistake_rate\": " << members[m]->mistake_rate
         << ", \"mean_mistake_s\": " << members[m]->mean_mistake_s
         << ", \"availability\": " << members[m]->availability << "}";
    }
    os << "]}" << (++f < families.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // Restart degradation: per restart policy family (supervised scenarios
  // only), how availability and the post-restart re-trust time behave as
  // the monitor-crash intensity rises.
  std::map<std::string, std::vector<const fault::ScenarioResult*>> supervised;
  for (const fault::ScenarioResult& r : results) {
    if (r.supervised) supervised[r.family].push_back(&r);
  }
  os << "  \"restart_degradation\": [\n";
  std::size_t sf = 0;
  for (const auto& [family, members] : supervised) {
    os << "    {\"family\": \"" << json_escape(family) << "\", \"points\": [";
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (m != 0) os << ", ";
      os << "{\"intensity\": " << members[m]->fault_intensity
         << ", \"monitor_outages\": " << members[m]->monitor_outages
         << ", \"warm_restarts\": " << members[m]->warm_restarts
         << ", \"cold_restarts\": " << members[m]->cold_restarts
         << ", \"snapshot_rejects\": " << members[m]->snapshot_rejects
         << ", \"mean_restart_retrust_s\": "
         << members[m]->mean_restart_retrust_s
         << ", \"availability\": " << members[m]->availability << "}";
    }
    os << "]}" << (++sf < supervised.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void write_leader_json(
    std::ostream& os, const std::string& suite_name, std::uint64_t seed,
    const std::vector<election::LeaderScenarioResult>& results) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"suite\": \"" << json_escape(suite_name) << "\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const election::LeaderScenarioResult& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"family\": \"" << json_escape(r.family) << "\",\n";
    os << "      \"fault_intensity\": " << r.fault_intensity << ",\n";
    os << "      \"ok\": " << (r.ok ? "true" : "false") << ",\n";
    os << "      \"violations\": [";
    for (std::size_t v = 0; v < r.violations.size(); ++v) {
      if (v != 0) os << ", ";
      os << "\"" << json_escape(r.violations[v]) << "\"";
    }
    os << "],\n";
    os << "      \"election_bound_s\": " << r.election_bound_s << ",\n";
    os << "      \"exactly_one_leader_fraction\": "
       << r.qos.exactly_one_leader_fraction << ",\n";
    os << "      \"no_leader_fraction\": " << r.qos.no_leader_fraction
       << ",\n";
    os << "      \"disagreement_fraction\": " << r.qos.disagreement_fraction
       << ",\n";
    os << "      \"undisturbed_violation_s\": "
       << r.qos.undisturbed_violation_s << ",\n";
    os << "      \"mean_stability_s\": " << r.qos.mean_stability_s << ",\n";
    os << "      \"max_stability_s\": " << r.qos.max_stability_s << ",\n";
    os << "      \"agreed_leader_changes\": " << r.qos.agreed_leader_changes
       << ",\n";
    os << "      \"elections\": " << r.qos.elections << ",\n";
    os << "      \"mean_election_latency_s\": "
       << r.qos.mean_election_latency_s << ",\n";
    os << "      \"max_election_latency_s\": "
       << r.qos.max_election_latency_s << ",\n";
    os << "      \"bound_violations\": " << r.qos.bound_violations << ",\n";
    os << "      \"spurious_demotions\": " << r.qos.spurious_demotions
       << ",\n";
    os << "      \"total_leader_changes\": " << r.qos.total_leader_changes
       << ",\n";
    os << "      \"warm_elector_restarts\": " << r.warm_elector_restarts
       << ",\n";
    os << "      \"cold_elector_restarts\": " << r.cold_elector_restarts
       << ",\n";
    os << "      \"stale_heartbeats_dropped\": " << r.stale_heartbeats_dropped
       << ",\n";
    os << "      \"incarnation_rebases\": " << r.incarnation_rebases << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // Stability curves: per fault family, how leader stability and election
  // latency behave as the fault intensity rises (scenario order).
  std::map<std::string, std::vector<const election::LeaderScenarioResult*>>
      families;
  for (const election::LeaderScenarioResult& r : results) {
    families[r.family].push_back(&r);
  }
  os << "  \"stability\": [\n";
  std::size_t f = 0;
  for (const auto& [family, members] : families) {
    os << "    {\"family\": \"" << json_escape(family) << "\", \"points\": [";
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (m != 0) os << ", ";
      os << "{\"intensity\": " << members[m]->fault_intensity
         << ", \"exactly_one_leader_fraction\": "
         << members[m]->qos.exactly_one_leader_fraction
         << ", \"mean_stability_s\": " << members[m]->qos.mean_stability_s
         << ", \"mean_election_latency_s\": "
         << members[m]->qos.mean_election_latency_s
         << ", \"spurious_demotions\": "
         << members[m]->qos.spurious_demotions << "}";
    }
    os << "]}" << (++f < families.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

namespace {

int run_leader_main(const Options& opts, std::ostream& os) {
  std::vector<election::LeaderScenarioSpec> specs;
  try {
    specs = election::leader_suite(opts.suite);
  } catch (const std::invalid_argument& e) {
    os << e.what() << "\n";
    print_usage(os);
    return 2;
  }

  runner::RunnerOptions runner_opts;
  runner_opts.jobs = opts.jobs;
  const std::vector<election::LeaderScenarioResult> results =
      election::run_leader_suite(specs, opts.seed, runner_opts);

  bool all_ok = true;
  for (const election::LeaderScenarioResult& r : results) {
    os << (r.ok ? "PASS " : "FAIL ") << r.name
       << "  one_leader=" << r.qos.exactly_one_leader_fraction
       << " elections=" << r.qos.elections
       << " mean_latency=" << r.qos.mean_election_latency_s << "s"
       << " spurious=" << r.qos.spurious_demotions << "\n";
    for (const std::string& v : r.violations) {
      os << "     - " << v << "\n";
    }
    all_ok = all_ok && r.ok;
  }
  if (!opts.trace_dir.empty()) {
    os << "chenfd_chaos: --trace-dir applies to detector suites only; "
          "leader traces live in the JSON metrics\n";
  }

  const std::string out =
      opts.out_explicit ? opts.out : std::string("BENCH_leader.json");
  if (out == "-") {
    write_leader_json(os, opts.suite, opts.seed, results);
  } else {
    std::ofstream json_out(out);
    if (!json_out) {
      os << "chenfd_chaos: cannot write " << out << "\n";
      return 2;
    }
    write_leader_json(json_out, opts.suite, opts.seed, results);
    os << "wrote " << out << "\n";
  }
  return all_ok ? 0 : 1;
}

}  // namespace

void print_usage(std::ostream& os) {
  os << "usage: chenfd_chaos [--suite smoke|monitor-restart|full|\n"
        "                             leader-smoke|leader-full] [--seed N]"
        " [--jobs N]\n"
     << "                    [--out FILE|-] [--trace-dir DIR] [--list]\n"
     << "\n"
     << "Runs the named fault-injection suite and checks its per-scenario\n"
     << "oracles (suspect during outages, re-trust after heal/recovery,\n"
     << "Theorem 1 trace identities, adaptive graceful degradation).\n"
     << "Writes BENCH_chaos.json (byte-identical for any --jobs).\n"
     << "Suites starting with \"leader\" run the N-process election\n"
     << "cluster instead (exactly-one-leader, election-deadline and\n"
     << "spurious-demotion oracles) and write BENCH_leader.json.\n"
     << "Exit code: 0 all oracles hold, 1 violation, 2 usage error.\n";
}

int run_main(const std::vector<std::string>& argv, std::ostream& os) {
  Options opts;
  try {
    opts = parse(argv);
  } catch (const std::invalid_argument& e) {
    os << e.what() << "\n";
    print_usage(os);
    return 2;
  }

  if (opts.list) {
    for (const std::string& name : fault::suite_names()) {
      os << name << ":\n";
      for (const fault::ScenarioSpec& spec : fault::suite(name)) {
        os << "  " << spec.name << " (" << spec.family << ")\n";
      }
    }
    for (const std::string& name : election::leader_suite_names()) {
      os << name << ":\n";
      for (const election::LeaderScenarioSpec& spec :
           election::leader_suite(name)) {
        os << "  " << spec.name << " (" << spec.family << ")\n";
      }
    }
    return 0;
  }

  if (opts.leader_suite()) return run_leader_main(opts, os);

  std::vector<fault::ScenarioSpec> specs;
  try {
    specs = fault::suite(opts.suite);
  } catch (const std::invalid_argument& e) {
    os << e.what() << "\n";
    print_usage(os);
    return 2;
  }

  runner::RunnerOptions runner_opts;
  runner_opts.jobs = opts.jobs;
  const std::vector<fault::ScenarioResult> results =
      fault::run_suite(specs, opts.seed, runner_opts);

  bool all_ok = true;
  for (const fault::ScenarioResult& r : results) {
    os << (r.ok ? "PASS " : "FAIL ") << r.name << "  P_A=" << r.availability
       << " lambda_M=" << r.mistake_rate << "/s outages=" << r.outages
       << "\n";
    for (const std::string& v : r.violations) {
      os << "     - " << v << "\n";
    }
    all_ok = all_ok && r.ok;
  }

  if (!opts.trace_dir.empty()) {
    for (const fault::ScenarioResult& r : results) {
      const std::string path = opts.trace_dir + "/" + r.name + ".trace";
      std::ofstream trace_out(path);
      if (!trace_out) {
        os << "chenfd_chaos: cannot write " << path << "\n";
        return 2;
      }
      qos::write_trace(trace_out,
                       qos::TraceFile{TimePoint::zero(), r.horizon, r.trace});
      os << "wrote " << path << "\n";
    }
  }

  if (opts.out == "-") {
    write_json(os, opts.suite, opts.seed, results);
  } else {
    std::ofstream json_out(opts.out);
    if (!json_out) {
      os << "chenfd_chaos: cannot write " << opts.out << "\n";
      return 2;
    }
    write_json(json_out, opts.suite, opts.seed, results);
    os << "wrote " << opts.out << "\n";
  }

  return all_ok ? 0 : 1;
}

}  // namespace chenfd::chaoscli
