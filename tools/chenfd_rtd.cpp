// chenfd_rtd — the real-time ingestion daemon (DESIGN.md section 14).
//
// Runs the RealtimeEngine (src/service/realtime/) in one of two modes:
//
//   chenfd_rtd --replay-smoke
//       Executes the canonical overload/stall/crash chaos scenarios across
//       the replay knob grid and checks byte-identity of every payload plus
//       the per-scenario oracles.  Exit 0 when the determinism contract
//       holds.  CI runs this under ASan/UBSan and TSan.
//
//   chenfd_rtd --live [options]
//       The actual daemon path: the same engine against a MonotonicClock,
//       with real producer threads generating heartbeat load, real consumer
//       threads draining shards, the watchdog supervising them, and
//       periodic snapshots persisted through a FileSnapshotStore.  On
//       startup a previous incarnation's snapshot (if any) is loaded, its
//       store-stamped age reported, and the fleet summary warm-restored.
//
// Live options:
//   --processes N    monitored processes            (default 64)
//   --shards K       realtime shards                (default 4)
//   --consumers C    consumer threads               (default 2)
//   --rate HZ        per-process heartbeat rate     (default 10)
//   --duration S     run length in seconds          (default 2)
//   --policy P       drop-newest|drop-oldest|degrade-eta
//   --capacity N     logical queue capacity/shard   (default 1024)
//   --snapshot PATH  snapshot file (enables persistence)
//   --snapshot-interval S                           (default 0.5)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "persist/file_store.hpp"
#include "persist/snapshot.hpp"
#include "service/realtime/engine.hpp"
#include "service/realtime/monotonic_clock.hpp"
#include "service/realtime/replay.hpp"

namespace {

using namespace chenfd;

struct LiveConfig {
  std::size_t processes = 64;
  std::size_t shards = 4;
  std::size_t consumers = 2;
  double rate_hz = 10.0;
  double duration_s = 2.0;
  rt::OverloadPolicy policy = rt::OverloadPolicy::kDropNewest;
  std::size_t capacity = 1024;
  std::string snapshot_path;
  double snapshot_interval_s = 0.5;
};

bool parse_policy(const std::string& word, rt::OverloadPolicy& out) {
  if (word == "drop-newest") {
    out = rt::OverloadPolicy::kDropNewest;
  } else if (word == "drop-oldest") {
    out = rt::OverloadPolicy::kDropOldest;
  } else if (word == "degrade-eta") {
    out = rt::OverloadPolicy::kDegradeEta;
  } else {
    return false;
  }
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --replay-smoke\n"
               "       %s --live [--processes N] [--shards K] [--consumers C]"
               " [--rate HZ]\n"
               "                 [--duration S] [--policy P] [--capacity N]\n"
               "                 [--snapshot PATH] [--snapshot-interval S]\n",
               argv0, argv0);
  return 2;
}

// A structurally valid snapshot wrapping the engine's fleet summary.  The
// detector/estimator sections describe the per-process NFD-E template the
// engine runs (the fleet section is the part a restart actually consumes;
// see persist/snapshot.hpp on why it is a summary).
persist::MonitorSnapshot wrap_summary(const rt::RealtimeEngine& engine,
                                      const rt::RealtimeOptions& opts,
                                      TimePoint now) {
  persist::MonitorSnapshot snap;
  snap.taken_at_s = now.seconds();
  snap.detector.eta_s = opts.params.eta.seconds();
  snap.detector.alpha_s = opts.params.alpha.seconds();
  snap.detector.window_capacity = opts.params.window;
  snap.short_term.capacity = 2;
  snap.long_term.capacity = 2;
  snap.req_detection_rel_s = opts.params.alpha.seconds() + 1.0;
  snap.req_recurrence_s = 3600.0;
  snap.req_duration_s = 60.0;
  snap.has_fleet = true;
  snap.fleet = engine.export_summary();
  return snap;
}

int run_live(const LiveConfig& cfg) {
  rt::MonotonicClock wall;

  rt::RealtimeOptions opts;
  opts.processes = cfg.processes;
  opts.shards = cfg.shards;
  opts.params.eta = seconds(1.0 / cfg.rate_hz);
  opts.params.alpha = seconds(2.0 / cfg.rate_hz);
  opts.queue_capacity = cfg.capacity;
  opts.policy = cfg.policy;
  opts.validate();

  rt::RealtimeEngine engine(opts, wall);

  // Previous incarnation's snapshot: report its store-stamped age, then
  // warm-restore the fleet summary when the payload checks out.
  std::optional<persist::FileSnapshotStore> store;
  if (!cfg.snapshot_path.empty()) {
    store.emplace(cfg.snapshot_path);
    if (const std::optional<persist::StoredSnapshot> prev = store->load()) {
      const double age_s = (wall.now() - prev->saved_at).seconds();
      try {
        const persist::MonitorSnapshot snap =
            persist::from_string(prev->bytes);
        std::printf("rtd: found snapshot, age %.3fs, fleet=%d\n", age_s,
                    snap.has_fleet ? 1 : 0);
        if (snap.has_fleet) {
          engine.restore_summary(snap.fleet, true);
          std::printf("rtd: warm-restored fleet summary (%llu processes)\n",
                      static_cast<unsigned long long>(snap.fleet.processes));
        }
      } catch (const persist::SnapshotError& e) {
        std::printf("rtd: stored snapshot rejected (%s), cold start\n",
                    e.what());
      }
    } else {
      std::printf("rtd: no usable snapshot at %s, cold start\n",
                  cfg.snapshot_path.c_str());
    }
  }

  const Duration consumer_period = seconds(0.2 / cfg.rate_hz);
  const Duration watchdog_period = seconds(0.25);
  engine.start(cfg.consumers, consumer_period, watchdog_period);

  // Producer threads: each owns a contiguous slice of processes and sends
  // seq 1, 2, ... at the configured per-process rate.
  std::atomic<bool> producing{true};
  const std::size_t producer_count = std::min<std::size_t>(4, cfg.processes);
  std::vector<std::thread> producers;
  producers.reserve(producer_count);
  for (std::size_t t = 0; t < producer_count; ++t) {
    producers.emplace_back([&, t] {
      const std::size_t lo = cfg.processes * t / producer_count;
      const std::size_t hi = cfg.processes * (t + 1) / producer_count;
      const Duration tick = seconds(1.0 / cfg.rate_hz);
      net::SeqNo seq = 0;
      while (producing.load(std::memory_order_relaxed)) {
        ++seq;
        for (std::size_t p = lo; p < hi; ++p) {
          engine.offer_now(static_cast<fleet::ProcessIndex>(p), 0, seq);
        }
        wall.sleep_for(tick);
      }
    });
  }

  const TimePoint started = wall.now();
  TimePoint next_snapshot = started + seconds(cfg.snapshot_interval_s);
  while ((wall.now() - started).seconds() < cfg.duration_s) {
    wall.sleep_for(seconds(0.05));
    if (store && wall.now() >= next_snapshot) {
      const TimePoint now = wall.now();
      store->save(persist::to_string(wrap_summary(engine, opts, now)), now);
      next_snapshot = now + seconds(cfg.snapshot_interval_s);
    }
  }

  producing.store(false, std::memory_order_relaxed);
  for (std::thread& th : producers) th.join();
  engine.stop();

  // Final drain so the counters below satisfy the ingestion identity.
  const TimePoint end = wall.now();
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    (void)engine.drain_shard(s, end);
  }
  if (store) {
    store->save(persist::to_string(wrap_summary(engine, opts, end)), end);
    std::printf("rtd: final snapshot saved to %s\n", cfg.snapshot_path.c_str());
  }

  const rt::ShardCounters t = engine.totals();
  const std::vector<fleet::Transition> transitions = engine.drain_transitions();
  std::printf(
      "rtd: ran %.3fs, policy %s: produced %llu accepted %llu shed %llu "
      "consumed %llu restarts %llu transitions %zu\n",
      (end - started).seconds(), rt::name(cfg.policy),
      static_cast<unsigned long long>(t.produced),
      static_cast<unsigned long long>(t.accepted),
      static_cast<unsigned long long>(t.shed_total()),
      static_cast<unsigned long long>(t.consumed),
      static_cast<unsigned long long>(t.restarts), transitions.size());
  std::printf("rtd: qos_at_risk %d reason %s\n", engine.qos_at_risk() ? 1 : 0,
              rt::name(engine.risk_reason()));

  if (t.produced != t.accepted + t.shed_total()) {
    std::fprintf(stderr, "rtd: FAIL counter identity violated\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--replay-smoke") == 0) {
    return rt::replay_smoke(std::cout) ? 0 : 1;
  }
  if (argc < 2 || std::strcmp(argv[1], "--live") != 0) return usage(argv[0]);

  LiveConfig cfg;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chenfd_rtd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--processes") {
      cfg.processes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--shards") {
      cfg.shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--consumers") {
      cfg.consumers = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--rate") {
      cfg.rate_hz = std::strtod(next(), nullptr);
    } else if (arg == "--duration") {
      cfg.duration_s = std::strtod(next(), nullptr);
    } else if (arg == "--capacity") {
      cfg.capacity = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--policy") {
      if (!parse_policy(next(), cfg.policy)) {
        std::fprintf(stderr, "chenfd_rtd: unknown policy\n");
        return 2;
      }
    } else if (arg == "--snapshot") {
      cfg.snapshot_path = next();
    } else if (arg == "--snapshot-interval") {
      cfg.snapshot_interval_s = std::strtod(next(), nullptr);
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.processes == 0 || cfg.shards == 0 || cfg.consumers == 0 ||
      cfg.rate_hz <= 0.0 || cfg.duration_s <= 0.0 || cfg.capacity == 0) {
    std::fprintf(stderr, "chenfd_rtd: invalid configuration\n");
    return 2;
  }
  try {
    return run_live(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chenfd_rtd: fatal: %s\n", e.what());
    return 1;
  }
}
