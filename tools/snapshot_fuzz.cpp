// Snapshot corruption fuzzer (DESIGN.md section 9).
//
// Builds a representative valid monitor snapshot, then deterministically
// mutates it — every single-bit flip over the whole byte string, plus
// truncations at every line boundary and a band of random multi-byte
// mutations — and feeds each mutant to persist::from_string.  The contract
// under test:
//
//   - a mutant either parses (possible only if the mutation was inside a
//     comment-free format this writer never emits — in practice the CRC
//     catches everything) or throws persist::SnapshotError;
//   - no mutant may crash, corrupt memory (run under ASan/UBSan in CI), or
//     throw anything other than SnapshotError;
//   - the unmutated input must round-trip bit-exactly.
//
// Exit code 0 when the contract holds for every mutant, 1 otherwise.
// Deterministic: a fixed seed drives the random band, so a failure
// reproduces by rerunning the binary.

#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "persist/file_store.hpp"
#include "persist/snapshot.hpp"

namespace {

chenfd::persist::MonitorSnapshot make_reference() {
  chenfd::persist::MonitorSnapshot snap;
  snap.taken_at_s = 1234.5678901234;
  snap.detector.eta_s = 1.0;
  snap.detector.alpha_s = 0.5;
  snap.detector.window_capacity = 8;
  snap.detector.epoch_seq = 10;
  snap.detector.max_seq = 25;
  for (std::uint64_t i = 0; i < 6; ++i) {
    snap.detector.window.push_back(
        {1000.0 + 0.01 * static_cast<double>(i), 20 + i});
  }
  snap.short_term.capacity = 4;
  snap.short_term.highest_seq = 25;
  for (std::uint64_t i = 0; i < 4; ++i) {
    snap.short_term.obs.push_back({22 + i, 0.02 + 0.001 * static_cast<double>(i)});
  }
  snap.long_term.capacity = 16;
  snap.long_term.highest_seq = 25;
  for (std::uint64_t i = 0; i < 12; ++i) {
    snap.long_term.obs.push_back({14 + i, 0.019 + 0.0005 * static_cast<double>(i)});
  }
  snap.smoothed_loss = 0.05;
  snap.smoothed_variance = 0.0004;
  snap.qos_at_risk = true;
  snap.risk_reason = "warm_restart";
  snap.backoff = 2.0;
  snap.has_last_arrival = true;
  snap.last_arrival_s = 1234.0;
  snap.reconfigurations = 3;
  snap.epoch_resets = 1;
  snap.req_detection_rel_s = 1.5;
  snap.req_recurrence_s = 300.0;
  snap.req_duration_s = 60.0;
  snap.next_app_id = 4;
  snap.apps.push_back({1, 1.5, 300.0, 60.0});
  snap.apps.push_back({3, 2.0, 600.0, 30.0});
  return snap;
}

// Returns true when `bytes` honors the parse contract: either a clean
// parse or a SnapshotError.  Any other escape is a contract violation.
bool probe(const std::string& bytes, const char* what, std::size_t detail) {
  try {
    (void)chenfd::persist::from_string(bytes);
    return true;
  } catch (const chenfd::persist::SnapshotError&) {
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL %s %zu: escaped exception: %s\n", what, detail,
                 e.what());
  } catch (...) {
    std::fprintf(stderr, "FAIL %s %zu: escaped non-std exception\n", what,
                 detail);
  }
  return false;
}

}  // namespace

int main() {
  const std::string valid =
      chenfd::persist::to_string(make_reference());

  // Sanity: the unmutated bytes must parse and round-trip bit-exactly.
  try {
    const chenfd::persist::MonitorSnapshot parsed =
        chenfd::persist::from_string(valid);
    if (chenfd::persist::to_string(parsed) != valid) {
      std::fprintf(stderr, "FAIL round-trip is not bit-exact\n");
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL reference snapshot rejected: %s\n", e.what());
    return 1;
  }

  bool ok = true;
  std::size_t rejected = 0;
  std::size_t mutants = 0;

  // Every single-bit flip.  CRC-32 detects all of them, so each mutant
  // must be *rejected* (not merely survive) — a mutant that parses means
  // the checksum was not actually covering that byte.
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutant = valid;
      mutant[i] = static_cast<char>(mutant[i] ^ (1 << bit));
      ++mutants;
      if (!probe(mutant, "bit-flip at byte", i)) {
        ok = false;
        continue;
      }
      try {
        (void)chenfd::persist::from_string(mutant);
        std::fprintf(stderr,
                     "FAIL bit %d of byte %zu flipped yet snapshot parsed\n",
                     bit, i);
        ok = false;
      } catch (const chenfd::persist::SnapshotError&) {
        ++rejected;
      }
    }
  }

  // Truncation at every line boundary (torn write), plus every prefix of
  // the final CRC line.
  for (std::size_t i = 0; i <= valid.size(); ++i) {
    if (i != valid.size() && valid[i] != '\n') continue;
    std::string mutant = valid.substr(0, i);
    ++mutants;
    if (!probe(mutant, "truncation at byte", i)) ok = false;
  }

  // Random heavier mutations: splices, duplicated lines, garbage bytes.
  chenfd::Rng rng(20260806);
  for (std::size_t round = 0; round < 2000; ++round) {
    std::string mutant = valid;
    const std::size_t edits = 1 + static_cast<std::size_t>(rng() % 4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t at = static_cast<std::size_t>(rng() % mutant.size());
      switch (rng() % 3) {
        case 0:  // overwrite with garbage
          mutant[at] = static_cast<char>(rng() % 256);
          break;
        case 1:  // delete a span
          mutant.erase(at, 1 + static_cast<std::size_t>(rng() % 16));
          break;
        default:  // duplicate a span
          mutant.insert(at, mutant.substr(at, 1 + static_cast<std::size_t>(rng() % 16)));
          break;
      }
      if (mutant.empty()) mutant = "x";
    }
    ++mutants;
    if (!probe(mutant, "random mutation round", round)) ok = false;
  }

  // FileSnapshotStore: the on-disk store must round-trip payloads byte-
  // exactly (it is payload-agnostic by contract), must surface torn or
  // alien files as nullopt rather than throwing, and a fuzzed payload
  // pulled back through the store must still honor the parse contract.
  const std::string store_path = "snapshot_fuzz_store.dat";
  chenfd::persist::FileSnapshotStore store(store_path);
  store.clear();
  if (store.load()) {
    std::fprintf(stderr, "FAIL file store not empty after clear\n");
    ok = false;
  }
  const chenfd::TimePoint stamp(9876.54321);
  store.save(valid, stamp);
  if (const auto back = store.load(); !back || back->bytes != valid ||
                                      back->saved_at.seconds() !=
                                          stamp.seconds()) {
    std::fprintf(stderr, "FAIL file store round-trip not bit-exact\n");
    ok = false;
  } else if (!probe(back->bytes, "file store payload", 0)) {
    ok = false;
  }

  // Torn / alien files dropped where the snapshot lives: load() must
  // answer "no snapshot" (nullopt), never throw.
  const char* alien[] = {"", "chenfd-store", "chenfd-store v1 saved_at",
                         "chenfd-store v1 saved_at junk\npayload",
                         "chenfd-store v1 saved_at 1.0 extra\npayload",
                         "some entirely different file\n"};
  for (std::size_t i = 0; i < sizeof(alien) / sizeof(alien[0]); ++i) {
    {
      std::ofstream out(store_path, std::ios::binary | std::ios::trunc);
      out << alien[i];
    }
    try {
      if (store.load()) {
        std::fprintf(stderr, "FAIL alien file %zu loaded as a snapshot\n", i);
        ok = false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL alien file %zu threw: %s\n", i, e.what());
      ok = false;
    }
  }

  // Fuzzed payloads through the store: save/load is the identity on the
  // bytes, and whatever comes back obeys the parse contract.
  for (std::size_t round = 0; round < 200; ++round) {
    std::string mutant = valid;
    const std::size_t at = static_cast<std::size_t>(rng() % mutant.size());
    mutant[at] = static_cast<char>(rng() % 256);
    if (rng() % 2 == 0) mutant.resize(at);  // torn payload
    store.save(mutant, stamp);
    ++mutants;
    const auto back = store.load();
    if (!back || back->bytes != mutant) {
      std::fprintf(stderr, "FAIL file store mangled fuzzed payload %zu\n",
                   round);
      ok = false;
      continue;
    }
    if (!probe(back->bytes, "file store fuzz round", round)) ok = false;
  }
  store.clear();

  std::printf("snapshot_fuzz: %zu mutants, %zu single-bit rejects, %s\n",
              mutants, rejected, ok ? "contract holds" : "CONTRACT VIOLATED");
  return ok ? 0 : 1;
}
