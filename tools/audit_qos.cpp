// audit_qos: replay a recorded failure-detector transition trace and verify
// the Theorem 1 renewal identities against the recorder's measurements.
// See `audit_qos help`.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "audit_cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // `check --trace FILE` reads the trace from FILE; everything else (and
  // `check` without --trace) reads from stdin.
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--trace") {
      std::ifstream file(args[i + 1]);
      if (!file) {
        std::cerr << "error: cannot open trace file '" << args[i + 1]
                  << "'\n";
        return 2;
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return chenfd::cli::run_audit(args, file, std::cout);
    }
  }
  return chenfd::cli::run_audit(args, std::cin, std::cout);
}
