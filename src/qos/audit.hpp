// Theorem 1 invariant auditor: checks that the measured accuracy metrics of
// a recorded failure-detector signal satisfy the paper's renewal identities.
//
// For an ergodic detector (Theorem 1):
//
//   part 1   T_G = T_MR - T_M                  (per cycle, so in expectation)
//   part 2   lambda_M = 1 / E(T_MR)
//            P_A = E(T_G) / E(T_MR) = 1 - E(T_M) / E(T_MR)
//   part 3c  E(T_FG) = (1 + V(T_G)/E(T_G)^2) * E(T_G) / 2
//
// The recorder measures every quantity on both sides of each identity
// independently (lambda_M by counting S-transitions, E(T_MR) by averaging
// recurrence intervals; P_A by integrating the signal, the T_* means from
// interval samples), so comparing them end to end catches corruption
// anywhere in the pipeline: a recorder bug, a broken merge, a mangled
// trace.  On a finite window the identities hold up to boundary effects of
// order 1/n, hence the relative tolerance.

#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "qos/recorder.hpp"
#include "qos/relations.hpp"

namespace chenfd::qos {

/// One audited identity: `lhs` and `rhs` are the two independent
/// measurements, `rel_error` their relative disagreement.
struct IdentityCheck {
  std::string name;
  double lhs = 0.0;
  double rhs = 0.0;
  double rel_error = 0.0;
  bool ok = false;
};

struct AuditReport {
  std::vector<IdentityCheck> checks;
  std::size_t cycles = 0;  ///< complete T_MR intervals the audit rests on

  [[nodiscard]] bool ok() const {
    return std::all_of(checks.begin(), checks.end(),
                       [](const IdentityCheck& c) { return c.ok; });
  }
};

namespace detail {

inline IdentityCheck check_identity(std::string name, double lhs, double rhs,
                                    double tolerance) {
  IdentityCheck c;
  c.name = std::move(name);
  c.lhs = lhs;
  c.rhs = rhs;
  const double scale = std::max({std::abs(lhs), std::abs(rhs), 1e-300});
  c.rel_error = std::abs(lhs - rhs) / scale;
  c.ok = std::isfinite(lhs) && std::isfinite(rhs) &&
         c.rel_error <= tolerance;
  return c;
}

}  // namespace detail

/// Audits the Theorem 1 renewal identities over a finished recorder.
/// `tolerance` is the admissible relative disagreement (finite-window
/// boundary effects scale like 1/cycles, so pick tolerance >> 1/cycles).
/// Throws std::invalid_argument if the recorder is unfinished or observed
/// too few complete mistake cycles to compare anything.
[[nodiscard]] inline AuditReport audit_theorem1(const Recorder& rec,
                                                double tolerance = 0.05) {
  expects(rec.finished(), "audit_theorem1: recorder must be finished");
  expects(tolerance > 0.0, "audit_theorem1: tolerance must be positive");
  AuditReport report;
  report.cycles = rec.mistake_recurrence().count();
  expects(report.cycles >= 2 && rec.mistake_duration().count() >= 2,
          "audit_theorem1: too few complete mistake cycles to audit "
          "(need at least 2 T_MR and 2 T_M intervals)");

  const double e_tmr = rec.mistake_recurrence().mean();
  const double e_tm = rec.mistake_duration().mean();
  const double e_tg = rec.good_period().mean();

  // Sample sanity: interval durations are by construction non-negative and
  // a mistake cannot outlast its recurrence period on average.
  report.checks.push_back(detail::check_identity(
      "min sample >= 0",
      std::min({rec.mistake_recurrence().min(), rec.mistake_duration().min(),
                rec.good_period().min(), 0.0}),
      0.0, tolerance));

  // Theorem 1 part 2: lambda_M = 1/E(T_MR).  lambda_M counts S-transitions
  // over the window; E(T_MR) averages the recurrence intervals.
  report.checks.push_back(detail::check_identity(
      "lambda_M = 1/E(T_MR)", rec.mistake_rate(), 1.0 / e_tmr, tolerance));

  // Theorem 1 part 2: P_A = 1 - E(T_M)/E(T_MR).  P_A integrates the signal.
  report.checks.push_back(detail::check_identity(
      "P_A = 1 - E(T_M)/E(T_MR)", rec.query_accuracy(), 1.0 - e_tm / e_tmr,
      tolerance));

  // Theorem 1 part 2, other form: P_A = E(T_G)/E(T_MR).
  report.checks.push_back(detail::check_identity(
      "P_A = E(T_G)/E(T_MR)", rec.query_accuracy(),
      query_accuracy(e_tg, e_tmr), tolerance));

  // Theorem 1 part 1 in expectation: E(T_G) = E(T_MR) - E(T_M).
  report.checks.push_back(detail::check_identity(
      "E(T_G) = E(T_MR) - E(T_M)", e_tg, e_tmr - e_tm, tolerance));

  // Theorem 1 part 3c: the waiting-time-paradox formula for E(T_FG),
  // against the directly integrated forward good period.
  report.checks.push_back(detail::check_identity(
      "E(T_FG) = (1 + V/E^2) E/2", rec.forward_good_period_mean_direct(),
      forward_good_period_mean(e_tg, rec.good_period().variance()),
      tolerance));

  return report;
}

}  // namespace chenfd::qos
