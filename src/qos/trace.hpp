// Plain-text transition traces: a recorded failure-detector output signal
// that can be written by one run and replayed (qos::replay) by another —
// the interchange format between the simulation harness and the
// `audit_qos` invariant auditor.
//
// Format (one record per line, '#' starts a comment):
//
//   window <start-seconds> <end-seconds>
//   <time-seconds> S
//   <time-seconds> T
//   ...
//
// Exactly one `window` line is required and must precede the transitions;
// transition times must be non-decreasing and at or before `end`.
// Transitions before `start` are warm-up history: qos::replay uses them to
// infer the verdict at `start` without sampling any pre-window interval.

#pragma once

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "common/verdict.hpp"

namespace chenfd::qos {

struct TraceFile {
  TimePoint start;
  TimePoint end;
  std::vector<Transition> transitions;
};

/// Serializes a trace in the format above.  Times are printed with
/// max_digits10 significant digits so that read_trace(write_trace(t))
/// reproduces every TimePoint bit-for-bit.
inline void write_trace(std::ostream& os, const TraceFile& trace) {
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "# chenfd transition trace\n";
  os << "window " << trace.start.seconds() << " " << trace.end.seconds()
     << "\n";
  for (const Transition& t : trace.transitions) {
    os << t.at.seconds() << " " << to_string(t.to) << "\n";
  }
  os.precision(old_precision);
}

/// Parses a trace.  Throws std::invalid_argument on malformed input —
/// unknown verdict letters, missing window line, out-of-window or
/// time-reversed transitions — so a corrupted trace fails loudly instead
/// of yielding plausible-looking QoS numbers.
inline TraceFile read_trace(std::istream& is) {
  TraceFile out;
  bool have_window = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Tolerate CRLF input: getline stops at '\n' and leaves the '\r' on
    // the line, which must not end up inside the last token.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank or comment-only line
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (first == "window") {
      expects(!have_window, "trace: duplicate window line" + where);
      double s = 0.0;
      double e = 0.0;
      expects(static_cast<bool>(ls >> s >> e),
              "trace: malformed window line" + where);
      expects(e >= s, "trace: window end precedes start" + where);
      out.start = TimePoint(s);
      out.end = TimePoint(e);
      have_window = true;
      continue;
    }
    expects(have_window, "trace: transition before window line" + where);
    double at = 0.0;
    std::string verdict;
    try {
      at = std::stod(first);
    } catch (const std::exception&) {
      throw std::invalid_argument("trace: malformed time '" + first + "'" +
                                  where);
    }
    expects(static_cast<bool>(ls >> verdict),
            "trace: missing verdict" + where);
    expects(verdict == "S" || verdict == "T",
            "trace: verdict must be S or T, got '" + verdict + "'" + where);
    const Verdict to = verdict == "S" ? Verdict::kSuspect : Verdict::kTrust;
    expects(out.transitions.empty() || out.transitions.back().at.seconds() <= at,
            "trace: transition times must be non-decreasing" + where);
    expects(at <= out.end.seconds(),
            "trace: transition after the window end" + where);
    out.transitions.push_back(Transition{TimePoint(at), to});
  }
  expects(have_window, "trace: missing window line");
  return out;
}

}  // namespace chenfd::qos
