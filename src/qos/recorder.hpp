// Measures the QoS accuracy metrics of a failure detector from its output
// signal (Section 2 of the paper).
//
// The recorder consumes the sequence of output transitions of a failure
// detector over an observation window [start, end] in a failure-free run and
// produces:
//
//   - T_MR samples  (S-transition to next S-transition)
//   - T_M  samples  (S-transition to next T-transition)
//   - T_G  samples  (T-transition to next S-transition)
//   - P_A           (fraction of time the output is Trust)
//   - lambda_M      (S-transitions per unit time)
//   - E(T_FG)       (time-average of the remaining good period, measured by
//                    direct integration over the signal rather than via
//                    Theorem 1 — so the two can be cross-checked)
//
// Intervals that are cut off by the window boundaries are discarded, so all
// samples are complete intervals.  Callers measuring steady-state behaviour
// should start the window after the detector has warmed up (for NFD-S this
// is tau_1; see Section 3.2).

#pragma once

#include <cstddef>
#include <optional>

#include "common/check.hpp"
#include "common/time.hpp"
#include "common/verdict.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::qos {

class Recorder {
 public:
  /// Begins observing at `start`, when the detector output is `initial`.
  Recorder(TimePoint start, Verdict initial,
           std::size_t sample_capacity = 1u << 20);

  /// Feed the next output transition.  Transitions at the same verdict are
  /// ignored; times must be non-decreasing and >= start.
  void on_transition(TimePoint at, Verdict to);
  void on_transition(const Transition& t) { on_transition(t.at, t.to); }

  /// Closes the observation window.  Must be called exactly once, with
  /// end >= the last transition time, before reading time-average metrics.
  void finish(TimePoint end);

  [[nodiscard]] const stats::SampleSet& mistake_recurrence() const {
    return t_mr_;
  }
  [[nodiscard]] const stats::SampleSet& mistake_duration() const {
    return t_m_;
  }
  [[nodiscard]] const stats::SampleSet& good_period() const { return t_g_; }

  [[nodiscard]] std::size_t s_transitions() const { return s_transitions_; }
  [[nodiscard]] std::size_t t_transitions() const { return t_transitions_; }

  /// Length of the observation window.  Valid after finish().
  [[nodiscard]] Duration elapsed() const;
  /// P_A: fraction of the window during which the output was Trust.
  [[nodiscard]] double query_accuracy() const;
  /// lambda_M: S-transitions per second of window.
  [[nodiscard]] double mistake_rate() const;

  /// E(T_FG) measured directly: a query at a uniformly random trusting time
  /// sees remaining good period with mean  sum(g_i^2/2) / sum(g_i)  taken
  /// over complete good periods.  (Compare with
  /// qos::forward_good_period_mean applied to the T_G sample moments.)
  [[nodiscard]] double forward_good_period_mean_direct() const;

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] Verdict current() const { return current_; }

 private:
  TimePoint start_;
  TimePoint end_{};
  Verdict current_;
  TimePoint last_change_;
  bool finished_ = false;

  std::optional<TimePoint> last_s_transition_;
  std::optional<TimePoint> last_t_transition_;

  stats::SampleSet t_mr_;
  stats::SampleSet t_m_;
  stats::SampleSet t_g_;

  std::size_t s_transitions_ = 0;
  std::size_t t_transitions_ = 0;

  double trust_seconds_ = 0.0;
  double sum_g_ = 0.0;          // sum of complete good periods
  double sum_g_squared_ = 0.0;  // sum of their squares
};

}  // namespace chenfd::qos
