// Theorem 1 of the paper: how the six accuracy metrics are related for an
// ergodic failure detector.
//
//   1) T_G = T_MR - T_M
//   2) lambda_M = 1/E(T_MR),  P_A = E(T_G)/E(T_MR)
//   3a) Pr(T_FG <= x) = Int_0^x Pr(T_G > y) dy / E(T_G)
//   3b) E(T_FG^k) = E(T_G^{k+1}) / [(k+1) E(T_G)]
//   3c) E(T_FG) = [1 + V(T_G)/E(T_G)^2] * E(T_G) / 2
//
// 3c is the "waiting time paradox": the forward good period is in general
// longer than half a good period, because a random query is more likely to
// land inside a long good period than a short one.

#pragma once

#include "common/check.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::qos {

/// lambda_M = 1 / E(T_MR).   Requires 0 < E(T_MR) < infinity.
[[nodiscard]] inline double mistake_rate(double e_tmr) {
  expects(e_tmr > 0.0, "mistake_rate: E(T_MR) must be positive");
  return 1.0 / e_tmr;
}

/// P_A = E(T_G) / E(T_MR).
[[nodiscard]] inline double query_accuracy(double e_tg, double e_tmr) {
  expects(e_tmr > 0.0, "query_accuracy: E(T_MR) must be positive");
  expects(e_tg >= 0.0, "query_accuracy: E(T_G) must be non-negative");
  return e_tg / e_tmr;
}

/// Theorem 1 part 3c: E(T_FG) from the mean and variance of T_G.
[[nodiscard]] inline double forward_good_period_mean(double e_tg,
                                                     double v_tg) {
  if (e_tg == 0.0) return 0.0;  // Theorem 1 part 3: E(T_G)=0 => T_FG == 0.
  expects(e_tg > 0.0, "forward_good_period_mean: E(T_G) must be >= 0");
  expects(v_tg >= 0.0, "forward_good_period_mean: V(T_G) must be >= 0");
  return (1.0 + v_tg / (e_tg * e_tg)) * e_tg / 2.0;
}

/// Theorem 1 part 3b: E(T_FG^k) = E(T_G^{k+1}) / [(k+1) E(T_G)], evaluated
/// on an empirical sample of good-period durations.
[[nodiscard]] inline double forward_good_period_moment(
    const stats::SampleSet& good_periods, int k) {
  expects(k >= 1, "forward_good_period_moment: k must be >= 1");
  const double e_tg = good_periods.mean();
  if (good_periods.count() == 0 || e_tg == 0.0) return 0.0;
  return good_periods.moment(k + 1) /
         (static_cast<double>(k + 1) * e_tg);
}

/// Theorem 1 part 3a: Pr(T_FG <= x) = Int_0^x Pr(T_G > y) dy / E(T_G),
/// evaluated against the empirical distribution of T_G.  For an empirical
/// sample {g_i}, Int_0^x Pr(T_G > y) dy = mean_i min(g_i, x).
[[nodiscard]] inline double forward_good_period_cdf(
    const stats::SampleSet& good_periods, double x) {
  expects(x >= 0.0, "forward_good_period_cdf: x must be >= 0");
  const double e_tg = good_periods.mean();
  if (good_periods.count() == 0) return 0.0;
  if (e_tg == 0.0) return 1.0;  // T_FG is identically 0.
  double acc = 0.0;
  for (double g : good_periods.samples()) acc += (g < x) ? g : x;
  acc /= static_cast<double>(good_periods.samples().size());
  return acc / e_tg;
}

}  // namespace chenfd::qos
