#include "qos/recorder.hpp"

#include "common/check.hpp"

namespace chenfd::qos {

Recorder::Recorder(TimePoint start, Verdict initial,
                   std::size_t sample_capacity)
    : start_(start),
      current_(initial),
      last_change_(start),
      t_mr_(sample_capacity),
      t_m_(sample_capacity),
      t_g_(sample_capacity) {}

void Recorder::on_transition(TimePoint at, Verdict to) {
  CHENFD_EXPECTS(!finished_,
                 "Recorder::on_transition: recorder already finished");
  CHENFD_EXPECTS(
      at >= last_change_,
      "Recorder::on_transition: transition times must be non-decreasing");
  if (to == current_) return;  // not a transition

  if (to == Verdict::kSuspect) {
    // S-transition: ends a trust interval.
    ++s_transitions_;
    if (last_s_transition_) {
      t_mr_.add((at - *last_s_transition_).seconds());
    }
    if (last_t_transition_) {
      const double g = (at - *last_t_transition_).seconds();
      t_g_.add(g);
      sum_g_ += g;
      sum_g_squared_ += g * g;
    }
    trust_seconds_ += (at - last_change_).seconds();
    last_s_transition_ = at;
  } else {
    // T-transition: ends a suspicion interval.
    ++t_transitions_;
    if (last_s_transition_) {
      t_m_.add((at - *last_s_transition_).seconds());
    }
    last_t_transition_ = at;
  }
  current_ = to;
  last_change_ = at;
}

void Recorder::finish(TimePoint end) {
  CHENFD_EXPECTS(!finished_, "Recorder::finish: already finished");
  CHENFD_EXPECTS(end >= last_change_,
                 "Recorder::finish: end must not precede the last transition");
  if (current_ == Verdict::kTrust) {
    trust_seconds_ += (end - last_change_).seconds();
  }
  end_ = end;
  finished_ = true;
}

Duration Recorder::elapsed() const {
  CHENFD_EXPECTS(finished_, "Recorder::elapsed: call finish() first");
  return end_ - start_;
}

double Recorder::query_accuracy() const {
  const double total = elapsed().seconds();
  CHENFD_EXPECTS(total > 0.0,
                 "Recorder::query_accuracy: empty observation window");
  return trust_seconds_ / total;
}

double Recorder::mistake_rate() const {
  const double total = elapsed().seconds();
  CHENFD_EXPECTS(total > 0.0,
                 "Recorder::mistake_rate: empty observation window");
  return static_cast<double>(s_transitions_) / total;
}

double Recorder::forward_good_period_mean_direct() const {
  if (sum_g_ == 0.0) return 0.0;
  return sum_g_squared_ / (2.0 * sum_g_);
}

}  // namespace chenfd::qos
