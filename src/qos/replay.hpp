// Builds a Recorder from a recorded transition history — used to measure a
// detector over a sub-window (discarding warm-up) and to evaluate scripted
// output signals such as the FD_1 / FD_2 illustrations of Figs. 2 and 3.

#pragma once

#include <span>

#include "common/time.hpp"
#include "common/verdict.hpp"
#include "qos/recorder.hpp"

namespace chenfd::qos {

/// Replays `transitions` (sorted by time) through a Recorder observing
/// [start, end].  The verdict at `start` is inferred from the last
/// transition at or before `start` (detectors start suspecting, so the
/// default before any transition is Suspect).
[[nodiscard]] inline Recorder replay(std::span<const Transition> transitions,
                                     TimePoint start, TimePoint end,
                                     std::size_t sample_capacity = 1u << 20) {
  Verdict initial = Verdict::kSuspect;
  std::size_t i = 0;
  while (i < transitions.size() && transitions[i].at <= start) {
    initial = transitions[i].to;
    ++i;
  }
  Recorder rec(start, initial, sample_capacity);
  for (; i < transitions.size() && transitions[i].at <= end; ++i) {
    rec.on_transition(transitions[i]);
  }
  rec.finish(end);
  return rec;
}

}  // namespace chenfd::qos
