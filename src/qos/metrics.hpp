// QoS metric framework for failure detectors — Section 2 of the paper.
//
// Primary metrics (Section 2.2):
//   T_D   detection time              (speed; runs where p crashes)
//   T_MR  mistake recurrence time     (accuracy; failure-free runs)
//   T_M   mistake duration            (accuracy; failure-free runs)
//
// Derived metrics (Section 2.3):
//   lambda_M  average mistake rate
//   P_A       query accuracy probability
//   T_G       good period duration
//   T_FG      forward good period duration
//
// This header defines the value types used to express QoS requirements and
// measured/analytic QoS figures throughout the library.

#pragma once

#include <optional>
#include <ostream>

#include "common/time.hpp"

namespace chenfd::qos {

/// A set of failure detector QoS requirements, Section 4 Eq. (4.1):
///
///   T_D <= T_D^U,   E(T_MR) >= T_MR^L,   E(T_M) <= T_M^U.
///
/// All three bounds must be positive.
struct Requirements {
  Duration detection_time_upper;          ///< T_D^U
  Duration mistake_recurrence_lower;      ///< T_MR^L
  Duration mistake_duration_upper;        ///< T_M^U

  [[nodiscard]] bool valid() const {
    return detection_time_upper > Duration::zero() &&
           mistake_recurrence_lower > Duration::zero() &&
           mistake_duration_upper > Duration::zero();
  }

  friend std::ostream& operator<<(std::ostream& os, const Requirements& r) {
    return os << "{T_D^U=" << r.detection_time_upper
              << ", T_MR^L=" << r.mistake_recurrence_lower
              << ", T_M^U=" << r.mistake_duration_upper << "}";
  }
};

/// Expected-value QoS figures of a failure detector in steady state.  Both
/// the analytic formulas (Theorem 5 / 9 / 11) and measurement (QoSRecorder)
/// produce values of this shape, which makes "paper vs measured" tables
/// trivial to assemble.
struct Figures {
  Duration detection_time_bound = Duration::infinity();  ///< bound on T_D
  Duration mistake_recurrence_mean = Duration::zero();   ///< E(T_MR)
  Duration mistake_duration_mean = Duration::zero();     ///< E(T_M)

  /// E(T_G) = E(T_MR) - E(T_M)  (Theorem 1 part 1, in expectation).
  [[nodiscard]] Duration good_period_mean() const {
    return mistake_recurrence_mean - mistake_duration_mean;
  }
  /// lambda_M = 1 / E(T_MR)  (Theorem 1 part 2).  Per second.
  [[nodiscard]] double mistake_rate() const {
    return 1.0 / mistake_recurrence_mean.seconds();
  }
  /// P_A = E(T_G) / E(T_MR)  (Theorem 1 part 2).
  [[nodiscard]] double query_accuracy() const {
    return good_period_mean().seconds() / mistake_recurrence_mean.seconds();
  }

  /// True if these figures satisfy the given requirements (Eq. 4.1).
  [[nodiscard]] bool satisfies(const Requirements& req) const {
    return detection_time_bound <= req.detection_time_upper &&
           mistake_recurrence_mean >= req.mistake_recurrence_lower &&
           mistake_duration_mean <= req.mistake_duration_upper;
  }
};

}  // namespace chenfd::qos
