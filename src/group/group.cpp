#include "group/group.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace chenfd::group {

Group::Group(Config config)
    : n_(config.size), params_(config.detector) {
  expects(n_ >= 2, "Group: need at least two processes");
  expects(config.delay != nullptr, "Group: delay distribution required");
  expects(config.p_loss >= 0.0 && config.p_loss < 1.0,
          "Group: p_loss must be in [0, 1)");
  params_.validate();

  Rng seeder(config.seed);
  pairs_.resize(n_ * n_);
  crash_times_.resize(n_);
  for (ProcessId from = 0; from < n_; ++from) {
    for (ProcessId to = 0; to < n_; ++to) {
      if (from == to) continue;
      Pair& pair = pairs_[index(from, to)];
      pair.link = std::make_unique<net::Link>(
          sim_, config.delay->clone(),
          std::make_unique<net::BernoulliLoss>(config.p_loss),
          seeder.split());
      pair.sender = std::make_unique<core::HeartbeatSender>(
          sim_, *pair.link, clock_, params_.eta);
      pair.detector = std::make_unique<core::NfdS>(sim_, params_);
      auto* detector = pair.detector.get();
      pair.link->set_receiver(
          [detector](const net::Message& m, TimePoint at) {
            detector->on_heartbeat(m, at);
          });
    }
  }
}

std::size_t Group::index(ProcessId from, ProcessId to) const {
  expects(from < n_ && to < n_, "Group: process id out of range");
  expects(from != to, "Group: no self-monitoring pair exists");
  return from * n_ + to;
}

void Group::start() {
  expects(!started_, "Group::start: already started");
  started_ = true;
  for (ProcessId from = 0; from < n_; ++from) {
    for (ProcessId to = 0; to < n_; ++to) {
      if (from == to) continue;
      Pair& pair = pairs_[index(from, to)];
      pair.detector->activate();
      pair.sender->start();
    }
  }
}

void Group::crash_at(ProcessId id, TimePoint at) {
  expects(id < n_, "Group::crash_at: process id out of range");
  if (crash_times_[id] && *crash_times_[id] <= at) return;
  crash_times_[id] = at;
  for (ProcessId to = 0; to < n_; ++to) {
    if (to == id) continue;
    pairs_[index(id, to)].sender->crash_at(at);
  }
}

bool Group::crashed(ProcessId id) const {
  expects(id < n_, "Group::crashed: process id out of range");
  return crash_times_[id] && *crash_times_[id] <= sim_.now();
}

const core::NfdS& Group::detector(ProcessId observer,
                                  ProcessId target) const {
  return *pairs_[index(target, observer)].detector;
}

core::NfdS& Group::detector(ProcessId observer, ProcessId target) {
  return *pairs_[index(target, observer)].detector;
}

bool Group::suspects(ProcessId observer, ProcessId target) const {
  expects(observer < n_ && target < n_,
          "Group::suspects: process id out of range");
  if (observer == target) return false;
  return detector(observer, target).output() == Verdict::kSuspect;
}

std::vector<ProcessId> Group::view(ProcessId observer) const {
  std::vector<ProcessId> members;
  for (ProcessId target = 0; target < n_; ++target) {
    if (!suspects(observer, target)) members.push_back(target);
  }
  return members;
}

bool Group::all_correct_trusted() const {
  for (ProcessId o = 0; o < n_; ++o) {
    if (crashed(o)) continue;
    for (ProcessId t = 0; t < n_; ++t) {
      if (t == o || crashed(t)) continue;
      if (suspects(o, t)) return false;
    }
  }
  return true;
}

bool Group::all_crashes_detected() const {
  for (ProcessId o = 0; o < n_; ++o) {
    if (crashed(o)) continue;
    for (ProcessId t = 0; t < n_; ++t) {
      if (t == o || !crashed(t)) continue;
      if (!suspects(o, t)) return false;
    }
  }
  return true;
}

void Group::stop() {
  for (auto& pair : pairs_) {
    if (pair.detector) pair.detector->stop();
  }
}

}  // namespace chenfd::group
