// Group monitoring: the paper's two-process system composed into a full
// mesh — the substrate for the cluster-management and group-membership
// applications that motivate the paper (Section 1).
//
// N processes run in one simulator.  Every ordered pair (i -> j), i != j,
// gets its own heartbeat sender at i, probabilistic link, and NFD-S
// detector at j, all sharing j's clock.  Each process derives a membership
// view (the set of processes it currently trusts, plus itself); crashed
// processes stop sending on all their outgoing links at the crash instant.
//
// The group exposes:
//   - per-pair detectors and transitions (for QoS measurement),
//   - per-process views,
//   - a SuspicionOracle interface consumed by protocols built on top
//     (e.g. the consensus substrate).
//
// Group-level QoS follows from the pairwise Theorem 5 figures: every pair
// is an independent copy of the two-process system, so e.g. the time for
// ALL correct members to suspect a crashed one is the max of independent
// T_D samples — still bounded by delta + eta (Theorem 5.1).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "clock/clock.hpp"
#include "common/time.hpp"
#include "core/heartbeat_sender.hpp"
#include "core/nfd_s.hpp"
#include "core/params.hpp"
#include "dist/distribution.hpp"
#include "net/link.hpp"
#include "net/loss_model.hpp"
#include "sim/simulator.hpp"

namespace chenfd::group {

using ProcessId = std::size_t;

/// Answers "does observer currently suspect target?".  Implemented by
/// Group; consumed by protocols (consensus, membership) layered on top.
class SuspicionOracle {
 public:
  virtual ~SuspicionOracle() = default;
  [[nodiscard]] virtual bool suspects(ProcessId observer,
                                      ProcessId target) const = 0;
};

class Group final : public SuspicionOracle {
 public:
  struct Config {
    std::size_t size = 3;                            ///< number of processes
    std::unique_ptr<dist::DelayDistribution> delay;  ///< per-link (cloned)
    double p_loss = 0.01;
    core::NfdSParams detector{seconds(1.0), seconds(1.0)};
    std::uint64_t seed = 42;
  };

  explicit Group(Config config);

  /// Starts all senders and detectors.  Call once, at time 0.
  void start();

  /// Crashes process `id` at simulated time `at`: all its outgoing
  /// heartbeat streams stop.  Its detectors keep running (a crashed
  /// process's opinions are simply no longer read).
  void crash_at(ProcessId id, TimePoint at);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Whether `id` has crashed by now.
  [[nodiscard]] bool crashed(ProcessId id) const;

  /// The detector at `observer` watching `target` (observer != target).
  [[nodiscard]] const core::NfdS& detector(ProcessId observer,
                                           ProcessId target) const;
  [[nodiscard]] core::NfdS& detector(ProcessId observer, ProcessId target);

  /// SuspicionOracle: observer's current verdict on target.  A process
  /// never suspects itself.
  [[nodiscard]] bool suspects(ProcessId observer,
                              ProcessId target) const override;

  /// Membership view of `observer`: itself plus every process it trusts.
  [[nodiscard]] std::vector<ProcessId> view(ProcessId observer) const;

  /// True iff every non-crashed process trusts every other non-crashed
  /// process (no false suspicion anywhere among correct members).
  [[nodiscard]] bool all_correct_trusted() const;

  /// True iff every non-crashed process suspects every crashed one.
  [[nodiscard]] bool all_crashes_detected() const;

  /// Tears down all timers (for clean shutdown before destruction).
  void stop();

 private:
  struct Pair {
    std::unique_ptr<net::Link> link;
    std::unique_ptr<core::HeartbeatSender> sender;
    std::unique_ptr<core::NfdS> detector;
  };

  [[nodiscard]] std::size_t index(ProcessId from, ProcessId to) const;

  std::size_t n_;
  core::NfdSParams params_;
  sim::Simulator sim_;
  clk::SynchronizedClock clock_;  // NFD-S assumes synchronized clocks
  std::vector<Pair> pairs_;  // indexed by from * n + to (diagonal unused)
  std::vector<std::optional<TimePoint>> crash_times_;
  bool started_ = false;
};

}  // namespace chenfd::group
