// On-disk SnapshotStore with crash-safe replacement (DESIGN.md section 14).
//
// chenfd_rtd persists its periodic snapshots through this store.  A daemon
// can die at any instant — including mid-save — so the store must never
// leave a torn file where the previous good snapshot used to be.  The
// classic recipe:
//
//   1. write the new snapshot to `<path>.tmp`,
//   2. fsync the tmp file (contents durable before the name flips),
//   3. rename(tmp, path) — atomic on POSIX: readers see the old file or
//      the new one, never a mixture,
//   4. fsync the containing directory (the rename itself durable).
//
// A crash before step 3 leaves the old snapshot untouched (a stale .tmp
// is ignored and overwritten by the next save); a crash after step 3 has
// the new snapshot in place.  load() therefore only ever sees complete
// files; anything unreadable or structurally alien (wrong magic, garbage
// stamp) yields nullopt — the same "no snapshot, cold restart" answer as
// an empty store, with payload-level corruption left to the snapshot
// parser's CRC, which is what chenfd_snapshot_fuzz hammers.
//
// On-disk layout: one header line, then the payload verbatim:
//
//   chenfd-store v1 saved_at <q-local-seconds, max_digits10>
//   <payload bytes...>

#pragma once

#include <optional>
#include <string>

#include "persist/store.hpp"

namespace chenfd::persist {

class FileSnapshotStore final : public SnapshotStore {
 public:
  /// `path` is the snapshot file; `<path>.tmp` must also be writable
  /// (same directory).  The file need not exist yet.
  explicit FileSnapshotStore(std::string path);

  /// Write-temp + fsync + atomic-rename + directory fsync.  Throws
  /// std::runtime_error when the filesystem refuses (disk full, bad path);
  /// the previous snapshot is intact in every failure case.
  void save(std::string bytes, TimePoint saved_at) override;

  /// The stored snapshot, or nullopt when the file is missing or its
  /// header is not ours.  Never throws on bad content.
  [[nodiscard]] std::optional<StoredSnapshot> load() const override;

  /// Removes the snapshot file (missing file is fine).
  void clear() override;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::string dir_path_;
};

}  // namespace chenfd::persist
