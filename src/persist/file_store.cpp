#include "persist/file_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace chenfd::persist {

namespace {

constexpr const char* kMagic = "chenfd-store v1 saved_at ";

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("FileSnapshotStore: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t n,
               const std::string& path) {
  std::size_t written = 0;
  while (written < n) {
    const ssize_t r = ::write(fd, data + written, n - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write failed for", path);
    }
    written += static_cast<std::size_t>(r);
  }
}

void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) fail("open for fsync failed for", path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync failed for", path);
  }
  ::close(fd);
}

}  // namespace

FileSnapshotStore::FileSnapshotStore(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  expects(!path_.empty(), "FileSnapshotStore: path must be non-empty");
  const std::size_t slash = path_.find_last_of('/');
  dir_path_ = slash == std::string::npos ? "." : path_.substr(0, slash + 1);
}

void FileSnapshotStore::save(std::string bytes, TimePoint saved_at) {
  expects(!saved_at.is_infinite(),
          "FileSnapshotStore::save: saved_at must be finite");
  std::ostringstream header;
  header << kMagic
         << std::setprecision(std::numeric_limits<double>::max_digits10)
         << saved_at.seconds() << "\n";
  const std::string head = header.str();

  const int fd =
      ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", tmp_path_);
  write_all(fd, head.data(), head.size(), tmp_path_);
  write_all(fd, bytes.data(), bytes.size(), tmp_path_);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync failed for", tmp_path_);
  }
  if (::close(fd) != 0) fail("close failed for", tmp_path_);

  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    fail("rename failed onto", path_);
  }
  // The rename itself must survive a power cut: sync the directory entry.
  fsync_path(dir_path_, O_RDONLY | O_DIRECTORY);
}

std::optional<StoredSnapshot> FileSnapshotStore::load() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  if (!header.empty() && header.back() == '\r') header.pop_back();
  const std::string_view magic(kMagic);
  if (header.size() <= magic.size() || header.substr(0, magic.size()) != magic)
    return std::nullopt;
  double saved_at_s = 0.0;
  std::istringstream stamp(header.substr(magic.size()));
  if (!(stamp >> saved_at_s)) return std::nullopt;
  std::string rest;
  stamp >> rest;
  if (!rest.empty()) return std::nullopt;  // trailing junk in the header
  StoredSnapshot out;
  out.saved_at = TimePoint(saved_at_s);
  std::ostringstream payload;
  payload << in.rdbuf();
  out.bytes = payload.str();
  return out;
}

void FileSnapshotStore::clear() {
  if (std::remove(path_.c_str()) != 0 && errno != ENOENT) {
    fail("remove failed for", path_);
  }
}

}  // namespace chenfd::persist
