// Versioned, checksummed monitor snapshots (DESIGN.md section 9).
//
// A MonitorSnapshot is the full serializable state of the adaptive
// monitoring service at one instant of q-local time: the NFD-E Eq. 6.3
// running window and freshness epoch, both components of the two-component
// network estimator, the EWMA-smoothed configuration inputs, the registered
// per-application QoS demands, and the qos_at_risk latches.  A supervisor
// (service/supervisor.hpp) saves one periodically; after a monitor crash it
// decides between a warm restart (rehydrate from the snapshot) and a cold
// restart (conservative parameters) based on whether a fresh, *valid*
// snapshot exists.
//
// Wire format — plain text, following the trace-file discipline
// (qos/trace.hpp): line-oriented, doubles printed with max_digits10 so a
// serialize -> parse -> serialize round trip is bit-exact, CRLF tolerated
// on input.
//
//   chenfd-snapshot v1
//   taken_at <q-local-seconds>
//   params <eta> <alpha> <window-capacity>
//   detector <epoch-seq> <max-seq> <n>
//   dw <normalized-seconds> <seq>                  (n lines)
//   estimator <short|long> <capacity> <highest-seq> <n>
//   eo <seq> <delay-seconds>                       (n lines, per estimator)
//   smoothed <loss> <variance>
//   risk <0|1> <reason-word> <backoff>
//   last_arrival <q-local-seconds | none>
//   counters <reconfigurations> <epoch-resets>
//   requirements <T_D^u> <T_MR^L> <T_M^U>
//   apps <next-id> <count>
//   app <id> <T_D^u> <T_MR^L> <T_M^U>              (count lines)
//   election <self> <leader|none> <since> <changes> <count>   (optional)
//   epeer <id> <incarnation> <demotions> <holddown-until|none> (count lines)
//   fleet <processes> <shard-count>                            (optional)
//   fshard <id> <processes> <max-incarnation> <max-seq>  (shard-count lines)
//   crc <8-hex-digits>
//
// The election and fleet sections are optional (supervisors without the
// corresponding service never write them; when both are present, election
// precedes fleet) and still part of format v1: a reader predating them
// rejects snapshots that carry one via the "unconsumed payload" structural
// check — the same refuse-don't-misparse guarantee a version bump would
// give, without invalidating existing v1 snapshots.
//
// The fleet section is deliberately a per-shard *summary*, not the full
// process table: at 10^6 monitored processes the Eq. 6.3 windows alone are
// hundreds of megabytes, far past what a periodic text snapshot should
// carry, and fleet suspicion state is soft (every process re-trusts on its
// first live heartbeat).  A warm restart therefore validates the shape
// (process and shard counts) and resumes from all-suspect; see
// fleet::FleetMonitor::restore_summary.
//
// Integrity rules:
//   - the version line must name exactly the supported version; snapshots
//     from a *newer* format are rejected, never half-parsed (forward
//     rejection — an old binary must not misread a new field as garbage);
//   - the final crc line holds the CRC-32 of every byte above it (with
//     CRLF normalized to LF); any mismatch rejects the snapshot;
//   - every structural violation throws SnapshotError carrying the
//     offending line number, so corruption diagnostics are actionable.
//
// Rejection is an *expected* outcome for the supervisor (it falls back to
// a cold restart), hence a dedicated exception type rather than the
// contract-violation machinery.

#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace chenfd::persist {

/// The snapshot format version this build reads and writes.
inline constexpr int kSnapshotVersion = 1;

/// Thrown when a snapshot is structurally invalid, checksum-corrupt, or of
/// an unsupported version.  `line()` is the 1-based offending line (0 when
/// the problem is not attributable to one line, e.g. a truncated stream).
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(const std::string& what, std::size_t line)
      : std::runtime_error(line == 0 ? "snapshot: " + what
                                     : "snapshot: " + what + " (line " +
                                           std::to_string(line) + ")"),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// One NetworkEstimator sliding window (core/estimators.hpp).
struct EstimatorState {
  struct Obs {
    std::uint64_t seq = 0;
    double delay_s = 0.0;
  };

  std::size_t capacity = 0;
  std::uint64_t highest_seq = 0;
  std::vector<Obs> obs;  ///< strictly increasing seq, size <= capacity
};

/// The NFD-E detector: parameters, freshness epoch, Eq. 6.3 window.
struct DetectorState {
  struct Obs {
    double normalized_s = 0.0;  ///< A'_i - eta * (s_i - epoch), q-local
    std::uint64_t seq = 0;
  };

  double eta_s = 0.0;
  double alpha_s = 0.0;
  std::size_t window_capacity = 0;
  std::uint64_t epoch_seq = 0;
  std::uint64_t max_seq = 0;  ///< largest sequence number received (ell)
  std::vector<Obs> window;    ///< strictly increasing seq
};

/// One registered application's relative QoS demand.
struct AppRequirement {
  std::uint64_t id = 0;
  double detection_time_upper_rel_s = 0.0;
  double mistake_recurrence_lower_s = 0.0;
  double mistake_duration_upper_s = 0.0;
};

/// One peer's election-relevant history as seen by the snapshotting
/// process: last incarnation heard, demotion count (drives the hysteresis
/// backoff) and, when the peer is currently held down, the local time its
/// leadership eligibility returns.
struct ElectionPeerState {
  std::uint64_t id = 0;
  std::uint64_t incarnation = 0;
  std::uint64_t demotions = 0;
  bool has_holddown = false;
  double holddown_until_s = 0.0;
};

/// The Omega elector's persistent state (DESIGN.md section 12): who this
/// process is, who it currently considers leader (the latch a warm restart
/// revives), and the per-peer hysteresis bookkeeping.
struct ElectionState {
  std::uint64_t self = 0;
  bool has_leader = false;
  std::uint64_t leader = 0;
  double leader_since_s = 0.0;
  std::uint64_t leader_changes = 0;
  std::vector<ElectionPeerState> peers;  ///< strictly increasing id, != self
};

/// One fleet shard's summary: how many processes it monitors and the
/// high-water marks of what it has heard (continuity diagnostics for a
/// restarting supervisor, not rehydratable detector state).
struct FleetShardState {
  std::uint64_t shard = 0;
  std::uint64_t processes = 0;
  std::uint64_t max_incarnation = 0;
  std::uint64_t max_seq = 0;
};

/// The fleet engine's persistent summary (see the format note above on why
/// this is a summary rather than the full 10^6-process table).
struct FleetState {
  std::uint64_t processes = 0;
  std::vector<FleetShardState> shards;  ///< ids 0..n-1 in order
};

/// The full monitor-side state at `taken_at` (q-local seconds).
struct MonitorSnapshot {
  double taken_at_s = 0.0;

  DetectorState detector;
  EstimatorState short_term;
  EstimatorState long_term;

  // EWMA-smoothed configuration inputs (negative = not primed).
  double smoothed_loss = -1.0;
  double smoothed_variance = -1.0;

  // Risk latches (reason stored by name; see risk_reason_names below).
  bool qos_at_risk = false;
  std::string risk_reason = "none";
  double backoff = 1.0;

  bool has_last_arrival = false;
  double last_arrival_s = 0.0;

  std::uint64_t reconfigurations = 0;
  std::uint64_t epoch_resets = 0;

  // The merged requirement the monitor is currently configured against.
  double req_detection_rel_s = 0.0;
  double req_recurrence_s = 0.0;
  double req_duration_s = 0.0;

  // Registered per-application demands (the registry's contents).
  std::uint64_t next_app_id = 1;
  std::vector<AppRequirement> apps;

  // Optional election section (present when an election service rides on
  // this monitor; see MonitorSupervisor::set_election_hooks).
  bool has_election = false;
  ElectionState election;

  // Optional fleet section (present when a fleet engine rides on this
  // monitor; see MonitorSupervisor::set_fleet_hooks).
  bool has_fleet = false;
  FleetState fleet;
};

/// Serializes `snap` in the format above, CRC line included.
void write_snapshot(std::ostream& os, const MonitorSnapshot& snap);

/// Parses and integrity-checks a snapshot.  Throws SnapshotError on any
/// version, checksum or structural violation.
[[nodiscard]] MonitorSnapshot read_snapshot(std::istream& is);

/// Convenience round-trip helpers over std::string.
[[nodiscard]] std::string to_string(const MonitorSnapshot& snap);
[[nodiscard]] MonitorSnapshot from_string(const std::string& bytes);

}  // namespace chenfd::persist
