// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for snapshot
// integrity checking.
//
// The snapshot format (snapshot.hpp) appends a CRC over the payload so a
// restarting monitor can tell a valid snapshot from a torn or bit-flipped
// one before rehydrating state from it.  CRC-32 is deliberate: snapshots
// guard against storage corruption, not adversaries, and the checksum must
// be dependency-free (the container bakes in no crypto library) and cheap
// enough to run on every save.
//
// The lookup table is built at compile time, so the header adds no static
// initialization order hazards.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace chenfd::persist {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `data` (standard init/final XOR with 0xFFFFFFFF).
[[nodiscard]] constexpr std::uint32_t crc32(std::string_view data) {
  std::uint32_t c = 0xFFFFFFFFU;
  for (const char ch : data) {
    c = detail::kCrc32Table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^
        (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace chenfd::persist
