// Where snapshots live between a monitor crash and its restart.
//
// The supervisor persists opaque serialized bytes (persist/snapshot.hpp)
// through this interface; integrity checking happens at parse time, not
// here, so a store never needs to understand the format.  The in-memory
// store is the default for the deterministic simulation harness: it models
// "stable storage that survives the monitor process" (the q-side crash
// kills the monitor's heap, not its disk), while keeping chaos suites free
// of filesystem nondeterminism.  Corruption experiments mutate the stored
// bytes directly through load()/save() — a bit flip through this interface
// is exactly a bit flip on the simulated disk.

#pragma once

#include <optional>
#include <string>
#include <utility>

namespace chenfd::persist {

class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Atomically replaces the stored snapshot.
  virtual void save(std::string bytes) = 0;

  /// The most recently saved snapshot, or nullopt if none was ever saved
  /// (or the store was cleared).
  [[nodiscard]] virtual std::optional<std::string> load() const = 0;

  /// Drops the stored snapshot (models losing stable storage too).
  virtual void clear() = 0;
};

/// Simulated stable storage: survives monitor crashes by living in the
/// supervisor, not the monitor.
class MemorySnapshotStore final : public SnapshotStore {
 public:
  void save(std::string bytes) override { bytes_ = std::move(bytes); }

  [[nodiscard]] std::optional<std::string> load() const override {
    return bytes_;
  }

  void clear() override { bytes_.reset(); }

 private:
  std::optional<std::string> bytes_;
};

}  // namespace chenfd::persist
