// Where snapshots live between a monitor crash and its restart.
//
// The supervisor persists opaque serialized bytes (persist/snapshot.hpp)
// through this interface; integrity checking happens at parse time, not
// here, so a store never needs to understand the format.  What the store
// *does* understand is the save instant: the supervisor stamps each save
// with its injected clock's q-local time, and staleness at restart is
// judged against that store-level stamp rather than anything the payload
// claims about itself — a wall-clock daemon restarting hours later must
// measure the snapshot's real age even if the content parses fine.
//
// The in-memory store is the default for the deterministic simulation
// harness: it models "stable storage that survives the monitor process"
// (the q-side crash kills the monitor's heap, not its disk), while keeping
// chaos suites free of filesystem nondeterminism.  Corruption experiments
// mutate the stored bytes directly through load()/save() — a bit flip
// through this interface is exactly a bit flip on the simulated disk.
// FileSnapshotStore (file_store.hpp) is the real-disk implementation used
// by chenfd_rtd.

#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/time.hpp"

namespace chenfd::persist {

/// A stored snapshot: the opaque serialized bytes plus the q-local instant
/// the saver stamped.  The stamp is store metadata, deliberately outside
/// the (checksummed) payload: it answers "how old is what's on disk",
/// which must hold even for payloads that turn out to be corrupt.
struct StoredSnapshot {
  std::string bytes;
  TimePoint saved_at;
};

class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Atomically replaces the stored snapshot, stamped with `saved_at`.
  virtual void save(std::string bytes, TimePoint saved_at) = 0;

  /// The most recently saved snapshot, or nullopt if none was ever saved
  /// (or the store was cleared, or what is on disk is unreadable).
  [[nodiscard]] virtual std::optional<StoredSnapshot> load() const = 0;

  /// Drops the stored snapshot (models losing stable storage too).
  virtual void clear() = 0;
};

/// Simulated stable storage: survives monitor crashes by living in the
/// supervisor, not the monitor.
class MemorySnapshotStore final : public SnapshotStore {
 public:
  void save(std::string bytes, TimePoint saved_at) override {
    stored_ = StoredSnapshot{std::move(bytes), saved_at};
  }

  [[nodiscard]] std::optional<StoredSnapshot> load() const override {
    return stored_;
  }

  void clear() override { stored_.reset(); }

 private:
  std::optional<StoredSnapshot> stored_;
};

}  // namespace chenfd::persist
