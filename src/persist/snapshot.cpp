#include "persist/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "persist/crc32.hpp"

namespace chenfd::persist {

namespace {

constexpr std::array<const char*, 6> kRiskReasonNames = {
    "none",    "infeasible",      "estimates_unusable",
    "silence", "post_disruption", "warm_restart"};

bool known_risk_reason(const std::string& word) {
  return std::find(kRiskReasonNames.begin(), kRiskReasonNames.end(), word) !=
         kRiskReasonNames.end();
}

// ---- writing --------------------------------------------------------------

void write_estimator(std::ostream& os, const char* which,
                     const EstimatorState& est) {
  os << "estimator " << which << " " << est.capacity << " " << est.highest_seq
     << " " << est.obs.size() << "\n";
  for (const EstimatorState::Obs& o : est.obs) {
    os << "eo " << o.seq << " " << o.delay_s << "\n";
  }
}

// ---- parsing --------------------------------------------------------------

/// Line-oriented cursor over the normalized payload with 1-based line
/// numbers for diagnostics.  All `take_*` helpers throw SnapshotError
/// naming the current line on any mismatch.
class Parser {
 public:
  explicit Parser(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}

  [[nodiscard]] std::size_t lineno() const { return next_; }

  /// Opens the next line and requires its first token to be `keyword`.
  void open(const std::string& keyword) {
    if (next_ >= lines_.size()) {
      throw SnapshotError("truncated: expected '" + keyword + "' record", 0);
    }
    ++next_;
    tokens_.clear();
    std::istringstream ls(lines_[next_ - 1]);
    std::string token;
    while (ls >> token) tokens_.push_back(std::move(token));
    cursor_ = 0;
    const std::string head = take_word();
    if (head != keyword) {
      fail("expected '" + keyword + "' record, got '" + head + "'");
    }
  }

  /// Requires the current line to have been fully consumed.
  void close() {
    if (cursor_ != tokens_.size()) {
      fail("trailing token '" + tokens_[cursor_] + "'");
    }
  }

  [[nodiscard]] std::string take_word() {
    if (cursor_ >= tokens_.size()) fail("missing field");
    return tokens_[cursor_++];
  }

  [[nodiscard]] double take_double() {
    const std::string word = take_word();
    try {
      std::size_t pos = 0;
      const double value = std::stod(word, &pos);
      if (pos != word.size()) throw std::invalid_argument(word);
      return value;
    } catch (const std::exception&) {
      fail("malformed number '" + word + "'");
    }
  }

  /// A double that must be finite (snapshot times, delays, parameters).
  [[nodiscard]] double take_finite() {
    const double value = take_double();
    if (!std::isfinite(value)) fail("non-finite value");
    return value;
  }

  [[nodiscard]] std::uint64_t take_u64() {
    const std::string word = take_word();
    try {
      std::size_t pos = 0;
      const std::uint64_t value = std::stoull(word, &pos);
      if (pos != word.size() || word[0] == '-') {
        throw std::invalid_argument(word);
      }
      return value;
    } catch (const std::exception&) {
      fail("malformed count '" + word + "'");
    }
  }

  /// First token of the next unopened line ("" at end of payload) — lets
  /// the reader dispatch among the optional trailing sections without
  /// committing to open() one.
  [[nodiscard]] std::string peek_keyword() const {
    if (next_ >= lines_.size()) return {};
    std::istringstream ls(lines_[next_]);
    std::string token;
    ls >> token;
    return token;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw SnapshotError(what, next_);
  }

 private:
  std::vector<std::string> lines_;
  std::size_t next_ = 0;  // index of the next line to open
  std::vector<std::string> tokens_;
  std::size_t cursor_ = 0;
};

EstimatorState read_estimator(Parser& p, const char* which) {
  p.open("estimator");
  const std::string label = p.take_word();
  if (label != which) {
    p.fail(std::string("expected '") + which + "' estimator, got '" + label +
           "'");
  }
  EstimatorState est;
  est.capacity = p.take_u64();
  est.highest_seq = p.take_u64();
  const std::uint64_t n = p.take_u64();
  p.close();
  if (est.capacity < 2) p.fail("estimator capacity must be >= 2");
  if (n > est.capacity) p.fail("estimator window larger than its capacity");
  for (std::uint64_t i = 0; i < n; ++i) {
    p.open("eo");
    EstimatorState::Obs o;
    o.seq = p.take_u64();
    o.delay_s = p.take_finite();
    p.close();
    if (!est.obs.empty() && o.seq <= est.obs.back().seq) {
      p.fail("estimator sequence numbers must be strictly increasing");
    }
    est.obs.push_back(o);
  }
  if (!est.obs.empty() && est.highest_seq < est.obs.back().seq) {
    p.fail("estimator highest seq below its own window");
  }
  return est;
}

}  // namespace

void write_snapshot(std::ostream& os, const MonitorSnapshot& snap) {
  std::ostringstream payload;
  payload.precision(std::numeric_limits<double>::max_digits10);

  payload << "chenfd-snapshot v" << kSnapshotVersion << "\n";
  payload << "taken_at " << snap.taken_at_s << "\n";
  payload << "params " << snap.detector.eta_s << " " << snap.detector.alpha_s
          << " " << snap.detector.window_capacity << "\n";
  payload << "detector " << snap.detector.epoch_seq << " "
          << snap.detector.max_seq << " " << snap.detector.window.size()
          << "\n";
  for (const DetectorState::Obs& o : snap.detector.window) {
    payload << "dw " << o.normalized_s << " " << o.seq << "\n";
  }
  write_estimator(payload, "short", snap.short_term);
  write_estimator(payload, "long", snap.long_term);
  payload << "smoothed " << snap.smoothed_loss << " " << snap.smoothed_variance
          << "\n";
  payload << "risk " << (snap.qos_at_risk ? 1 : 0) << " " << snap.risk_reason
          << " " << snap.backoff << "\n";
  if (snap.has_last_arrival) {
    payload << "last_arrival " << snap.last_arrival_s << "\n";
  } else {
    payload << "last_arrival none\n";
  }
  payload << "counters " << snap.reconfigurations << " " << snap.epoch_resets
          << "\n";
  payload << "requirements " << snap.req_detection_rel_s << " "
          << snap.req_recurrence_s << " " << snap.req_duration_s << "\n";
  payload << "apps " << snap.next_app_id << " " << snap.apps.size() << "\n";
  for (const AppRequirement& app : snap.apps) {
    payload << "app " << app.id << " " << app.detection_time_upper_rel_s << " "
            << app.mistake_recurrence_lower_s << " "
            << app.mistake_duration_upper_s << "\n";
  }
  if (snap.has_election) {
    payload << "election " << snap.election.self << " ";
    if (snap.election.has_leader) {
      payload << snap.election.leader;
    } else {
      payload << "none";
    }
    payload << " " << snap.election.leader_since_s << " "
            << snap.election.leader_changes << " "
            << snap.election.peers.size() << "\n";
    for (const ElectionPeerState& peer : snap.election.peers) {
      payload << "epeer " << peer.id << " " << peer.incarnation << " "
              << peer.demotions << " ";
      if (peer.has_holddown) {
        payload << peer.holddown_until_s;
      } else {
        payload << "none";
      }
      payload << "\n";
    }
  }
  if (snap.has_fleet) {
    payload << "fleet " << snap.fleet.processes << " "
            << snap.fleet.shards.size() << "\n";
    for (const FleetShardState& shard : snap.fleet.shards) {
      payload << "fshard " << shard.shard << " " << shard.processes << " "
              << shard.max_incarnation << " " << shard.max_seq << "\n";
    }
  }

  const std::string bytes = payload.str();
  os << bytes << "crc " << std::hex << std::setw(8) << std::setfill('0')
     << crc32(bytes) << std::dec << "\n";
}

MonitorSnapshot read_snapshot(std::istream& is) {
  std::string bytes(std::istreambuf_iterator<char>(is), {});
  // CRLF tolerance: normalize before anything else so the CRC is computed
  // over the same bytes the writer checksummed.
  bytes.erase(std::remove(bytes.begin(), bytes.end(), '\r'), bytes.end());

  // Split the trailing crc line from the payload it covers.
  const std::size_t crc_pos = bytes.rfind("\ncrc ");
  if (bytes.rfind("crc ", 0) == 0 || crc_pos == std::string::npos) {
    // A leading crc line means an empty payload; both are rejects.
    if (bytes.rfind("crc ", 0) != 0) {
      throw SnapshotError("missing crc line", 0);
    }
    throw SnapshotError("empty payload before crc line", 1);
  }
  const std::string payload = bytes.substr(0, crc_pos + 1);
  const std::string tail = bytes.substr(crc_pos + 1);
  const std::size_t crc_lineno =
      static_cast<std::size_t>(
          std::count(payload.begin(), payload.end(), '\n')) +
      1;
  // The trailer must be byte-exact — "crc " + 8 lowercase hex digits +
  // "\n", nothing before, between or after.  Anything looser (uppercase
  // hex, 0x prefixes, stray whitespace, bytes after the final newline)
  // would let a mutated snapshot alias the valid one.
  if (tail.size() != 13 || tail.compare(0, 4, "crc ") != 0 ||
      tail.back() != '\n') {
    throw SnapshotError("malformed crc line", crc_lineno);
  }
  std::uint32_t declared = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    const char c = tail[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(10 + (c - 'a'));
    } else {
      throw SnapshotError("malformed crc '" + tail.substr(4, 8) + "'",
                          crc_lineno);
    }
    declared = (declared << 4) | digit;
  }
  if (crc32(payload) != declared) {
    throw SnapshotError("crc mismatch: snapshot is corrupt", crc_lineno);
  }

  // CRC verified: structural errors from here on indicate a writer bug or
  // an unsupported version, and still reject with a line diagnostic.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < payload.size()) {
    const std::size_t nl = payload.find('\n', start);
    lines.push_back(payload.substr(start, nl - start));
    start = nl + 1;
  }
  Parser p(std::move(lines));

  p.open("chenfd-snapshot");
  const std::string version = p.take_word();
  p.close();
  if (version.empty() || version[0] != 'v') {
    p.fail("malformed version '" + version + "'");
  }
  if (version != "v" + std::to_string(kSnapshotVersion)) {
    // Forward rejection: refuse rather than misparse a newer layout.
    p.fail("unsupported snapshot version " + version + " (this build reads v" +
           std::to_string(kSnapshotVersion) + ")");
  }

  MonitorSnapshot snap;
  p.open("taken_at");
  snap.taken_at_s = p.take_finite();
  p.close();

  p.open("params");
  snap.detector.eta_s = p.take_finite();
  snap.detector.alpha_s = p.take_finite();
  snap.detector.window_capacity = p.take_u64();
  p.close();
  if (snap.detector.eta_s <= 0.0 || snap.detector.alpha_s <= 0.0) {
    p.fail("detector parameters must be positive");
  }
  if (snap.detector.window_capacity < 1) {
    p.fail("detector window capacity must be >= 1");
  }

  p.open("detector");
  snap.detector.epoch_seq = p.take_u64();
  snap.detector.max_seq = p.take_u64();
  const std::uint64_t window_n = p.take_u64();
  p.close();
  if (window_n > snap.detector.window_capacity) {
    p.fail("detector window larger than its capacity");
  }
  for (std::uint64_t i = 0; i < window_n; ++i) {
    p.open("dw");
    DetectorState::Obs o;
    o.normalized_s = p.take_finite();
    o.seq = p.take_u64();
    p.close();
    if (o.seq < snap.detector.epoch_seq) {
      p.fail("detector window entry predates the epoch");
    }
    if (!snap.detector.window.empty() &&
        o.seq <= snap.detector.window.back().seq) {
      p.fail("detector sequence numbers must be strictly increasing");
    }
    snap.detector.window.push_back(o);
  }
  if (!snap.detector.window.empty() &&
      snap.detector.max_seq < snap.detector.window.back().seq) {
    p.fail("detector max seq below its own window");
  }

  snap.short_term = read_estimator(p, "short");
  snap.long_term = read_estimator(p, "long");

  p.open("smoothed");
  snap.smoothed_loss = p.take_finite();
  snap.smoothed_variance = p.take_finite();
  p.close();

  p.open("risk");
  const std::uint64_t risk_flag = p.take_u64();
  snap.risk_reason = p.take_word();
  snap.backoff = p.take_finite();
  p.close();
  if (risk_flag > 1) p.fail("risk flag must be 0 or 1");
  snap.qos_at_risk = risk_flag == 1;
  if (!known_risk_reason(snap.risk_reason)) {
    p.fail("unknown risk reason '" + snap.risk_reason + "'");
  }
  if (snap.qos_at_risk == (snap.risk_reason == "none")) {
    p.fail("risk flag inconsistent with its reason");
  }
  if (snap.backoff < 1.0) p.fail("backoff must be >= 1");

  p.open("last_arrival");
  {
    const std::string word = p.take_word();
    p.close();
    if (word == "none") {
      snap.has_last_arrival = false;
    } else {
      std::istringstream ws(word);
      double value = 0.0;
      std::string extra;
      if (!(ws >> value) || (ws >> extra) || !std::isfinite(value)) {
        p.fail("malformed last_arrival '" + word + "'");
      }
      snap.has_last_arrival = true;
      snap.last_arrival_s = value;
    }
  }

  p.open("counters");
  snap.reconfigurations = p.take_u64();
  snap.epoch_resets = p.take_u64();
  p.close();

  p.open("requirements");
  snap.req_detection_rel_s = p.take_finite();
  snap.req_recurrence_s = p.take_finite();
  snap.req_duration_s = p.take_finite();
  p.close();
  if (snap.req_detection_rel_s <= 0.0 || snap.req_recurrence_s <= 0.0 ||
      snap.req_duration_s <= 0.0) {
    p.fail("requirements must be positive");
  }

  p.open("apps");
  snap.next_app_id = p.take_u64();
  const std::uint64_t app_count = p.take_u64();
  p.close();
  for (std::uint64_t i = 0; i < app_count; ++i) {
    p.open("app");
    AppRequirement app;
    app.id = p.take_u64();
    app.detection_time_upper_rel_s = p.take_finite();
    app.mistake_recurrence_lower_s = p.take_finite();
    app.mistake_duration_upper_s = p.take_finite();
    p.close();
    if (app.id == 0 || app.id >= snap.next_app_id) {
      p.fail("app id outside the registry's issued range");
    }
    if (!snap.apps.empty() && app.id <= snap.apps.back().id) {
      p.fail("app ids must be strictly increasing");
    }
    if (app.detection_time_upper_rel_s <= 0.0 ||
        app.mistake_recurrence_lower_s <= 0.0 ||
        app.mistake_duration_upper_s <= 0.0) {
      p.fail("app requirements must be positive");
    }
    snap.apps.push_back(app);
  }

  if (p.lineno() != crc_lineno - 1 && p.peek_keyword() == "election") {
    p.open("election");
    snap.has_election = true;
    snap.election.self = p.take_u64();
    const std::string leader_word = p.take_word();
    if (leader_word == "none") {
      snap.election.has_leader = false;
    } else {
      std::istringstream ws(leader_word);
      std::uint64_t value = 0;
      std::string extra;
      if (!(ws >> value) || (ws >> extra) || leader_word[0] == '-') {
        p.fail("malformed leader '" + leader_word + "'");
      }
      snap.election.has_leader = true;
      snap.election.leader = value;
    }
    snap.election.leader_since_s = p.take_finite();
    snap.election.leader_changes = p.take_u64();
    const std::uint64_t peer_count = p.take_u64();
    p.close();
    if (snap.election.has_leader &&
        snap.election.leader_since_s > snap.taken_at_s) {
      p.fail("leader latched after the snapshot was taken");
    }
    for (std::uint64_t i = 0; i < peer_count; ++i) {
      p.open("epeer");
      ElectionPeerState peer;
      peer.id = p.take_u64();
      peer.incarnation = p.take_u64();
      peer.demotions = p.take_u64();
      const std::string hold_word = p.take_word();
      p.close();
      if (hold_word == "none") {
        peer.has_holddown = false;
      } else {
        std::istringstream ws(hold_word);
        double value = 0.0;
        std::string extra;
        if (!(ws >> value) || (ws >> extra) || !std::isfinite(value)) {
          p.fail("malformed holddown '" + hold_word + "'");
        }
        peer.has_holddown = true;
        peer.holddown_until_s = value;
      }
      if (peer.id == snap.election.self) {
        p.fail("election peer list must not contain the process itself");
      }
      if (!snap.election.peers.empty() &&
          peer.id <= snap.election.peers.back().id) {
        p.fail("election peer ids must be strictly increasing");
      }
      snap.election.peers.push_back(peer);
    }
  }

  if (p.lineno() != crc_lineno - 1 && p.peek_keyword() == "fleet") {
    p.open("fleet");
    snap.has_fleet = true;
    snap.fleet.processes = p.take_u64();
    const std::uint64_t shard_count = p.take_u64();
    p.close();
    if (snap.fleet.processes < 1) p.fail("fleet must monitor >= 1 process");
    if (shard_count < 1 || shard_count > snap.fleet.processes) {
      p.fail("fleet shard count outside [1, processes]");
    }
    std::uint64_t covered = 0;
    for (std::uint64_t i = 0; i < shard_count; ++i) {
      p.open("fshard");
      FleetShardState shard;
      shard.shard = p.take_u64();
      shard.processes = p.take_u64();
      shard.max_incarnation = p.take_u64();
      shard.max_seq = p.take_u64();
      p.close();
      if (shard.shard != i) p.fail("fleet shard ids must be 0..n-1 in order");
      if (shard.processes < 1) p.fail("fleet shard monitors no processes");
      covered += shard.processes;
      snap.fleet.shards.push_back(shard);
    }
    if (covered != snap.fleet.processes) {
      p.fail("fleet shard process counts do not sum to the fleet size");
    }
  }

  // Anything left now is from a format this build predates (or a writer
  // bug); refuse rather than misparse — the forward-rejection guarantee.
  if (p.lineno() != crc_lineno - 1) {
    throw SnapshotError("unconsumed payload after optional sections",
                        p.lineno() + 1);
  }
  return snap;
}

std::string to_string(const MonitorSnapshot& snap) {
  std::ostringstream os;
  write_snapshot(os, snap);
  return os.str();
}

MonitorSnapshot from_string(const std::string& bytes) {
  std::istringstream is(bytes);
  return read_snapshot(is);
}

}  // namespace chenfd::persist
