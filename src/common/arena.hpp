// Monotonic arena allocation for hot simulation scratch memory.
//
// The fast simulation engines (core/fast_sim.cpp) allocate per-run scratch —
// SoA receipt blocks, sliding-window rings, the NFD-E in-flight heap — whose
// lifetime is exactly one run.  Allocating that scratch from the global heap
// makes every ParallelSweep worker contend on the allocator and scatters the
// hot data across the address space.  A MonotonicArena instead carves
// allocations out of large blocks with a bump pointer: allocation is a
// pointer increment, deallocation is a no-op, and reset() recycles every
// block for the next run without returning memory to the system.
//
// runner::ArenaPool (src/runner/arena.hpp) hands one reusable arena to each
// worker thread, so after the first task on a worker the per-task scratch
// never touches the global heap at all ("arena-backed workers").
//
// Not thread-safe: one arena belongs to one thread at a time (the pool
// enforces this).  Trivially-destructible payloads only — reset() does not
// run destructors, which is why the allocator below is constrained.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace chenfd {

class MonotonicArena {
 public:
  /// `block_bytes` is the granularity of the backing blocks; oversized
  /// requests get a dedicated block of exactly their size.
  explicit MonotonicArena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {
    CHENFD_EXPECTS(block_bytes > 0,
                   "MonotonicArena: block size must be positive");
  }

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  MonotonicArena(MonotonicArena&&) = default;
  MonotonicArena& operator=(MonotonicArena&&) = default;

  /// Bump-allocates `bytes` bytes aligned to `align` (a power of two no
  /// larger than alignof(std::max_align_t); blocks are max-aligned by new).
  void* allocate(std::size_t bytes, std::size_t align) {
    CHENFD_EXPECTS(align > 0 && (align & (align - 1)) == 0,
                   "MonotonicArena: alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || aligned + bytes > current_size_) {
      grow(bytes, align);
      return allocate(bytes, align);
    }
    offset_ = aligned + bytes;
    if (offset_ > high_water_block_) high_water_block_ = offset_;
    return current_ + aligned;
  }

  /// Recycles all blocks: subsequent allocations reuse them front to back.
  /// No destructors run (see file comment).
  void reset() {
    cursor_ = 0;
    offset_ = 0;
    if (blocks_.empty()) {
      current_ = nullptr;
      current_size_ = 0;
    } else {
      current_ = blocks_.front().data.get();
      current_size_ = blocks_.front().size;
    }
  }

  /// Number of backing blocks obtained from the global heap so far.  A
  /// worker whose arena has warmed up sees this stay constant across tasks
  /// — the "never touch the global heap mid-run" property, testable.
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  /// Total bytes held (capacity, not live allocations).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 18;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t bytes, std::size_t align) {
    // Try the next recycled block first; allocate a new one only when no
    // recycled block fits.  `align - 1` slack guarantees the retry succeeds.
    while (cursor_ + 1 < blocks_.size()) {
      ++cursor_;
      if (blocks_[cursor_].size >= bytes + align - 1) {
        adopt(cursor_);
        return;
      }
    }
    const std::size_t want = bytes + align - 1;
    const std::size_t size = want > block_bytes_ ? want : block_bytes_;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    cursor_ = blocks_.size() - 1;
    adopt(cursor_);
  }

  void adopt(std::size_t index) {
    current_ = blocks_[index].data.get();
    current_size_ = blocks_[index].size;
    offset_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;       ///< index of the block being bumped
  std::byte* current_ = nullptr;
  std::size_t current_size_ = 0;
  std::size_t offset_ = 0;
  std::size_t high_water_block_ = 0;
};

/// std-compatible allocator carving out of a MonotonicArena.  deallocate is
/// a no-op, so containers using it must hold trivially-destructible values
/// and must not outlive the arena (enforced for the value type at compile
/// time; lifetime is the caller's contract).
template <typename T>
class ArenaAllocator {
  static_assert(std::is_trivially_destructible_v<T>,
                "ArenaAllocator requires trivially destructible values: "
                "MonotonicArena::reset() never runs destructors");

 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (n > (std::size_t{1} << 48) / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // monotonic: reclaim on reset

  [[nodiscard]] MonotonicArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  MonotonicArena* arena_;
};

/// Arena-backed vector of trivially-destructible elements.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace chenfd
