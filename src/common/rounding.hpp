// Shared floating-point rounding helpers for the paper's index arithmetic.
//
// The freshness-point schedule keeps producing expressions of the form
// ceil(delta / eta) (the NFD-S window size k, Theorem 5's summation bound)
// and floor((t - delta) / eta) (the freshness index).  Both are fragile in
// floating point: delta = 2.5, eta = 1 must give k = 3, but delta = 2 must
// give k = 2 even when 2/1 evaluates one ULP above 2 — and PR 2's level-2
// audit caught a real bug where NfdS::freshness_index lost low bits when
// delta >> eta and misclassified the instant tau_i.  Before this header the
// snap-to-integer guard was re-implemented (inconsistently) in fast_sim.cpp,
// analysis.cpp, chebyshev.cpp and config.cpp; this is the one shared,
// contract-checked version, pinned by tests/test_rounding.cpp.

#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"

namespace chenfd {

/// Relative slack used to decide that a ratio "is" an integer.  One part in
/// 10^9 is far above any plausible accumulation error in the schedule
/// arithmetic (a handful of multiplies/divides) and far below the spacing
/// of distinct parameter ratios users express (milliseconds over seconds).
inline constexpr double kRatioSnapSlack = 1e-9;

/// ceil(a / b) for a >= 0, b > 0, robust to a/b landing a hair above an
/// integer: the result is the smallest integer n with n >= a/b - slack,
/// where slack is kRatioSnapSlack relative to max(1, a/b).
[[nodiscard]] inline long ceil_ratio(double a, double b) {
  CHENFD_EXPECTS(std::isfinite(a) && a >= 0.0,
                 "ceil_ratio: numerator must be finite and >= 0");
  CHENFD_EXPECTS(std::isfinite(b) && b > 0.0,
                 "ceil_ratio: denominator must be finite and > 0");
  const double r = a / b;
  const double eps = kRatioSnapSlack * (r > 1.0 ? r : 1.0);
  const double up = std::ceil(r - eps);
  CHENFD_ENSURES(up >= 0.0, "ceil_ratio: result must be >= 0");
  return static_cast<long>(up);
}

/// floor(r) with snap-to-nearest: when r is within kRatioSnapSlack
/// (relative) of an integer the nearest integer is returned, so a value
/// meant to be exactly i that lands one ULP below i does not misclassify
/// as i - 1.  May return negative values; callers clamp as appropriate.
[[nodiscard]] inline double floor_snapped(double r) {
  CHENFD_EXPECTS(std::isfinite(r), "floor_snapped: value must be finite");
  const double nearest = std::round(r);
  if (std::abs(r - nearest) <=
      kRatioSnapSlack * std::max(1.0, std::abs(r))) {
    return nearest;
  }
  return std::floor(r);
}

/// floor(a / b) with the same snapping, for the freshness-index pattern.
[[nodiscard]] inline double floor_ratio_snapped(double a, double b) {
  CHENFD_EXPECTS(std::isfinite(a), "floor_ratio_snapped: numerator finite");
  CHENFD_EXPECTS(std::isfinite(b) && b > 0.0,
                 "floor_ratio_snapped: denominator must be finite and > 0");
  return floor_snapped(a / b);
}

// --- Grid quantization (deliberately NOT snapped) ------------------------
//
// The timing wheel in src/fleet/ maps continuous deadlines onto a coarse
// tick grid where firing *late* is safe (the exact deadline timestamp is
// stored separately and re-emitted) but firing *early* would reorder the
// transition stream.  Snapping would break that one-sidedness: a time one
// ULP below a boundary would snap up and could fire a tick early.  These
// helpers are the plain floor/ceil counterparts for that case, kept here so
// grid arithmetic still routes through the shared contract-checked header
// (detlint R3).

/// Plain floor(a / b) as an unsigned tick index, for quantizing "now" onto
/// a grid: the returned tick never lies after a.
[[nodiscard]] inline std::uint64_t grid_floor(double a, double b) {
  CHENFD_EXPECTS(std::isfinite(a) && a >= 0.0,
                 "grid_floor: value must be finite and >= 0");
  CHENFD_EXPECTS(std::isfinite(b) && b > 0.0,
                 "grid_floor: grid step must be finite and > 0");
  return static_cast<std::uint64_t>(std::floor(a / b));
}

/// Plain ceil(a / b) as an unsigned tick index, for quantizing a deadline
/// onto a grid: the returned tick never lies before a, so a timer scheduled
/// at grid_ceil can fire late but never early.
[[nodiscard]] inline std::uint64_t grid_ceil(double a, double b) {
  CHENFD_EXPECTS(std::isfinite(a) && a >= 0.0,
                 "grid_ceil: value must be finite and >= 0");
  CHENFD_EXPECTS(std::isfinite(b) && b > 0.0,
                 "grid_ceil: grid step must be finite and > 0");
  return static_cast<std::uint64_t>(std::ceil(a / b));
}

}  // namespace chenfd
