// Deterministic, fast pseudo-random number generation for simulations.
//
// All stochastic components in chenfd take an explicit seed so that every
// experiment is reproducible.  We use xoshiro256++ (Blackman & Vigna), a
// high-quality, very fast generator well suited to Monte-Carlo simulation,
// seeded through SplitMix64 as its authors recommend.

#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace chenfd {

/// SplitMix64: used to expand a 64-bit seed into xoshiro's 256-bit state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ pseudo-random generator.  Satisfies the essential parts of
/// std::uniform_random_bit_generator so it can be used with <random>
/// distributions as well as with the hand-rolled samplers in chenfd::dist.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789AULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — useful for -log(u) style samplers where
  /// u == 0 would produce infinity.
  double uniform01_open_zero() { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derive an independent child generator (for giving each component of a
  /// simulation its own stream).
  [[nodiscard]] Rng split() {
    return Rng((*this)() ^ 0x9E3779B97F4A7C15ULL);
  }

  /// Advances the state by 2^128 draws (the canonical xoshiro256++ jump
  /// polynomial).  Repeated jumps from one root state yield up to 2^128
  /// non-overlapping substreams of 2^128 draws each — the basis for the
  /// deterministic per-task streams of runner::ParallelSweep.
  void jump() {
    static constexpr std::array<std::uint64_t, 4> kJump{
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ULL << bit)) {
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

  friend bool operator==(const Rng& a, const Rng& b) {
    return a.state_ == b.state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace chenfd
