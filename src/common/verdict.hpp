// The output alphabet of a failure detector (Section 2.1 of the paper).
//
// The failure detector at q outputs either S ("I suspect that p has
// crashed") or T ("I trust that p is up").  An S-transition is a change
// from Trust to Suspect; a T-transition is a change from Suspect to Trust.

#pragma once

#include <ostream>

#include "common/time.hpp"

namespace chenfd {

enum class Verdict {
  kSuspect,  ///< S: q suspects that p has crashed.
  kTrust,    ///< T: q trusts that p is up.
};

[[nodiscard]] constexpr const char* to_string(Verdict v) {
  return v == Verdict::kSuspect ? "S" : "T";
}

inline std::ostream& operator<<(std::ostream& os, Verdict v) {
  return os << to_string(v);
}

/// A change of the failure detector output at a given instant.  By the
/// paper's convention the output is right-continuous: at the transition time
/// itself the output already has the new value `to`.
struct Transition {
  TimePoint at;
  Verdict to;

  friend constexpr bool operator==(const Transition&,
                                   const Transition&) = default;
};

}  // namespace chenfd
