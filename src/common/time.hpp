// Strong time types for the chenfd library.
//
// The paper ("On the Quality of Service of Failure Detectors", Chen, Toueg,
// Aguilera) works in continuous real time.  We model time as double-precision
// seconds, wrapped in two distinct strong types so that points on the time
// axis (TimePoint) and lengths of intervals (Duration) cannot be mixed up:
//
//   TimePoint - TimePoint -> Duration
//   TimePoint + Duration  -> TimePoint
//   Duration  + Duration  -> Duration
//
// All of the paper's symbols map directly: sending times sigma_i and
// freshness points tau_i are TimePoints; eta, delta, alpha, T_D, T_MR, T_M
// are Durations.

#pragma once

#include <cmath>
#include <compare>
#include <limits>
#include <ostream>

namespace chenfd {

/// A length of (simulated) time, in seconds.  May be infinite (e.g. the
/// detection time of a detector that never converges is T_D = infinity).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return std::isinf(seconds_);
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration(0.0); }
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration(std::numeric_limits<double>::infinity());
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration other) {
    seconds_ += other.seconds_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    seconds_ -= other.seconds_;
    return *this;
  }
  constexpr Duration& operator*=(double k) {
    seconds_ *= k;
    return *this;
  }
  constexpr Duration& operator/=(double k) {
    seconds_ /= k;
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.seconds_ + b.seconds_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.seconds_ - b.seconds_);
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(a.seconds_ * k);
  }
  friend constexpr Duration operator*(double k, Duration a) {
    return Duration(k * a.seconds_);
  }
  friend constexpr Duration operator/(Duration a, double k) {
    return Duration(a.seconds_ / k);
  }
  /// Ratio of two durations (e.g. delta / eta when computing k = ceil(d/e)).
  friend constexpr double operator/(Duration a, Duration b) {
    return a.seconds_ / b.seconds_;
  }
  friend constexpr Duration operator-(Duration a) {
    return Duration(-a.seconds_);
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.seconds_ << "s";
  }

 private:
  double seconds_ = 0.0;
};

/// A point on the (simulated) real-time axis, in seconds since time 0.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return std::isinf(seconds_);
  }

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint(0.0); }
  [[nodiscard]] static constexpr TimePoint infinity() {
    return TimePoint(std::numeric_limits<double>::infinity());
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint& operator+=(Duration d) {
    seconds_ += d.seconds();
    return *this;
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.seconds_ + d.seconds());
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) {
    return t + d;
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.seconds_ - d.seconds());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration(a.seconds_ - b.seconds_);
  }

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << "t=" << t.seconds_;
  }

 private:
  double seconds_ = 0.0;
};

/// Convenience literal-style helpers.
[[nodiscard]] constexpr Duration seconds(double s) { return Duration(s); }
[[nodiscard]] constexpr Duration milliseconds(double ms) {
  return Duration(ms / 1000.0);
}
[[nodiscard]] constexpr Duration minutes(double m) { return Duration(m * 60.0); }
[[nodiscard]] constexpr Duration hours(double h) { return Duration(h * 3600.0); }
[[nodiscard]] constexpr Duration days(double d) { return Duration(d * 86400.0); }

}  // namespace chenfd
