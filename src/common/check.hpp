// Precondition checking for chenfd.
//
// Following the Core Guidelines (I.5/I.6), public interfaces state their
// preconditions and check them.  Violations are programming errors, so they
// throw std::logic_error (std::invalid_argument for bad arguments); expected
// runtime outcomes (e.g. "QoS cannot be achieved") are represented as values,
// never as exceptions.

#pragma once

#include <stdexcept>
#include <string>

namespace chenfd {

/// Throws std::invalid_argument with `message` if `condition` is false.
inline void expects(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Throws std::logic_error with `message` if `condition` is false.  Use for
/// internal invariants rather than argument validation.
inline void ensures(bool condition, const std::string& message) {
  if (!condition) throw std::logic_error(message);
}

}  // namespace chenfd
