// Contract checking for chenfd.
//
// Following the Core Guidelines (I.5/I.6), public interfaces state their
// preconditions and check them.  Violations are programming errors, so they
// throw std::logic_error (std::invalid_argument for bad arguments); expected
// runtime outcomes (e.g. "QoS cannot be achieved") are represented as values,
// never as exceptions.
//
// Two forms are provided:
//
//   - The `expects(cond, msg)` / `ensures(cond, msg)` functions: always
//     compiled in, for checks cheap enough to keep in every build (argument
//     validation at API boundaries).
//
//   - The CHENFD_EXPECTS / CHENFD_ENSURES / CHENFD_AUDIT macros: gated by
//     the compile-time audit level CHENFD_AUDIT_LEVEL.
//
//       level 0  every macro expands to ((void)0); the condition expression
//                is not compiled at all, so disabled contracts are zero-cost
//                (tests/contracts_compiled_out.cpp proves this at link time)
//       level 1  (default) EXPECTS and ENSURES are active
//       level 2  additionally enables AUDIT — checks that are O(domain) or
//                sit on hot per-heartbeat paths, meant for sanitizer /
//                deep-verification builds (the asan-ubsan preset uses it)
//
// Exception contract, relied on by tests/test_contracts.cpp:
//
//   CHENFD_EXPECTS / expects  ->  std::invalid_argument
//   CHENFD_ENSURES / ensures  ->  std::logic_error
//   CHENFD_AUDIT              ->  std::logic_error
//
// Macro failures append the source location to the message so a violated
// invariant deep in a 10^9-heartbeat Monte-Carlo run is attributable.

#pragma once

#include <stdexcept>
#include <string>

#ifndef CHENFD_AUDIT_LEVEL
#define CHENFD_AUDIT_LEVEL 1
#endif

namespace chenfd {

/// Throws std::invalid_argument with `message` if `condition` is false.
inline void expects(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Throws std::logic_error with `message` if `condition` is false.  Use for
/// internal invariants rather than argument validation.
inline void ensures(bool condition, const std::string& message) {
  if (!condition) throw std::logic_error(message);
}

namespace detail {

/// Cold, non-inlined failure paths keep the fast path of a contract check
/// down to one predicted-untaken branch.
[[noreturn]] inline void expects_fail(const char* message, const char* file,
                                      long line) {
  throw std::invalid_argument(std::string(message) + " (" + file + ":" +
                              std::to_string(line) + ")");
}

[[noreturn]] inline void ensures_fail(const char* message, const char* file,
                                      long line) {
  throw std::logic_error(std::string(message) + " (" + file + ":" +
                         std::to_string(line) + ")");
}

}  // namespace detail
}  // namespace chenfd

#if CHENFD_AUDIT_LEVEL >= 1
/// Precondition (argument validation).  Active at audit level >= 1.
#define CHENFD_EXPECTS(condition, message)                                 \
  do {                                                                     \
    if (!(condition))                                                      \
      ::chenfd::detail::expects_fail((message), __FILE__, __LINE__);       \
  } while (false)
/// Postcondition / internal invariant.  Active at audit level >= 1.
#define CHENFD_ENSURES(condition, message)                                 \
  do {                                                                     \
    if (!(condition))                                                      \
      ::chenfd::detail::ensures_fail((message), __FILE__, __LINE__);       \
  } while (false)
#else
#define CHENFD_EXPECTS(condition, message) ((void)0)
#define CHENFD_ENSURES(condition, message) ((void)0)
#endif

#if CHENFD_AUDIT_LEVEL >= 2
/// Expensive invariant (hot paths, O(domain) scans).  Active at level 2.
#define CHENFD_AUDIT(condition, message)                                   \
  do {                                                                     \
    if (!(condition))                                                      \
      ::chenfd::detail::ensures_fail((message), __FILE__, __LINE__);       \
  } while (false)
#else
#define CHENFD_AUDIT(condition, message) ((void)0)
#endif
