// NFD-U — the paper's failure detector for unsynchronized, drift-free
// clocks with *known* expected arrival times (Fig. 9).
//
// Identical to NFD-S except that q sets the freshness points by shifting
// the expected arrival times of the heartbeats instead of their sending
// times: tau_i = EA_i + alpha, where EA_i = sigma_i + E(D) expressed in q's
// local clock.  Since q can compute the EA_i without knowing p's clock
// offset, no clock synchronization is needed.
//
// q keeps the largest received sequence number ell; when the local clock
// reaches tau_{ell+1} no received message is fresh any more, so q suspects.
// When a newer message m_j arrives, q advances ell, recomputes tau_{ell+1},
// and trusts iff the current time has not yet passed it.

#pragma once

#include <functional>

#include "clock/clock.hpp"
#include "common/time.hpp"
#include "core/failure_detector.hpp"
#include "core/params.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {

class NfdU : public FailureDetector {
 public:
  /// Returns the expected arrival time of heartbeat `seq` on q's local
  /// clock.  NFD-U assumes these are known; the simulation harness supplies
  /// the true values.  (NFD-E overrides expected_arrival() instead.)
  using EaProvider = std::function<TimePoint(net::SeqNo)>;

  NfdU(sim::Simulator& simulator, const clk::Clock& q_clock,
       NfdUParams params, EaProvider ea_provider);

  void on_heartbeat(const net::Message& m, TimePoint real_now) override;

  /// Re-arms a stopped detector (supervised warm-restart path): clears the
  /// stopped flag so heartbeats are processed again.  The output stays
  /// whatever it was — a freshly constructed detector starts suspecting —
  /// and no freshness timer is armed until the next heartbeat.
  void activate() override { stopped_ = false; }

  /// Cancels the pending freshness timer and ignores further heartbeats
  /// until activate() is called again (tear-down, or a supervised monitor
  /// crash).
  void stop();

  [[nodiscard]] const NfdUParams& params() const { return params_; }
  [[nodiscard]] net::SeqNo max_seq() const { return ell_; }

  /// Replaces (eta, alpha), effective from the next heartbeat (the pending
  /// freshness deadline is left as computed).  Used by the adaptive service
  /// (Section 8.1.1) when it reconfigures the detector.
  void set_params(NfdUParams params) {
    params.validate();
    params_ = params;
  }

 protected:
  /// NFD-E substitutes the Eq. (6.3) estimate here.
  [[nodiscard]] virtual TimePoint expected_arrival(net::SeqNo seq);

  [[nodiscard]] const clk::Clock& q_clock() const { return q_clock_; }

  /// Rehydrates the largest-received sequence number from a snapshot
  /// (NfdE::restore).  Only meaningful while no freshness timer is pending:
  /// the restored detector suspects until the next heartbeat re-derives its
  /// freshness schedule.
  void restore_max_seq(net::SeqNo seq) {
    CHENFD_EXPECTS(timer_ == 0,
                   "NfdU::restore_max_seq: freshness timer already armed");
    ell_ = seq;
  }

 private:
  void on_freshness_deadline();

  sim::Simulator& sim_;
  const clk::Clock& q_clock_;
  NfdUParams params_;
  EaProvider ea_provider_;
  net::SeqNo ell_ = 0;  // largest sequence number received (0 = none)
  sim::EventId timer_ = 0;
  bool stopped_ = false;
};

}  // namespace chenfd::core
