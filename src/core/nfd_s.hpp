// NFD-S — the paper's new failure detector for synchronized clocks (Fig. 6).
//
// p sends heartbeat m_i at time sigma_i = i*eta.  q derives the fixed
// freshness points tau_i = sigma_i + delta and, during [tau_i, tau_{i+1}),
// trusts p iff it has received some heartbeat m_j with j >= i ("a message
// that is still fresh", Lemma 2).
//
// The two properties that distinguish NFD-S from the common algorithm:
//   - the probability of a premature timeout on m_i does not depend on the
//     heartbeats preceding m_i (freshness points are fixed, not anchored to
//     receipt times), and
//   - detection time is bounded by delta + eta regardless of the maximum
//     message delay (Theorem 5.1).

#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "core/failure_detector.hpp"
#include "core/params.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {

class NfdS final : public FailureDetector {
 public:
  /// The detector assumes q's clock is synchronized with p's, so it works
  /// directly in simulated real time.
  NfdS(sim::Simulator& simulator, NfdSParams params);

  /// Begins scheduling freshness-point checks (tau_1 = eta + delta).
  /// Called exactly once, at time 0, before any heartbeat arrives
  /// (Testbed::start does this for attached detectors).
  void activate() override;

  /// Stops the self-perpetuating freshness-point timer (for tear-down).
  void stop();

  void on_heartbeat(const net::Message& m, TimePoint real_now) override;

  [[nodiscard]] const NfdSParams& params() const { return params_; }
  /// Largest heartbeat sequence number received so far (the paper's "ell").
  [[nodiscard]] net::SeqNo max_seq() const { return max_seq_; }

 private:
  void on_freshness_point(std::uint64_t i);
  /// Freshness index i such that now is in [tau_i, tau_{i+1}); 0 before
  /// tau_1 (with tau_0 defined as 0, per Section 3.3).
  [[nodiscard]] std::uint64_t freshness_index(TimePoint t) const;

  sim::Simulator& sim_;
  NfdSParams params_;
  net::SeqNo max_seq_ = 0;
  sim::EventId pending_check_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace chenfd::core
