// Compiled delay samplers: the per-draw engine of the batched fast-sim
// kernel.
//
// The dist::DelayDistribution hierarchy is the right abstraction for the
// analytic layer (cdf/tail/moments), but its virtual sample() is the wrong
// shape for a loop that draws 10^8-10^9 delays: every draw pays an indirect
// call, and the common families pay a transcendental on top (Exponential's
// -mean*log(u)).  CompiledSampler "compiles" a distribution once, up front,
// into a direct sampler:
//
//   - Exponential / Erlang: a 256-layer ziggurat (Marsaglia & Tsang 2000)
//     for the standard exponential — the common case is one 64-bit draw,
//     one table compare and one multiply, no log.  Erlang sums `stages`
//     ziggurat draws.
//   - Constant, Uniform, Pareto, Weibull: the closed-form inverse CDF,
//     inlined (no virtual dispatch, params held by value).
//   - Shifted(inner): the compiled inner sampler plus a constant offset.
//   - Empirical: bootstrap resampling via a Lemire bounded draw over the
//     retained samples.
//   - Everything else: a precomputed inverse-CDF table — a uniform body
//     grid on u in [0, 0.99] plus a log-spaced tail grid down to
//     1 - u = 1e-9, linearly interpolated; beyond the last knot the draw
//     clamps (mass 1e-9, far below the Monte-Carlo tolerances).
//
// Every compiled sampler is cross-validated against its dist/ reference in
// tests/test_sampler.cpp (moments and quantiles) and the engines built on
// it are cross-validated against the discrete-event Testbed and the
// Theorem 5 closed forms.
//
// RNG-stream note: a compiled sampler consumes uniforms in its own order
// (the ziggurat draws a variable number per sample), so results differ
// stream-wise — not statistically — from the dist/ sample() path.  See
// "RNG-stream versioning" in DESIGN.md section 10.

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dist/distribution.hpp"

namespace chenfd::core {

/// 256-layer ziggurat for the standard exponential density e^{-x}.
/// Tables are built once per process (thread-safe function-local static).
class ExpZiggurat {
 public:
  static const ExpZiggurat& instance();

  /// One standard-exponential draw.  ~98.9% of draws take the fast path:
  /// one 64-bit generate, one table compare, one multiply.
  double operator()(Rng& rng) const {
    for (;;) {
      const std::uint64_t bits = rng();
      const std::size_t i = static_cast<std::size_t>(bits & 255u);
      const std::uint64_t j = bits >> 11;  // 53-bit uniform integer
      if (j < ke_[i]) return static_cast<double>(j) * we_[i];
      if (i == 0) return kTailStart - std::log(rng.uniform01_open_zero());
      const double x = static_cast<double>(j) * we_[i];
      if (fe_[i] + rng.uniform01() * (fe_[i - 1] - fe_[i]) < std::exp(-x)) {
        return x;
      }
      // Rejected wedge sample: loop with fresh bits.
    }
  }

  /// Start of the unbounded tail layer (the paper's R for N = 256).
  static constexpr double kTailStart = 7.697117470131487;

 private:
  ExpZiggurat();

  std::array<std::uint64_t, 256> ke_;
  std::array<double, 256> we_;
  std::array<double, 256> fe_;
};

/// A dist::DelayDistribution compiled into a direct (non-virtual) sampler.
/// Immutable after construction and stateless per draw, so one compiled
/// sampler may be shared by const reference across threads.
class CompiledSampler {
 public:
  enum class Kind {
    kExponential,  ///< ziggurat, scaled by the mean
    kErlang,       ///< sum of `stages` ziggurat draws / rate
    kConstant,
    kUniform,
    kPareto,
    kWeibull,
    kEmpirical,    ///< bootstrap over retained samples
    kTable,        ///< generic inverse-CDF table (lognormal, user types)
  };

  /// Compiles `source`.  The distribution is only inspected during
  /// construction; no reference is retained.
  explicit CompiledSampler(const dist::DelayDistribution& source);

  /// One delay draw; distributionally identical (within the documented
  /// table tolerance for kTable) to source.sample().
  [[nodiscard]] double sample(Rng& rng) const;

  /// Batch draw: out[0..n) filled with independent delays.  Equivalent to
  /// calling sample() n times on the same generator (bit-identical draw
  /// order — pinned by tests/test_sampler.cpp).
  void fill(Rng& rng, double* out, std::size_t n) const;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& source_name() const { return name_; }

 private:
  void compile_table(const dist::DelayDistribution& source);
  [[nodiscard]] double sample_table(double u) const;

  Kind kind_;
  std::string name_;
  double shift_ = 0.0;  ///< additive offset (Shifted wrappers fold in here)
  // Family parameters (meaning depends on kind_):
  //   kExponential: a_ = mean
  //   kErlang:      a_ = 1/rate, n_ = stages
  //   kConstant:    a_ = value
  //   kUniform:     a_ = lo, b_ = hi - lo
  //   kPareto:      a_ = xm, b_ = -1/alpha
  //   kWeibull:     a_ = lambda, b_ = 1/k
  double a_ = 0.0;
  double b_ = 0.0;
  unsigned n_ = 0;
  std::vector<double> body_;  ///< kTable: quantiles on the uniform body grid
  std::vector<double> tail_;  ///< kTable: quantiles on the log-spaced tail
  std::vector<double> empirical_;  ///< kEmpirical: retained samples

  // Table layout (kTable): body_ has kBodyKnots + 1 knots at
  // u = i * kBodyEnd / kBodyKnots; tail_ has kTailKnots + 1 knots at
  // 1 - u = (1 - kBodyEnd) * 10^{-j * kTailDecades / kTailKnots}.
  static constexpr std::size_t kBodyKnots = 2048;
  static constexpr double kBodyEnd = 0.99;
  static constexpr std::size_t kTailKnots = 256;
  static constexpr double kTailDecades = 7.0;  ///< down to 1 - u = 1e-9
};

/// Geometric skip-sampler for Bernoulli(p) message loss: instead of one
/// uniform draw per message, draws the gap to the next loss directly
/// (inverse-CDF of the geometric), so loss handling costs O(1) amortized
/// per *lost* message — with p_L = 0.01, one log every ~100 heartbeats.
///
/// Stream note: consumes one uniform per loss event, not one per message —
/// part of the kernel's documented RNG-stream change.
class LossSkipper {
 public:
  /// p in [0, 1).  The first call to next_gap draws the initial gap.
  LossSkipper(double p, Rng& rng) : log1m_p_(0.0), never_(p == 0.0) {
    CHENFD_EXPECTS(p >= 0.0 && p < 1.0, "LossSkipper: p must be in [0, 1)");
    if (!never_) {
      log1m_p_ = std::log1p(-p);
      next_ = draw_gap(rng);
    }
  }

  /// Absolute 0-based offset (from the stream start) of the next lost
  /// message, or a sentinel beyond any stream if p == 0.
  [[nodiscard]] std::uint64_t next_lost() const {
    return never_ ? kNever : next_;
  }

  /// Consumes the current loss and draws the offset of the following one.
  void advance(Rng& rng) {
    CHENFD_EXPECTS(!never_, "LossSkipper::advance: p == 0 has no losses");
    next_ += 1 + draw_gap(rng);
  }

  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

 private:
  [[nodiscard]] std::uint64_t draw_gap(Rng& rng) const {
    // Geometric via inversion: G = floor(ln U / ln(1-p)), U in (0, 1], has
    // Pr(G = k) = (1-p)^k p — the number of delivered messages before the
    // next loss.
    const double g = std::floor(std::log(rng.uniform01_open_zero()) / log1m_p_);
    // Guard against absurd g from U ~ 0 overflowing the cast.
    return g >= 9.0e18 ? std::uint64_t{9'000'000'000'000'000'000ull}
                       : static_cast<std::uint64_t>(g);
  }

  double log1m_p_;
  bool never_;
  std::uint64_t next_ = 0;
};

}  // namespace chenfd::core
