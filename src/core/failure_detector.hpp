// The failure detector abstraction (Section 2.1 of the paper).
//
// A failure detector at q monitors p and outputs Suspect or Trust at every
// instant.  Concrete detectors (NFD-S, NFD-U, NFD-E, SFD) are event-driven
// components living inside a sim::Simulator: they react to heartbeat
// deliveries and to timers they schedule themselves.  Observers (the QoS
// recorder, applications) subscribe to output transitions; per the paper's
// convention the output is right-continuous, i.e. at the transition instant
// the output already has its new value.

#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/verdict.hpp"
#include "net/message.hpp"

namespace chenfd::core {

class FailureDetector {
 public:
  using TransitionListener = std::function<void(const Transition&)>;

  virtual ~FailureDetector() = default;

  /// Current output.  Detectors start suspecting (as in Fig. 6 line 2).
  [[nodiscard]] Verdict output() const { return output_; }

  /// Called once, at simulation time 0, before any heartbeat flows —
  /// detectors that drive themselves off a fixed schedule (NFD-S and its
  /// freshness points) arm their first timer here.  Default: nothing.
  virtual void activate() {}

  /// Delivery hook: heartbeat `m` received at real time `real_now`.
  /// Implementations read their own local clock to timestamp the arrival.
  virtual void on_heartbeat(const net::Message& m, TimePoint real_now) = 0;

  /// Subscribes to output transitions.  Multiple listeners are supported;
  /// they are invoked in subscription order.
  void add_listener(TransitionListener listener) {
    listeners_.push_back(std::move(listener));
  }

 protected:
  /// Sets the output at time `at`, notifying listeners iff it changed.
  void set_output(TimePoint at, Verdict v) {
    if (v == output_) return;
    output_ = v;
    const Transition t{at, v};
    for (const auto& l : listeners_) l(t);
  }

 private:
  Verdict output_ = Verdict::kSuspect;
  std::vector<TransitionListener> listeners_;
};

}  // namespace chenfd::core
