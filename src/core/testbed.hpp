// A two-process testbed: process p (heartbeat sender), a probabilistic
// link, and one or more failure detectors at process q — the system of
// Section 1.2 of the paper, assembled and ready to run.
//
// Several detectors may be attached at once; they all observe the *same*
// heartbeat deliveries, which is exactly the coupling used in the proof of
// the optimality theorem (Theorem 6 compares algorithms "in which the
// heartbeat delays and losses are exactly as in r*").  The comparison
// benches exploit this to evaluate NFD-S and SFD on identical runs.
//
// Typical use:
//
//   Testbed tb(Testbed::Config{...});
//   core::NfdS nfd(tb.simulator(), params);
//   tb.attach(nfd);
//   qos::Recorder rec = ...; nfd.add_listener(...);
//   nfd.start(); tb.start();
//   tb.simulator().run_until(TimePoint(100000.0));

#pragma once

#include <memory>
#include <vector>

#include "clock/clock.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/failure_detector.hpp"
#include "core/heartbeat_sender.hpp"
#include "dist/distribution.hpp"
#include "net/link.hpp"
#include "net/loss_model.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {

class Testbed {
 public:
  struct Config {
    std::unique_ptr<dist::DelayDistribution> delay;  ///< required
    std::unique_ptr<net::LossModel> loss;            ///< required
    Duration eta = seconds(1.0);                     ///< heartbeat period
    Duration p_clock_offset = Duration::zero();      ///< p's skew
    Duration q_clock_offset = Duration::zero();      ///< q's skew
    double duplication_probability = 0.0;
    std::uint64_t seed = 42;
  };

  explicit Testbed(Config config);

  /// Registers a detector to receive every heartbeat delivery.  Detectors
  /// must outlive the testbed's run.  Must precede start().
  void attach(FailureDetector& detector);

  /// Starts the heartbeat schedule.  Call exactly once, after attaching
  /// detectors.
  void start();

  /// Crashes p at the given simulated time.
  void crash_p_at(TimePoint at) { sender_.crash_at(at); }
  /// Recovers p (crash-recovery model): requires a crash scheduled at or
  /// before `at`; see HeartbeatSender::recover_at.
  void recover_p_at(TimePoint at) { sender_.recover_at(at); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Link& link() { return *link_; }
  [[nodiscard]] HeartbeatSender& sender() { return sender_; }
  [[nodiscard]] const clk::Clock& p_clock() const { return p_clock_; }
  [[nodiscard]] const clk::Clock& q_clock() const { return q_clock_; }
  /// Mutable clock handles for fault injection (clock jumps, drift
  /// changes); the const accessors above remain the detector-facing view.
  [[nodiscard]] clk::AdjustableClock& p_clock_adjust() { return p_clock_; }
  [[nodiscard]] clk::AdjustableClock& q_clock_adjust() { return q_clock_; }
  [[nodiscard]] Duration eta() const { return sender_.eta(); }
  [[nodiscard]] bool started() const { return started_; }

 private:
  sim::Simulator sim_;
  clk::AdjustableClock p_clock_;
  clk::AdjustableClock q_clock_;
  std::unique_ptr<net::Link> link_;
  HeartbeatSender sender_;
  std::vector<FailureDetector*> detectors_;
  bool started_ = false;
};

}  // namespace chenfd::core
