#include "core/sampler.hpp"

#include <cmath>

#include "dist/constant.hpp"
#include "dist/empirical.hpp"
#include "dist/erlang.hpp"
#include "dist/exponential.hpp"
#include "dist/pareto.hpp"
#include "dist/shifted.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"

namespace chenfd::core {
namespace {

// Lemire bounded draw: idx = (r * n) >> 64, bias < n / 2^64 — no divide, no
// rejection loop.  (__extension__ keeps -Wpedantic quiet about __int128.)
__extension__ typedef unsigned __int128 Uint128;

std::size_t bounded_index(std::uint64_t r, std::size_t n) {
  return static_cast<std::size_t>((static_cast<Uint128>(r) * n) >> 64);
}

}  // namespace

// ---- ExpZiggurat ---------------------------------------------------------

const ExpZiggurat& ExpZiggurat::instance() {
  static const ExpZiggurat z;
  return z;
}

ExpZiggurat::ExpZiggurat() {
  // Table setup after Marsaglia & Tsang (2000), rescaled from 2^32 to 2^53
  // so the layer test consumes the full 53-bit uniform integer.  R and V are
  // the standard constants for N = 256 exponential layers: V = R*e^-R + e^-R.
  constexpr double m = 9007199254740992.0;  // 2^53
  constexpr double v = 3.949659822581572e-3;
  double de = kTailStart;
  double te = de;
  const double q = v / std::exp(-de);
  ke_[0] = static_cast<std::uint64_t>((de / q) * m);
  ke_[1] = 0;
  we_[0] = q / m;
  we_[255] = de / m;
  fe_[0] = 1.0;
  fe_[255] = std::exp(-de);
  for (int i = 254; i >= 1; --i) {
    de = -std::log(v / de + std::exp(-de));
    ke_[i + 1] = static_cast<std::uint64_t>((de / te) * m);
    te = de;
    fe_[i] = std::exp(-de);
    we_[i] = de / m;
  }
}

// ---- CompiledSampler -----------------------------------------------------

CompiledSampler::CompiledSampler(const dist::DelayDistribution& source)
    : kind_(Kind::kTable), name_(source.name()) {
  const dist::DelayDistribution* d = &source;
  // Fold any chain of Shifted wrappers into a constant offset.
  while (const auto* s = dynamic_cast<const dist::Shifted*>(d)) {
    shift_ += s->offset();
    d = &s->inner();
  }
  if (const auto* e = dynamic_cast<const dist::Exponential*>(d)) {
    kind_ = Kind::kExponential;
    a_ = e->mean();
  } else if (const auto* er = dynamic_cast<const dist::Erlang*>(d)) {
    kind_ = Kind::kErlang;
    n_ = static_cast<unsigned>(er->stages());
    a_ = 1.0 / er->rate();
  } else if (const auto* c = dynamic_cast<const dist::Constant*>(d)) {
    kind_ = Kind::kConstant;
    a_ = c->value();
  } else if (const auto* u = dynamic_cast<const dist::Uniform*>(d)) {
    kind_ = Kind::kUniform;
    a_ = u->lo();
    b_ = u->hi() - u->lo();
  } else if (const auto* p = dynamic_cast<const dist::Pareto*>(d)) {
    kind_ = Kind::kPareto;
    a_ = p->xm();
    b_ = -1.0 / p->alpha();
  } else if (const auto* w = dynamic_cast<const dist::Weibull*>(d)) {
    kind_ = Kind::kWeibull;
    a_ = w->scale();
    b_ = 1.0 / w->shape();
  } else if (const auto* em = dynamic_cast<const dist::Empirical*>(d)) {
    kind_ = Kind::kEmpirical;
    empirical_.assign(em->samples().begin(), em->samples().end());
    // The sample set is caller-supplied input, not a derived result, so an
    // empty one is a precondition violation (EXPECTS), not a broken
    // postcondition.
    CHENFD_EXPECTS(!empirical_.empty(),
                   "CompiledSampler: empirical distribution has no samples");
  } else {
    kind_ = Kind::kTable;
    compile_table(*d);
  }
}

void CompiledSampler::compile_table(const dist::DelayDistribution& source) {
  // Body: uniform grid on u in [0, kBodyEnd].  quantile(0) may be the
  // distribution's lower support bound; use a tiny positive u instead.
  body_.resize(kBodyKnots + 1);
  for (std::size_t i = 0; i <= kBodyKnots; ++i) {
    const double u =
        std::max(1e-12, kBodyEnd * static_cast<double>(i) /
                            static_cast<double>(kBodyKnots));
    body_[i] = source.quantile(u);
  }
  // Tail: knots log-spaced in 1 - u from 1 - kBodyEnd down through
  // kTailDecades decades (u up to 1 - 1e-9 for the defaults).
  tail_.resize(kTailKnots + 1);
  for (std::size_t j = 0; j <= kTailKnots; ++j) {
    const double decades =
        kTailDecades * static_cast<double>(j) / static_cast<double>(kTailKnots);
    const double one_minus_u = (1.0 - kBodyEnd) * std::pow(10.0, -decades);
    tail_[j] = source.quantile(1.0 - one_minus_u);
  }
  // The quantile function of a distribution on (0, inf) is nondecreasing;
  // if the bracketing fallback ever produced a dip the interpolation below
  // would silently sample from a deformed distribution.
  for (std::size_t i = 1; i < body_.size(); ++i) {
    CHENFD_ENSURES(body_[i] >= body_[i - 1],
                   "CompiledSampler: non-monotone body quantile table");
  }
  for (std::size_t j = 1; j < tail_.size(); ++j) {
    CHENFD_ENSURES(tail_[j] >= tail_[j - 1],
                   "CompiledSampler: non-monotone tail quantile table");
  }
}

double CompiledSampler::sample_table(double u) const {
  if (u <= kBodyEnd) {
    const double pos =
        u * (static_cast<double>(kBodyKnots) / kBodyEnd);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    return body_[lo] + frac * (body_[lo + 1] - body_[lo]);
  }
  // Tail: interpolate linearly in t = log10((1 - kBodyEnd) / (1 - u)),
  // clamping past the last knot (mass 10^-kTailDecades of (1 - kBodyEnd)).
  const double one_minus_u = 1.0 - u;
  const double t = std::log10((1.0 - kBodyEnd) /
                              std::max(one_minus_u, 1e-300));
  const double pos = std::min(
      t * (static_cast<double>(kTailKnots) / kTailDecades),
      static_cast<double>(kTailKnots));
  const std::size_t lo = std::min(static_cast<std::size_t>(pos),
                                  kTailKnots - 1);
  const double frac = pos - static_cast<double>(lo);
  return tail_[lo] + frac * (tail_[lo + 1] - tail_[lo]);
}

double CompiledSampler::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kExponential:
      return shift_ + a_ * ExpZiggurat::instance()(rng);
    case Kind::kErlang: {
      const ExpZiggurat& z = ExpZiggurat::instance();
      double acc = 0.0;
      for (unsigned s = 0; s < n_; ++s) acc += z(rng);
      return shift_ + a_ * acc;
    }
    case Kind::kConstant:
      return shift_ + a_;
    case Kind::kUniform:
      return shift_ + a_ + b_ * rng.uniform01();
    case Kind::kPareto:
      return shift_ + a_ * std::pow(rng.uniform01_open_zero(), b_);
    case Kind::kWeibull:
      return shift_ +
             a_ * std::pow(-std::log(rng.uniform01_open_zero()), b_);
    case Kind::kEmpirical:
      return shift_ + empirical_[bounded_index(rng(), empirical_.size())];
    case Kind::kTable:
      return shift_ + sample_table(rng.uniform01_open_zero());
  }
  CHENFD_ENSURES(false, "CompiledSampler: unreachable kind");
  return 0.0;
}

void CompiledSampler::fill(Rng& rng, double* out, std::size_t n) const {
  // Per-kind loops keep the switch out of the hot path; each arm matches
  // sample() draw-for-draw so batch and scalar use are interchangeable.
  switch (kind_) {
    case Kind::kExponential: {
      const ExpZiggurat& z = ExpZiggurat::instance();
      for (std::size_t i = 0; i < n; ++i) out[i] = shift_ + a_ * z(rng);
      return;
    }
    case Kind::kErlang: {
      const ExpZiggurat& z = ExpZiggurat::instance();
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (unsigned s = 0; s < n_; ++s) acc += z(rng);
        out[i] = shift_ + a_ * acc;
      }
      return;
    }
    case Kind::kConstant:
      for (std::size_t i = 0; i < n; ++i) out[i] = shift_ + a_;
      return;
    case Kind::kUniform:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = shift_ + a_ + b_ * rng.uniform01();
      }
      return;
    case Kind::kPareto:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = shift_ + a_ * std::pow(rng.uniform01_open_zero(), b_);
      }
      return;
    case Kind::kWeibull:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = shift_ +
                 a_ * std::pow(-std::log(rng.uniform01_open_zero()), b_);
      }
      return;
    case Kind::kEmpirical:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = shift_ + empirical_[bounded_index(rng(), empirical_.size())];
      }
      return;
    case Kind::kTable:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = shift_ + sample_table(rng.uniform01_open_zero());
      }
      return;
  }
  CHENFD_ENSURES(false, "CompiledSampler: unreachable kind");
}

}  // namespace chenfd::core
