#include "core/fast_sim.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace chenfd::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared transition bookkeeping: turns an alternating S/T transition
/// stream (plus a measurement window) into an AccuracyResult.  Callers
/// invoke on_suspect / on_trust only on genuine transitions.
class Tally {
 public:
  explicit Tally(const StopCriteria& stop) : stop_(stop) {}

  void begin(double t) {
    begun_ = true;
    window_start_ = t;
    last_change_ = t;
  }
  [[nodiscard]] bool begun() const { return begun_; }

  /// Records an S-transition at t.  Returns true when the run's mistake
  /// target is reached (the caller should end the window exactly here).
  bool on_suspect(double t) {
    if (!begun_) return false;
    trust_seconds_ += t - last_change_;  // the interval just ended was Trust
    last_change_ = t;
    if (last_s_) res_.mistake_recurrence.add(t - *last_s_);
    if (last_t_) res_.good_period.add(t - *last_t_);
    last_s_ = t;
    ++res_.s_transitions;
    return res_.s_transitions >= stop_.target_s_transitions;
  }

  void on_trust(double t) {
    if (!begun_) return;
    last_change_ = t;  // the interval just ended was Suspect: no trust time
    if (last_s_) res_.mistake_duration.add(t - *last_s_);
    last_t_ = t;
  }

  AccuracyResult finish(double t_end, bool trusting_now,
                        std::uint64_t heartbeats) {
    if (begun_) {
      if (trusting_now) trust_seconds_ += t_end - last_change_;
      res_.observed_seconds = t_end - window_start_;
    }
    res_.trust_seconds = trust_seconds_;
    res_.heartbeats = heartbeats;
    return std::move(res_);
  }

 private:
  StopCriteria stop_;
  AccuracyResult res_;
  bool begun_ = false;
  double window_start_ = 0.0;
  double last_change_ = 0.0;
  double trust_seconds_ = 0.0;
  std::optional<double> last_s_;
  std::optional<double> last_t_;
};

/// Receipt-time generator: r_i = i*eta + D_i, or +infinity if m_i is lost.
class ReceiptSampler {
 public:
  ReceiptSampler(double eta, double p_loss,
                 const dist::DelayDistribution& delay, Rng& rng)
      : eta_(eta), p_loss_(p_loss), delay_(delay), rng_(rng) {}

  [[nodiscard]] double receipt(std::uint64_t seq) {
    if (rng_.bernoulli(p_loss_)) return kInf;
    return eta_ * static_cast<double>(seq) + delay_.sample(rng_);
  }

  /// Delay only (for event-loop engines that need send & receipt times).
  [[nodiscard]] double delay_or_inf() {
    if (rng_.bernoulli(p_loss_)) return kInf;
    return delay_.sample(rng_);
  }

 private:
  double eta_;
  double p_loss_;
  const dist::DelayDistribution& delay_;
  Rng& rng_;
};

int ceil_ratio(double a, double b) {
  const double r = a / b;
  const double eps = 1e-9 * (r > 1.0 ? r : 1.0);
  return static_cast<int>(std::ceil(r - eps));
}

/// The NFD-S sliding-window scan, generic over the per-message delay
/// source so the i.i.d. fast path stays direct-call while the correlated
/// ablation goes through std::function.
template <typename DelayFn>
AccuracyResult nfd_s_scan(NfdSParams params, double p_loss,
                          DelayFn&& next_delay, Rng& rng,
                          const StopCriteria& stop) {
  params.validate();
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "fast_nfd_s_accuracy: p_loss must be in [0, 1)");
  const double eta = params.eta.seconds();
  const double dlt = params.delta.seconds();
  const int k = ceil_ratio(dlt, eta);
  ensures(k >= 1, "fast_nfd_s_accuracy: k must be >= 1 since delta > 0");

  // Receipt time of m_seq, or +inf if lost.  The delay is sampled for lost
  // messages too, so a stateful (correlated) sampler advances uniformly.
  const auto receipt = [&](std::uint64_t seq) {
    const double d = next_delay(rng);
    if (p_loss > 0.0 && rng.bernoulli(p_loss)) return kInf;
    return eta * static_cast<double>(seq) + d;
  };

  Tally tally(stop);

  // Ring of the receipt times of m_i .. m_{i+k} (Proposition 13: only these
  // can affect the output in [tau_i, tau_{i+1})).
  const std::size_t ring_size = static_cast<std::size_t>(k) + 1;
  std::vector<double> ring(ring_size);
  for (std::uint64_t j = 1; j <= ring_size; ++j) {
    ring[(j - 1) % ring_size] = receipt(j);
  }

  bool trusting = false;  // output entering tau_1 (warmup absorbs any error)
  std::uint64_t i = 1;
  double end_time = 0.0;
  for (;; ++i) {
    const double tau = static_cast<double>(i) * eta + dlt;
    const double tau_next = tau + eta;
    if (!tally.begun() && i >= stop.warmup_intervals) tally.begin(tau);

    double first_fresh = kInf;
    for (double r : ring) {
      if (r < first_fresh) first_fresh = r;
    }

    if (trusting && first_fresh > tau) {
      // Freshness check fails at tau_i: S-transition (Proposition 13.1).
      trusting = false;
      if (tally.on_suspect(tau)) {
        end_time = tau;
        break;
      }
    } else if (!trusting && first_fresh <= tau) {
      // Only possible before steady state (a fresh message arrived during a
      // pre-window suspicion); silently resynchronize.
      trusting = true;
    }
    if (!trusting && first_fresh < tau_next) {
      // T-transition when the first fresh message arrives mid-interval.
      trusting = true;
      tally.on_trust(first_fresh);
    }

    if (i >= stop.max_heartbeats) {
      end_time = tau_next;
      break;
    }
    // Slide the window: drop r_i, generate r_{i+k+1} (slot indices for
    // seq j are (j-1) mod (k+1), and (i+k) mod (k+1) == (i-1) mod (k+1)).
    ring[(i - 1) % ring_size] = receipt(i + ring_size);
  }
  return tally.finish(end_time, trusting, i);
}

/// Min-heap of in-flight (receipt time, seq) pairs for the event-loop
/// engines.
using InFlight =
    std::priority_queue<std::pair<double, std::uint64_t>,
                        std::vector<std::pair<double, std::uint64_t>>,
                        std::greater<>>;

}  // namespace

AccuracyResult fast_nfd_s_accuracy(NfdSParams params, double p_loss,
                                   const dist::DelayDistribution& delay,
                                   Rng& rng, const StopCriteria& stop) {
  return nfd_s_scan(
      params, p_loss, [&delay](Rng& r) { return delay.sample(r); }, rng,
      stop);
}

AccuracyResult fast_nfd_s_accuracy_sampled(
    NfdSParams params, double p_loss,
    const std::function<double(Rng&)>& delay_sampler, Rng& rng,
    const StopCriteria& stop) {
  expects(static_cast<bool>(delay_sampler),
          "fast_nfd_s_accuracy_sampled: sampler required");
  return nfd_s_scan(params, p_loss, delay_sampler, rng, stop);
}

AccuracyResult fast_nfd_e_accuracy(NfdEParams params, double p_loss,
                                   const dist::DelayDistribution& delay,
                                   Rng& rng, const StopCriteria& stop) {
  params.validate();
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "fast_nfd_e_accuracy: p_loss must be in [0, 1)");
  const double eta = params.eta.seconds();
  const double alpha = params.alpha.seconds();
  ReceiptSampler sampler(eta, p_loss, delay, rng);
  Tally tally(stop);

  // Eq. (6.3) estimation window: normalized receipt times A' - eta*s.
  std::deque<std::pair<double, std::uint64_t>> window;  // (normalized, seq)
  double normalized_sum = 0.0;
  const auto estimate_ea = [&](std::uint64_t seq) {
    return normalized_sum / static_cast<double>(window.size()) +
           eta * static_cast<double>(seq);
  };

  InFlight inflight;
  std::uint64_t sent = 0;
  std::uint64_t ell = 0;
  double deadline = kInf;  // pending freshness deadline tau_{ell+1}
  bool trusting = false;
  const double warmup_end =
      static_cast<double>(stop.warmup_intervals) * eta + alpha + eta;

  double end_time = 0.0;
  for (;;) {
    const double t_send = static_cast<double>(sent + 1) * eta;
    const double t_recv = inflight.empty() ? kInf : inflight.top().first;
    const double t_next = std::min({t_send, t_recv, deadline});

    if (!tally.begun() && t_next >= warmup_end) tally.begin(warmup_end);

    if (t_recv <= t_send && t_recv <= deadline) {
      // Receipt first (messages received "by" a deadline count, and receipt
      // order is what the algorithm reacts to).
      const auto [t, seq] = inflight.top();
      inflight.pop();
      if (window.empty() || seq > window.back().second) {
        const double normalized = t - eta * static_cast<double>(seq);
        window.emplace_back(normalized, seq);
        normalized_sum += normalized;
        if (window.size() > params.window) {
          normalized_sum -= window.front().first;
          window.pop_front();
        }
      }
      if (seq > ell) {
        ell = seq;
        const double tau_next = estimate_ea(ell + 1) + alpha;
        if (t < tau_next) {
          deadline = tau_next;
          if (!trusting) {
            trusting = true;
            tally.on_trust(t);
          }
        } else {
          // Even the newest message is stale (possible only when the EA
          // estimate shifted); suspect, no deadline pending.
          deadline = kInf;
          if (trusting) {
            trusting = false;
            if (tally.on_suspect(t)) {
              end_time = t;
              break;
            }
          }
        }
      }
    } else if (deadline <= t_send) {
      // Freshness deadline: no received message is still fresh.
      const double t = deadline;
      deadline = kInf;
      if (trusting) {
        trusting = false;
        if (tally.on_suspect(t)) {
          end_time = t;
          break;
        }
      }
    } else {
      // Send m_{sent+1}.
      ++sent;
      if (sent > stop.max_heartbeats) {
        end_time = t_send;
        break;
      }
      const double d = sampler.delay_or_inf();
      if (!std::isinf(d)) inflight.emplace(t_send + d, sent);
    }
  }
  return tally.finish(end_time, trusting, sent);
}

AccuracyResult fast_sfd_accuracy(SfdParams params, Duration eta_d,
                                 double p_loss,
                                 const dist::DelayDistribution& delay,
                                 Rng& rng, const StopCriteria& stop) {
  params.validate();
  expects(eta_d > Duration::zero(), "fast_sfd_accuracy: eta must be positive");
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "fast_sfd_accuracy: p_loss must be in [0, 1)");
  const double eta = eta_d.seconds();
  const double to = params.timeout.seconds();
  const double cutoff = params.cutoff.seconds();
  ReceiptSampler sampler(eta, p_loss, delay, rng);
  Tally tally(stop);

  InFlight inflight;
  std::uint64_t sent = 0;
  std::uint64_t ell = 0;
  double deadline = kInf;
  bool trusting = false;
  const double warmup_end = static_cast<double>(stop.warmup_intervals) * eta;

  double end_time = 0.0;
  for (;;) {
    const double t_send = static_cast<double>(sent + 1) * eta;
    const double t_recv = inflight.empty() ? kInf : inflight.top().first;
    const double t_next = std::min({t_send, t_recv, deadline});

    if (!tally.begun() && t_next >= warmup_end) tally.begin(warmup_end);

    if (t_recv <= t_send && t_recv <= deadline) {
      const auto [t, seq] = inflight.top();
      inflight.pop();
      if (seq > ell) {  // only *newer* heartbeats restart the timer
        ell = seq;
        deadline = t + to;
        if (!trusting) {
          trusting = true;
          tally.on_trust(t);
        }
      }
    } else if (deadline <= t_send) {
      const double t = deadline;
      deadline = kInf;
      if (trusting) {
        trusting = false;
        if (tally.on_suspect(t)) {
          end_time = t;
          break;
        }
      }
    } else {
      ++sent;
      if (sent > stop.max_heartbeats) {
        end_time = t_send;
        break;
      }
      const double d = sampler.delay_or_inf();
      // The cutoff discards heartbeats delayed more than c (Section 7.2);
      // discarding at generation is equivalent and cheaper.
      if (d <= cutoff) inflight.emplace(t_send + d, sent);
    }
  }
  return tally.finish(end_time, trusting, sent);
}

}  // namespace chenfd::core
