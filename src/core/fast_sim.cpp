#include "core/fast_sim.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/rounding.hpp"

namespace chenfd::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Receipts (or delays) generated per SoA block refill.  4096 doubles =
/// 32 KiB — inside L1/L2 so block passes (sample fill, loss marking, send
/// offsets) and the consuming scan stay cache-resident.
constexpr std::size_t kBlockLen = 4096;

/// In-flight heap slots reserved up front for the event-loop engines.  The
/// heap holds one entry per undelivered sent message, so occupancy above
/// this requires a single delay longer than kInFlightReserve heartbeat
/// periods — far outside the delay regimes the paper (and our test
/// distributions) consider.  Audit level >= 1 asserts the reserve held.
constexpr std::size_t kInFlightReserve = 4096;

/// Shared transition bookkeeping: turns an alternating S/T transition
/// stream (plus a measurement window) into an AccuracyResult.  Callers
/// invoke on_suspect / on_trust only on genuine transitions.
class Tally {
 public:
  explicit Tally(const StopCriteria& stop) : stop_(stop), res_(stop) {}

  void begin(double t) {
    begun_ = true;
    window_start_ = t;
    last_change_ = t;
  }
  [[nodiscard]] bool begun() const { return begun_; }

  /// Records an S-transition at t.  Returns true when the run's mistake
  /// target is reached (the caller should end the window exactly here).
  bool on_suspect(double t) {
    if (!begun_) return false;
    trust_seconds_ += t - last_change_;  // the interval just ended was Trust
    last_change_ = t;
    if (last_s_) res_.mistake_recurrence.add(t - *last_s_);
    if (last_t_) res_.good_period.add(t - *last_t_);
    last_s_ = t;
    ++res_.s_transitions;
    return res_.s_transitions >= stop_.target_s_transitions;
  }

  void on_trust(double t) {
    if (!begun_) return;
    last_change_ = t;  // the interval just ended was Suspect: no trust time
    if (last_s_) res_.mistake_duration.add(t - *last_s_);
    last_t_ = t;
  }

  AccuracyResult finish(double t_end, bool trusting_now,
                        std::uint64_t heartbeats) {
    if (begun_) {
      if (trusting_now) trust_seconds_ += t_end - last_change_;
      res_.observed_seconds = t_end - window_start_;
    }
    res_.trust_seconds = trust_seconds_;
    res_.heartbeats = heartbeats;
    if (AccuracyResult::reservoir_capacity(stop_) <=
        AccuracyResult::kReservoirReserve) {
      // A run records at most target + 1 samples per reservoir, so when the
      // up-front reserve covers the target the measurement must have been
      // reallocation-free.
      CHENFD_ENSURES(res_.mistake_recurrence.within_reserve() &&
                         res_.mistake_duration.within_reserve() &&
                         res_.good_period.within_reserve(),
                     "fast_sim: sample reservoir grew during measurement");
    }
    return std::move(res_);
  }

 private:
  StopCriteria stop_;
  AccuracyResult res_;
  bool begun_ = false;
  double window_start_ = 0.0;
  double last_change_ = 0.0;
  double trust_seconds_ = 0.0;
  std::optional<double> last_s_;
  std::optional<double> last_t_;
};

[[nodiscard]] std::size_t ceil_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// SoA stream of per-message values generated a block at a time: delays
/// from the compiled sampler, losses marked +inf by geometric skipping, and
/// (in receipt mode) send times j*eta added so entries are receipt times.
/// Consuming the stream is an array read; all per-draw machinery runs once
/// per block over contiguous memory.
class BatchedStream {
 public:
  enum class Mode { kReceipts, kDelays };

  BatchedStream(Mode mode, double eta, double p_loss,
                const CompiledSampler& delay, Rng& rng, MonotonicArena& arena)
      : mode_(mode),
        eta_(eta),
        delay_(delay),
        loss_(p_loss, rng),
        rng_(rng),
        block_(kBlockLen, ArenaAllocator<double>(arena)) {}

  /// Value for the next message in sequence (first call is m_1): receipt
  /// time j*eta + D_j in kReceipts mode, bare delay D_j in kDelays mode;
  /// +inf either way when m_j is lost.
  [[nodiscard]] double next() {
    if (idx_ == kBlockLen) refill();
    return block_[idx_++];
  }

 private:
  void refill() {
    delay_.fill(rng_, block_.data(), kBlockLen);
    // `first` is the 0-based offset of block_[0] in the message stream
    // (message m_{first+1}); the skipper reports lost offsets in the same
    // coordinates.
    const std::uint64_t first = generated_;
    while (loss_.next_lost() < first + kBlockLen) {
      block_[static_cast<std::size_t>(loss_.next_lost() - first)] = kInf;
      loss_.advance(rng_);
    }
    if (mode_ == Mode::kReceipts) {
      for (std::size_t i = 0; i < kBlockLen; ++i) {
        // Direct j*eta (not an incremental sum) so receipt times carry no
        // accumulated rounding over 10^9-message streams.
        block_[i] += eta_ * static_cast<double>(first + 1 + i);
      }
    }
    generated_ += kBlockLen;
    idx_ = 0;
  }

  Mode mode_;
  double eta_;
  const CompiledSampler& delay_;
  LossSkipper loss_;
  Rng& rng_;
  ArenaVector<double> block_;
  std::size_t idx_ = kBlockLen;
  std::uint64_t generated_ = 0;
};

/// Monotone ring deque over (receipt, seq): receipts increase from the
/// front, so the front is the minimum of the current window.  push() evicts
/// dominated entries from the back (a newer message with an earlier receipt
/// makes older, later receipts irrelevant); expire_below() drops entries
/// that left the window.  Both are O(1) amortized — each entry is pushed
/// and popped at most once — replacing the old O(k) per-interval ring scan.
class MinWindow {
 public:
  MinWindow(std::size_t window, MonotonicArena& arena)
      : mask_(ceil_pow2(window + 1) - 1),
        val_(mask_ + 1, ArenaAllocator<double>(arena)),
        seq_(mask_ + 1, ArenaAllocator<std::uint64_t>(arena)) {}

  void push(std::uint64_t seq, double r) {
    while (tail_ != head_ && val_[(tail_ - 1) & mask_] >= r) --tail_;
    val_[tail_ & mask_] = r;
    seq_[tail_ & mask_] = seq;
    ++tail_;
  }

  void expire_below(std::uint64_t min_seq) {
    while (tail_ != head_ && seq_[head_ & mask_] < min_seq) ++head_;
  }

  /// Minimum receipt time in the window (+inf when every entry was lost —
  /// then the deque still holds the newest lost entry, which is +inf).
  [[nodiscard]] double min() const {
    return tail_ == head_ ? kInf : val_[head_ & mask_];
  }

 private:
  std::size_t mask_;
  ArenaVector<double> val_;
  ArenaVector<std::uint64_t> seq_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

/// Pre-sized binary min-heap of in-flight (receipt time, seq) pairs for the
/// event-loop engines, SoA so sift compares touch one contiguous array.
/// Grows (from the arena) only beyond kInFlightReserve live messages;
/// grew() reports whether that ever happened.
class InFlightHeap {
 public:
  InFlightHeap(std::size_t reserve, MonotonicArena& arena)
      : t_(reserve < 1 ? 1 : reserve, ArenaAllocator<double>(arena)),
        s_(reserve < 1 ? 1 : reserve, ArenaAllocator<std::uint64_t>(arena)) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] double top_time() const { return t_[0]; }
  [[nodiscard]] std::uint64_t top_seq() const { return s_[0]; }
  [[nodiscard]] bool grew() const { return grew_; }

  void push(double t, std::uint64_t seq) {
    if (size_ == t_.size()) {
      t_.resize(t_.size() * 2);
      s_.resize(s_.size() * 2);
      grew_ = true;
    }
    std::size_t i = size_++;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (t_[parent] <= t) break;
      t_[i] = t_[parent];
      s_[i] = s_[parent];
      i = parent;
    }
    t_[i] = t;
    s_[i] = seq;
  }

  void pop() {
    --size_;
    const double t = t_[size_];
    const std::uint64_t seq = s_[size_];
    std::size_t i = 0;
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= size_) break;
      if (child + 1 < size_ && t_[child + 1] < t_[child]) ++child;
      if (t_[child] >= t) break;
      t_[i] = t_[child];
      s_[i] = s_[child];
      i = child;
    }
    if (size_ != 0) {
      t_[i] = t;
      s_[i] = seq;
    }
  }

 private:
  ArenaVector<double> t_;
  ArenaVector<std::uint64_t> s_;
  std::size_t size_ = 0;
  bool grew_ = false;
};

/// The NFD-S sliding-window scan, generic over the receipt source so the
/// batched SoA stream stays a direct call while the correlated ablation
/// goes through std::function.  `receipt(seq)` is called with strictly
/// increasing seq starting at 1 and returns the receipt time of m_seq (or
/// +inf if lost).
template <typename ReceiptFn>
AccuracyResult nfd_s_window_scan(const NfdSParams& params,
                                 ReceiptFn&& receipt,
                                 const StopCriteria& stop,
                                 MonotonicArena& arena) {
  const double eta = params.eta.seconds();
  const double dlt = params.delta.seconds();
  const auto k = static_cast<std::uint64_t>(ceil_ratio(dlt, eta));
  ensures(k >= 1, "fast_nfd_s_accuracy: k must be >= 1 since delta > 0");

  Tally tally(stop);

  // Window of the receipt times of m_i .. m_{i+k} (Proposition 13: only
  // these can affect the output in [tau_i, tau_{i+1})).
  MinWindow win(static_cast<std::size_t>(k) + 1, arena);
  for (std::uint64_t j = 1; j <= k + 1; ++j) win.push(j, receipt(j));

  bool trusting = false;  // output entering tau_1 (warmup absorbs any error)
  std::uint64_t i = 1;
  double end_time = 0.0;
  for (;; ++i) {
    const double tau = static_cast<double>(i) * eta + dlt;
    const double tau_next = tau + eta;
    if (!tally.begun() && i >= stop.warmup_intervals) tally.begin(tau);

    win.expire_below(i);
    const double first_fresh = win.min();

    if (trusting && first_fresh > tau) {
      // Freshness check fails at tau_i: S-transition (Proposition 13.1).
      trusting = false;
      if (tally.on_suspect(tau)) {
        end_time = tau;
        break;
      }
    } else if (!trusting && first_fresh <= tau) {
      // Only possible before steady state (a fresh message arrived during a
      // pre-window suspicion); silently resynchronize.
      trusting = true;
    }
    if (!trusting && first_fresh < tau_next) {
      // T-transition when the first fresh message arrives mid-interval.
      trusting = true;
      tally.on_trust(first_fresh);
    }

    if (i >= stop.max_heartbeats) {
      end_time = tau_next;
      break;
    }
    // Slide the window: m_i expires next interval, m_{i+k+1} enters.
    win.push(i + k + 1, receipt(i + k + 1));
  }
  return tally.finish(end_time, trusting, i);
}

/// Resolves the caller-supplied arena, falling back to a private per-run
/// arena when none was given.
class ArenaScope {
 public:
  explicit ArenaScope(MonotonicArena* external) {
    if (external == nullptr) arena_ = &local_.emplace();
    else arena_ = external;
  }
  [[nodiscard]] MonotonicArena& get() { return *arena_; }

 private:
  std::optional<MonotonicArena> local_;
  MonotonicArena* arena_ = nullptr;
};

}  // namespace

namespace {

/// The batched NFD-S kernel.  The key inequality: if m_i was delivered with
/// delay D_i <= delta, then r_i = i*eta + D_i <= tau_i, so the freshness
/// check at tau_i passes and a trusting detector stays trusting — no
/// transition, no state change, regardless of every other message.  Blocks
/// of raw delays are therefore scanned once for "late" messages (lost, or
/// D > delta); while the detector is trusting, the interval index jumps
/// straight to the next late message with zero per-interval work.  Only
/// intervals at (or dragged behind by) a late message run the exact
/// freshness-window logic, reading receipts on demand from a double-
/// buffered delay ring.  Amortized cost per heartbeat: one ziggurat draw
/// plus one compare.
AccuracyResult nfd_s_skip_scan(const NfdSParams& params, double p_loss,
                               const CompiledSampler& delay, Rng& rng,
                               const StopCriteria& stop,
                               MonotonicArena& arena) {
  const double eta = params.eta.seconds();
  const double dlt = params.delta.seconds();
  const auto k = static_cast<std::uint64_t>(ceil_ratio(dlt, eta));
  ensures(k >= 1, "fast_nfd_s_accuracy: k must be >= 1 since delta > 0");

  Tally tally(stop);
  LossSkipper loss(p_loss, rng);

  // Raw delays of the last two generated blocks, indexed by (seq-1) &
  // rmask; +inf marks a lost message.  The window [i, i+k] always lies
  // within the newest 2*kBlockLen sequence numbers because refills happen
  // only when gen < i + k and k < kBlockLen.
  constexpr std::size_t kRingMask = 2 * kBlockLen - 1;
  ArenaVector<double> delays(2 * kBlockLen, ArenaAllocator<double>(arena));
  // FIFO ring of the sequence numbers of late messages (ascending).  Late
  // entries live between i and gen <= i + k + kBlockLen, so 4*kBlockLen
  // slots can never overflow.
  constexpr std::size_t kLateMask = 4 * kBlockLen - 1;
  ArenaVector<std::uint64_t> late(4 * kBlockLen,
                                  ArenaAllocator<std::uint64_t>(arena));
  std::size_t lhead = 0;
  std::size_t ltail = 0;
  std::uint64_t gen = 0;  // messages m_1 .. m_gen have been generated

  const auto refill = [&] {
    double* blk = delays.data() + (gen & kRingMask);
    delay.fill(rng, blk, kBlockLen);
    const std::uint64_t first = gen;  // 0-based offset of blk[0]
    while (loss.next_lost() < first + kBlockLen) {
      blk[static_cast<std::size_t>(loss.next_lost() - first)] = kInf;
      loss.advance(rng);
    }
    for (std::size_t j = 0; j < kBlockLen; ++j) {
      if (blk[j] > dlt) {  // catches +inf (lost) too
        late[ltail & kLateMask] = first + 1 + j;
        ++ltail;
      }
    }
    gen += kBlockLen;
  };
  const auto receipt = [&](std::uint64_t seq) {
    return eta * static_cast<double>(seq) +
           delays[static_cast<std::size_t>((seq - 1) & kRingMask)];
  };

  bool trusting = false;  // output entering tau_1 (warmup absorbs any error)
  std::uint64_t i = 1;
  double end_time = 0.0;
  for (;;) {
    // Drop late entries whose window has fully passed.
    while (lhead != ltail && late[lhead & kLateMask] < i) ++lhead;

    if (trusting && tally.begun()) {
      // Skip ahead: every interval whose own heartbeat was on time is
      // transition-free while trusting.  The skip stops at the next late
      // message, the edge of the generated stream (status unknown beyond),
      // or the heartbeat cap (that interval ends the run).
      std::uint64_t target = lhead != ltail ? late[lhead & kLateMask]
                                            : gen + 1;
      if (target > stop.max_heartbeats) target = stop.max_heartbeats;
      if (target > i) {
        i = target;
        continue;  // re-evaluate with the late list popped up to the new i
      }
    }

    while (gen < i + k) refill();

    const double tau = static_cast<double>(i) * eta + dlt;
    const double tau_next = tau + eta;
    if (!tally.begun() && i >= stop.warmup_intervals) tally.begin(tau);

    double first_fresh = kInf;
    for (std::uint64_t j = i; j <= i + k; ++j) {
      const double r = receipt(j);
      if (r < first_fresh) first_fresh = r;
    }

    if (trusting && first_fresh > tau) {
      // Freshness check fails at tau_i: S-transition (Proposition 13.1).
      trusting = false;
      if (tally.on_suspect(tau)) {
        end_time = tau;
        break;
      }
    } else if (!trusting && first_fresh <= tau) {
      // Only possible before steady state (a fresh message arrived during a
      // pre-window suspicion); silently resynchronize.
      trusting = true;
    }
    if (!trusting && first_fresh < tau_next) {
      // T-transition when the first fresh message arrives mid-interval.
      trusting = true;
      tally.on_trust(first_fresh);
    }

    if (i >= stop.max_heartbeats) {
      end_time = tau_next;
      break;
    }
    ++i;
  }
  return tally.finish(end_time, trusting, i);
}

}  // namespace

AccuracyResult fast_nfd_s_accuracy(NfdSParams params, double p_loss,
                                   const CompiledSampler& delay, Rng& rng,
                                   const StopCriteria& stop,
                                   MonotonicArena* arena) {
  params.validate();
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "fast_nfd_s_accuracy: p_loss must be in [0, 1)");
  ArenaScope scope(arena);
  const double eta = params.eta.seconds();
  const auto k = static_cast<std::uint64_t>(
      ceil_ratio(params.delta.seconds(), eta));
  if (k < kBlockLen) {
    return nfd_s_skip_scan(params, p_loss, delay, rng, stop, scope.get());
  }
  // Freshness window wider than a generation block (delta/eta >= 4096):
  // stream receipts through the O(1)-amortized monotone-deque scan instead.
  BatchedStream stream(BatchedStream::Mode::kReceipts, eta, p_loss, delay,
                       rng, scope.get());
  return nfd_s_window_scan(
      params, [&stream](std::uint64_t) { return stream.next(); }, stop,
      scope.get());
}

AccuracyResult fast_nfd_s_accuracy(NfdSParams params, double p_loss,
                                   const dist::DelayDistribution& delay,
                                   Rng& rng, const StopCriteria& stop,
                                   MonotonicArena* arena) {
  return fast_nfd_s_accuracy(params, p_loss, CompiledSampler(delay), rng,
                             stop, arena);
}

AccuracyResult fast_nfd_s_accuracy_sampled(
    NfdSParams params, double p_loss,
    const std::function<double(Rng&)>& delay_sampler, Rng& rng,
    const StopCriteria& stop, MonotonicArena* arena) {
  expects(static_cast<bool>(delay_sampler),
          "fast_nfd_s_accuracy_sampled: sampler required");
  params.validate();
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "fast_nfd_s_accuracy_sampled: p_loss must be in [0, 1)");
  const double eta = params.eta.seconds();
  ArenaScope scope(arena);
  // Legacy per-message draw order (delay, then loss coin), and the delay is
  // sampled for lost messages too, so a stateful (correlated) sampler
  // advances uniformly across the stream.
  const auto receipt = [&](std::uint64_t seq) {
    const double d = delay_sampler(rng);
    if (p_loss > 0.0 && rng.bernoulli(p_loss)) return kInf;
    return eta * static_cast<double>(seq) + d;
  };
  return nfd_s_window_scan(params, receipt, stop, scope.get());
}

AccuracyResult fast_nfd_e_accuracy(NfdEParams params, double p_loss,
                                   const CompiledSampler& delay, Rng& rng,
                                   const StopCriteria& stop,
                                   MonotonicArena* arena) {
  params.validate();
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "fast_nfd_e_accuracy: p_loss must be in [0, 1)");
  const double eta = params.eta.seconds();
  const double alpha = params.alpha.seconds();
  ArenaScope scope(arena);
  BatchedStream delays(BatchedStream::Mode::kDelays, eta, p_loss, delay, rng,
                       scope.get());
  Tally tally(stop);

  // Eq. (6.3) estimation window, as a fixed ring of the last `window`
  // normalized receipt times A' - eta*s with a running sum.
  const std::size_t wcap = params.window;
  ArenaVector<double> wnorm(wcap, ArenaAllocator<double>(scope.get()));
  std::size_t wcount = 0;
  std::size_t whead = 0;  // oldest entry when wcount == wcap
  std::uint64_t wlast_seq = 0;
  double normalized_sum = 0.0;
  const auto estimate_ea = [&](std::uint64_t seq) {
    return normalized_sum / static_cast<double>(wcount) +
           eta * static_cast<double>(seq);
  };

  InFlightHeap inflight(
      static_cast<std::size_t>(std::min<std::uint64_t>(stop.max_heartbeats,
                                                       kInFlightReserve)),
      scope.get());
  std::uint64_t sent = 0;
  std::uint64_t ell = 0;
  double deadline = kInf;  // pending freshness deadline tau_{ell+1}
  bool trusting = false;
  const double warmup_end =
      static_cast<double>(stop.warmup_intervals) * eta + alpha + eta;

  double end_time = 0.0;
  for (;;) {
    const double t_send = static_cast<double>(sent + 1) * eta;
    const double t_recv = inflight.empty() ? kInf : inflight.top_time();
    const double t_next = std::min({t_send, t_recv, deadline});

    if (!tally.begun() && t_next >= warmup_end) tally.begin(warmup_end);

    if (t_recv <= t_send && t_recv <= deadline) {
      // Receipt first (messages received "by" a deadline count, and receipt
      // order is what the algorithm reacts to).
      const double t = inflight.top_time();
      const std::uint64_t seq = inflight.top_seq();
      inflight.pop();
      if (wcount == 0 || seq > wlast_seq) {
        const double normalized = t - eta * static_cast<double>(seq);
        if (wcount == wcap) {
          normalized_sum -= wnorm[whead];
          wnorm[whead] = normalized;
          whead = whead + 1 == wcap ? 0 : whead + 1;
        } else {
          wnorm[wcount] = normalized;
          ++wcount;
        }
        normalized_sum += normalized;
        wlast_seq = seq;
      }
      if (seq > ell) {
        ell = seq;
        const double tau_next = estimate_ea(ell + 1) + alpha;
        if (t < tau_next) {
          deadline = tau_next;
          if (!trusting) {
            trusting = true;
            tally.on_trust(t);
          }
        } else {
          // Even the newest message is stale (possible only when the EA
          // estimate shifted); suspect, no deadline pending.
          deadline = kInf;
          if (trusting) {
            trusting = false;
            if (tally.on_suspect(t)) {
              end_time = t;
              break;
            }
          }
        }
      }
    } else if (deadline <= t_send) {
      // Freshness deadline: no received message is still fresh.
      const double t = deadline;
      deadline = kInf;
      if (trusting) {
        trusting = false;
        if (tally.on_suspect(t)) {
          end_time = t;
          break;
        }
      }
    } else {
      // Send m_{sent+1}.
      ++sent;
      if (sent > stop.max_heartbeats) {
        end_time = t_send;
        break;
      }
      const double d = delays.next();
      if (!std::isinf(d)) inflight.push(t_send + d, sent);
    }
  }
  CHENFD_ENSURES(!inflight.grew(),
                 "fast_nfd_e_accuracy: in-flight heap outgrew its reserve "
                 "(a delay exceeded kInFlightReserve heartbeat periods)");
  return tally.finish(end_time, trusting, sent);
}

AccuracyResult fast_nfd_e_accuracy(NfdEParams params, double p_loss,
                                   const dist::DelayDistribution& delay,
                                   Rng& rng, const StopCriteria& stop,
                                   MonotonicArena* arena) {
  return fast_nfd_e_accuracy(params, p_loss, CompiledSampler(delay), rng,
                             stop, arena);
}

AccuracyResult fast_sfd_accuracy(SfdParams params, Duration eta_d,
                                 double p_loss, const CompiledSampler& delay,
                                 Rng& rng, const StopCriteria& stop,
                                 MonotonicArena* arena) {
  params.validate();
  expects(eta_d > Duration::zero(), "fast_sfd_accuracy: eta must be positive");
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "fast_sfd_accuracy: p_loss must be in [0, 1)");
  const double eta = eta_d.seconds();
  const double to = params.timeout.seconds();
  const double cutoff = params.cutoff.seconds();
  ArenaScope scope(arena);
  BatchedStream delays(BatchedStream::Mode::kDelays, eta, p_loss, delay, rng,
                       scope.get());
  Tally tally(stop);

  InFlightHeap inflight(
      static_cast<std::size_t>(std::min<std::uint64_t>(stop.max_heartbeats,
                                                       kInFlightReserve)),
      scope.get());
  std::uint64_t sent = 0;
  std::uint64_t ell = 0;
  double deadline = kInf;
  bool trusting = false;
  const double warmup_end = static_cast<double>(stop.warmup_intervals) * eta;

  double end_time = 0.0;
  for (;;) {
    const double t_send = static_cast<double>(sent + 1) * eta;
    const double t_recv = inflight.empty() ? kInf : inflight.top_time();
    const double t_next = std::min({t_send, t_recv, deadline});

    if (!tally.begun() && t_next >= warmup_end) tally.begin(warmup_end);

    if (t_recv <= t_send && t_recv <= deadline) {
      const double t = inflight.top_time();
      const std::uint64_t seq = inflight.top_seq();
      inflight.pop();
      if (seq > ell) {  // only *newer* heartbeats restart the timer
        ell = seq;
        deadline = t + to;
        if (!trusting) {
          trusting = true;
          tally.on_trust(t);
        }
      }
    } else if (deadline <= t_send) {
      const double t = deadline;
      deadline = kInf;
      if (trusting) {
        trusting = false;
        if (tally.on_suspect(t)) {
          end_time = t;
          break;
        }
      }
    } else {
      ++sent;
      if (sent > stop.max_heartbeats) {
        end_time = t_send;
        break;
      }
      const double d = delays.next();
      // The cutoff discards heartbeats delayed more than c (Section 7.2);
      // discarding at generation is equivalent and cheaper.  Lost messages
      // (d = +inf) never arrive, so they are dropped even when the cutoff
      // itself is infinite.
      if (d <= cutoff && !std::isinf(d)) inflight.push(t_send + d, sent);
    }
  }
  CHENFD_ENSURES(!inflight.grew(),
                 "fast_sfd_accuracy: in-flight heap outgrew its reserve "
                 "(a delay exceeded kInFlightReserve heartbeat periods)");
  return tally.finish(end_time, trusting, sent);
}

AccuracyResult fast_sfd_accuracy(SfdParams params, Duration eta_d,
                                 double p_loss,
                                 const dist::DelayDistribution& delay,
                                 Rng& rng, const StopCriteria& stop,
                                 MonotonicArena* arena) {
  return fast_sfd_accuracy(params, eta_d, p_loss, CompiledSampler(delay), rng,
                           stop, arena);
}

}  // namespace chenfd::core
