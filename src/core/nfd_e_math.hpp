// The Eq. (6.3) arithmetic of NFD-E, extracted into free inline helpers so
// the per-pair detector (core/nfd_e.cpp) and the sharded struct-of-arrays
// fleet engine (src/fleet/) share one normalization:
//
//   EA_{ell+1}  ~=  (1/n) * sum_i (A'_i - eta * s_i)  +  (ell+1) * eta
//
// Receipt times are "normalized" by shifting them back (s_i - epoch) sending
// periods; the normalized times are averaged; the average is shifted forward
// to the slot being estimated.  Sequence numbers are kept relative to an
// epoch so rebases (rate renegotiation, incarnation bumps) reset the frame
// without renumbering history.

#pragma once

#include <cstddef>

#include "common/check.hpp"
#include "net/message.hpp"

namespace chenfd::core::eq63 {

/// Normalized receipt time A'_i - eta * (s_i - epoch): the arrival shifted
/// back to sequence slot `epoch`, in the receiver's local seconds.
[[nodiscard]] inline double normalize(double local_arrival_s, net::SeqNo seq,
                                      net::SeqNo epoch_seq, double eta_s) {
  CHENFD_EXPECTS(seq >= epoch_seq,
                 "eq63::normalize: sequence number predates the epoch");
  return local_arrival_s -
         eta_s * static_cast<double>(seq - epoch_seq);
}

/// Eq. (6.3) estimate of EA_seq from a window of `count` normalized receipt
/// times summing to `normalized_sum`, in the receiver's local seconds.
[[nodiscard]] inline double estimate(double normalized_sum, std::size_t count,
                                     net::SeqNo seq, net::SeqNo epoch_seq,
                                     double eta_s) {
  CHENFD_EXPECTS(count > 0, "eq63::estimate: empty estimation window");
  CHENFD_EXPECTS(seq >= epoch_seq,
                 "eq63::estimate: sequence number predates the epoch");
  const double base = normalized_sum / static_cast<double>(count);
  return base + eta_s * static_cast<double>(seq - epoch_seq);
}

}  // namespace chenfd::core::eq63
