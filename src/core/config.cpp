#include "core/config.hpp"

#include <cmath>
#include <functional>

#include "common/check.hpp"
#include "common/rounding.hpp"

namespace chenfd::core {
namespace {

// All procedures must output delta > 0 (NFD-S) or alpha > 0 (NFD-U), so the
// search for eta stays strictly below T_D^U (resp. T_D^U - E(D), T_D^u) by
// this relative margin.
constexpr double kStrictMargin = 1.0 - 1e-9;

// The procedures maximize eta subject to f(eta) >= T_MR^L and
// eta <= eta_max, both of which the QoS verification re-derives through a
// slightly different arithmetic path (Theorem 5's u(0)/q_0 vs Eq. 4.5's
// product).  Landing exactly on a boundary would leave the outcome to
// floating-point round-off, so both the target and eta_max get a one-ppb
// safety margin — far below any physical significance.
constexpr double kTargetMargin = 1.0 + 1e-6;

// Shave applied to delta = T_D^U - eta (and alpha = T_D^u - eta) so the
// reconstructed sum eta + delta stays at or below the requirement despite
// floating-point rounding; 1e-12 relative dwarfs the ULP of the sum while
// staying far inside the 1e-6 target margin above.
constexpr double kSumShave = 1.0 - 1e-12;

/// "Find the largest eta <= eta_max such that f(eta) >= target" (Step 2 of
/// every configuration procedure).  f is not monotone — it is roughly
/// piecewise increasing in eta with steep upward jumps as eta decreases
/// past T/j boundaries (where the ceil() in the product picks up another
/// factor) — but it grows exponentially as eta -> 0 (Appendix D), so the
/// passing set is non-empty and reaches down to 0.  We scan a fine grid
/// downward from eta_max for the first passing point, extend the scan
/// geometrically if the grid never passes, then tighten the bracket
/// [passing, failing] by bisection that maintains "lo passes".  The value
/// returned always satisfies f(eta) >= target; it is within grid+bisection
/// tolerance of the largest such eta.
std::optional<double> find_largest_eta(
    const std::function<double(double)>& f, double eta_max, double target) {
  expects(eta_max > 0.0, "find_largest_eta: eta_max must be positive");
  if (f(eta_max) >= target) return eta_max;

  constexpr int kGridPoints = 20000;
  double lo = 0.0;   // a passing eta (to be found)
  double hi = eta_max;  // a failing eta
  bool found = false;
  for (int i = 1; i <= kGridPoints; ++i) {
    const double eta = eta_max *
                       (1.0 - static_cast<double>(i) / (kGridPoints + 1));
    if (f(eta) >= target) {
      lo = eta;
      found = true;
      break;
    }
    hi = eta;
  }
  if (!found) {
    // Continue geometrically below the grid (very demanding requirements).
    double eta = eta_max / (kGridPoints + 1);
    for (int m = 0; m < 2000; ++m) {
      if (f(eta) >= target) {
        lo = eta;
        found = true;
        break;
      }
      hi = eta;
      eta /= 2.0;
      if (eta <= 0.0) break;
    }
  }
  if (!found) return std::nullopt;

  for (int it = 0; it < 200 && (hi - lo) > 1e-12 * eta_max; ++it) {
    const double mid = (lo + hi) / 2.0;
    if (f(mid) >= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

ConfigOutcome<NfdSParams> configure_exact(const qos::Requirements& req,
                                          double p_loss,
                                          const dist::DelayDistribution& delay) {
  expects(req.valid(), "configure_exact: invalid QoS requirements");
  expects(p_loss >= 0.0 && p_loss <= 1.0,
          "configure_exact: p_loss must be in [0, 1]");

  const double t_du = req.detection_time_upper.seconds();
  const double t_mu = req.mistake_duration_upper.seconds();
  const double t_mrl = req.mistake_recurrence_lower.seconds();

  // Step 1: q0' = (1 - p_L) Pr(D < T_D^U); eta_max = q0' * T_M^U.
  const double q0p = (1.0 - p_loss) * delay.cdf_strict(t_du);
  if (q0p * t_mu <= 0.0) {
    return {std::nullopt,
            "QoS cannot be achieved: no message is ever received within "
            "T_D^U of being sent (q0' = 0), so any detector meeting the "
            "detection bound suspects forever (Theorem 7 case 2)"};
  }
  // delta = T_D^U - eta must stay positive, so cap eta strictly below T_D^U.
  const double eta_max =
      std::min(q0p * t_mu * (2.0 - kTargetMargin), t_du * kStrictMargin);

  // Step 2: f(eta) = eta / (q0' * prod_{j=1}^{ceil(T/eta)-1} p_j) with
  // p_j = p_L + (1 - p_L) Pr(D > T_D^U - j*eta)   (Eq. 4.5).
  const auto f = [&](double eta) {
    const int terms = static_cast<int>(ceil_ratio(t_du, eta)) - 1;
    double denom = q0p;
    for (int j = 1; j <= terms; ++j) {
      denom *= p_loss + (1.0 - p_loss) *
                            delay.tail(t_du - static_cast<double>(j) * eta);
      if (denom == 0.0) break;
    }
    return denom > 0.0 ? eta / denom
                       : std::numeric_limits<double>::infinity();
  };

  const auto eta = find_largest_eta(f, eta_max, t_mrl * kTargetMargin);
  if (!eta) {
    return {std::nullopt,
            "numerical search failed to find eta (requirements exceed "
            "double-precision range)"};
  }
  // Step 3.  delta is shaved by the same one-ppb margin so that the
  // reconstructed bound eta + delta stays at or below T_D^U despite
  // floating-point rounding of the sum.
  return {NfdSParams{Duration(*eta), Duration((t_du - *eta) * kSumShave)},
          {}};
}

Duration max_eta_bound(const qos::Requirements& req, double p_loss,
                       const dist::DelayDistribution& delay) {
  expects(req.valid(), "max_eta_bound: invalid QoS requirements");
  const double t_du = req.detection_time_upper.seconds();
  const double q0p = (1.0 - p_loss) * delay.cdf_strict(t_du);
  const double eta_max = q0p * req.mistake_duration_upper.seconds();
  const double denom = p_loss + (1.0 - p_loss) * delay.tail(t_du);
  if (denom <= 0.0) return Duration::infinity();
  return Duration(eta_max / denom);
}

ConfigOutcome<NfdSParams> configure_from_moments(const qos::Requirements& req,
                                                 double p_loss,
                                                 double delay_mean,
                                                 double delay_variance) {
  expects(req.valid(), "configure_from_moments: invalid QoS requirements");
  expects(p_loss >= 0.0 && p_loss <= 1.0,
          "configure_from_moments: p_loss must be in [0, 1]");
  expects(delay_mean >= 0.0,
          "configure_from_moments: delay mean must be >= 0");
  expects(delay_variance >= 0.0,
          "configure_from_moments: delay variance must be >= 0");
  expects(req.detection_time_upper.seconds() > delay_mean,
          "configure_from_moments (Theorem 10): requires T_D^U > E(D)");

  const double t = req.detection_time_upper.seconds() - delay_mean;
  const double t_mu = req.mistake_duration_upper.seconds();
  const double t_mrl = req.mistake_recurrence_lower.seconds();
  const double v = delay_variance;

  // Step 1: gamma' and eta_max.
  const double gamma_p = (1.0 - p_loss) * t * t / (v + t * t);
  const double eta_max_raw = std::min(gamma_p * t_mu, t);
  if (eta_max_raw <= 0.0) {
    return {std::nullopt,
            "QoS cannot be achieved: gamma' * T_M^U = 0 (Theorem 10 case 2)"};
  }
  // delta = T_D^U - eta must stay strictly above E(D) (Theorem 9 needs
  // delta > E(D)), so cap eta strictly below T_D^U - E(D).
  const double eta_max =
      std::min(eta_max_raw * (2.0 - kTargetMargin), t * kStrictMargin);

  // Step 2: f(eta) = eta * prod_{j} [V + (t - j eta)^2]/[V + pL (t - j eta)^2]
  // (Eq. 5.2).
  const auto f = [&](double eta) {
    const int terms = static_cast<int>(ceil_ratio(t, eta)) - 1;
    double prod = eta;
    for (int j = 1; j <= terms; ++j) {
      const double s = t - static_cast<double>(j) * eta;
      prod *= (v + s * s) / (v + p_loss * s * s);
      if (std::isinf(prod)) break;
    }
    return prod;
  };

  const auto eta = find_largest_eta(f, eta_max, t_mrl * kTargetMargin);
  if (!eta) {
    return {std::nullopt,
            "numerical search failed to find eta (requirements exceed "
            "double-precision range)"};
  }
  return {NfdSParams{Duration(*eta),
                     Duration((req.detection_time_upper.seconds() - *eta) *
                              kSumShave)},
          {}};
}

ConfigOutcome<NfdUParams> configure_nfd_u(const RelativeRequirements& req,
                                          double p_loss,
                                          double delay_variance) {
  expects(req.valid(), "configure_nfd_u: invalid QoS requirements");
  expects(p_loss >= 0.0 && p_loss <= 1.0,
          "configure_nfd_u: p_loss must be in [0, 1]");
  expects(delay_variance >= 0.0,
          "configure_nfd_u: delay variance must be >= 0");

  const double t = req.detection_time_upper_rel.seconds();
  const double t_mu = req.mistake_duration_upper.seconds();
  const double t_mrl = req.mistake_recurrence_lower.seconds();
  const double v = delay_variance;

  // Step 1 (Section 6.2): gamma' = (1-pL)(T_D^u)^2 / (V + (T_D^u)^2).
  const double gamma_p = (1.0 - p_loss) * t * t / (v + t * t);
  const double eta_max_raw = std::min(gamma_p * t_mu, t);
  if (eta_max_raw <= 0.0) {
    return {std::nullopt,
            "QoS cannot be achieved: gamma' * T_M^U = 0 (Theorem 12 case 2)"};
  }
  // alpha = T_D^u - eta must stay positive.
  const double eta_max =
      std::min(eta_max_raw * (2.0 - kTargetMargin), t * kStrictMargin);

  // Step 2 (Eq. 6.2).
  const auto f = [&](double eta) {
    const int terms = static_cast<int>(ceil_ratio(t, eta)) - 1;
    double prod = eta;
    for (int j = 1; j <= terms; ++j) {
      const double s = t - static_cast<double>(j) * eta;
      prod *= (v + s * s) / (v + p_loss * s * s);
      if (std::isinf(prod)) break;
    }
    return prod;
  };

  const auto eta = find_largest_eta(f, eta_max, t_mrl * kTargetMargin);
  if (!eta) {
    return {std::nullopt,
            "numerical search failed to find eta (requirements exceed "
            "double-precision range)"};
  }
  return {NfdUParams{Duration(*eta),
                     Duration(
                         (req.detection_time_upper_rel.seconds() - *eta) *
                         kSumShave)},
          {}};
}

}  // namespace chenfd::core
