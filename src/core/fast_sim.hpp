// Optimized Monte-Carlo accuracy simulation — the engine behind the Fig. 12
// reproduction.
//
// The paper's Fig. 12 plots E(T_MR) over T_D^U in [1, 3.5] with eta = 1,
// p_L = 0.01 and exponential delays.  At T_D^U = 3.5 the expected mistake
// recurrence time of NFD-S is ~10^6 heartbeat periods, so observing even a
// few hundred mistakes takes ~10^8-10^9 heartbeats — far beyond what a
// general discrete-event simulator handles comfortably.  This module
// provides specialized per-algorithm simulation loops that process one
// heartbeat in a few nanoseconds:
//
//   - NFD-S: a sliding-window scan over freshness intervals.  By
//     Proposition 13, the output in [tau_i, tau_{i+1}) depends only on the
//     receipt times of m_i .. m_{i+k}; the scan keeps exactly those k+1
//     receipt times in a ring buffer.
//   - NFD-E and SFD: a lean three-source event loop (sends, receipts via a
//     small in-flight heap, one freshness/timeout deadline).
//
// Every engine is cross-validated against the discrete-event Testbed (and,
// for NFD-S, against the Theorem 5 closed forms) in tests/.

#pragma once

#include <cstdint>
#include <functional>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/params.hpp"
#include "dist/distribution.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::core {

/// When to stop an accuracy run.  The run ends at the S-transition that
/// completes `target_s_transitions` (so the T_MR window is unbiased), or at
/// `max_heartbeats` if mistakes are too rare to reach the target.
struct StopCriteria {
  std::size_t target_s_transitions = 500;   ///< as in the paper's Section 7
  std::uint64_t max_heartbeats = 200'000'000;
  std::uint64_t warmup_intervals = 64;      ///< discarded before measuring
};

/// Steady-state accuracy measurement of one run (failure-free, Section 2.2
/// semantics).  All durations in seconds.
struct AccuracyResult {
  std::uint64_t heartbeats = 0;      ///< heartbeats sent during measurement
  double observed_seconds = 0.0;     ///< measurement window length
  double trust_seconds = 0.0;        ///< time spent trusting
  std::size_t s_transitions = 0;     ///< mistakes observed
  stats::SampleSet mistake_recurrence{1u << 16};  ///< T_MR samples
  stats::SampleSet mistake_duration{1u << 16};    ///< T_M samples
  stats::SampleSet good_period{1u << 16};         ///< T_G samples

  /// Folds another run's measurements into this one (totals add, sample
  /// sets merge).  Used by runner::ParallelSweep to reduce per-replication
  /// results; the reduction is performed in a fixed (task-index) order so
  /// the merged result is bit-identical regardless of which thread finished
  /// first.
  void merge(const AccuracyResult& other) {
    // Merge preconditions: each operand must describe a physically possible
    // run (time trusting cannot exceed time observed) and its interval
    // counts must agree with its sample sets, or the ordered reduction
    // would silently launder a corrupted replication into the estimate.
    // Trust time is an incremental sum while the window is one subtraction,
    // so the comparison allows relative rounding slack.
    CHENFD_EXPECTS(other.trust_seconds <=
                       other.observed_seconds +
                           1e-9 * (1.0 + other.observed_seconds),
                   "AccuracyResult::merge: trust time exceeds window");
    CHENFD_EXPECTS(other.trust_seconds >= 0.0 && other.observed_seconds >= 0.0,
                   "AccuracyResult::merge: negative interval totals");
    CHENFD_EXPECTS(other.mistake_recurrence.count() <= other.s_transitions,
                   "AccuracyResult::merge: more T_MR samples than mistakes");
    heartbeats += other.heartbeats;
    observed_seconds += other.observed_seconds;
    trust_seconds += other.trust_seconds;
    s_transitions += other.s_transitions;
    mistake_recurrence.merge(other.mistake_recurrence);
    mistake_duration.merge(other.mistake_duration);
    good_period.merge(other.good_period);
  }

  [[nodiscard]] double e_tmr() const { return mistake_recurrence.mean(); }
  [[nodiscard]] double e_tm() const { return mistake_duration.mean(); }
  [[nodiscard]] double query_accuracy() const {
    return observed_seconds > 0.0 ? trust_seconds / observed_seconds : 0.0;
  }
  [[nodiscard]] double mistake_rate() const {
    return observed_seconds > 0.0
               ? static_cast<double>(s_transitions) / observed_seconds
               : 0.0;
  }
};

/// NFD-S accuracy via the sliding-window scan.  Clocks synchronized.
[[nodiscard]] AccuracyResult fast_nfd_s_accuracy(
    NfdSParams params, double p_loss, const dist::DelayDistribution& delay,
    Rng& rng, const StopCriteria& stop = {});

/// Variant of the NFD-S engine taking an arbitrary (possibly stateful)
/// per-message delay sampler — used by the correlated-delay ablation
/// (net::CorrelatedDelaySampler) that probes the paper's message
/// independence assumption (Section 3.3 / footnote 10).
[[nodiscard]] AccuracyResult fast_nfd_s_accuracy_sampled(
    NfdSParams params, double p_loss,
    const std::function<double(Rng&)>& delay_sampler, Rng& rng,
    const StopCriteria& stop = {});

/// NFD-E accuracy via the event loop (estimated expected arrival times,
/// Eq. 6.3).  Clock skew does not affect NFD-E's behaviour (Section 6), so
/// the loop runs in real time without loss of generality.
[[nodiscard]] AccuracyResult fast_nfd_e_accuracy(
    NfdEParams params, double p_loss, const dist::DelayDistribution& delay,
    Rng& rng, const StopCriteria& stop = {});

/// SFD accuracy via the event loop.  `eta` is the heartbeat period (a
/// property of the sender, not of SFD itself).
[[nodiscard]] AccuracyResult fast_sfd_accuracy(
    SfdParams params, Duration eta, double p_loss,
    const dist::DelayDistribution& delay, Rng& rng,
    const StopCriteria& stop = {});

}  // namespace chenfd::core
