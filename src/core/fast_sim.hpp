// Batched Monte-Carlo accuracy simulation — the engine behind the Fig. 12
// reproduction.
//
// The paper's Fig. 12 plots E(T_MR) over T_D^U in [1, 3.5] with eta = 1,
// p_L = 0.01 and exponential delays.  At T_D^U = 3.5 the expected mistake
// recurrence time of NFD-S is ~10^6 heartbeat periods, so observing even a
// few hundred mistakes takes ~10^8-10^9 heartbeats — far beyond what a
// general discrete-event simulator handles comfortably.  This module
// provides specialized per-algorithm kernels that process one heartbeat in
// a few nanoseconds:
//
//   - Delays come from a core::CompiledSampler (sampler.hpp): each
//     dist::DelayDistribution is compiled once into a direct sampler
//     (ziggurat for exponential families, closed-form inverses, or a
//     precomputed inverse-CDF table) — no virtual dispatch per draw.
//   - Bernoulli losses are skip-sampled geometrically (core::LossSkipper):
//     a lost message costs one log draw, a delivered message costs nothing.
//   - Receipt times are generated in fixed-size SoA blocks consumed
//     branch-light by the per-algorithm loops.
//   - NFD-S: a sliding-window scan over freshness intervals.  By
//     Proposition 13, the output in [tau_i, tau_{i+1}) depends only on the
//     receipt times of m_i .. m_{i+k}; a monotone ring deque keeps the
//     window minimum in O(1) amortized per heartbeat for any k.
//   - NFD-E and SFD: a lean three-source event loop (sends, receipts via a
//     pre-sized in-flight heap, one freshness/timeout deadline).
//   - All scratch (blocks, rings, heap storage) lives in a MonotonicArena.
//     Callers may pass a reusable arena (runner::ArenaPool gives each
//     ParallelSweep worker one) so repeated runs do no per-run heap work;
//     without one the engine creates a private arena for the run.
//
// RNG-stream versioning (stream v2): the batched kernel consumes the
// task's uniform stream in a different order than the pre-batching engines
// (ziggurat draws a variable number of uniforms per delay; losses consume
// one draw per *loss* instead of one per message).  Results are therefore
// deterministic and bit-identical for a given seed and --jobs count — but
// not bit-comparable with runs recorded before the batched kernel landed.
// Statistical agreement with the old engines, the discrete-event Testbed
// and the Theorem 5 closed forms is pinned by tests/.
//
// Every engine is cross-validated against the discrete-event Testbed (and,
// for NFD-S, against the Theorem 5 closed forms) in tests/.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/params.hpp"
#include "core/sampler.hpp"
#include "dist/distribution.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::core {

/// When to stop an accuracy run.  The run ends at the S-transition that
/// completes `target_s_transitions` (so the T_MR window is unbiased), or at
/// `max_heartbeats` if mistakes are too rare to reach the target.
struct StopCriteria {
  std::size_t target_s_transitions = 500;   ///< as in the paper's Section 7
  std::uint64_t max_heartbeats = 200'000'000;
  std::uint64_t warmup_intervals = 64;      ///< discarded before measuring
};

/// Steady-state accuracy measurement of one run (failure-free, Section 2.2
/// semantics).  All durations in seconds.
struct AccuracyResult {
  /// Hard ceiling on retained raw samples per reservoir (the historical
  /// default capacity).
  static constexpr std::size_t kReservoirCap = std::size_t{1} << 16;
  /// How much of the reservoir the pre-sized constructor reserves eagerly;
  /// runs whose mistake target fits are guaranteed realloc-free.
  static constexpr std::size_t kReservoirReserve = 4096;

  AccuracyResult() = default;

  /// Pre-sizes the sample reservoirs for a run with the given stop
  /// criteria: a run observes at most target_s_transitions mistakes, hence
  /// at most target + 1 samples per reservoir, so sizing from the stop
  /// criteria makes steady-state measurement reallocation-free (asserted
  /// at audit level >= 1 when the target fits kReservoirReserve).
  explicit AccuracyResult(const StopCriteria& stop)
      : mistake_recurrence(reservoir_capacity(stop)),
        mistake_duration(reservoir_capacity(stop)),
        good_period(reservoir_capacity(stop)) {
    const std::size_t up_front =
        std::min(reservoir_capacity(stop), kReservoirReserve);
    mistake_recurrence.reserve(up_front);
    mistake_duration.reserve(up_front);
    good_period.reserve(up_front);
  }

  [[nodiscard]] static std::size_t reservoir_capacity(
      const StopCriteria& stop) {
    return std::min(stop.target_s_transitions + 1, kReservoirCap);
  }

  std::uint64_t heartbeats = 0;      ///< heartbeats sent during measurement
  double observed_seconds = 0.0;     ///< measurement window length
  double trust_seconds = 0.0;        ///< time spent trusting
  std::size_t s_transitions = 0;     ///< mistakes observed
  stats::SampleSet mistake_recurrence{kReservoirCap};  ///< T_MR samples
  stats::SampleSet mistake_duration{kReservoirCap};    ///< T_M samples
  stats::SampleSet good_period{kReservoirCap};         ///< T_G samples

  /// Folds another run's measurements into this one (totals add, sample
  /// sets merge).  Used by runner::ParallelSweep to reduce per-replication
  /// results; the reduction is performed in a fixed (task-index) order so
  /// the merged result is bit-identical regardless of which thread finished
  /// first.
  void merge(const AccuracyResult& other) {
    // Merge preconditions: each operand must describe a physically possible
    // run (time trusting cannot exceed time observed) and its interval
    // counts must agree with its sample sets, or the ordered reduction
    // would silently launder a corrupted replication into the estimate.
    // Trust time is an incremental sum while the window is one subtraction,
    // so the comparison allows relative rounding slack.
    CHENFD_EXPECTS(other.trust_seconds <=
                       other.observed_seconds +
                           1e-9 * (1.0 + other.observed_seconds),
                   "AccuracyResult::merge: trust time exceeds window");
    CHENFD_EXPECTS(other.trust_seconds >= 0.0 && other.observed_seconds >= 0.0,
                   "AccuracyResult::merge: negative interval totals");
    CHENFD_EXPECTS(other.mistake_recurrence.count() <= other.s_transitions,
                   "AccuracyResult::merge: more T_MR samples than mistakes");
    heartbeats += other.heartbeats;
    observed_seconds += other.observed_seconds;
    trust_seconds += other.trust_seconds;
    s_transitions += other.s_transitions;
    mistake_recurrence.merge(other.mistake_recurrence);
    mistake_duration.merge(other.mistake_duration);
    good_period.merge(other.good_period);
  }

  [[nodiscard]] double e_tmr() const { return mistake_recurrence.mean(); }
  [[nodiscard]] double e_tm() const { return mistake_duration.mean(); }
  [[nodiscard]] double query_accuracy() const {
    return observed_seconds > 0.0 ? trust_seconds / observed_seconds : 0.0;
  }
  [[nodiscard]] double mistake_rate() const {
    return observed_seconds > 0.0
               ? static_cast<double>(s_transitions) / observed_seconds
               : 0.0;
  }
};

// Each engine comes in two forms: the DelayDistribution overload compiles
// the sampler per call (convenient for one-off runs), and the
// CompiledSampler overload reuses a sampler compiled once (what the
// runner's task factories do — compilation can cost milliseconds for
// table-backed distributions).  `arena` optionally supplies reusable
// scratch memory; pass nullptr for a private per-run arena.

/// NFD-S accuracy via the sliding-window scan.  Clocks synchronized.
[[nodiscard]] AccuracyResult fast_nfd_s_accuracy(
    NfdSParams params, double p_loss, const dist::DelayDistribution& delay,
    Rng& rng, const StopCriteria& stop = {}, MonotonicArena* arena = nullptr);
[[nodiscard]] AccuracyResult fast_nfd_s_accuracy(
    NfdSParams params, double p_loss, const CompiledSampler& delay, Rng& rng,
    const StopCriteria& stop = {}, MonotonicArena* arena = nullptr);

/// Variant of the NFD-S engine taking an arbitrary (possibly stateful)
/// per-message delay sampler — used by the correlated-delay ablation
/// (net::CorrelatedDelaySampler) that probes the paper's message
/// independence assumption (Section 3.3 / footnote 10).  This path keeps
/// the legacy per-message draw order (delay, then loss coin) so stateful
/// samplers advance uniformly; it shares the windowed scan with the
/// batched kernel.
[[nodiscard]] AccuracyResult fast_nfd_s_accuracy_sampled(
    NfdSParams params, double p_loss,
    const std::function<double(Rng&)>& delay_sampler, Rng& rng,
    const StopCriteria& stop = {}, MonotonicArena* arena = nullptr);

/// NFD-E accuracy via the event loop (estimated expected arrival times,
/// Eq. 6.3).  Clock skew does not affect NFD-E's behaviour (Section 6), so
/// the loop runs in real time without loss of generality.
[[nodiscard]] AccuracyResult fast_nfd_e_accuracy(
    NfdEParams params, double p_loss, const dist::DelayDistribution& delay,
    Rng& rng, const StopCriteria& stop = {}, MonotonicArena* arena = nullptr);
[[nodiscard]] AccuracyResult fast_nfd_e_accuracy(
    NfdEParams params, double p_loss, const CompiledSampler& delay, Rng& rng,
    const StopCriteria& stop = {}, MonotonicArena* arena = nullptr);

/// SFD accuracy via the event loop.  `eta` is the heartbeat period (a
/// property of the sender, not of SFD itself).
[[nodiscard]] AccuracyResult fast_sfd_accuracy(
    SfdParams params, Duration eta, double p_loss,
    const dist::DelayDistribution& delay, Rng& rng,
    const StopCriteria& stop = {}, MonotonicArena* arena = nullptr);
[[nodiscard]] AccuracyResult fast_sfd_accuracy(
    SfdParams params, Duration eta, double p_loss,
    const CompiledSampler& delay, Rng& rng, const StopCriteria& stop = {},
    MonotonicArena* arena = nullptr);

}  // namespace chenfd::core
