// Configuration procedures: computing failure detector parameters that meet
// a set of QoS requirements (Sections 4, 5 and 6 of the paper).
//
// Three procedures, in decreasing order of knowledge about the system:
//
//   configure_exact        (Section 4, Theorem 7)  — knows p_L and the full
//     delay distribution Pr(D <= x); synchronized clocks; outputs NFD-S
//     parameters (eta, delta).
//   configure_from_moments (Section 5, Theorem 10) — knows only p_L, E(D),
//     V(D); synchronized clocks; outputs NFD-S parameters.
//   configure_nfd_u        (Section 6, Theorem 12) — knows only p_L, V(D);
//     unsynchronized drift-free clocks; detection bound is *relative*
//     (T_D <= T_D^u + E(D)); outputs NFD-U/NFD-E parameters (eta, alpha).
//
// Each procedure either returns parameters that provably satisfy the
// requirements, or reports that *no* failure detector can achieve them
// (Theorems 7/10/12 part 2).  All of them maximize the heartbeat interval
// eta (to minimize network cost) subject to the requirements, up to the
// numerical search tolerance.

#pragma once

#include <optional>
#include <string>

#include "common/time.hpp"
#include "core/params.hpp"
#include "dist/distribution.hpp"
#include "qos/metrics.hpp"

namespace chenfd::core {

/// Result of a configuration procedure: either parameters, or a reason why
/// the QoS is unachievable.  "Unachievable" is an expected outcome, not an
/// error, hence a value rather than an exception.
template <typename Params>
struct ConfigOutcome {
  std::optional<Params> params;
  std::string reason;  ///< set when !params

  [[nodiscard]] bool achievable() const { return params.has_value(); }
};

/// Section 4: known probabilistic behaviour.  Requires req.valid().
[[nodiscard]] ConfigOutcome<NfdSParams> configure_exact(
    const qos::Requirements& req, double p_loss,
    const dist::DelayDistribution& delay);

/// Proposition 8: a distribution-independent upper bound on the largest eta
/// any NFD-S configuration could use while meeting `req` — used to judge
/// how close configure_exact's eta is to optimal.
[[nodiscard]] Duration max_eta_bound(const qos::Requirements& req,
                                     double p_loss,
                                     const dist::DelayDistribution& delay);

/// Section 5: unknown distribution, known p_L, E(D), V(D).  Requires
/// req.detection_time_upper > E(D) (Theorem 10's hypothesis).
[[nodiscard]] ConfigOutcome<NfdSParams> configure_from_moments(
    const qos::Requirements& req, double p_loss, double delay_mean,
    double delay_variance);

/// QoS requirements for unsynchronized clocks (Section 6, Eq. 6.1): the
/// detection bound is relative to the unknown E(D):
///   T_D <= detection_time_upper_rel + E(D).
struct RelativeRequirements {
  Duration detection_time_upper_rel;   ///< T_D^u
  Duration mistake_recurrence_lower;   ///< T_MR^L
  Duration mistake_duration_upper;     ///< T_M^U

  [[nodiscard]] bool valid() const {
    return detection_time_upper_rel > Duration::zero() &&
           mistake_recurrence_lower > Duration::zero() &&
           mistake_duration_upper > Duration::zero();
  }
};

/// Section 6: unsynchronized drift-free clocks, known p_L and V(D) only.
[[nodiscard]] ConfigOutcome<NfdUParams> configure_nfd_u(
    const RelativeRequirements& req, double p_loss, double delay_variance);

}  // namespace chenfd::core
