// The monitored process p (Fig. 6 / Fig. 9, process p side).
//
// p sends heartbeat m_i at local time sigma_i = i * eta, for i = 1, 2, ...
// A sender can crash at a scheduled time, after which it sends nothing;
// messages already in flight are unaffected (the link's behaviour is
// independent of the crash, as the model in Section 3.1 requires).
//
// Beyond the paper's crash-stop model, a crashed sender can *recover*
// (crash-recovery model; see DESIGN.md section 8): at the recovery time it
// immediately re-announces itself with the next heartbeat and resumes the
// every-eta schedule on its recovered local clock, sigma'_j = t_rec + j*eta.
// Sequence numbers continue from where the crash interrupted them, so
// detectors and estimators can tell a recovery (time gap, contiguous seq)
// from a partition (time gap matched by a seq gap).  Faults may be chained
// into crash -> recover -> crash -> ... cycles; scheduling calls must be
// made in that alternation and in non-decreasing time order.

#pragma once

#include <deque>
#include <optional>

#include "clock/clock.hpp"
#include "common/time.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {

class HeartbeatSender {
 public:
  /// The sender reads `clock` for its local timestamps and sends heartbeats
  /// every `eta` of local time, starting at local time eta.
  HeartbeatSender(sim::Simulator& simulator, net::Link& link,
                  const clk::Clock& clock, Duration eta);

  /// Begins the heartbeat schedule.  Call exactly once.
  void start();

  /// Crashes p at real time `at` (>= now).  Heartbeats scheduled after `at`
  /// are not sent.  Among crashes scheduled back to back (with no recovery
  /// in between) only the earliest matters; a crash scheduled before an
  /// already-scheduled recovery is a contract violation.
  void crash_at(TimePoint at);

  /// Recovers p at real time `at` (>= now).  Requires a crash scheduled (or
  /// already effective) at or before `at` with no other recovery pending —
  /// the crash/recover schedule must alternate.  On recovery p sends the
  /// next heartbeat immediately and then resumes the every-eta schedule;
  /// sequence numbers continue across the outage.
  void recover_at(TimePoint at);

  /// Changes the intersending interval: the next heartbeat is rescheduled
  /// to (last send time + new_eta), or sent immediately if that is already
  /// past.  Used by the adaptive service (Section 8.1.1) when it
  /// renegotiates the heartbeat rate; sequence numbers keep increasing.
  void set_eta(Duration new_eta);

  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Time of the most recent effective crash; survives a recovery until the
  /// next crash fires.  Empty until a scheduled crash takes effect.
  [[nodiscard]] std::optional<TimePoint> crash_time() const {
    return crash_time_;
  }
  /// Number of recoveries that have taken effect.
  [[nodiscard]] std::size_t recoveries() const { return recoveries_; }
  /// The incarnation number stamped into outgoing heartbeats: 0 for the
  /// first life, bumped on every recovery.  Receivers discriminate stale
  /// in-flight heartbeats of a previous life by comparing incarnations.
  [[nodiscard]] std::uint64_t incarnation() const { return recoveries_; }
  [[nodiscard]] net::SeqNo next_seq() const { return next_seq_; }
  [[nodiscard]] Duration eta() const { return eta_; }

 private:
  struct FaultAt {
    TimePoint at;
    bool crash;  // false = recovery
  };

  void send_next();
  void arm_next_fault();
  void apply_fault();
  [[nodiscard]] bool crash_due_now() const;

  sim::Simulator& sim_;
  net::Link& link_;
  const clk::Clock& clock_;
  Duration eta_;
  net::SeqNo next_seq_ = 1;
  bool started_ = false;
  bool crashed_ = false;
  std::optional<TimePoint> crash_time_;
  std::size_t recoveries_ = 0;
  // Pending crash/recover transitions, alternating and time-ordered; the
  // front is armed as a simulator event.
  std::deque<FaultAt> fault_schedule_;
  sim::EventId pending_fault_ = 0;
  sim::EventId pending_send_ = 0;
  TimePoint last_send_{};
};

}  // namespace chenfd::core
