// The monitored process p (Fig. 6 / Fig. 9, process p side).
//
// p sends heartbeat m_i at local time sigma_i = i * eta, for i = 1, 2, ...
// A sender can crash at a scheduled time, after which it sends nothing;
// messages already in flight are unaffected (the link's behaviour is
// independent of the crash, as the model in Section 3.1 requires).

#pragma once

#include <optional>

#include "clock/clock.hpp"
#include "common/time.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {

class HeartbeatSender {
 public:
  /// The sender reads `clock` for its local timestamps and sends heartbeats
  /// every `eta` of local time, starting at local time eta.
  HeartbeatSender(sim::Simulator& simulator, net::Link& link,
                  const clk::Clock& clock, Duration eta);

  /// Begins the heartbeat schedule.  Call exactly once.
  void start();

  /// Crashes p at real time `at` (>= now).  Heartbeats scheduled after `at`
  /// are not sent.  Idempotent in the sense that only the earliest scheduled
  /// crash matters.
  void crash_at(TimePoint at);

  /// Changes the intersending interval: the next heartbeat is rescheduled
  /// to (last send time + new_eta), or sent immediately if that is already
  /// past.  Used by the adaptive service (Section 8.1.1) when it
  /// renegotiates the heartbeat rate; sequence numbers keep increasing.
  void set_eta(Duration new_eta);

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::optional<TimePoint> crash_time() const {
    return crash_time_;
  }
  [[nodiscard]] net::SeqNo next_seq() const { return next_seq_; }
  [[nodiscard]] Duration eta() const { return eta_; }

 private:
  void send_next();

  sim::Simulator& sim_;
  net::Link& link_;
  const clk::Clock& clock_;
  Duration eta_;
  net::SeqNo next_seq_ = 1;
  bool started_ = false;
  bool crashed_ = false;
  std::optional<TimePoint> crash_time_;
  sim::EventId pending_send_ = 0;
  TimePoint last_send_{};
};

}  // namespace chenfd::core
