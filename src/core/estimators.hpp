// Estimating the probabilistic behaviour of the network from the heartbeat
// stream itself (Sections 5.2, 6.2.2 and 8.1.2 of the paper).
//
// - p_L: count "missing" heartbeats via sequence-number gaps and divide by
//   the number of slots observed.
// - E(D), V(D): sample mean / variance of (arrival time - sender
//   timestamp).  With synchronized clocks this difference is the true
//   delay; with unsynchronized drift-free clocks it is the delay plus a
//   *constant* skew, so its variance still estimates V(D) exactly
//   (Section 6.2.2) while the mean estimates E(D) + skew.
// - Two-component estimation (Section 8.1.2): a short-window component that
//   reacts quickly to bursts combined with a long-window component that is
//   insensitive to momentary fluctuations, merged by taking the most
//   conservative (largest) value of each quantity.

#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "net/message.hpp"

namespace chenfd::core {

/// Sliding-window estimator of p_L, E(D) and V(D) over the most recent
/// `window` received heartbeats.
class NetworkEstimator {
 public:
  explicit NetworkEstimator(std::size_t window);

  /// Records the receipt of heartbeat `seq`, stamped `sender_timestamp` by
  /// p's clock and received at `recv_local` on q's clock.
  void on_heartbeat(net::SeqNo seq, TimePoint sender_timestamp,
                    TimePoint recv_local);

  /// Forgets every observation (fault-injection epoch reset: after a
  /// detected network disruption the pre-disruption window no longer
  /// describes the link).  The next heartbeat starts a fresh window.
  void reset();

  /// One window entry in snapshot form (persist/snapshot.hpp).
  struct Sample {
    net::SeqNo seq;
    double delay_s;
  };

  /// The current window, oldest first, for monitor snapshots.
  [[nodiscard]] std::vector<Sample> samples_snapshot() const;

  /// Replaces the window with `samples` (strictly increasing seq, at most
  /// the window capacity), shifting every sequence number forward by
  /// `seq_shift`.  Warm restart uses the shift to forgive the heartbeats p
  /// sent while the monitor was down: they were unobservable, not lost, so
  /// sliding the restored window up to the resuming stream keeps the
  /// per-slot loss estimate from spiking when the next live heartbeat
  /// arrives.  Delay statistics are unaffected by the shift.
  void restore(const std::vector<Sample>& samples, net::SeqNo highest_seq,
               net::SeqNo seq_shift);

  /// Number of received heartbeats currently in the window.
  [[nodiscard]] std::size_t samples() const { return obs_.size(); }
  /// Maximum number of observations the window holds.
  [[nodiscard]] std::size_t capacity() const { return window_; }
  [[nodiscard]] net::SeqNo highest_seq() const { return highest_seq_; }

  /// Estimated loss probability: 1 - received / slots, where slots is the
  /// sequence-number span covered by the window.  NaN-free: returns 0 until
  /// two heartbeats have been seen.
  [[nodiscard]] double loss_probability() const;

  /// Mean of (arrival - sender timestamp) over the window.  Equals E(D)
  /// under synchronized clocks, E(D) + skew otherwise.
  [[nodiscard]] double delay_mean() const;

  /// Variance of (arrival - sender timestamp) over the window — a valid
  /// estimate of V(D) regardless of clock skew.
  [[nodiscard]] double delay_variance() const;

 private:
  struct Obs {
    net::SeqNo seq;
    double delay;  // arrival - sender timestamp, seconds
  };

  std::size_t window_;
  std::deque<Obs> obs_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  net::SeqNo highest_seq_ = 0;
};

/// Section 8.1.2: short-term + long-term components combined by taking the
/// most conservative estimate of each quantity.
class TwoComponentEstimator {
 public:
  TwoComponentEstimator(std::size_t short_window, std::size_t long_window);

  void on_heartbeat(net::SeqNo seq, TimePoint sender_timestamp,
                    TimePoint recv_local);

  /// Resets both components (see NetworkEstimator::reset).
  void reset();

  /// Restores both component windows (see NetworkEstimator::restore).
  void restore(const std::vector<NetworkEstimator::Sample>& short_samples,
               net::SeqNo short_highest,
               const std::vector<NetworkEstimator::Sample>& long_samples,
               net::SeqNo long_highest, net::SeqNo seq_shift);

  [[nodiscard]] double loss_probability() const;
  [[nodiscard]] double delay_mean() const;
  [[nodiscard]] double delay_variance() const;

  [[nodiscard]] const NetworkEstimator& short_term() const { return short_; }
  [[nodiscard]] const NetworkEstimator& long_term() const { return long_; }

 private:
  NetworkEstimator short_;
  NetworkEstimator long_;
};

}  // namespace chenfd::core
