// SFD — the "simple" failure detection algorithm commonly used in practice
// (Section 1.2.1), extended with the cutoff of Section 7.2.
//
// When q receives a heartbeat newer than every heartbeat received so far,
// it trusts p and (re)starts a timer with a fixed timeout TO; if the timer
// expires first, q suspects p.  Because the timer is anchored to receipt
// times, a fast heartbeat m_{i-1} makes a premature timeout on m_i more
// likely — the inter-heartbeat dependency the paper criticizes — and the
// worst-case detection time is the *maximum* message delay plus TO.
//
// The cutoff c bounds the detection time at c + TO by discarding heartbeats
// delayed more than c.  Measuring a heartbeat's delay requires synchronized
// clocks (or a fail-aware datagram service, footnote 13); this
// implementation compares q's local receipt time against the sender
// timestamp, which is exact when both clocks are synchronized.
// SFD-L (c = 8 E(D)) and SFD-S (c = 4 E(D)) of the Fig. 12 study are just
// two parameterizations of this class.

#pragma once

#include "clock/clock.hpp"
#include "common/time.hpp"
#include "core/failure_detector.hpp"
#include "core/params.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {

class Sfd final : public FailureDetector {
 public:
  Sfd(sim::Simulator& simulator, const clk::Clock& q_clock, SfdParams params);

  void on_heartbeat(const net::Message& m, TimePoint real_now) override;

  /// Cancels the pending timeout (for tear-down).
  void stop();

  [[nodiscard]] const SfdParams& params() const { return params_; }
  [[nodiscard]] net::SeqNo max_seq() const { return ell_; }
  /// Heartbeats discarded because their measured delay exceeded the cutoff.
  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }

 private:
  void on_timeout();

  sim::Simulator& sim_;
  const clk::Clock& q_clock_;
  SfdParams params_;
  net::SeqNo ell_ = 0;
  sim::EventId timer_ = 0;
  std::uint64_t discarded_ = 0;
  bool stopped_ = false;
};

}  // namespace chenfd::core
