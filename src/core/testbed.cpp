#include "core/testbed.hpp"

#include <utility>

#include "common/check.hpp"

namespace chenfd::core {

Testbed::Testbed(Config config)
    : p_clock_(config.p_clock_offset),
      q_clock_(config.q_clock_offset),
      link_(std::make_unique<net::Link>(sim_, std::move(config.delay),
                                        std::move(config.loss),
                                        Rng(config.seed))),
      sender_(sim_, *link_, p_clock_, config.eta) {
  link_->set_duplication_probability(config.duplication_probability);
  link_->set_receiver([this](const net::Message& m, TimePoint at) {
    for (FailureDetector* d : detectors_) d->on_heartbeat(m, at);
  });
}

void Testbed::attach(FailureDetector& detector) {
  expects(!started_, "Testbed::attach: testbed already started");
  detectors_.push_back(&detector);
}

void Testbed::start() {
  expects(!started_, "Testbed::start: already started");
  expects(!detectors_.empty(), "Testbed::start: attach a detector first");
  started_ = true;
  for (FailureDetector* d : detectors_) d->activate();
  sender_.start();
}

}  // namespace chenfd::core
