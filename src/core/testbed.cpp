#include "core/testbed.hpp"

#include <utility>

#include "common/check.hpp"

namespace chenfd::core {

Testbed::Testbed(Config config)
    : p_clock_(config.p_clock_offset),
      q_clock_(config.q_clock_offset),
      link_(std::make_unique<net::Link>(sim_, std::move(config.delay),
                                        std::move(config.loss),
                                        Rng(config.seed))),
      sender_(sim_, *link_, p_clock_, config.eta) {
  link_->set_duplication_probability(config.duplication_probability);
  link_->set_receiver([this](const net::Message& m, TimePoint at) {
    for (FailureDetector* d : detectors_) d->on_heartbeat(m, at);
  });
}

void Testbed::attach(FailureDetector& detector) {
  detectors_.push_back(&detector);
}

void Testbed::start() {
  expects(!detectors_.empty(), "Testbed::start: attach a detector first");
  for (FailureDetector* d : detectors_) d->activate();
  sender_.start();
}

}  // namespace chenfd::core
