#include "core/chebyshev.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rounding.hpp"

namespace chenfd::core {
namespace {

/// Shared body of Theorems 9 and 11 with d = delta - E(D) (Thm 9) or
/// d = alpha (Thm 11).
AccuracyBounds bounds_from_slack(Duration eta_d, double d, double p_loss,
                                 double variance) {
  const double eta = eta_d.seconds();
  expects(eta > 0.0, "chebyshev bounds: eta must be positive");
  expects(d > 0.0, "chebyshev bounds: slack (delta - E(D) or alpha) must be "
                   "positive");
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "chebyshev bounds: p_loss must be in [0, 1)");
  expects(variance >= 0.0, "chebyshev bounds: variance must be >= 0");

  const int k0 = static_cast<int>(ceil_ratio(d, eta)) - 1;
  double beta = 1.0;
  for (int j = 0; j <= k0; ++j) {
    const double s = d - static_cast<double>(j) * eta;
    beta *= (variance + p_loss * s * s) / (variance + s * s);
  }
  const double de = d + eta;
  const double gamma = (1.0 - p_loss) * de * de / (variance + de * de);

  AccuracyBounds out;
  out.mistake_recurrence_lower =
      beta > 0.0 ? Duration(eta / beta) : Duration::infinity();
  out.mistake_duration_upper =
      gamma > 0.0 ? Duration(eta / gamma) : Duration::infinity();
  return out;
}

}  // namespace

double one_sided_tail_bound(double t, double mean, double variance) {
  expects(variance >= 0.0, "one_sided_tail_bound: variance must be >= 0");
  if (t <= mean) return 1.0;
  const double s = t - mean;
  return variance / (variance + s * s);
}

AccuracyBounds nfd_s_bounds(NfdSParams params, double p_loss,
                            double delay_mean, double delay_variance) {
  params.validate();
  expects(params.delta.seconds() > delay_mean,
          "nfd_s_bounds (Theorem 9): requires delta > E(D)");
  return bounds_from_slack(params.eta, params.delta.seconds() - delay_mean,
                           p_loss, delay_variance);
}

AccuracyBounds nfd_u_bounds(NfdUParams params, double p_loss,
                            double delay_variance) {
  params.validate();
  return bounds_from_slack(params.eta, params.alpha.seconds(), p_loss,
                           delay_variance);
}

}  // namespace chenfd::core
