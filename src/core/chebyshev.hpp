// Distribution-free QoS bounds — Section 5 of the paper.
//
// When only p_L, E(D) and V(D) are known, the one-sided Chebyshev
// inequality (Eq. 5.1)
//
//     Pr(D > t) <= V(D) / (V(D) + (t - E(D))^2),   t > E(D)
//
// turns the exact Theorem 5 formulas into guaranteed bounds:
//
//   Theorem 9 (NFD-S, delta > E(D)):
//     E(T_MR) >= eta / beta,   E(T_M) <= eta / gamma,
//     beta  = prod_{j=0}^{k0} [V + p_L (d - j eta)^2] / [V + (d - j eta)^2],
//     d = delta - E(D),   k0 = ceil(d / eta) - 1,
//     gamma = (1 - p_L)(d + eta)^2 / (V + (d + eta)^2).
//
//   Theorem 11 (NFD-U, alpha > 0): identical with d = alpha — note that
//     E(D) drops out entirely, which is what makes the Section 6
//     configuration possible without synchronized clocks.

#pragma once

#include "common/time.hpp"
#include "core/params.hpp"
#include "qos/metrics.hpp"

namespace chenfd::core {

/// Eq. (5.1).  Returns 1 for t <= E(D) (the inequality gives no information
/// there, and 1 is the trivially valid bound).
[[nodiscard]] double one_sided_tail_bound(double t, double mean,
                                          double variance);

/// Guaranteed accuracy bounds derived from p_L, E(D), V(D) only.
struct AccuracyBounds {
  Duration mistake_recurrence_lower;  ///< E(T_MR) >= this
  Duration mistake_duration_upper;    ///< E(T_M)  <= this
};

/// Theorem 9.  Requires params.delta > E(D).
[[nodiscard]] AccuracyBounds nfd_s_bounds(NfdSParams params, double p_loss,
                                          double delay_mean,
                                          double delay_variance);

/// Theorem 11.  Requires params.alpha > 0; E(D) is not needed.
[[nodiscard]] AccuracyBounds nfd_u_bounds(NfdUParams params, double p_loss,
                                          double delay_variance);

}  // namespace chenfd::core
