#include "core/analysis.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rounding.hpp"

namespace chenfd::core {
namespace {

/// Composite Simpson's rule on [lo, hi] with n (even) subintervals.
template <typename F>
double simpson(F&& f, double lo, double hi, int n) {
  if (hi <= lo) return 0.0;
  const double h = (hi - lo) / n;
  double acc = f(lo) + f(hi);
  for (int i = 1; i < n; ++i) {
    acc += f(lo + h * i) * ((i % 2 != 0) ? 4.0 : 2.0);
  }
  return acc * h / 3.0;
}

}  // namespace

NfdSAnalysis::NfdSAnalysis(NfdSParams params, double p_loss,
                           const dist::DelayDistribution& delay)
    : params_(params),
      p_loss_(p_loss),
      delay_(delay),
      k_(static_cast<int>(
          ceil_ratio(params.delta.seconds(), params.eta.seconds()))) {
  params_.validate();
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "NfdSAnalysis: p_loss must be in [0, 1)");
}

NfdSAnalysis NfdSAnalysis::for_nfd_u(NfdUParams params, double p_loss,
                                     const dist::DelayDistribution& delay) {
  params.validate();
  const Duration delta = Duration(delay.mean()) + params.alpha;
  return NfdSAnalysis(NfdSParams{params.eta, delta}, p_loss, delay);
}

double NfdSAnalysis::p_j(int j, double x) const {
  expects(j >= 0, "NfdSAnalysis::p_j: j must be >= 0");
  expects(x >= 0.0, "NfdSAnalysis::p_j: x must be >= 0");
  const double arg =
      params_.delta.seconds() + x - static_cast<double>(j) *
                                        params_.eta.seconds();
  return p_loss_ + (1.0 - p_loss_) * delay_.tail(arg);
}

double NfdSAnalysis::q0() const {
  // Prop 3.3 uses the *strict* inequality Pr(D < delta + eta); the
  // distinction matters for distributions with atoms (e.g. Constant).
  return (1.0 - p_loss_) *
         delay_.cdf_strict(params_.delta.seconds() + params_.eta.seconds());
}

double NfdSAnalysis::u(double x) const {
  double prod = 1.0;
  for (int j = 0; j <= k_; ++j) {
    prod *= p_j(j, x);
    if (prod == 0.0) break;
  }
  return prod;
}

Duration NfdSAnalysis::e_tmr() const {
  const double ps = p_s();
  if (ps <= 0.0) return Duration::infinity();
  return Duration(params_.eta.seconds() / ps);
}

Duration NfdSAnalysis::e_tm() const {
  const double ps = p_s();
  if (ps <= 0.0) {
    // Degenerate cases (Section 3.3): p_0 = 0 means q eventually trusts
    // forever (no mistakes, E(T_M) = 0); q_0 = 0 means q suspects forever.
    return p0() == 0.0 ? Duration::zero() : Duration::infinity();
  }
  return Duration(integral_u() / ps);
}

double NfdSAnalysis::query_accuracy() const {
  if (q0() == 0.0 && p0() > 0.0) return 0.0;  // suspects forever
  return 1.0 - integral_u() / params_.eta.seconds();
}

qos::Figures NfdSAnalysis::figures() const {
  qos::Figures f;
  f.detection_time_bound = detection_time_bound();
  f.mistake_recurrence_mean = e_tmr();
  f.mistake_duration_mean = e_tm();
  return f;
}

double NfdSAnalysis::detection_time_cdf(double x) const {
  expects(x >= 0.0, "detection_time_cdf: x must be >= 0");
  const double eta = params_.eta.seconds();
  const double delta = params_.delta.seconds();
  const double q0v = q0();
  if (q0v <= 0.0) {
    // Degenerate: q suspects forever, so it is already suspecting at any
    // crash time: T_D = 0 surely.
    return 1.0;
  }
  // Pr(T_D <= x) = sum_g (1-q0)^g q0 * Pr(A <= x + g eta) with
  // A = delta + eta (1 - phi) uniform on (delta, delta + eta].
  const auto a_cdf = [&](double y) {
    if (y <= delta) return 0.0;
    if (y >= delta + eta) return 1.0;
    return (y - delta) / eta;
  };
  double acc = 0.0;
  double weight = q0v;  // (1-q0)^g * q0
  for (int g = 0; g < 100000; ++g) {
    const double p = a_cdf(x + static_cast<double>(g) * eta);
    if (p >= 1.0) {
      // Every remaining term has Pr(A <= .) = 1; the remaining geometric
      // mass is sum_{k>=g} (1-q0)^k q0 = (1-q0)^g = weight / q0.
      acc += weight / q0v;
      break;
    }
    acc += weight * p;
    weight *= (1.0 - q0v);
    if (weight < 1e-18) break;
  }
  return acc > 1.0 ? 1.0 : acc;
}

Duration NfdSAnalysis::detection_time_mean() const {
  const double eta = params_.eta.seconds();
  const double delta = params_.delta.seconds();
  const double q0v = q0();
  if (q0v <= 0.0) return Duration::zero();
  // E(T_D) = sum_g (1-q0)^g q0 * E[max(0, A - g eta)],
  // A uniform on (delta, delta + eta].
  const auto partial_mean = [&](double shift) {
    // E[max(0, A - shift)] for A ~ U(delta, delta + eta].
    const double lo = delta - shift;
    const double hi = delta + eta - shift;
    if (hi <= 0.0) return 0.0;
    if (lo >= 0.0) return (lo + hi) / 2.0;
    // Mixed: positive only on (0, hi], which A hits with prob hi/eta.
    return hi * hi / (2.0 * eta);
  };
  double acc = 0.0;
  double weight = q0v;
  for (int g = 0; g < 100000; ++g) {
    const double m = partial_mean(static_cast<double>(g) * eta);
    if (m == 0.0) break;  // all later terms are 0 too
    acc += weight * m;
    weight *= (1.0 - q0v);
    if (weight < 1e-18) break;
  }
  return Duration(acc);
}

double NfdSAnalysis::integral_u() const {
  if (cached_integral_ >= 0.0) return cached_integral_;
  const double eta = params_.eta.seconds();
  const double delta = params_.delta.seconds();
  // The j = k factor's argument delta + x - k*eta crosses 0 at
  // x* = k*eta - delta, a structural kink of u; integrate each side
  // separately for accuracy.
  const double kink = static_cast<double>(k_) * eta - delta;
  const auto f = [this](double x) { return u(x); };
  constexpr int kIntervals = 1 << 14;
  double acc = 0.0;
  if (kink > 0.0 && kink < eta) {
    acc = simpson(f, 0.0, kink, kIntervals) +
          simpson(f, kink, eta, kIntervals);
  } else {
    acc = simpson(f, 0.0, eta, 2 * kIntervals);
  }
  cached_integral_ = acc;
  return acc;
}

}  // namespace chenfd::core
