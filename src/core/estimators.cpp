#include "core/estimators.hpp"

#include <algorithm>

namespace chenfd::core {

NetworkEstimator::NetworkEstimator(std::size_t window) : window_(window) {
  expects(window >= 2, "NetworkEstimator: window must be >= 2");
}

void NetworkEstimator::on_heartbeat(net::SeqNo seq,
                                    TimePoint sender_timestamp,
                                    TimePoint recv_local) {
  const double delay = (recv_local - sender_timestamp).seconds();
  // Admit in sequence order; duplicates and messages older than the newest
  // in the window are dropped (they would distort the loss count, and a
  // sliding window keyed by the newest seq keeps the "slots" denominator
  // well defined).
  if (!obs_.empty() && seq <= obs_.back().seq) return;
  obs_.push_back(Obs{seq, delay});
  sum_ += delay;
  sum_sq_ += delay * delay;
  if (seq > highest_seq_) highest_seq_ = seq;
  while (obs_.size() > window_) {
    sum_ -= obs_.front().delay;
    sum_sq_ -= obs_.front().delay * obs_.front().delay;
    obs_.pop_front();
  }
  ensures(obs_.size() <= window_,
          "NetworkEstimator::on_heartbeat: window exceeded its capacity");
}

// detlint: allow(R4) unconditional transition to the empty state; no inputs
void NetworkEstimator::reset() {
  obs_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

std::vector<NetworkEstimator::Sample> NetworkEstimator::samples_snapshot()
    const {
  std::vector<Sample> out;
  out.reserve(obs_.size());
  for (const Obs& o : obs_) out.push_back(Sample{o.seq, o.delay});
  return out;
}

void NetworkEstimator::restore(const std::vector<Sample>& samples,
                               net::SeqNo highest_seq, net::SeqNo seq_shift) {
  expects(samples.size() <= window_,
          "NetworkEstimator::restore: window larger than capacity");
  reset();
  for (const Sample& s : samples) {
    const net::SeqNo shifted = s.seq + seq_shift;
    expects(obs_.empty() || shifted > obs_.back().seq,
            "NetworkEstimator::restore: seqs must be strictly increasing");
    obs_.push_back(Obs{shifted, s.delay_s});
    sum_ += s.delay_s;
    sum_sq_ += s.delay_s * s.delay_s;
  }
  expects(obs_.empty() || highest_seq >= samples.back().seq,
          "NetworkEstimator::restore: highest seq below the window");
  highest_seq_ = highest_seq + seq_shift;
}

double NetworkEstimator::loss_probability() const {
  if (obs_.size() < 2) return 0.0;
  const double received = static_cast<double>(obs_.size());
  const double slots =
      static_cast<double>(obs_.back().seq - obs_.front().seq + 1);
  return std::max(0.0, 1.0 - received / slots);
}

double NetworkEstimator::delay_mean() const {
  if (obs_.empty()) return 0.0;
  return sum_ / static_cast<double>(obs_.size());
}

double NetworkEstimator::delay_variance() const {
  if (obs_.size() < 2) return 0.0;
  const double n = static_cast<double>(obs_.size());
  const double mean = sum_ / n;
  // Population variance; guard tiny negative values from cancellation.
  return std::max(0.0, sum_sq_ / n - mean * mean);
}

TwoComponentEstimator::TwoComponentEstimator(std::size_t short_window,
                                             std::size_t long_window)
    : short_(short_window), long_(long_window) {
  expects(short_window < long_window,
          "TwoComponentEstimator: short window must be shorter than long");
}

// detlint: allow(R4) pure delegation; admission rules live in NetworkEstimator
void TwoComponentEstimator::on_heartbeat(net::SeqNo seq,
                                         TimePoint sender_timestamp,
                                         TimePoint recv_local) {
  short_.on_heartbeat(seq, sender_timestamp, recv_local);
  long_.on_heartbeat(seq, sender_timestamp, recv_local);
}

// detlint: allow(R4) unconditional transition to the empty state; no inputs
void TwoComponentEstimator::reset() {
  short_.reset();
  long_.reset();
}

// detlint: allow(R4) pure delegation; NetworkEstimator::restore checks seqs
void TwoComponentEstimator::restore(
    const std::vector<NetworkEstimator::Sample>& short_samples,
    net::SeqNo short_highest,
    const std::vector<NetworkEstimator::Sample>& long_samples,
    net::SeqNo long_highest, net::SeqNo seq_shift) {
  short_.restore(short_samples, short_highest, seq_shift);
  long_.restore(long_samples, long_highest, seq_shift);
}

double TwoComponentEstimator::loss_probability() const {
  return std::max(short_.loss_probability(), long_.loss_probability());
}

double TwoComponentEstimator::delay_mean() const {
  return std::max(short_.delay_mean(), long_.delay_mean());
}

double TwoComponentEstimator::delay_variance() const {
  return std::max(short_.delay_variance(), long_.delay_variance());
}

}  // namespace chenfd::core
