#include "core/nfd_u.hpp"

#include <utility>

#include "common/check.hpp"

namespace chenfd::core {

NfdU::NfdU(sim::Simulator& simulator, const clk::Clock& q_clock,
           NfdUParams params, EaProvider ea_provider)
    : sim_(simulator),
      q_clock_(q_clock),
      params_(params),
      ea_provider_(std::move(ea_provider)) {
  params_.validate();
}

// detlint: allow(R4) stop is idempotent and legal in any state
void NfdU::stop() {
  stopped_ = true;
  if (timer_ != 0) sim_.cancel(timer_);
  timer_ = 0;
}

TimePoint NfdU::expected_arrival(net::SeqNo seq) {
  CHENFD_EXPECTS(static_cast<bool>(ea_provider_),
                 "NfdU: no EA provider configured (use NfdE for estimated EAs)");
  return ea_provider_(seq);
}

void NfdU::on_heartbeat(const net::Message& m, TimePoint real_now) {
  if (stopped_) return;
  if (m.seq <= ell_) return;  // stale or duplicate (footnote 8: first copy wins)
  ell_ = m.seq;

  // Fig. 9 line 10: the next freshness point, on q's local clock.
  const TimePoint tau_next = expected_arrival(ell_ + 1) + params_.alpha;
  // Theorems 11-12: freshness points derive from expected arrival times
  // shifted by alpha, and EAs are spaced eta apart (exactly for NFD-U,
  // by the Eq. 6.3 normalization for NFD-E) — so tau over consecutive
  // sequence numbers must be non-decreasing within one estimation state.
  CHENFD_AUDIT(expected_arrival(ell_ + 1) >= expected_arrival(ell_),
               "NfdU: expected arrival times must be non-decreasing in seq");
  if (timer_ != 0) sim_.cancel(timer_);
  timer_ = 0;

  const TimePoint local_now = q_clock_.local(real_now);
  if (local_now < tau_next) {
    // m_ell is still fresh: trust until the local clock reaches tau_next.
    set_output(real_now, Verdict::kTrust);
    timer_ = sim_.at(q_clock_.real(tau_next), [this] {
      on_freshness_deadline();
    });
  } else {
    // Even the newest message is already stale, so no received message is
    // fresh: suspect.  (With exact EAs the tau_i are increasing in ell and
    // the previous deadline has already fired, making this a no-op; with
    // NFD-E's shifting estimates it is a genuine correction.)
    set_output(real_now, Verdict::kSuspect);
  }
}

void NfdU::on_freshness_deadline() {
  if (stopped_) return;
  timer_ = 0;
  // Fig. 9 line 6: none of the received messages is still fresh.
  set_output(sim_.now(), Verdict::kSuspect);
}

}  // namespace chenfd::core
