#include "core/experiments.hpp"

#include <limits>
#include <vector>

#include "net/loss_model.hpp"
#include "qos/replay.hpp"

namespace chenfd::core {
namespace {

Testbed::Config make_config(const NetworkModel& model, Duration eta,
                            Duration p_off, Duration q_off, double dup,
                            std::uint64_t seed) {
  Testbed::Config cfg;
  cfg.delay = model.delay.clone();
  cfg.loss = std::make_unique<net::BernoulliLoss>(model.p_loss);
  cfg.eta = eta;
  cfg.p_clock_offset = p_off;
  cfg.q_clock_offset = q_off;
  cfg.duplication_probability = dup;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

qos::Recorder run_accuracy(const DetectorFactory& factory,
                           const NetworkModel& model,
                           const AccuracyExperiment& exp) {
  Testbed tb(make_config(model, exp.eta, exp.p_clock_offset,
                         exp.q_clock_offset, exp.duplication_probability,
                         exp.seed));
  auto detector = factory(tb);
  tb.attach(*detector);

  std::vector<Transition> transitions;
  detector->add_listener(
      [&transitions](const Transition& t) { transitions.push_back(t); });

  tb.start();
  const TimePoint start = TimePoint::zero() + exp.warmup;
  const TimePoint end = start + exp.duration;
  tb.simulator().run_until(end);
  return qos::replay(transitions, start, end);
}

stats::SampleSet measure_detection_times(const DetectorFactory& factory,
                                         const NetworkModel& model,
                                         const DetectionExperiment& exp) {
  stats::SampleSet samples(exp.runs);
  Rng crash_rng(exp.seed ^ 0xD5A7EC7104A11DEDULL);
  for (std::size_t r = 0; r < exp.runs; ++r) {
    Testbed tb(make_config(model, exp.eta, Duration::zero(), Duration::zero(),
                           0.0, exp.seed + 1 + r));
    auto detector = factory(tb);
    tb.attach(*detector);

    std::vector<Transition> transitions;
    detector->add_listener(
        [&transitions](const Transition& t) { transitions.push_back(t); });

    // Crash at a uniformly random point within one heartbeat period after
    // warm-up (the bound of Theorem 5.1 is tight as the crash time
    // approaches a sending time, so the position within the period is the
    // quantity to randomize).
    const TimePoint t_crash =
        TimePoint::zero() + exp.warmup + exp.eta * crash_rng.uniform01();
    tb.crash_p_at(t_crash);
    tb.start();
    tb.simulator().run_until(t_crash + exp.settle);

    // T_D: time from the crash to the final S-transition; 0 if that final
    // S-transition precedes the crash (or if q never trusted at all);
    // +infinity if the run ends trusting.
    double t_d;
    if (transitions.empty()) {
      t_d = 0.0;  // q suspected from the start and forever
    } else if (transitions.back().to == Verdict::kTrust) {
      t_d = std::numeric_limits<double>::infinity();
    } else {
      t_d = std::max(0.0, (transitions.back().at - t_crash).seconds());
    }
    samples.add(t_d);
  }
  return samples;
}

}  // namespace chenfd::core
