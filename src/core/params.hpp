// Parameter sets for the failure detector algorithms in the paper.

#pragma once

#include <cstddef>
#include <ostream>

#include "common/check.hpp"
#include "common/time.hpp"

namespace chenfd::core {

/// Parameters of NFD-S (Fig. 6): heartbeats every eta, freshness points
/// tau_i = sigma_i + delta.  Detection time is bounded by delta + eta
/// (Theorem 5.1).
struct NfdSParams {
  Duration eta;    ///< heartbeat intersending interval (> 0)
  Duration delta;  ///< freshness-point shift relative to sending time (> 0)

  void validate() const {
    CHENFD_EXPECTS(eta > Duration::zero(), "NfdSParams: eta must be positive");
    CHENFD_EXPECTS(delta > Duration::zero(),
                   "NfdSParams: delta must be positive");
  }

  [[nodiscard]] Duration detection_time_bound() const { return delta + eta; }

  friend std::ostream& operator<<(std::ostream& os, const NfdSParams& p) {
    return os << "{eta=" << p.eta << ", delta=" << p.delta << "}";
  }
};

/// Parameters of NFD-U (Fig. 9): freshness points tau_i = EA_i + alpha,
/// where EA_i is the expected arrival time of heartbeat m_i.  Detection time
/// is bounded by eta + alpha + E(D) (Section 6.2, relative bound).
struct NfdUParams {
  Duration eta;    ///< heartbeat intersending interval (> 0)
  Duration alpha;  ///< slack added to the expected arrival time (> 0)

  void validate() const {
    CHENFD_EXPECTS(eta > Duration::zero(), "NfdUParams: eta must be positive");
    CHENFD_EXPECTS(alpha > Duration::zero(),
                   "NfdUParams: alpha must be positive");
  }

  friend std::ostream& operator<<(std::ostream& os, const NfdUParams& p) {
    return os << "{eta=" << p.eta << ", alpha=" << p.alpha << "}";
  }
};

/// Parameters of NFD-E (Section 6.3): NFD-U with the expected arrival times
/// replaced by the Eq. (6.3) estimate over the `window` most recent
/// heartbeats.  The paper reports NFD-E is indistinguishable from NFD-U for
/// windows as small as 30 (their simulations use 32).
struct NfdEParams {
  Duration eta;
  Duration alpha;
  std::size_t window = 32;

  void validate() const {
    CHENFD_EXPECTS(eta > Duration::zero(), "NfdEParams: eta must be positive");
    CHENFD_EXPECTS(alpha > Duration::zero(),
                   "NfdEParams: alpha must be positive");
    CHENFD_EXPECTS(window >= 1, "NfdEParams: window must be >= 1");
  }

  friend std::ostream& operator<<(std::ostream& os, const NfdEParams& p) {
    return os << "{eta=" << p.eta << ", alpha=" << p.alpha
              << ", n=" << p.window << "}";
  }
};

/// Parameters of the simple ("common") algorithm of Section 1.2.1, extended
/// with the Section 7.2 cutoff: on receipt of a heartbeat that is newer than
/// every heartbeat seen so far and delayed by at most `cutoff`, trust p and
/// arm a timer for `timeout`; when the timer expires, suspect p.  With the
/// cutoff, detection time is bounded by cutoff + timeout.
struct SfdParams {
  Duration timeout;                          ///< TO
  Duration cutoff = Duration::infinity();    ///< c (infinity = plain SFD)

  void validate() const {
    CHENFD_EXPECTS(timeout > Duration::zero(),
                   "SfdParams: timeout must be positive");
    CHENFD_EXPECTS(cutoff > Duration::zero(),
                   "SfdParams: cutoff must be positive");
  }

  [[nodiscard]] Duration detection_time_bound() const {
    return cutoff + timeout;
  }

  friend std::ostream& operator<<(std::ostream& os, const SfdParams& p) {
    return os << "{TO=" << p.timeout << ", cutoff=" << p.cutoff << "}";
  }
};

}  // namespace chenfd::core
