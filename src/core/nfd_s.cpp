#include "core/nfd_s.hpp"

#include <cmath>

#include "common/check.hpp"

namespace chenfd::core {

NfdS::NfdS(sim::Simulator& simulator, NfdSParams params)
    : sim_(simulator), params_(params) {
  params_.validate();
}

void NfdS::activate() {
  expects(!started_, "NfdS::activate: already started");
  expects(sim_.now() == TimePoint::zero(),
          "NfdS::activate: must start at time 0 so tau_i = i*eta + delta");
  started_ = true;
  const TimePoint tau_1 = TimePoint::zero() + params_.eta + params_.delta;
  pending_check_ = sim_.at(tau_1, [this] { on_freshness_point(1); });
}

void NfdS::stop() {
  stopped_ = true;
  if (pending_check_ != 0) sim_.cancel(pending_check_);
}

std::uint64_t NfdS::freshness_index(TimePoint t) const {
  const double offset = (t - (TimePoint::zero() + params_.delta)).seconds();
  if (offset < params_.eta.seconds()) return 0;  // before tau_1
  return static_cast<std::uint64_t>(std::floor(offset / params_.eta.seconds()));
}

void NfdS::on_freshness_point(std::uint64_t i) {
  if (stopped_) return;
  // Fig. 6 line 4: at tau_i, suspect p unless some m_j with j >= i arrived.
  if (max_seq_ < i) set_output(sim_.now(), Verdict::kSuspect);
  const TimePoint tau_next =
      TimePoint::zero() + params_.eta * static_cast<double>(i + 1) +
      params_.delta;
  pending_check_ = sim_.at(tau_next, [this, i] { on_freshness_point(i + 1); });
}

void NfdS::on_heartbeat(const net::Message& m, TimePoint real_now) {
  if (m.seq > max_seq_) max_seq_ = m.seq;
  // Fig. 6 line 6: trust iff the newest message is still fresh now.
  const std::uint64_t i = freshness_index(real_now);
  if (max_seq_ >= i) set_output(real_now, Verdict::kTrust);
}

}  // namespace chenfd::core
