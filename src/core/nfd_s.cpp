#include "core/nfd_s.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rounding.hpp"

namespace chenfd::core {

NfdS::NfdS(sim::Simulator& simulator, NfdSParams params)
    : sim_(simulator), params_(params) {
  params_.validate();
}

void NfdS::activate() {
  CHENFD_EXPECTS(!started_, "NfdS::activate: already started");
  CHENFD_EXPECTS(sim_.now() == TimePoint::zero(),
                 "NfdS::activate: must start at time 0 so tau_i = i*eta + delta");
  started_ = true;
  const TimePoint tau_1 = TimePoint::zero() + params_.eta + params_.delta;
  pending_check_ = sim_.at(tau_1, [this] { on_freshness_point(1); });
}

// detlint: allow(R4) stop is idempotent and legal in any state
void NfdS::stop() {
  stopped_ = true;
  if (pending_check_ != 0) sim_.cancel(pending_check_);
}

std::uint64_t NfdS::freshness_index(TimePoint t) const {
  const double eta = params_.eta.seconds();
  const double offset = (t - (TimePoint::zero() + params_.delta)).seconds();
  // Snap to the nearest integer when within floating-point slack: tau_i is
  // computed as i*eta + delta, and when delta >> eta the subtraction above
  // can land one ULP below i*eta, so a plain floor() would misclassify the
  // instant tau_i itself as still inside [tau_{i-1}, tau_i).  The level-2
  // contract audit in on_freshness_point caught exactly this.
  const double idx = floor_ratio_snapped(offset, eta);
  if (idx < 1.0) return 0;  // before tau_1
  return static_cast<std::uint64_t>(idx);
}

void NfdS::on_freshness_point(std::uint64_t i) {
  if (stopped_) return;
  // Fig. 6 line 4: at tau_i, suspect p unless some m_j with j >= i arrived.
  if (max_seq_ < i) set_output(sim_.now(), Verdict::kSuspect);
  const TimePoint tau_next =
      TimePoint::zero() + params_.eta * static_cast<double>(i + 1) +
      params_.delta;
  // Section 3: freshness points form the strictly increasing sequence
  // tau_{i+1} = tau_i + eta.  We fire at tau_i == now, so monotonicity is
  // exactly "the next point lies in the future" — if floating-point drift
  // in i*eta ever broke this, the detector would silently stall or spin.
  CHENFD_ENSURES(tau_next > sim_.now(),
                 "NfdS: freshness points must be strictly increasing");
  CHENFD_AUDIT(freshness_index(sim_.now()) == i,
               "NfdS: freshness index disagrees with the firing schedule");
  pending_check_ = sim_.at(tau_next, [this, i] { on_freshness_point(i + 1); });
}

// detlint: allow(R4) every message is admissible; stale seqs are no-ops
void NfdS::on_heartbeat(const net::Message& m, TimePoint real_now) {
  if (m.seq > max_seq_) max_seq_ = m.seq;
  // Fig. 6 line 6: trust iff the newest message is still fresh now.
  const std::uint64_t i = freshness_index(real_now);
  if (max_seq_ >= i) set_output(real_now, Verdict::kTrust);
}

}  // namespace chenfd::core
