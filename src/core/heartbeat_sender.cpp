#include "core/heartbeat_sender.hpp"

#include "common/check.hpp"

namespace chenfd::core {

HeartbeatSender::HeartbeatSender(sim::Simulator& simulator, net::Link& link,
                                 const clk::Clock& clock, Duration eta)
    : sim_(simulator), link_(link), clock_(clock), eta_(eta) {
  expects(eta > Duration::zero(), "HeartbeatSender: eta must be positive");
}

void HeartbeatSender::start() {
  expects(!started_, "HeartbeatSender::start: already started");
  started_ = true;
  // sigma_i = (local time at start) + i*eta on p's local clock.  Since
  // clocks are drift-free, that is start() + i*eta in real time — no clock
  // conversion needed to schedule; the local clock is only read to
  // timestamp outgoing heartbeats.
  pending_send_ = sim_.after(eta_, [this] { send_next(); });
}

void HeartbeatSender::crash_at(TimePoint at) {
  expects(at >= sim_.now(), "HeartbeatSender::crash_at: time is in the past");
  if (crash_time_ && *crash_time_ <= at) return;
  crash_time_ = at;
  sim_.at(at, [this, at] {
    if (!crashed_ && crash_time_ && *crash_time_ == at) crashed_ = true;
  });
}

void HeartbeatSender::set_eta(Duration new_eta) {
  expects(new_eta > Duration::zero(),
          "HeartbeatSender::set_eta: eta must be positive");
  eta_ = new_eta;
  if (!started_ || crashed_) return;
  if (pending_send_ != 0) sim_.cancel(pending_send_);
  TimePoint next = last_send_ + eta_;
  if (next < sim_.now()) next = sim_.now();
  pending_send_ = sim_.at(next, [this] { send_next(); });
}

void HeartbeatSender::send_next() {
  pending_send_ = 0;
  if (crashed_ || (crash_time_ && *crash_time_ <= sim_.now())) return;
  const TimePoint now = sim_.now();
  last_send_ = now;
  net::Message m;
  m.seq = next_seq_++;
  m.sent_real = now;
  m.sender_timestamp = clock_.local(now);
  link_.send(m);
  pending_send_ = sim_.after(eta_, [this] { send_next(); });
}

}  // namespace chenfd::core
