#include "core/heartbeat_sender.hpp"

#include "common/check.hpp"

namespace chenfd::core {

HeartbeatSender::HeartbeatSender(sim::Simulator& simulator, net::Link& link,
                                 const clk::Clock& clock, Duration eta)
    : sim_(simulator), link_(link), clock_(clock), eta_(eta) {
  expects(eta > Duration::zero(), "HeartbeatSender: eta must be positive");
}

void HeartbeatSender::start() {
  expects(!started_, "HeartbeatSender::start: already started");
  started_ = true;
  // sigma_i = (local time at start) + i*eta on p's local clock.  Since
  // clocks are drift-free, that is start() + i*eta in real time — no clock
  // conversion needed to schedule; the local clock is only read to
  // timestamp outgoing heartbeats.
  pending_send_ = sim_.after(eta_, [this] { send_next(); });
}

void HeartbeatSender::crash_at(TimePoint at) {
  expects(at >= sim_.now(), "HeartbeatSender::crash_at: time is in the past");
  if (!fault_schedule_.empty() && fault_schedule_.back().crash) {
    // Back-to-back crashes: the earliest wins; a later one is a no-op.
    if (at >= fault_schedule_.back().at) return;
    fault_schedule_.back().at = at;
  } else {
    expects(fault_schedule_.empty() || at >= fault_schedule_.back().at,
            "HeartbeatSender::crash_at: crash precedes the scheduled "
            "recovery (crash/recover must alternate in time order)");
    fault_schedule_.push_back(FaultAt{at, true});
  }
  if (fault_schedule_.size() == 1) arm_next_fault();
}

void HeartbeatSender::recover_at(TimePoint at) {
  expects(at >= sim_.now(),
          "HeartbeatSender::recover_at: time is in the past");
  expects(fault_schedule_.empty() ? crashed_ : fault_schedule_.back().crash,
          "HeartbeatSender::recover_at: no crash scheduled before the "
          "recovery");
  expects(fault_schedule_.empty() || at >= fault_schedule_.back().at,
          "HeartbeatSender::recover_at: recovery precedes the scheduled "
          "crash");
  fault_schedule_.push_back(FaultAt{at, false});
  if (fault_schedule_.size() == 1) arm_next_fault();
}

void HeartbeatSender::arm_next_fault() {
  if (pending_fault_ != 0) {
    sim_.cancel(pending_fault_);
    pending_fault_ = 0;
  }
  if (fault_schedule_.empty()) return;
  pending_fault_ =
      sim_.at(fault_schedule_.front().at, [this] { apply_fault(); });
}

void HeartbeatSender::apply_fault() {
  pending_fault_ = 0;
  const FaultAt fault = fault_schedule_.front();
  fault_schedule_.pop_front();
  if (fault.crash) {
    if (!crashed_) {
      crashed_ = true;
      crash_time_ = fault.at;
      if (pending_send_ != 0) {
        sim_.cancel(pending_send_);
        pending_send_ = 0;
      }
    }
  } else if (crashed_) {
    crashed_ = false;
    ++recoveries_;
    // Re-announce immediately (the recovered process's first schedule slot
    // is "now"), then resume every eta; send_next re-arms the timer.
    if (started_) send_next();
  }
  arm_next_fault();
}

bool HeartbeatSender::crash_due_now() const {
  // Robustness against a send and a crash landing on the same instant with
  // the send event enqueued first: the crash still suppresses the send.
  return !fault_schedule_.empty() && fault_schedule_.front().crash &&
         fault_schedule_.front().at <= sim_.now();
}

void HeartbeatSender::set_eta(Duration new_eta) {
  expects(new_eta > Duration::zero(),
          "HeartbeatSender::set_eta: eta must be positive");
  eta_ = new_eta;
  if (!started_ || crashed_) return;
  if (pending_send_ != 0) sim_.cancel(pending_send_);
  TimePoint next = last_send_ + eta_;
  if (next < sim_.now()) next = sim_.now();
  pending_send_ = sim_.at(next, [this] { send_next(); });
}

void HeartbeatSender::send_next() {
  pending_send_ = 0;
  if (crashed_ || crash_due_now()) return;
  const TimePoint now = sim_.now();
  last_send_ = now;
  net::Message m;
  m.seq = next_seq_++;
  m.sent_real = now;
  m.sender_timestamp = clock_.local(now);
  m.incarnation = recoveries_;
  link_.send(m);
  pending_send_ = sim_.after(eta_, [this] { send_next(); });
}

}  // namespace chenfd::core
