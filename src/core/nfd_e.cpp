#include "core/nfd_e.hpp"

#include <cmath>

#include "common/check.hpp"
#include "core/nfd_e_math.hpp"

namespace chenfd::core {

namespace {

/// Validating pass-through for the base-class member initializer: the
/// full NfdEParams contract runs *before* any state reaches the NfdU base.
/// (Validating in the constructor body would be too late — the base
/// subobject is already built from the unchecked eta/alpha by then.)
NfdUParams validated_base_params(const NfdEParams& params) {
  params.validate();
  return NfdUParams{params.eta, params.alpha};
}

}  // namespace

NfdE::NfdE(sim::Simulator& simulator, const clk::Clock& q_clock,
           NfdEParams params)
    : NfdU(simulator, q_clock, validated_base_params(params), EaProvider{}),
      capacity_(params.window),
      eta_(params.eta) {}

void NfdE::rebase(NfdUParams new_params, net::SeqNo epoch_seq) {
  new_params.validate();
  set_params(new_params);
  eta_ = new_params.eta;
  epoch_seq_ = epoch_seq;
  window_.clear();
  normalized_sum_ = 0.0;
}

void NfdE::restore(NfdUParams new_params, net::SeqNo epoch_seq,
                   const std::vector<Observation>& window,
                   net::SeqNo max_seq) {
  CHENFD_EXPECTS(window.size() <= capacity_,
                 "NfdE::restore: window larger than this detector's capacity");
  rebase(new_params, epoch_seq);
  for (const Observation& o : window) {
    CHENFD_EXPECTS(o.seq >= epoch_seq,
                   "NfdE::restore: window entry predates the epoch");
    CHENFD_EXPECTS(window_.empty() || o.seq > window_.back().seq,
                   "NfdE::restore: seqs must be strictly increasing");
    window_.push_back(o);
    normalized_sum_ += o.normalized;
  }
  CHENFD_EXPECTS(window_.empty() || max_seq >= window_.back().seq,
                 "NfdE::restore: max seq below the restored window");
  restore_max_seq(max_seq);
}

void NfdE::on_heartbeat(const net::Message& m, TimePoint real_now) {
  // Messages from before the current epoch were sent under a different
  // schedule; their arrival times do not fit the Eq. (6.3) normalization
  // and their freshness cannot be judged, so they are dropped entirely.
  if (m.seq < epoch_seq_) return;
  // Admit into the estimation window before the freshness logic runs, so
  // the Eq. (6.3) estimate for tau_{ell+1} includes this arrival (the paper
  // recomputes the estimate "every time q executes line 10").  Only
  // messages advancing the largest-seen sequence number are admitted; this
  // both filters duplicates (footnote 8) and keeps the window the "n most
  // recent heartbeats".  Pre-epoch messages no longer fit the normalization
  // and are excluded.
  if (window_.empty() || m.seq > window_.back().seq) {
    const TimePoint local_now = q_clock().local(real_now);
    const double normalized =
        eq63::normalize(local_now.seconds(), m.seq, epoch_seq_,
                        eta_.seconds());
    window_.push_back(Observation{normalized, m.seq});
    normalized_sum_ += normalized;
    if (window_.size() > capacity_) {
      normalized_sum_ -= window_.front().normalized;
      window_.pop_front();
    }
    CHENFD_ENSURES(window_.size() <= capacity_,
                   "NfdE: estimation window exceeded its capacity");
    // The running sum is maintained incrementally (add on admit, subtract
    // on evict); recompute it from scratch to catch drift or a missed
    // eviction.  O(window) per heartbeat, hence level-2 only.
    CHENFD_AUDIT(([this] {
                   double fresh = 0.0;
                   for (const Observation& o : window_) fresh += o.normalized;
                   return std::abs(fresh - normalized_sum_) <=
                          1e-9 * (1.0 + std::abs(fresh));
                 }()),
                 "NfdE: incremental Eq. 6.3 sum drifted from the window");
  }
  NfdU::on_heartbeat(m, real_now);
}

TimePoint NfdE::expected_arrival(net::SeqNo seq) {
  // A non-empty window is a requirement on the *caller* (no estimate exists
  // before the first heartbeat), hence EXPECTS, not ENSURES.
  CHENFD_EXPECTS(
      !window_.empty(),
      "NfdE::expected_arrival: called before any heartbeat was received");
  CHENFD_EXPECTS(seq >= epoch_seq_,
                 "NfdE::expected_arrival: sequence number predates the epoch");
  return TimePoint(eq63::estimate(normalized_sum_, window_.size(), seq,
                                  epoch_seq_, eta_.seconds()));
}

}  // namespace chenfd::core
