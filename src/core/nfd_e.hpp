// NFD-E — NFD-U with *estimated* expected arrival times (Section 6.3).
//
// q does not know the EA_i; it estimates them from the n most recent
// heartbeats using Eq. (6.3):
//
//   EA_{ell+1}  ~=  (1/n) * sum_i (A'_i - eta * s_i)  +  (ell+1) * eta
//
// where A'_i is the receipt time (q's local clock) and s_i the sequence
// number of the i-th message in the window.  Each receipt time is first
// "normalized" by shifting it back s_i sending periods, the normalized
// times are averaged, and the average is shifted forward to slot ell+1.
//
// The paper reports NFD-E is practically indistinguishable from NFD-U for
// windows as small as n = 30 (their simulations use 32); the Fig. 12 bench
// and the parity tests in tests/test_nfd_e.cpp reproduce that claim.

#pragma once

#include <deque>
#include <vector>

#include "core/nfd_u.hpp"

namespace chenfd::core {

class NfdE final : public NfdU {
 public:
  NfdE(sim::Simulator& simulator, const clk::Clock& q_clock,
       NfdEParams params);

  void on_heartbeat(const net::Message& m, TimePoint real_now) override;

  /// Starts a new sending epoch: heartbeats from `epoch_seq` on are sent
  /// every `new_eta`, i.e. sigma_s = sigma_epoch + (s - epoch_seq) * eta.
  /// Clears the estimation window (pre-epoch arrivals no longer fit the
  /// Eq. 6.3 normalization) and updates (eta, alpha).  Used by the adaptive
  /// service when it renegotiates the heartbeat rate with the sender.
  void rebase(NfdUParams new_params, net::SeqNo epoch_seq);

  /// One Eq. 6.3 window entry, exposed for monitor snapshots.
  struct Observation {
    double normalized;  // A'_i - eta * (s_i - epoch), in q-local seconds
    net::SeqNo seq;
  };

  /// The current estimation window, oldest first.
  [[nodiscard]] std::vector<Observation> window_snapshot() const {
    return {window_.begin(), window_.end()};
  }

  /// Rehydrates the full Eq. 6.3 state from a snapshot (supervised warm
  /// restart).  The normalized arrival times are q-local and the sending
  /// schedule survived the monitor's downtime (p did not crash merely
  /// because its observer did), so the restored window remains a valid
  /// basis for expected_arrival of post-restart sequence numbers — this is
  /// what lets a warm restart re-trust on the first live heartbeat instead
  /// of refilling the window.  The detector suspects until that heartbeat:
  /// no freshness timer is armed here.
  void restore(NfdUParams new_params, net::SeqNo epoch_seq,
               const std::vector<Observation>& window, net::SeqNo max_seq);

  [[nodiscard]] std::size_t window_size() const { return window_.size(); }
  [[nodiscard]] std::size_t window_capacity() const { return capacity_; }
  [[nodiscard]] net::SeqNo epoch_seq() const { return epoch_seq_; }

 protected:
  [[nodiscard]] TimePoint expected_arrival(net::SeqNo seq) override;

 private:
  std::size_t capacity_;
  Duration eta_;
  net::SeqNo epoch_seq_ = 0;  // seq numbers are normalized relative to this
  std::deque<Observation> window_;
  double normalized_sum_ = 0.0;
};

}  // namespace chenfd::core
