// Discrete-event experiment drivers: accuracy measurement over a window and
// crash/detection-time experiments, built on the Testbed.
//
// These complement the fast Monte-Carlo engines in fast_sim.hpp: the DES
// drivers run any FailureDetector unmodified (including the adaptive
// service), support unsynchronized clocks and bursty loss, and are the
// reference implementation the fast engines are validated against.

#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/testbed.hpp"
#include "dist/distribution.hpp"
#include "qos/recorder.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::core {

/// Builds the detector under test inside a fresh Testbed.  Called once per
/// run; the detector is attached and activated by the driver.
using DetectorFactory =
    std::function<std::unique_ptr<FailureDetector>(Testbed&)>;

/// The paper's probabilistic network (Section 3.1): i.i.d. Bernoulli loss
/// plus an arbitrary delay distribution.
struct NetworkModel {
  double p_loss = 0.01;
  const dist::DelayDistribution& delay;
};

struct AccuracyExperiment {
  Duration eta = seconds(1.0);
  Duration warmup = seconds(100.0);    ///< discarded before measuring
  Duration duration = seconds(10000.0);
  Duration p_clock_offset = Duration::zero();
  Duration q_clock_offset = Duration::zero();
  double duplication_probability = 0.0;
  std::uint64_t seed = 42;
};

/// Runs a failure-free run and measures the Section 2 accuracy metrics over
/// [warmup, warmup + duration].
[[nodiscard]] qos::Recorder run_accuracy(const DetectorFactory& factory,
                                         const NetworkModel& model,
                                         const AccuracyExperiment& exp);

struct DetectionExperiment {
  Duration eta = seconds(1.0);
  std::size_t runs = 1000;
  Duration warmup = seconds(50.0);  ///< crash happens in [warmup, warmup+eta)
  /// How long past the crash to keep simulating before declaring the last
  /// S-transition final.  Must exceed the detector's detection bound plus
  /// the longest plausible in-flight delay.
  Duration settle = seconds(100.0);
  std::uint64_t seed = 42;
};

/// Repeatedly crashes p at a uniformly random point of a heartbeat period
/// and measures the detection time T_D (Section 2.2): the time from the
/// crash to the final S-transition.  Runs that end trusting (no detection
/// within `settle`) contribute +infinity samples.
[[nodiscard]] stats::SampleSet measure_detection_times(
    const DetectorFactory& factory, const NetworkModel& model,
    const DetectionExperiment& exp);

}  // namespace chenfd::core
