// Exact QoS analysis of NFD-S — Proposition 3 and Theorem 5 of the paper.
//
// Given the network behaviour (loss probability p_L, delay distribution D)
// and the algorithm parameters (eta, delta), this module evaluates:
//
//   k      = ceil(delta / eta)                                   (Prop 3.1)
//   p_j(x) = p_L + (1 - p_L) Pr(D > delta + x - j*eta)           (Prop 3.2)
//   q_0    = (1 - p_L) Pr(D < delta + eta)                       (Prop 3.3)
//   u(x)   = prod_{j=0}^{k} p_j(x)                               (Prop 3.4)
//   p_s    = q_0 * u(0)                                          (Prop 3.5)
//
//   T_D      <= delta + eta                  (tight)             (Thm 5.1)
//   E(T_MR)   = eta / p_s                                        (Thm 5.2)
//   E(T_M)    = Int_0^eta u(x) dx / p_s                          (Thm 5.3)
//   P_A       = 1 - (1/eta) Int_0^eta u(x) dx                    (Lemma 15)
//
// The integral is evaluated numerically (composite Simpson split at the
// single structural kink x = k*eta - delta where the j = k factor's argument
// crosses zero).
//
// NFD-U's analysis is the same with delta := E(D) + alpha (Section 6.2), so
// a convenience constructor is provided.

#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "core/params.hpp"
#include "dist/distribution.hpp"
#include "qos/metrics.hpp"

namespace chenfd::core {

class NfdSAnalysis {
 public:
  /// p_loss in [0, 1); `delay` must outlive this object.
  NfdSAnalysis(NfdSParams params, double p_loss,
               const dist::DelayDistribution& delay);

  /// Equivalent analysis for NFD-U with parameters (eta, alpha): identical
  /// to NFD-S with delta = E(D) + alpha (Section 6.2).
  [[nodiscard]] static NfdSAnalysis for_nfd_u(
      NfdUParams params, double p_loss,
      const dist::DelayDistribution& delay);

  /// Prop 3.1: number of heartbeats sent before tau_i that can be fresh
  /// in [tau_i, tau_{i+1}).
  [[nodiscard]] int k() const { return k_; }

  /// Prop 3.2: probability that m_{i+j} has not been received by tau_i + x.
  [[nodiscard]] double p_j(int j, double x) const;

  /// p_0 = p_0(0): probability m_i is not received by tau_i.
  [[nodiscard]] double p0() const { return p_j(0, 0.0); }

  /// Prop 3.3: probability m_{i-1} is received before tau_i.
  [[nodiscard]] double q0() const;

  /// Prop 3.4: probability q suspects p at tau_i + x, x in [0, eta).
  [[nodiscard]] double u(double x) const;

  /// Prop 3.5: probability of an S-transition at a freshness point.
  [[nodiscard]] double p_s() const { return q0() * u(0.0); }

  /// Thm 5.1: tight upper bound on the detection time.
  [[nodiscard]] Duration detection_time_bound() const {
    return params_.detection_time_bound();
  }

  // ---- Detection-time distribution (extension beyond the paper) --------
  //
  // The paper bounds T_D (Theorem 5.1); under the same model the full
  // distribution has a closed form.  Let the crash occur a fraction
  // phi ~ U[0,1) into a sending period, and call a heartbeat m_j
  // "effective" if it is not lost and arrives before its own last
  // freshness point (delay < delta + eta, probability q_0).  The final
  // S-transition happens at tau_{R+1} for the last effective heartbeat
  // m_R, so with G ~ Geometric(q_0) trailing ineffective heartbeats:
  //
  //     T_D = max(0,  delta + eta (1 - phi) - G eta).
  //
  // (T_D = 0 when q was already suspecting at the crash, matching the
  // paper's convention.)  Validated against crash experiments on the DES
  // in tests/test_detection_time.cpp.

  /// Pr(T_D <= x) for a crash at a uniformly random phase.
  [[nodiscard]] double detection_time_cdf(double x) const;

  /// E(T_D) for a crash at a uniformly random phase.
  [[nodiscard]] Duration detection_time_mean() const;

  /// Pr(T_D = 0): the probability the detector was already suspecting
  /// when the crash happened.
  [[nodiscard]] double detection_time_zero_probability() const {
    return detection_time_cdf(0.0);
  }

  /// Thm 5.2: average mistake recurrence time (infinite if p_0 = 0 or
  /// q_0 = 0 — the degenerate always-trust / always-suspect cases).
  [[nodiscard]] Duration e_tmr() const;

  /// Thm 5.3: average mistake duration (0 if p_0 = 0, infinite if q_0 = 0).
  [[nodiscard]] Duration e_tm() const;

  /// P_A = 1 - (1/eta) Int_0^eta u(x) dx   (Lemma 15).
  [[nodiscard]] double query_accuracy() const;

  /// All three headline figures in one struct (for paper-vs-measured
  /// tables and requirement checks).
  [[nodiscard]] qos::Figures figures() const;

  [[nodiscard]] const NfdSParams& params() const { return params_; }
  [[nodiscard]] double p_loss() const { return p_loss_; }

 private:
  [[nodiscard]] double integral_u() const;  // Int_0^eta u(x) dx, cached

  NfdSParams params_;
  double p_loss_;
  const dist::DelayDistribution& delay_;
  int k_;
  mutable double cached_integral_ = -1.0;
};

}  // namespace chenfd::core
