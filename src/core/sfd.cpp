#include "core/sfd.hpp"

namespace chenfd::core {

Sfd::Sfd(sim::Simulator& simulator, const clk::Clock& q_clock,
         SfdParams params)
    : sim_(simulator), q_clock_(q_clock), params_(params) {
  params_.validate();
}

// detlint: allow(R4) stop is idempotent and legal in any state
void Sfd::stop() {
  stopped_ = true;
  if (timer_ != 0) sim_.cancel(timer_);
}

// detlint: allow(R4) every message is admissible; late/stale ones are dropped
void Sfd::on_heartbeat(const net::Message& m, TimePoint real_now) {
  if (stopped_) return;
  // Cutoff check: discard heartbeats older than c.  The measured delay is
  // (local receipt time - sender timestamp), exact under synchronized
  // clocks.
  const Duration measured_delay =
      q_clock_.local(real_now) - m.sender_timestamp;
  if (measured_delay > params_.cutoff) {
    ++discarded_;
    return;
  }
  if (m.seq <= ell_) return;  // only *newer* heartbeats restart the timer
  ell_ = m.seq;
  set_output(real_now, Verdict::kTrust);
  if (timer_ != 0) sim_.cancel(timer_);
  timer_ = sim_.after(params_.timeout, [this] { on_timeout(); });
}

void Sfd::on_timeout() {
  if (stopped_) return;
  timer_ = 0;
  set_output(sim_.now(), Verdict::kSuspect);
}

}  // namespace chenfd::core
