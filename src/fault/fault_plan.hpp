// Deterministic fault scripts for the two-process testbed (DESIGN.md
// section 8).
//
// A FaultPlan is a schedule of timed fault events against a core::Testbed:
//
//   - crash/recover of the monitored process p (crash-recovery model;
//     sequence numbers continue across the outage),
//   - partition/heal of the link (drop-all state distinct from the loss
//     model, see net::Link::set_partitioned),
//   - swapping the delay distribution or loss model mid-run (regime shift),
//   - clock jumps and clock-rate changes on either process's local clock,
//   - heartbeat storms: windows during which every delivery is duplicated.
//
// Plans are built with chainable builder calls in any order, then armed
// once against a testbed: arm() sorts the events by time and schedules
// them on the testbed's simulator, so the same plan object is also the
// ground truth the chaos oracles check against (partition_windows(),
// downtime_windows() report exactly what was injected).
//
// Everything is deterministic: a plan replays identically for a given
// testbed seed, and ChaosSchedule (chaos.hpp) samples randomized plans
// from explicit RNG substreams so chaos suites are bit-reproducible for
// any --jobs count.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "core/testbed.hpp"
#include "dist/distribution.hpp"
#include "net/loss_model.hpp"

namespace chenfd::service {
class MonitorSupervisor;
}  // namespace chenfd::service

namespace chenfd::fault {

/// A closed time interval during which a fault held the system down.
struct Window {
  TimePoint begin;
  TimePoint end;

  [[nodiscard]] Duration length() const { return end - begin; }
};

/// Identifies a process in an N-process election cluster.  The two-process
/// testbed's monitored process p is process 0 by convention, so the
/// untagged builders (crash_p, ...) are shorthands for process 0.
using ProcessId = std::size_t;

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(FaultPlan&&) = default;
  FaultPlan& operator=(FaultPlan&&) = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // ---- builders (chainable; call in any order, times are sorted at arm) --

  /// Crashes p at `at`.  Crash/recover events must alternate in time order
  /// (enforced when the plan is armed).  Shorthand for
  /// crash_process(0, at).
  FaultPlan& crash_p(TimePoint at);
  /// Recovers p at `at` (> the preceding crash time).  Shorthand for
  /// recover_process(0, at).
  FaultPlan& recover_p(TimePoint at);
  /// Crashes process `id` of an election cluster at `at`.  Per-process
  /// crash/recover events must alternate in time order (checked by the
  /// window queries and by the cluster applying the plan).  Only process 0
  /// events can be armed against a two-process testbed.
  FaultPlan& crash_process(ProcessId id, TimePoint at);
  /// Recovers process `id` at `at` (> its preceding crash time).
  FaultPlan& recover_process(ProcessId id, TimePoint at);
  /// Isolates process `id` on [from, until): every link to or from `id`
  /// drops all messages (an asymmetric partition around one process).
  /// Cluster-level only — the two-process testbed expresses the same fault
  /// as partition().
  FaultPlan& isolate(ProcessId id, TimePoint from, TimePoint until);
  /// Kills process `id`'s *elector/monitor* (observer-side state loss,
  /// process `id` itself keeps sending heartbeats).  Cluster-level
  /// equivalent of monitor_crash(); restart policy (warm vs cold) is the
  /// restarting component's decision.
  FaultPlan& elector_crash(ProcessId id, TimePoint at);
  FaultPlan& elector_restart(ProcessId id, TimePoint at);
  /// Severs the link on [from, until): every send in the window is dropped.
  FaultPlan& partition(TimePoint from, TimePoint until);
  /// Swaps the link's delay distribution at `at` (regime shift).
  FaultPlan& swap_delay(TimePoint at,
                        std::unique_ptr<dist::DelayDistribution> delay);
  /// Swaps the link's loss model at `at`.
  FaultPlan& swap_loss(TimePoint at, std::unique_ptr<net::LossModel> loss);
  /// Steps p's (resp. q's) local clock by `step` at real time `at`.
  FaultPlan& clock_jump_p(TimePoint at, Duration step);
  FaultPlan& clock_jump_q(TimePoint at, Duration step);
  /// Changes p's (resp. q's) clock rate (drift) at real time `at`.
  FaultPlan& clock_rate_p(TimePoint at, double rate);
  FaultPlan& clock_rate_q(TimePoint at, double rate);
  /// Heartbeat storm: on [from, until) every delivered message is
  /// duplicated with probability `p` (1 = every delivery twice); the
  /// probability returns to 0 at `until`.
  FaultPlan& duplication_burst(TimePoint from, TimePoint until, double p);
  /// Kills the *monitor* (not p) at `at`: the supervised service loses its
  /// whole in-memory state.  Monitor crash/restart events must alternate
  /// in time order (enforced at arm) and require the supervisor-aware
  /// arm() overload.
  FaultPlan& monitor_crash(TimePoint at);
  /// Restarts the monitor at `at` (> the preceding monitor crash time);
  /// warm or cold is the supervisor's decision, not the plan's.
  FaultPlan& monitor_restart(TimePoint at);
  /// Realtime-front-end fault (service/realtime/replay.hpp): the consumer
  /// of realtime shard `shard` is alive but makes no progress on
  /// [from, until) — a stuck drain loop, not a crash.  Consumed via
  /// consumer_stall_windows(); cannot be armed against a testbed.
  FaultPlan& consumer_stall(ProcessId shard, TimePoint from, TimePoint until);

  // ---- execution --------------------------------------------------------

  /// Schedules every event on `testbed`'s simulator (and the crash/recover
  /// schedule on its sender).  Call exactly once, before running the
  /// simulation past the earliest event; the plan must outlive the run
  /// only through the closures it registered, so the plan object itself
  /// may be queried or destroyed afterwards.
  void arm(core::Testbed& testbed);

  /// As arm(testbed), additionally wiring monitor crash/restart events to
  /// `supervisor` (must be attached to the same testbed and outlive the
  /// run).  Plans without monitor events may use either overload; plans
  /// with them must use this one.
  void arm(core::Testbed& testbed, service::MonitorSupervisor* supervisor);

  // ---- ground truth for oracles -----------------------------------------

  /// The partition intervals, in time order.
  [[nodiscard]] std::vector<Window> partition_windows() const;
  /// The crash->recover downtime intervals, in time order.  A final crash
  /// with no recovery yields a window ending at +infinity.
  [[nodiscard]] std::vector<Window> downtime_windows() const;
  /// The monitor crash->restart intervals, in time order (same final-crash
  /// convention).  Deliberately NOT part of outage_windows(): heartbeats
  /// still flow while the monitor is down — it is the observer that is
  /// blind, not the link or p — so the outage oracles do not apply.
  [[nodiscard]] std::vector<Window> monitor_downtime_windows() const;
  /// partition_windows() and downtime_windows() merged into one time-ordered
  /// list: every interval during which no heartbeat can get through.
  [[nodiscard]] std::vector<Window> outage_windows() const;

  // ---- per-process ground truth (election clusters) ---------------------

  /// The crash->recover downtime intervals of process `id`, in time order
  /// (the no-argument overload reports process 0).  Ordering and
  /// alternation are contract-checked: windows are disjoint, time-ordered,
  /// and only the last may extend to +infinity.
  [[nodiscard]] std::vector<Window> downtime_windows(ProcessId id) const;
  /// The isolate() intervals of process `id`, in time order.
  [[nodiscard]] std::vector<Window> isolation_windows(ProcessId id) const;
  /// The elector crash->restart intervals of process `id`, in time order.
  [[nodiscard]] std::vector<Window> elector_downtime_windows(
      ProcessId id) const;
  /// The consumer_stall() intervals of realtime shard `shard`, in time
  /// order.
  [[nodiscard]] std::vector<Window> consumer_stall_windows(
      ProcessId shard) const;
  /// The duplication_burst() intervals, in time order (the realtime replay
  /// harness treats each as a storm window: every heartbeat sent twice).
  [[nodiscard]] std::vector<Window> duplication_windows() const;
  /// The complement of downtime_windows(id) clamped to [0, horizon]: the
  /// intervals during which process `id` is up, in time order.  This is the
  /// ground truth the leader QoS oracles consume directly instead of
  /// re-deriving it ad hoc.  Windows are contract-checked to be non-empty,
  /// disjoint and time-ordered; a process crashed at the horizon simply
  /// contributes no trailing window.
  [[nodiscard]] std::vector<Window> ground_truth_up_windows(
      ProcessId id, TimePoint horizon) const;

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  enum class Kind {
    kCrash,
    kRecover,
    kPartitionOn,
    kPartitionOff,
    kSwapDelay,
    kSwapLoss,
    kClockJumpP,
    kClockJumpQ,
    kClockRateP,
    kClockRateQ,
    kDuplicationOn,
    kDuplicationOff,
    kMonitorCrash,
    kMonitorRestart,
    kIsolateOn,
    kIsolateOff,
    kElectorCrash,
    kElectorRestart,
    kConsumerStallOn,
    kConsumerStallOff,
  };

  struct Event {
    Event(Kind k, TimePoint t) : kind(k), at(t) {}

    Kind kind;
    TimePoint at;
    ProcessId process = 0;             // crash/recover/isolate/elector tag
    Duration step = Duration::zero();  // clock jumps
    double value = 0.0;                // rates / probabilities
    // Swap payloads are shared so the scheduling closures stay copyable
    // (sim::EventFn is a std::function); the link receives a clone.
    std::shared_ptr<dist::DelayDistribution> delay;
    std::shared_ptr<net::LossModel> loss;
  };

  FaultPlan& push(Event event);
  [[nodiscard]] std::vector<Event> sorted_events() const;
  /// Pairs `on`/`off` events tagged with process `id` into windows and
  /// contract-checks alternation and ordering.
  [[nodiscard]] std::vector<Window> paired_windows(Kind on, Kind off,
                                                   ProcessId id) const;

  std::vector<Event> events_;
  bool armed_ = false;
};

}  // namespace chenfd::fault
