#include "fault/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "core/nfd_e.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/audit.hpp"
#include "qos/replay.hpp"
#include "service/adaptive.hpp"

namespace chenfd::fault {

double ChaosSchedule::intensity_per_hour() const {
  const double faults = static_cast<double>(partitions + crash_cycles +
                                            duplication_bursts +
                                            monitor_crashes);
  return faults / (horizon.seconds() / 3600.0);
}

FaultPlan ChaosSchedule::sample(Rng& rng) const {
  FaultPlan plan;
  const std::size_t total =
      partitions + crash_cycles + duplication_bursts + monitor_crashes;
  if (total == 0) return plan;
  // Faults are placed in disjoint equal slots of the middle 80% of the
  // horizon: starts in the first quarter of the slot, lengths capped at
  // half the slot, so faults never overlap or touch the window edges and
  // crash/recover alternation holds by construction.
  const double h = horizon.seconds();
  const double width = 0.8 * h / static_cast<double>(total);
  std::size_t slot = 0;
  const auto place = [&](double min_len, double max_len) {
    const double slot_begin = 0.1 * h + static_cast<double>(slot) * width;
    ++slot;
    const double start = slot_begin + rng.uniform(0.0, 0.25 * width);
    const double len = std::min(rng.uniform(min_len, max_len), 0.5 * width);
    return Window{TimePoint(start), TimePoint(start + len)};
  };
  for (std::size_t i = 0; i < partitions; ++i) {
    const Window w = place(partition_min.seconds(), partition_max.seconds());
    plan.partition(w.begin, w.end);
  }
  for (std::size_t i = 0; i < crash_cycles; ++i) {
    const Window w = place(downtime_min.seconds(), downtime_max.seconds());
    plan.crash_p(w.begin).recover_p(w.end);
  }
  for (std::size_t i = 0; i < duplication_bursts; ++i) {
    const Window w = place(burst_length.seconds(), burst_length.seconds());
    plan.duplication_burst(w.begin, w.end, burst_duplication);
  }
  for (std::size_t i = 0; i < monitor_crashes; ++i) {
    const Window w =
        place(monitor_downtime_min.seconds(), monitor_downtime_max.seconds());
    plan.monitor_crash(w.begin).monitor_restart(w.end);
  }
  return plan;
}

Verdict verdict_at(const std::vector<Transition>& transitions, TimePoint t) {
  Verdict v = Verdict::kSuspect;  // detectors start suspecting
  for (const Transition& tr : transitions) {
    if (tr.at > t) break;
    v = tr.to;
  }
  return v;
}

namespace {

/// True iff the detector trusts again within (after, after + slack].
bool retrusts_within(const std::vector<Transition>& trace, TimePoint after,
                     Duration slack) {
  for (const Transition& tr : trace) {
    if (tr.at <= after) continue;
    if (tr.at > after + slack) break;
    if (tr.to == Verdict::kTrust) return true;
  }
  return false;
}

std::string time_str(TimePoint t) {
  std::ostringstream os;
  os << t.seconds() << "s";
  return os.str();
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, Rng& rng) {
  expects(!spec.name.empty(), "run_scenario: scenario must be named");
  expects(spec.horizon > Duration::zero(),
          "run_scenario: horizon must be positive");

  ScenarioResult result;
  result.name = spec.name;
  result.family = spec.family;
  result.fault_intensity = spec.fault_intensity;
  const bool adaptive = spec.adaptive || spec.supervised;
  result.adaptive = adaptive;
  result.supervised = spec.supervised;
  result.horizon = TimePoint::zero() + spec.horizon;

  // The testbed's own stochastic components (delays, losses) draw from a
  // seed derived from the scenario substream, keeping the whole scenario a
  // pure function of (spec, substream).
  const std::uint64_t testbed_seed = rng();
  core::Testbed::Config config;
  config.delay = std::make_unique<dist::Exponential>(spec.delay_mean_s);
  config.loss = std::make_unique<net::BernoulliLoss>(spec.base_loss);
  config.eta = spec.eta;
  config.seed = testbed_seed;
  core::Testbed testbed(std::move(config));

  FaultPlan plan = spec.chaos.sample(rng);
  if (spec.scripted) spec.scripted(plan);

  std::unique_ptr<core::NfdE> fixed;
  std::unique_ptr<service::AdaptiveMonitor> monitor;
  std::unique_ptr<persist::MemorySnapshotStore> store;
  std::unique_ptr<service::MonitorSupervisor> supervisor;
  core::FailureDetector* detector = nullptr;
  if (adaptive) {
    service::AdaptiveMonitor::Options options;
    options.requirements = core::RelativeRequirements{
        spec.eta + spec.alpha, spec.t_mr_lower, spec.t_m_upper};
    options.initial = core::NfdEParams{spec.eta, spec.alpha, spec.window};
    options.reconfig_interval = spec.reconfig_interval;
    if (spec.supervised) {
      store = std::make_unique<persist::MemorySnapshotStore>();
      service::MonitorSupervisor::Options sup_options;
      sup_options.monitor = options;
      sup_options.snapshot_interval = spec.snapshot_interval;
      sup_options.max_snapshot_age = spec.max_snapshot_age;
      sup_options.policy = spec.restart_policy;
      supervisor = std::make_unique<service::MonitorSupervisor>(
          testbed.simulator(), testbed.q_clock(), testbed.sender(), *store,
          sup_options);
      detector = supervisor.get();
    } else {
      monitor = std::make_unique<service::AdaptiveMonitor>(
          testbed.simulator(), testbed.q_clock(), testbed.sender(), options);
      detector = monitor.get();
    }
  } else {
    fixed = std::make_unique<core::NfdE>(
        testbed.simulator(), testbed.q_clock(),
        core::NfdEParams{spec.eta, spec.alpha, spec.window});
    detector = fixed.get();
  }
  // The live service instance: stable for plain adaptive scenarios, the
  // current incarnation (possibly none) for supervised ones.
  const auto live_monitor = [&monitor,
                             &supervisor]() -> const service::AdaptiveMonitor* {
    return supervisor ? supervisor->monitor() : monitor.get();
  };
  detector->add_listener(
      [&result](const Transition& t) { result.trace.push_back(t); });
  testbed.attach(*detector);
  plan.arm(testbed, supervisor.get());

  // Ground truth the oracles check against, clipped to the horizon.
  std::vector<Window> outages;
  for (const Window& w : plan.outage_windows()) {
    if (w.begin >= result.horizon) continue;
    outages.push_back(Window{w.begin, std::min(w.end, result.horizon)});
  }
  result.outages = outages.size();

  // Graceful-degradation probes: shortly after each outage ends the risk
  // flag must still be latched (revalidation needs a fresh estimation
  // window, which takes several heartbeats to prime).
  if (adaptive) {
    for (const Window& w : outages) {
      const TimePoint probe =
          std::min(w.end + spec.eta * 2.0, result.horizon);
      testbed.simulator().at(probe, [&result, live_monitor] {
        const service::AdaptiveMonitor* m = live_monitor();
        if (m != nullptr && m->qos_at_risk()) result.risk_during_fault = true;
      });
    }
  }

  // Monitor downtime ground truth (supervised scenarios): these are NOT
  // outages — heartbeats keep flowing, only the observer is gone.
  std::vector<Window> monitor_outages;
  for (const Window& w : plan.monitor_downtime_windows()) {
    if (w.begin >= result.horizon) continue;
    monitor_outages.push_back(Window{w.begin, std::min(w.end, result.horizon)});
  }
  result.monitor_outages = monitor_outages.size();

  // Per-restart probes: the corruption injection (one bit flipped on the
  // simulated disk midway through the downtime) and the bounded-re-trust
  // latch check shortly after the restart.
  std::size_t restarts_probed = 0;
  std::size_t restarts_at_risk = 0;
  for (const Window& w : monitor_outages) {
    if (spec.corrupt_snapshots) {
      const TimePoint mid = w.begin + (w.end - w.begin) * 0.5;
      testbed.simulator().at(mid, [s = store.get()] {
        std::optional<persist::StoredSnapshot> stored = s->load();
        if (stored && !stored->bytes.empty()) {
          stored->bytes[stored->bytes.size() / 2] = static_cast<char>(
              stored->bytes[stored->bytes.size() / 2] ^ 0x01);
          s->save(std::move(stored->bytes), stored->saved_at);
        }
      });
    }
    if (w.end >= result.horizon) continue;
    ++restarts_probed;
    const TimePoint probe = std::min(w.end + spec.eta * 2.0, result.horizon);
    testbed.simulator().at(
        probe, [&restarts_at_risk, live_monitor] {
          const service::AdaptiveMonitor* m = live_monitor();
          if (m != nullptr && m->qos_at_risk()) ++restarts_at_risk;
        });
  }

  testbed.start();
  testbed.simulator().run_until(result.horizon);

  if (adaptive) {
    if (const service::AdaptiveMonitor* m = live_monitor()) {
      result.epoch_resets = m->epoch_resets();
      result.reconfigurations = m->reconfigurations();
      result.risk_clear_at_end = !m->qos_at_risk();
    }
  }
  if (supervisor) {
    result.warm_restarts = supervisor->warm_restarts();
    result.cold_restarts = supervisor->cold_restarts();
    result.snapshots_taken = supervisor->snapshots_taken();
    result.snapshot_rejects = supervisor->snapshot_rejects();
  }

  // ---- metrics ----------------------------------------------------------
  const qos::Recorder recorder =
      qos::replay(result.trace, TimePoint::zero(), result.horizon);
  result.availability = recorder.query_accuracy();
  result.mistake_rate = recorder.mistake_rate();
  result.mean_mistake_s = recorder.mistake_duration().count() > 0
                              ? recorder.mistake_duration().mean()
                              : 0.0;
  result.s_transitions = recorder.s_transitions();
  result.transitions = result.trace.size();

  // ---- oracles ----------------------------------------------------------
  auto violate = [&result](const std::string& what) {
    result.violations.push_back(what);
  };

  for (const Window& w : outages) {
    // Suspicion: an outage longer than the detection bound plus slack must
    // be noticed both by suspect_slack into the outage and at its end (no
    // heartbeat can have gotten through in between).
    if (w.length() > spec.suspect_slack) {
      for (const TimePoint check : {w.begin + spec.suspect_slack, w.end}) {
        if (verdict_at(result.trace, check) != Verdict::kSuspect) {
          violate("not suspecting at " + time_str(check) + " during outage [" +
                  time_str(w.begin) + ", " + time_str(w.end) + "]");
        }
      }
    }
    // Re-trust: after the heal/recovery the detector must trust again
    // within the scenario bound (window refill included).
    if (w.end + spec.retrust_slack <= result.horizon &&
        !retrusts_within(result.trace, w.end, spec.retrust_slack)) {
      violate("no re-trust within " +
              std::to_string(spec.retrust_slack.seconds()) +
              "s after outage ending at " + time_str(w.end));
    }
  }

  if (adaptive && !outages.empty()) {
    if (!result.risk_during_fault) {
      violate("qos_at_risk never raised around an outage");
    }
    if (!result.risk_clear_at_end) {
      violate("qos_at_risk still latched at the horizon");
    }
    if (result.epoch_resets == 0) {
      violate("no discontinuity epoch reset despite an outage");
    }
  }
  if (adaptive) {
    if (const service::AdaptiveMonitor* m = live_monitor()) {
      const auto& est = m->estimator();
      if (!std::isfinite(est.loss_probability()) ||
          !std::isfinite(est.delay_variance()) ||
          !std::isfinite(est.delay_mean())) {
        violate("adaptive estimates are not finite at the horizon");
      }
    }
  }

  if (spec.supervised) {
    // Every restart must come back latched at risk: the rehydrated (warm)
    // or assumed (cold) state is unvalidated until a round succeeds.
    if (restarts_at_risk < restarts_probed) {
      violate("a restarted monitor was not latched qos_at_risk");
    }
    // Bounded re-trust after each restart, and the mean re-trust time for
    // the degradation curves.
    double retrust_sum = 0.0;
    std::size_t retrust_count = 0;
    for (const Window& w : monitor_outages) {
      if (w.end + spec.monitor_retrust_slack <= result.horizon &&
          !retrusts_within(result.trace, w.end, spec.monitor_retrust_slack)) {
        violate("no re-trust within " +
                std::to_string(spec.monitor_retrust_slack.seconds()) +
                "s after monitor restart at " + time_str(w.end));
      }
      for (const Transition& tr : result.trace) {
        if (tr.at > w.end && tr.to == Verdict::kTrust) {
          retrust_sum += (tr.at - w.end).seconds();
          ++retrust_count;
          break;
        }
      }
    }
    result.mean_restart_retrust_s =
        retrust_count > 0 ? retrust_sum / static_cast<double>(retrust_count)
                          : 0.0;
    const std::size_t restarts = result.warm_restarts + result.cold_restarts;
    if (restarts != restarts_probed) {
      violate("supervisor restart count disagrees with the plan");
    }
    if (spec.corrupt_snapshots) {
      if (result.warm_restarts != 0) {
        violate("a corrupted snapshot was warm-restarted");
      }
      if (restarts > 0 && result.snapshot_rejects == 0) {
        violate("corrupted snapshots were never rejected");
      }
    }
    if (spec.restart_policy ==
            service::MonitorSupervisor::RestartPolicy::kColdAlways &&
        result.warm_restarts != 0) {
      violate("warm restart under the cold-always policy");
    }
    if (spec.expect_all_warm && result.cold_restarts != 0) {
      violate("expected warm restarts only, saw a cold one");
    }
    if (spec.expect_all_cold && result.warm_restarts != 0) {
      violate("expected cold restarts only, saw a warm one");
    }
    if (restarts_probed > 0 && !result.risk_clear_at_end) {
      violate("qos_at_risk still latched at the horizon after restarts");
    }
    // Once revalidated, the running configuration must honor the
    // registered detection bound (Theorems 9-11 feasibility).
    if (const service::AdaptiveMonitor* m = live_monitor()) {
      if (!m->qos_at_risk() && m->relative_detection_bound() >
                                   spec.eta + spec.alpha + seconds(1e-9)) {
        violate("validated configuration exceeds the registered T_D bound");
      }
    } else {
      violate("monitor not alive at the horizon");
    }
  }

  if (spec.audit) {
    try {
      const qos::AuditReport report =
          qos::audit_theorem1(recorder, spec.audit_tolerance);
      result.audit_cycles = report.cycles;
      for (const qos::IdentityCheck& check : report.checks) {
        if (!check.ok) {
          std::ostringstream os;
          os << "audit: " << check.name << " off by rel " << check.rel_error;
          violate(os.str());
        }
      }
    } catch (const std::invalid_argument& e) {
      violate(std::string("audit: ") + e.what());
    }
  }

  result.ok = result.violations.empty();
  return result;
}

std::vector<ScenarioResult> run_suite(const std::vector<ScenarioSpec>& specs,
                                      std::uint64_t root_seed,
                                      const runner::RunnerOptions& opts) {
  return runner::parallel_map<ScenarioResult>(
      specs.size(), root_seed, opts,
      [&specs](std::size_t i, Rng& rng) {
        return run_scenario(specs[i], rng);
      });
}

namespace {

ScenarioSpec base_spec(std::string name, std::string family,
                       double intensity) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.family = std::move(family);
  spec.fault_intensity = intensity;
  return spec;
}

void add_smoke(std::vector<ScenarioSpec>& out) {
  {
    // Two random partitions over a short horizon; high base loss keeps the
    // Theorem 1 audit supplied with mistake cycles.
    ScenarioSpec s = base_spec("smoke-partition", "smoke", 2.0);
    s.base_loss = 0.2;
    s.alpha = seconds(0.3);
    s.horizon = seconds(1200.0);
    s.chaos.horizon = s.horizon;
    s.chaos.partitions = 2;
    s.chaos.partition_min = seconds(30.0);
    s.chaos.partition_max = seconds(60.0);
    s.retrust_slack = seconds(30.0);
    out.push_back(std::move(s));
  }
  {
    // A scripted crash -> recover -> crash -> recover cycle: sequence
    // numbers continue across each outage, and NFD-E must re-trust after
    // its estimation window refills.
    ScenarioSpec s = base_spec("smoke-crash-recover", "smoke", 2.0);
    s.base_loss = 0.2;
    s.alpha = seconds(0.3);
    s.horizon = seconds(1200.0);
    s.scripted = [](FaultPlan& plan) {
      plan.crash_p(TimePoint(400.0))
          .recover_p(TimePoint(480.0))
          .crash_p(TimePoint(700.0))
          .recover_p(TimePoint(760.0));
    };
    s.retrust_slack = seconds(60.0);
    out.push_back(std::move(s));
  }
}

void add_full(std::vector<ScenarioSpec>& out) {
  // flaky-link: escalating loss with a bursty (Gilbert-Elliott) middle
  // third — the degradation curve's x-axis is the marginal loss level.
  for (const double loss : {0.05, 0.15, 0.30}) {
    std::ostringstream name;
    name << "flaky-link-" << loss;
    ScenarioSpec s = base_spec(name.str(), "flaky-link", loss);
    s.base_loss = loss;
    s.alpha = seconds(0.3);
    s.horizon = seconds(3000.0);
    s.scripted = [loss](FaultPlan& plan) {
      plan.swap_loss(TimePoint(1000.0),
                     std::make_unique<net::GilbertElliottLoss>(
                         0.05, 0.25, loss / 2.0, std::min(0.95, 3.0 * loss)));
      plan.swap_loss(TimePoint(2000.0),
                     std::make_unique<net::BernoulliLoss>(loss));
    };
    out.push_back(std::move(s));
  }
  {
    // flap-storm: heartbeat storms (every delivery duplicated) on top of
    // moderate loss; duplicates must be absorbed by the first-copy rule.
    ScenarioSpec s = base_spec("flap-storm", "flap-storm", 4.8);
    s.base_loss = 0.15;
    s.alpha = seconds(0.3);
    s.horizon = seconds(3000.0);
    s.chaos.horizon = s.horizon;
    s.chaos.duplication_bursts = 4;
    s.chaos.burst_length = seconds(60.0);
    s.chaos.burst_duplication = 1.0;
    out.push_back(std::move(s));
  }
  // partition-heal: escalating numbers of random partitions.
  for (const std::size_t partitions : {std::size_t{2}, std::size_t{5},
                                       std::size_t{9}}) {
    std::ostringstream name;
    name << "partition-heal-" << partitions;
    ScenarioSpec s = base_spec(
        name.str(), "partition-heal",
        static_cast<double>(partitions) / (4000.0 / 3600.0));
    s.base_loss = 0.2;
    s.alpha = seconds(0.3);
    s.horizon = seconds(4000.0);
    s.chaos.horizon = s.horizon;
    s.chaos.partitions = partitions;
    s.chaos.partition_min = seconds(40.0);
    s.chaos.partition_max = seconds(100.0);
    s.retrust_slack = seconds(30.0);
    out.push_back(std::move(s));
  }
  {
    // slow-regime: the delay regime degrades 5x for the middle third, the
    // q clock drifts slightly and takes a 2s forward step.  No outage
    // windows — the oracle here is trace consistency under regime shifts.
    ScenarioSpec s = base_spec("slow-regime", "slow-regime", 4.8);
    s.base_loss = 0.1;
    s.alpha = seconds(0.8);
    s.horizon = seconds(3000.0);
    s.scripted = [](FaultPlan& plan) {
      plan.clock_rate_q(TimePoint(500.0), 1.0001);
      plan.swap_delay(TimePoint(1000.0),
                      std::make_unique<dist::Exponential>(0.1));
      plan.swap_delay(TimePoint(2000.0),
                      std::make_unique<dist::Exponential>(0.02));
      plan.clock_jump_q(TimePoint(2500.0), seconds(2.0));
    };
    out.push_back(std::move(s));
  }
  {
    // crash-recover-cycle: two scripted downtime windows (crash -> recover
    // -> crash -> recover); re-trust must happen after each recovery even
    // though the estimation window was poisoned by the downtime shift.
    ScenarioSpec s = base_spec("crash-recover-cycle", "crash-recover", 1.8);
    s.base_loss = 0.2;
    s.alpha = seconds(0.3);
    s.horizon = seconds(4000.0);
    s.scripted = [](FaultPlan& plan) {
      plan.crash_p(TimePoint(1200.0))
          .recover_p(TimePoint(1360.0))
          .crash_p(TimePoint(2400.0))
          .recover_p(TimePoint(2560.0));
    };
    s.retrust_slack = seconds(60.0);
    out.push_back(std::move(s));
  }
  {
    // Adaptive service under a long partition: qos_at_risk must latch
    // while the partition is live and clear after reconvergence.
    ScenarioSpec s = base_spec("partition-heal-adaptive", "adaptive", 0.6);
    s.adaptive = true;
    s.base_loss = 0.05;
    s.horizon = seconds(6000.0);
    s.scripted = [](FaultPlan& plan) {
      plan.partition(TimePoint(1500.0), TimePoint(1900.0));
    };
    s.suspect_slack = seconds(15.0);
    s.retrust_slack = seconds(60.0);
    // Mistakes are deliberately rare for a configured service, so the
    // cycle-hungry Theorem 1 audit does not apply.
    s.audit = false;
    out.push_back(std::move(s));
  }
  {
    // Adaptive service across a crash-recovery of p: the discontinuity
    // epoch reset must restore fast re-trust despite the downtime shift
    // in the Eq. 6.3 normalization.
    ScenarioSpec s = base_spec("crash-recover-adaptive", "adaptive", 0.6);
    s.adaptive = true;
    s.base_loss = 0.05;
    s.horizon = seconds(6000.0);
    s.scripted = [](FaultPlan& plan) {
      plan.crash_p(TimePoint(2000.0)).recover_p(TimePoint(2300.0));
    };
    s.suspect_slack = seconds(15.0);
    s.retrust_slack = seconds(60.0);
    s.audit = false;
    out.push_back(std::move(s));
  }
}

ScenarioSpec base_supervised(std::string name, std::string family,
                             double intensity) {
  ScenarioSpec s = base_spec(std::move(name), std::move(family), intensity);
  s.supervised = true;
  s.base_loss = 0.05;
  s.horizon = seconds(2400.0);
  s.snapshot_interval = seconds(20.0);
  // Mistakes are rare for a configured service; the cycle-hungry Theorem 1
  // audit does not apply (as in the other adaptive scenarios).
  s.audit = false;
  return s;
}

void add_monitor_restart(std::vector<ScenarioSpec>& out) {
  {
    // One scripted monitor crash with a fresh snapshot on disk: the warm
    // path must rehydrate and re-trust on the first live heartbeat — the
    // tight slack is the point of this scenario.
    ScenarioSpec s =
        base_supervised("monitor-warm-1", "monitor-restart-warm", 1.5);
    s.scripted = [](FaultPlan& plan) {
      plan.monitor_crash(TimePoint(900.0)).monitor_restart(TimePoint(960.0));
    };
    s.monitor_retrust_slack = seconds(10.0);
    s.expect_all_warm = true;
    out.push_back(std::move(s));
  }
  {
    // Three randomized monitor crash cycles: snapshot freshness holds by
    // construction (interval 20s, max age 300s, downtime <= 60s), so every
    // restart must still be warm.
    ScenarioSpec s =
        base_supervised("monitor-warm-3", "monitor-restart-warm", 3.6);
    s.horizon = seconds(3000.0);
    s.chaos.horizon = s.horizon;
    s.chaos.monitor_crashes = 3;
    s.chaos.monitor_downtime_min = seconds(20.0);
    s.chaos.monitor_downtime_max = seconds(60.0);
    s.monitor_retrust_slack = seconds(10.0);
    s.expect_all_warm = true;
    out.push_back(std::move(s));
  }
  {
    // The distrust-storage baseline: snapshots exist and are valid, but
    // the policy forbids rehydration — every restart is cold and must
    // still converge back under the registered bound.
    ScenarioSpec s =
        base_supervised("monitor-cold-policy", "monitor-restart-cold", 3.0);
    s.restart_policy = service::MonitorSupervisor::RestartPolicy::kColdAlways;
    s.scripted = [](FaultPlan& plan) {
      plan.monitor_crash(TimePoint(700.0))
          .monitor_restart(TimePoint(760.0))
          .monitor_crash(TimePoint(1500.0))
          .monitor_restart(TimePoint(1540.0));
    };
    s.expect_all_cold = true;
    out.push_back(std::move(s));
  }
  {
    // A bit flips on the simulated disk during every downtime: the CRC
    // must reject the snapshot (all single-bit errors are detectable) and
    // the supervisor must fall back to a cold start, never crash or
    // half-restore.
    ScenarioSpec s =
        base_supervised("monitor-corrupt", "monitor-restart-cold", 3.0);
    s.corrupt_snapshots = true;
    s.scripted = [](FaultPlan& plan) {
      plan.monitor_crash(TimePoint(700.0))
          .monitor_restart(TimePoint(760.0))
          .monitor_crash(TimePoint(1500.0))
          .monitor_restart(TimePoint(1540.0));
    };
    s.expect_all_cold = true;
    out.push_back(std::move(s));
  }
  {
    // The snapshot is structurally valid but too old to trust: downtime
    // (120s) exceeds max_snapshot_age (60s), so the supervisor must count
    // a reject and start cold.
    ScenarioSpec s =
        base_supervised("monitor-stale", "monitor-restart-cold", 1.5);
    s.max_snapshot_age = seconds(60.0);
    s.scripted = [](FaultPlan& plan) {
      plan.monitor_crash(TimePoint(900.0)).monitor_restart(TimePoint(1020.0));
    };
    s.expect_all_cold = true;
    out.push_back(std::move(s));
  }
}

}  // namespace

std::vector<std::string> suite_names() {
  return {"smoke", "monitor-restart", "full"};
}

std::vector<ScenarioSpec> suite(const std::string& name) {
  std::vector<ScenarioSpec> out;
  if (name == "smoke") {
    add_smoke(out);
  } else if (name == "monitor-restart") {
    add_monitor_restart(out);
  } else if (name == "full") {
    add_smoke(out);
    add_full(out);
    add_monitor_restart(out);
  } else {
    throw std::invalid_argument("unknown chaos suite '" + name +
                                "' (known: smoke, monitor-restart, full)");
  }
  return out;
}

}  // namespace chenfd::fault
