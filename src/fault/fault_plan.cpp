#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "service/supervisor.hpp"

namespace chenfd::fault {

FaultPlan& FaultPlan::push(Event event) {
  expects(!armed_, "FaultPlan: cannot add events to an armed plan");
  expects(event.at >= TimePoint::zero(),
          "FaultPlan: event time must be non-negative");
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::crash_p(TimePoint at) {
  return push(Event{Kind::kCrash, at});
}

FaultPlan& FaultPlan::recover_p(TimePoint at) {
  return push(Event{Kind::kRecover, at});
}

FaultPlan& FaultPlan::partition(TimePoint from, TimePoint until) {
  expects(until > from, "FaultPlan::partition: window must be non-empty");
  push(Event{Kind::kPartitionOn, from});
  return push(Event{Kind::kPartitionOff, until});
}

FaultPlan& FaultPlan::swap_delay(
    TimePoint at, std::unique_ptr<dist::DelayDistribution> delay) {
  expects(delay != nullptr, "FaultPlan::swap_delay: null distribution");
  Event e{Kind::kSwapDelay, at};
  e.delay = std::move(delay);
  return push(std::move(e));
}

FaultPlan& FaultPlan::swap_loss(TimePoint at,
                                std::unique_ptr<net::LossModel> loss) {
  expects(loss != nullptr, "FaultPlan::swap_loss: null loss model");
  Event e{Kind::kSwapLoss, at};
  e.loss = std::move(loss);
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_jump_p(TimePoint at, Duration step) {
  expects(std::isfinite(step.seconds()),
          "FaultPlan::clock_jump_p: step must be finite");
  Event e{Kind::kClockJumpP, at};
  e.step = step;
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_jump_q(TimePoint at, Duration step) {
  expects(std::isfinite(step.seconds()),
          "FaultPlan::clock_jump_q: step must be finite");
  Event e{Kind::kClockJumpQ, at};
  e.step = step;
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_rate_p(TimePoint at, double rate) {
  expects(rate > 0.0, "FaultPlan::clock_rate_p: rate must be positive");
  Event e{Kind::kClockRateP, at};
  e.value = rate;
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_rate_q(TimePoint at, double rate) {
  expects(rate > 0.0, "FaultPlan::clock_rate_q: rate must be positive");
  Event e{Kind::kClockRateQ, at};
  e.value = rate;
  return push(std::move(e));
}

FaultPlan& FaultPlan::duplication_burst(TimePoint from, TimePoint until,
                                        double p) {
  expects(until > from,
          "FaultPlan::duplication_burst: window must be non-empty");
  expects(p >= 0.0 && p <= 1.0,
          "FaultPlan::duplication_burst: p must be in [0, 1]");
  Event on{Kind::kDuplicationOn, from};
  on.value = p;
  push(std::move(on));
  return push(Event{Kind::kDuplicationOff, until});
}

FaultPlan& FaultPlan::monitor_crash(TimePoint at) {
  return push(Event{Kind::kMonitorCrash, at});
}

FaultPlan& FaultPlan::monitor_restart(TimePoint at) {
  return push(Event{Kind::kMonitorRestart, at});
}

std::vector<FaultPlan::Event> FaultPlan::sorted_events() const {
  std::vector<Event> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  return sorted;
}

void FaultPlan::arm(core::Testbed& testbed) { arm(testbed, nullptr); }

void FaultPlan::arm(core::Testbed& testbed,
                    service::MonitorSupervisor* supervisor) {
  expects(!armed_, "FaultPlan::arm: plan already armed");
  armed_ = true;
  sim::Simulator& sim = testbed.simulator();
  // Monitor crash/restart must alternate (crash first), mirroring the
  // sender's crash/recover contract, so the downtime windows are
  // well-defined ground truth for the oracles.
  bool monitor_down = false;
  for (Event& ev : sorted_events()) {
    switch (ev.kind) {
      case Kind::kCrash:
        // The sender keeps its own crash/recover schedule (and enforces
        // the alternation contract); no simulator event needed here.
        testbed.crash_p_at(ev.at);
        break;
      case Kind::kRecover:
        testbed.recover_p_at(ev.at);
        break;
      case Kind::kPartitionOn:
        sim.at(ev.at, [&testbed] { testbed.link().set_partitioned(true); });
        break;
      case Kind::kPartitionOff:
        sim.at(ev.at, [&testbed] { testbed.link().set_partitioned(false); });
        break;
      case Kind::kSwapDelay:
        sim.at(ev.at, [&testbed, d = ev.delay] {
          testbed.link().set_delay(d->clone());
        });
        break;
      case Kind::kSwapLoss:
        sim.at(ev.at, [&testbed, l = ev.loss] {
          testbed.link().set_loss(l->clone());
        });
        break;
      case Kind::kClockJumpP:
        sim.at(ev.at, [&testbed, step = ev.step] {
          auto& clock = testbed.p_clock_adjust();
          clock.jump(testbed.simulator().now(), step);
        });
        break;
      case Kind::kClockJumpQ:
        sim.at(ev.at, [&testbed, step = ev.step] {
          auto& clock = testbed.q_clock_adjust();
          clock.jump(testbed.simulator().now(), step);
        });
        break;
      case Kind::kClockRateP:
        sim.at(ev.at, [&testbed, rate = ev.value] {
          auto& clock = testbed.p_clock_adjust();
          clock.set_rate(testbed.simulator().now(), rate);
        });
        break;
      case Kind::kClockRateQ:
        sim.at(ev.at, [&testbed, rate = ev.value] {
          auto& clock = testbed.q_clock_adjust();
          clock.set_rate(testbed.simulator().now(), rate);
        });
        break;
      case Kind::kDuplicationOn:
        sim.at(ev.at, [&testbed, p = ev.value] {
          testbed.link().set_duplication_probability(p);
        });
        break;
      case Kind::kDuplicationOff:
        sim.at(ev.at,
               [&testbed] { testbed.link().set_duplication_probability(0.0); });
        break;
      case Kind::kMonitorCrash:
        expects(supervisor != nullptr,
                "FaultPlan::arm: monitor events need the supervisor overload");
        expects(!monitor_down,
                "FaultPlan::arm: monitor crash while already down");
        monitor_down = true;
        sim.at(ev.at, [supervisor] { supervisor->crash_monitor(); });
        break;
      case Kind::kMonitorRestart:
        expects(supervisor != nullptr,
                "FaultPlan::arm: monitor events need the supervisor overload");
        expects(monitor_down,
                "FaultPlan::arm: monitor restart without a preceding crash");
        monitor_down = false;
        sim.at(ev.at, [supervisor] { supervisor->restart_monitor(); });
        break;
    }
  }
}

std::vector<Window> FaultPlan::partition_windows() const {
  std::vector<Window> out;
  for (const Event& ev : sorted_events()) {
    if (ev.kind == Kind::kPartitionOn) {
      out.push_back(Window{ev.at, TimePoint::infinity()});
    } else if (ev.kind == Kind::kPartitionOff && !out.empty() &&
               out.back().end.is_infinite()) {
      out.back().end = ev.at;
    }
  }
  return out;
}

std::vector<Window> FaultPlan::downtime_windows() const {
  std::vector<Window> out;
  for (const Event& ev : sorted_events()) {
    if (ev.kind == Kind::kCrash) {
      out.push_back(Window{ev.at, TimePoint::infinity()});
    } else if (ev.kind == Kind::kRecover && !out.empty() &&
               out.back().end.is_infinite()) {
      out.back().end = ev.at;
    }
  }
  return out;
}

std::vector<Window> FaultPlan::monitor_downtime_windows() const {
  std::vector<Window> out;
  for (const Event& ev : sorted_events()) {
    if (ev.kind == Kind::kMonitorCrash) {
      out.push_back(Window{ev.at, TimePoint::infinity()});
    } else if (ev.kind == Kind::kMonitorRestart && !out.empty() &&
               out.back().end.is_infinite()) {
      out.back().end = ev.at;
    }
  }
  return out;
}

std::vector<Window> FaultPlan::outage_windows() const {
  std::vector<Window> out = partition_windows();
  const std::vector<Window> down = downtime_windows();
  out.insert(out.end(), down.begin(), down.end());
  std::sort(out.begin(), out.end(), [](const Window& a, const Window& b) {
    return a.begin < b.begin;
  });
  return out;
}

}  // namespace chenfd::fault
