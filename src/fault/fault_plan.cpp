#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "service/supervisor.hpp"

namespace chenfd::fault {

FaultPlan& FaultPlan::push(Event event) {
  expects(!armed_, "FaultPlan: cannot add events to an armed plan");
  expects(event.at >= TimePoint::zero(),
          "FaultPlan: event time must be non-negative");
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::crash_p(TimePoint at) { return crash_process(0, at); }

FaultPlan& FaultPlan::recover_p(TimePoint at) { return recover_process(0, at); }

FaultPlan& FaultPlan::crash_process(ProcessId id, TimePoint at) {
  expects(!armed_, "FaultPlan::crash_process: plan already armed");
  Event e{Kind::kCrash, at};
  e.process = id;
  return push(std::move(e));
}

FaultPlan& FaultPlan::recover_process(ProcessId id, TimePoint at) {
  expects(!armed_, "FaultPlan::recover_process: plan already armed");
  Event e{Kind::kRecover, at};
  e.process = id;
  return push(std::move(e));
}

FaultPlan& FaultPlan::isolate(ProcessId id, TimePoint from, TimePoint until) {
  expects(until > from, "FaultPlan::isolate: window must be non-empty");
  Event on{Kind::kIsolateOn, from};
  on.process = id;
  push(std::move(on));
  Event off{Kind::kIsolateOff, until};
  off.process = id;
  return push(std::move(off));
}

FaultPlan& FaultPlan::elector_crash(ProcessId id, TimePoint at) {
  expects(!armed_, "FaultPlan::elector_crash: plan already armed");
  Event e{Kind::kElectorCrash, at};
  e.process = id;
  return push(std::move(e));
}

FaultPlan& FaultPlan::elector_restart(ProcessId id, TimePoint at) {
  expects(!armed_, "FaultPlan::elector_restart: plan already armed");
  Event e{Kind::kElectorRestart, at};
  e.process = id;
  return push(std::move(e));
}

FaultPlan& FaultPlan::partition(TimePoint from, TimePoint until) {
  expects(until > from, "FaultPlan::partition: window must be non-empty");
  push(Event{Kind::kPartitionOn, from});
  return push(Event{Kind::kPartitionOff, until});
}

FaultPlan& FaultPlan::swap_delay(
    TimePoint at, std::unique_ptr<dist::DelayDistribution> delay) {
  expects(delay != nullptr, "FaultPlan::swap_delay: null distribution");
  Event e{Kind::kSwapDelay, at};
  e.delay = std::move(delay);
  return push(std::move(e));
}

FaultPlan& FaultPlan::swap_loss(TimePoint at,
                                std::unique_ptr<net::LossModel> loss) {
  expects(loss != nullptr, "FaultPlan::swap_loss: null loss model");
  Event e{Kind::kSwapLoss, at};
  e.loss = std::move(loss);
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_jump_p(TimePoint at, Duration step) {
  expects(std::isfinite(step.seconds()),
          "FaultPlan::clock_jump_p: step must be finite");
  Event e{Kind::kClockJumpP, at};
  e.step = step;
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_jump_q(TimePoint at, Duration step) {
  expects(std::isfinite(step.seconds()),
          "FaultPlan::clock_jump_q: step must be finite");
  Event e{Kind::kClockJumpQ, at};
  e.step = step;
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_rate_p(TimePoint at, double rate) {
  expects(rate > 0.0, "FaultPlan::clock_rate_p: rate must be positive");
  Event e{Kind::kClockRateP, at};
  e.value = rate;
  return push(std::move(e));
}

FaultPlan& FaultPlan::clock_rate_q(TimePoint at, double rate) {
  expects(rate > 0.0, "FaultPlan::clock_rate_q: rate must be positive");
  Event e{Kind::kClockRateQ, at};
  e.value = rate;
  return push(std::move(e));
}

FaultPlan& FaultPlan::duplication_burst(TimePoint from, TimePoint until,
                                        double p) {
  expects(until > from,
          "FaultPlan::duplication_burst: window must be non-empty");
  expects(p >= 0.0 && p <= 1.0,
          "FaultPlan::duplication_burst: p must be in [0, 1]");
  Event on{Kind::kDuplicationOn, from};
  on.value = p;
  push(std::move(on));
  return push(Event{Kind::kDuplicationOff, until});
}

FaultPlan& FaultPlan::monitor_crash(TimePoint at) {
  return push(Event{Kind::kMonitorCrash, at});
}

FaultPlan& FaultPlan::monitor_restart(TimePoint at) {
  return push(Event{Kind::kMonitorRestart, at});
}

FaultPlan& FaultPlan::consumer_stall(ProcessId shard, TimePoint from,
                                     TimePoint until) {
  expects(until > from, "FaultPlan::consumer_stall: window must be non-empty");
  Event on{Kind::kConsumerStallOn, from};
  on.process = shard;
  push(std::move(on));
  Event off{Kind::kConsumerStallOff, until};
  off.process = shard;
  return push(std::move(off));
}

std::vector<FaultPlan::Event> FaultPlan::sorted_events() const {
  std::vector<Event> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  return sorted;
}

void FaultPlan::arm(core::Testbed& testbed) { arm(testbed, nullptr); }

void FaultPlan::arm(core::Testbed& testbed,
                    service::MonitorSupervisor* supervisor) {
  expects(!armed_, "FaultPlan::arm: plan already armed");
  armed_ = true;
  sim::Simulator& sim = testbed.simulator();
  // Monitor crash/restart must alternate (crash first), mirroring the
  // sender's crash/recover contract, so the downtime windows are
  // well-defined ground truth for the oracles.
  bool monitor_down = false;
  for (Event& ev : sorted_events()) {
    switch (ev.kind) {
      case Kind::kCrash:
        // The sender keeps its own crash/recover schedule (and enforces
        // the alternation contract); no simulator event needed here.
        expects(ev.process == 0,
                "FaultPlan::arm: only process 0 exists in a two-process "
                "testbed; cluster plans are applied by election::Cluster");
        testbed.crash_p_at(ev.at);
        break;
      case Kind::kRecover:
        expects(ev.process == 0,
                "FaultPlan::arm: only process 0 exists in a two-process "
                "testbed; cluster plans are applied by election::Cluster");
        testbed.recover_p_at(ev.at);
        break;
      case Kind::kIsolateOn:
      case Kind::kIsolateOff:
      case Kind::kElectorCrash:
      case Kind::kElectorRestart:
        expects(false,
                "FaultPlan::arm: isolation/elector events are cluster-only "
                "(apply the plan through election::Cluster)");
        break;
      case Kind::kConsumerStallOn:
      case Kind::kConsumerStallOff:
        expects(false,
                "FaultPlan::arm: consumer-stall events are realtime-replay-"
                "only (consume them via consumer_stall_windows)");
        break;
      case Kind::kPartitionOn:
        sim.at(ev.at, [&testbed] { testbed.link().set_partitioned(true); });
        break;
      case Kind::kPartitionOff:
        sim.at(ev.at, [&testbed] { testbed.link().set_partitioned(false); });
        break;
      case Kind::kSwapDelay:
        sim.at(ev.at, [&testbed, d = ev.delay] {
          testbed.link().set_delay(d->clone());
        });
        break;
      case Kind::kSwapLoss:
        sim.at(ev.at, [&testbed, l = ev.loss] {
          testbed.link().set_loss(l->clone());
        });
        break;
      case Kind::kClockJumpP:
        sim.at(ev.at, [&testbed, step = ev.step] {
          auto& clock = testbed.p_clock_adjust();
          clock.jump(testbed.simulator().now(), step);
        });
        break;
      case Kind::kClockJumpQ:
        sim.at(ev.at, [&testbed, step = ev.step] {
          auto& clock = testbed.q_clock_adjust();
          clock.jump(testbed.simulator().now(), step);
        });
        break;
      case Kind::kClockRateP:
        sim.at(ev.at, [&testbed, rate = ev.value] {
          auto& clock = testbed.p_clock_adjust();
          clock.set_rate(testbed.simulator().now(), rate);
        });
        break;
      case Kind::kClockRateQ:
        sim.at(ev.at, [&testbed, rate = ev.value] {
          auto& clock = testbed.q_clock_adjust();
          clock.set_rate(testbed.simulator().now(), rate);
        });
        break;
      case Kind::kDuplicationOn:
        sim.at(ev.at, [&testbed, p = ev.value] {
          testbed.link().set_duplication_probability(p);
        });
        break;
      case Kind::kDuplicationOff:
        sim.at(ev.at,
               [&testbed] { testbed.link().set_duplication_probability(0.0); });
        break;
      case Kind::kMonitorCrash:
        expects(supervisor != nullptr,
                "FaultPlan::arm: monitor events need the supervisor overload");
        expects(!monitor_down,
                "FaultPlan::arm: monitor crash while already down");
        monitor_down = true;
        sim.at(ev.at, [supervisor] { supervisor->crash_monitor(); });
        break;
      case Kind::kMonitorRestart:
        expects(supervisor != nullptr,
                "FaultPlan::arm: monitor events need the supervisor overload");
        expects(monitor_down,
                "FaultPlan::arm: monitor restart without a preceding crash");
        monitor_down = false;
        sim.at(ev.at, [supervisor] { supervisor->restart_monitor(); });
        break;
    }
  }
}

std::vector<Window> FaultPlan::partition_windows() const {
  std::vector<Window> out;
  for (const Event& ev : sorted_events()) {
    if (ev.kind == Kind::kPartitionOn) {
      out.push_back(Window{ev.at, TimePoint::infinity()});
    } else if (ev.kind == Kind::kPartitionOff && !out.empty() &&
               out.back().end.is_infinite()) {
      out.back().end = ev.at;
    }
  }
  return out;
}

std::vector<Window> FaultPlan::downtime_windows() const {
  return downtime_windows(0);
}

std::vector<Window> FaultPlan::paired_windows(Kind on, Kind off,
                                              ProcessId id) const {
  std::vector<Window> out;
  for (const Event& ev : sorted_events()) {
    if (ev.process != id) continue;
    if (ev.kind == on) {
      expects(out.empty() || !out.back().end.is_infinite(),
              "FaultPlan: on event while the previous window is still open");
      expects(out.empty() || ev.at >= out.back().end,
              "FaultPlan: on/off events must alternate in time order");
      out.push_back(Window{ev.at, TimePoint::infinity()});
    } else if (ev.kind == off) {
      expects(!out.empty() && out.back().end.is_infinite(),
              "FaultPlan: off event without a matching open window");
      expects(ev.at > out.back().begin,
              "FaultPlan: window close must follow its open");
      out.back().end = ev.at;
    }
  }
  // Contract: disjoint, time-ordered, only the last may be infinite.
  for (std::size_t i = 1; i < out.size(); ++i) {
    ensures(out[i - 1].end <= out[i].begin && !out[i - 1].end.is_infinite(),
            "FaultPlan: windows must be disjoint and time-ordered");
  }
  return out;
}

std::vector<Window> FaultPlan::downtime_windows(ProcessId id) const {
  return paired_windows(Kind::kCrash, Kind::kRecover, id);
}

std::vector<Window> FaultPlan::isolation_windows(ProcessId id) const {
  return paired_windows(Kind::kIsolateOn, Kind::kIsolateOff, id);
}

std::vector<Window> FaultPlan::elector_downtime_windows(ProcessId id) const {
  return paired_windows(Kind::kElectorCrash, Kind::kElectorRestart, id);
}

std::vector<Window> FaultPlan::consumer_stall_windows(ProcessId shard) const {
  return paired_windows(Kind::kConsumerStallOn, Kind::kConsumerStallOff,
                        shard);
}

std::vector<Window> FaultPlan::duplication_windows() const {
  return paired_windows(Kind::kDuplicationOn, Kind::kDuplicationOff, 0);
}

std::vector<Window> FaultPlan::ground_truth_up_windows(
    ProcessId id, TimePoint horizon) const {
  expects(horizon > TimePoint::zero(),
          "FaultPlan::ground_truth_up_windows: horizon must be positive");
  const std::vector<Window> down = downtime_windows(id);
  std::vector<Window> out;
  TimePoint up_since = TimePoint::zero();
  for (const Window& w : down) {
    if (w.begin >= horizon) break;
    if (w.begin > up_since) out.push_back(Window{up_since, w.begin});
    up_since = w.end;
    if (up_since.is_infinite() || up_since >= horizon) return out;
  }
  if (up_since < horizon) out.push_back(Window{up_since, horizon});
  for (std::size_t i = 0; i < out.size(); ++i) {
    ensures(out[i].end > out[i].begin && out[i].end <= horizon,
            "FaultPlan::ground_truth_up_windows: windows must be non-empty "
            "and clamped to the horizon");
    ensures(i == 0 || out[i - 1].end <= out[i].begin,
            "FaultPlan::ground_truth_up_windows: windows must be disjoint "
            "and time-ordered");
  }
  return out;
}

std::vector<Window> FaultPlan::monitor_downtime_windows() const {
  std::vector<Window> out;
  for (const Event& ev : sorted_events()) {
    if (ev.kind == Kind::kMonitorCrash) {
      out.push_back(Window{ev.at, TimePoint::infinity()});
    } else if (ev.kind == Kind::kMonitorRestart && !out.empty() &&
               out.back().end.is_infinite()) {
      out.back().end = ev.at;
    }
  }
  return out;
}

std::vector<Window> FaultPlan::outage_windows() const {
  std::vector<Window> out = partition_windows();
  const std::vector<Window> down = downtime_windows();
  out.insert(out.end(), down.begin(), down.end());
  std::sort(out.begin(), out.end(), [](const Window& a, const Window& b) {
    return a.begin < b.begin;
  });
  return out;
}

}  // namespace chenfd::fault
