// Chaos suites: named fault-injection scenarios with per-scenario oracles
// (DESIGN.md section 8).
//
// Each scenario runs the full discrete-event testbed — heartbeat sender,
// probabilistic link, failure detector — under a FaultPlan combining a
// scripted part (fixed fault times, so the oracles know exactly what was
// injected) with a randomized part sampled by ChaosSchedule from the
// scenario's RNG substream.  The oracles then check the recorded output
// signal against the plan:
//
//   - suspicion: during every outage (partition or p-downtime) longer than
//     the detection bound plus slack, the detector must be suspecting
//     before the outage ends;
//   - re-trust: after every heal/recovery the detector must trust again
//     within a scenario-specific bound;
//   - trace consistency: the Theorem 1 renewal identities, measured on
//     both sides independently (qos::audit_theorem1), must hold on the
//     recorded signal — they are identities of *any* ergodic output
//     signal, so they remain valid oracles under faults;
//   - graceful degradation (adaptive scenarios): qos_at_risk must be
//     raised while the disruption is live and cleared once the hardened
//     service reconverges, with finite estimates throughout.
//
// Determinism: scenario i of a suite draws from substream i of the root
// seed (runner::parallel_map), so a suite produces bit-identical results
// for any --jobs count.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/verdict.hpp"
#include "fault/fault_plan.hpp"
#include "runner/parallel_sweep.hpp"
#include "service/supervisor.hpp"

namespace chenfd::fault {

/// Samples randomized fault plans: the requested faults are placed in
/// disjoint equal slots of the middle 80% of the horizon (so faults never
/// overlap and crash/recover alternation holds by construction), with the
/// exact position and length of each fault drawn from the supplied RNG.
struct ChaosSchedule {
  Duration horizon = seconds(4000.0);
  std::size_t partitions = 0;
  Duration partition_min = seconds(30.0);
  Duration partition_max = seconds(120.0);
  std::size_t crash_cycles = 0;  ///< crash -> recover pairs
  Duration downtime_min = seconds(30.0);
  Duration downtime_max = seconds(120.0);
  std::size_t duplication_bursts = 0;  ///< heartbeat storms
  Duration burst_length = seconds(30.0);
  double burst_duplication = 1.0;
  /// Monitor crash -> restart cycles (supervised scenarios only; arming a
  /// plan containing them requires a MonitorSupervisor).
  std::size_t monitor_crashes = 0;
  Duration monitor_downtime_min = seconds(20.0);
  Duration monitor_downtime_max = seconds(60.0);

  /// Number of faults the schedule injects per hour of horizon.
  [[nodiscard]] double intensity_per_hour() const;

  [[nodiscard]] FaultPlan sample(Rng& rng) const;
};

/// One named chaos scenario: baseline network + fault script + oracles.
struct ScenarioSpec {
  std::string name;
  std::string family;       ///< degradation-curve grouping key
  double fault_intensity = 0.0;  ///< x-axis of the degradation curve

  // Baseline network and detector.
  double delay_mean_s = 0.02;
  double base_loss = 0.05;
  Duration eta = seconds(1.0);
  Duration alpha = seconds(0.5);
  std::size_t window = 32;
  Duration horizon = seconds(4000.0);

  /// False: fixed-parameter NFD-E is the system under test.  True: the
  /// hardened service::AdaptiveMonitor is, and the graceful-degradation
  /// probes below apply.
  bool adaptive = false;
  Duration reconfig_interval = seconds(40.0);
  Duration t_mr_lower = seconds(300.0);
  Duration t_m_upper = seconds(60.0);

  /// True: a MonitorSupervisor fronts the adaptive service (implies the
  /// adaptive probes) and monitor_crash/monitor_restart events are legal.
  bool supervised = false;
  service::MonitorSupervisor::RestartPolicy restart_policy =
      service::MonitorSupervisor::RestartPolicy::kWarmPreferred;
  Duration snapshot_interval = seconds(20.0);
  Duration max_snapshot_age = seconds(300.0);
  /// Flip one bit of the stored snapshot midway through every monitor
  /// downtime window: every restart must detect the corruption (CRC-32
  /// catches all single-bit errors) and fall back to a cold start.
  bool corrupt_snapshots = false;
  /// Re-trust bound applied after each monitor restart (per-policy: warm
  /// restarts re-trust on the first live heartbeat, cold restarts need a
  /// window refill, so cold scenarios set a larger slack).
  Duration monitor_retrust_slack = seconds(30.0);
  /// Oracle strengtheners for scenarios whose restart path is known by
  /// construction: every restart must have been warm (resp. cold).
  bool expect_all_warm = false;
  bool expect_all_cold = false;

  ChaosSchedule chaos;  ///< randomized faults (sampled per substream)
  /// Scripted faults with fixed times, appended to the sampled plan.
  std::function<void(FaultPlan&)> scripted;

  // Oracle configuration.
  /// Suspect-during-outage: only outages longer than this are checked (it
  /// must exceed the worst-case detection bound).
  Duration suspect_slack = seconds(10.0);
  /// Re-trust within this after a heal/recovery.
  Duration retrust_slack = seconds(60.0);
  /// Run the Theorem 1 trace audit (needs >= 2 mistake cycles).
  bool audit = true;
  double audit_tolerance = 0.15;
};

/// Everything measured about one scenario run.  Fields are either exact
/// (counts, booleans) or doubles derived deterministically from the
/// substream, so results are bit-comparable across --jobs counts.
struct ScenarioResult {
  std::string name;
  std::string family;
  double fault_intensity = 0.0;
  bool ok = false;
  std::vector<std::string> violations;

  // Degradation metrics over the whole horizon.
  double availability = 0.0;      ///< P_A
  double mistake_rate = 0.0;      ///< lambda_M (1/s)
  double mean_mistake_s = 0.0;    ///< E(T_M), 0 if no complete mistakes
  std::size_t s_transitions = 0;
  std::size_t transitions = 0;
  std::size_t outages = 0;
  std::size_t audit_cycles = 0;

  // Adaptive-only observability.
  bool adaptive = false;
  std::size_t epoch_resets = 0;
  std::size_t reconfigurations = 0;
  bool risk_during_fault = false;
  bool risk_clear_at_end = false;

  // Supervised-only observability (crash-tolerant monitor).
  bool supervised = false;
  std::size_t monitor_outages = 0;
  std::size_t warm_restarts = 0;
  std::size_t cold_restarts = 0;
  std::size_t snapshots_taken = 0;
  std::size_t snapshot_rejects = 0;
  /// Mean time from monitor restart to the first Trust, over the restarts
  /// that re-trusted before the horizon (0 if none did).
  double mean_restart_retrust_s = 0.0;

  /// The recorded output signal (window [0, horizon]) for trace dumps and
  /// external audits (tools/audit_qos).
  std::vector<Transition> trace;
  TimePoint horizon;
};

/// The named suites.  "smoke" is a two-scenario subset sized for CI;
/// "monitor-restart" exercises the crash-tolerant supervisor (warm, cold
/// and corrupted-snapshot restarts); "full" covers every family
/// (flaky-link, flap-storm, partition-heal, slow-regime,
/// crash-recover-cycle, the adaptive variants, and monitor-restart).
[[nodiscard]] std::vector<ScenarioSpec> suite(const std::string& name);
[[nodiscard]] std::vector<std::string> suite_names();

/// Runs one scenario against substream `rng`; evaluates its oracles.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec, Rng& rng);

/// Runs every scenario of `specs` on the deterministic parallel runner:
/// scenario i uses substream i of `root_seed`, results come back in
/// scenario order, bit-identical for any jobs count.
[[nodiscard]] std::vector<ScenarioResult> run_suite(
    const std::vector<ScenarioSpec>& specs, std::uint64_t root_seed,
    const runner::RunnerOptions& opts = {});

/// The detector's verdict at time `t` given its transition history
/// (detectors start suspecting).  Exposed for the oracle tests.
[[nodiscard]] Verdict verdict_at(const std::vector<Transition>& transitions,
                                 TimePoint t);

}  // namespace chenfd::fault
