// Local clock models (Sections 3.1 and 6 of the paper).
//
// Each process reads its own local clock.  The paper considers three
// regimes, all of which are modeled here as views over simulated real time:
//
//   - synchronized clocks (Sections 3-5): local time == real time,
//   - unsynchronized but drift-free clocks (Section 6): local time ==
//     real time + constant skew,
//   - (extension) drifting clocks: local time advances at rate != 1.  The
//     paper argues drift is negligible over the short horizons relevant to
//     failure detection (Section 3.1); the DriftingClock lets tests and
//     benches quantify exactly how NFD-E degrades when it is not.

#pragma once

#include "common/check.hpp"
#include "common/time.hpp"

namespace chenfd::clk {

/// A process-local clock: a mapping between simulated real time and the
/// time the process observes.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Local clock reading at real time `real`.
  [[nodiscard]] virtual TimePoint local(TimePoint real) const = 0;

  /// Real time at which this clock reads `local_time`.
  [[nodiscard]] virtual TimePoint real(TimePoint local_time) const = 0;
};

/// Perfectly synchronized clock: local time equals real time.
class SynchronizedClock final : public Clock {
 public:
  [[nodiscard]] TimePoint local(TimePoint real) const override { return real; }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return local_time;
  }
};

/// Drift-free clock with a constant skew: local = real + offset.  This is
/// exactly the Section 6 model — skew is unknown to the algorithms, but
/// intervals are measured accurately.
class OffsetClock final : public Clock {
 public:
  explicit OffsetClock(Duration offset) : offset_(offset) {}

  [[nodiscard]] TimePoint local(TimePoint real) const override {
    return real + offset_;
  }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return local_time - offset_;
  }
  [[nodiscard]] Duration offset() const { return offset_; }

 private:
  Duration offset_;
};

/// Piecewise-linear clock for fault injection: its local reading may jump
/// (a step discontinuity, as after an NTP correction) or change drift rate
/// mid-run.  Between adjustments the mapping is affine,
///
///   local(real) = base_local + rate * (real - base_real),
///
/// and each adjustment rebases (base_real, base_local) at the adjustment
/// instant.  Conversions are only meaningful for the *current* segment:
/// components that cache a converted time across an adjustment observe the
/// discontinuity — which is exactly what the chaos scenarios probe.  With
/// rate > 0 the segment mapping is strictly monotone, so at any instant
/// local_now < L implies real(L) > now and timers scheduled through the
/// clock never land in the past.
class AdjustableClock final : public Clock {
 public:
  explicit AdjustableClock(Duration offset = Duration::zero(),
                           double rate = 1.0)
      : base_local_(offset.seconds()), rate_(rate) {
    expects(rate > 0.0, "AdjustableClock: rate must be positive");
  }

  [[nodiscard]] TimePoint local(TimePoint real) const override {
    return TimePoint(base_local_.seconds() +
                     rate_ * (real - base_real_).seconds());
  }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return base_real_ +
           Duration((local_time - base_local_).seconds() / rate_);
  }

  /// Steps the local reading by `step` (either sign) at real time `at_real`.
  void jump(TimePoint at_real, Duration step) {
    rebase(at_real);
    base_local_ = base_local_ + step;
  }

  /// Changes the drift rate from real time `at_real` on; the local reading
  /// itself is continuous across a rate change.
  void set_rate(TimePoint at_real, double rate) {
    expects(rate > 0.0, "AdjustableClock::set_rate: rate must be positive");
    rebase(at_real);
    rate_ = rate;
  }

  [[nodiscard]] double rate() const { return rate_; }

 private:
  void rebase(TimePoint at_real) {
    base_local_ = local(at_real);
    base_real_ = at_real;
  }

  TimePoint base_real_ = TimePoint::zero();
  TimePoint base_local_;
  double rate_;
};

/// Clock that drifts at a constant rate: local = offset + rate * real.
/// rate = 1 + 1e-6 models the "order of 10^-6" drift the paper cites.
class DriftingClock final : public Clock {
 public:
  DriftingClock(Duration offset, double rate) : offset_(offset), rate_(rate) {
    expects(rate > 0.0, "DriftingClock: rate must be positive");
  }

  [[nodiscard]] TimePoint local(TimePoint real) const override {
    return TimePoint(offset_.seconds() + rate_ * real.seconds());
  }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return TimePoint((local_time.seconds() - offset_.seconds()) / rate_);
  }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  Duration offset_;
  double rate_;
};

}  // namespace chenfd::clk
