// Local clock models (Sections 3.1 and 6 of the paper).
//
// Each process reads its own local clock.  The paper considers three
// regimes, all of which are modeled here as views over simulated real time:
//
//   - synchronized clocks (Sections 3-5): local time == real time,
//   - unsynchronized but drift-free clocks (Section 6): local time ==
//     real time + constant skew,
//   - (extension) drifting clocks: local time advances at rate != 1.  The
//     paper argues drift is negligible over the short horizons relevant to
//     failure detection (Section 3.1); the DriftingClock lets tests and
//     benches quantify exactly how NFD-E degrades when it is not.

#pragma once

#include "common/check.hpp"
#include "common/time.hpp"

namespace chenfd::clk {

/// A process-local clock: a mapping between simulated real time and the
/// time the process observes.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Local clock reading at real time `real`.
  [[nodiscard]] virtual TimePoint local(TimePoint real) const = 0;

  /// Real time at which this clock reads `local_time`.
  [[nodiscard]] virtual TimePoint real(TimePoint local_time) const = 0;
};

/// Perfectly synchronized clock: local time equals real time.
class SynchronizedClock final : public Clock {
 public:
  [[nodiscard]] TimePoint local(TimePoint real) const override { return real; }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return local_time;
  }
};

/// Drift-free clock with a constant skew: local = real + offset.  This is
/// exactly the Section 6 model — skew is unknown to the algorithms, but
/// intervals are measured accurately.
class OffsetClock final : public Clock {
 public:
  explicit OffsetClock(Duration offset) : offset_(offset) {}

  [[nodiscard]] TimePoint local(TimePoint real) const override {
    return real + offset_;
  }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return local_time - offset_;
  }
  [[nodiscard]] Duration offset() const { return offset_; }

 private:
  Duration offset_;
};

/// Clock that drifts at a constant rate: local = offset + rate * real.
/// rate = 1 + 1e-6 models the "order of 10^-6" drift the paper cites.
class DriftingClock final : public Clock {
 public:
  DriftingClock(Duration offset, double rate) : offset_(offset), rate_(rate) {
    expects(rate > 0.0, "DriftingClock: rate must be positive");
  }

  [[nodiscard]] TimePoint local(TimePoint real) const override {
    return TimePoint(offset_.seconds() + rate_ * real.seconds());
  }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return TimePoint((local_time.seconds() - offset_.seconds()) / rate_);
  }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  Duration offset_;
  double rate_;
};

}  // namespace chenfd::clk
