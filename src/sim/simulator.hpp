// The discrete-event simulator at the heart of chenfd's evaluation harness.
//
// The paper evaluates failure detectors over a probabilistic two-process
// system (Section 7).  This simulator is the substrate for that evaluation:
// components (heartbeat senders, links, detectors) schedule callbacks on a
// shared virtual clock, and the simulator executes them in deterministic
// time order.  Simulated time only advances between events, so a run of
// millions of heartbeats costs exactly the events it generates.

#pragma once

#include <utility>

#include "common/check.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace chenfd::sim {

class Simulator {
 public:
  Simulator() = default;

  // The event queue holds callbacks that capture `this`; copying or moving a
  // Simulator would silently break them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `at` (must be >= now()).
  EventId at(TimePoint when, EventFn fn) {
    CHENFD_EXPECTS(when >= now_, "Simulator::at: cannot schedule in the past");
    return queue_.schedule(when, std::move(fn));
  }

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId after(Duration delay, EventFn fn) {
    CHENFD_EXPECTS(delay >= Duration::zero(),
                   "Simulator::after: delay must be non-negative");
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; returns false if it already ran.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs all events with time <= `until`, then advances the clock to
  /// `until` even if no event lies exactly there.
  void run_until(TimePoint until) {
    CHENFD_EXPECTS(until >= now_,
                   "Simulator::run_until: time must not go backwards");
    while (auto t = queue_.next_time()) {
      if (*t > until) break;
      step();
    }
    now_ = until;
  }

  /// Runs until the event queue is empty.
  void run() {
    while (step()) {
    }
  }

  /// Executes the single earliest pending event.  Returns false if none.
  bool step() {
    auto ev = queue_.pop();
    if (!ev) return false;
    CHENFD_ENSURES(ev->first >= now_,
                   "Simulator::step: virtual clock would run backwards");
    now_ = ev->first;
    ev->second();
    return true;
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.pending(); }

 private:
  TimePoint now_ = TimePoint::zero();
  EventQueue queue_;
};

}  // namespace chenfd::sim
