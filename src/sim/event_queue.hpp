// A cancellable, deterministically ordered event queue for discrete-event
// simulation.
//
// Events scheduled for the same time fire in scheduling order (FIFO), which
// makes simulations reproducible bit-for-bit across runs.  Cancellation is
// lazy: cancelled events stay in the heap and are skipped on pop, which
// keeps both schedule() and cancel() cheap.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace chenfd::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` to run at time `at`.  Returns a handle for cancel().
  EventId schedule(TimePoint at, EventFn fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{at, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  /// Cancels a pending event.  Returns false if the event already ran, was
  /// already cancelled, or never existed.
  bool cancel(EventId id) { return live_.erase(id) > 0; }

  /// Time of the earliest pending (non-cancelled) event.
  [[nodiscard]] std::optional<TimePoint> next_time() {
    skip_dead();
    if (heap_.empty()) return std::nullopt;
    return heap_.top().at;
  }

  /// Pops and returns the earliest pending event, if any.
  std::optional<std::pair<TimePoint, EventFn>> pop() {
    skip_dead();
    if (heap_.empty()) return std::nullopt;
    // Entry::fn is moved out; the const_cast is confined to this one spot
    // because std::priority_queue only exposes const access to top().
    auto& top = const_cast<Entry&>(heap_.top());
    std::pair<TimePoint, EventFn> out{top.at, std::move(top.fn)};
    live_.erase(top.id);
    heap_.pop();
    return out;
  }

  [[nodiscard]] bool empty() const { return live_.empty(); }

  [[nodiscard]] std::size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    TimePoint at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  void skip_dead() {
    while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> live_;
  EventId next_id_ = 1;
};

}  // namespace chenfd::sim
