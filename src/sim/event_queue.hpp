// A cancellable, deterministically ordered event queue for discrete-event
// simulation.
//
// Events scheduled for the same time fire in scheduling order (FIFO), which
// makes simulations reproducible bit-for-bit across runs.  Cancellation is
// lazy: cancelled events stay in the heap and are skipped on pop, which
// keeps both schedule() and cancel() cheap.  To stop cancel-heavy workloads
// (adaptive detectors rescheduling deadlines on every heartbeat) from
// accumulating garbage without bound, every operation that shrinks the live
// set — cancel(), pop(), and the dead-entry skip inside next_time()/pop() —
// compacts the heap whenever dead entries outnumber live ones, so the heap
// never holds more than max(2 * pending() + 1, kCompactionFloor) entries.
// (Compacting only from cancel() is not enough: a cancel-then-drain workload
// shrinks live_ via pop() while the dead majority sits untouched.)

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace chenfd::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` to run at time `at`.  Returns a handle for cancel().
  EventId schedule(TimePoint at, EventFn fn) {
    const EventId id = next_id_++;
    heap_.push_back(Entry{at, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    live_.insert(id);
    return id;
  }

  /// Cancels a pending event.  Returns false if the event already ran, was
  /// already cancelled, or never existed.
  bool cancel(EventId id) {
    if (live_.erase(id) == 0) return false;
    maybe_compact();
    return true;
  }

  /// Time of the earliest pending (non-cancelled) event.
  [[nodiscard]] std::optional<TimePoint> next_time() {
    skip_dead();
    if (heap_.empty()) return std::nullopt;
    return heap_.front().at;
  }

  /// Pops and returns the earliest pending event, if any.  Note the queue
  /// itself is merely a priority queue: popped times can go backwards when
  /// an earlier event is scheduled after a later one was popped.  The
  /// time-monotone *dispatch* invariant belongs to the Simulator, which
  /// rejects scheduling into the past (see Simulator::step).
  std::optional<std::pair<TimePoint, EventFn>> pop() {
    skip_dead();
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry& top = heap_.back();
    std::pair<TimePoint, EventFn> out{top.at, std::move(top.fn)};
    live_.erase(top.id);
    heap_.pop_back();
    maybe_compact();
    return out;
  }

  [[nodiscard]] bool empty() const { return live_.empty(); }

  [[nodiscard]] std::size_t pending() const { return live_.size(); }

  /// Number of heap slots currently held, including lazily cancelled
  /// entries awaiting compaction.  Exposed so tests can assert the
  /// bounded-garbage guarantee.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

 private:
  /// Below this size the heap is left alone: sweeping a handful of entries
  /// saves nothing and would make tiny queues churn.
  static constexpr std::size_t kCompactionFloor = 64;

  struct Entry {
    TimePoint at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  void skip_dead() {
    while (!heap_.empty() && live_.count(heap_.front().id) == 0) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
    maybe_compact();
  }

  void maybe_compact() {
    if (heap_.size() < kCompactionFloor ||
        heap_.size() - live_.size() <= live_.size()) {
      return;
    }
    std::erase_if(heap_,
                  [this](const Entry& e) { return live_.count(e.id) == 0; });
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    CHENFD_AUDIT(heap_.size() == live_.size(),
                 "EventQueue::maybe_compact: compaction lost a live event");
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> live_;
  EventId next_id_ = 1;
};

}  // namespace chenfd::sim
