// An N-process election cluster: the tentpole harness of DESIGN.md
// section 12.
//
// Every ordered pair (i, j), i != j, gets its own probabilistic link
// (net::Link), heartbeat sender at i and NFD-E detector at j — the same
// per-pair plumbing as the two-process Testbed, replicated n*(n-1) times —
// and every process runs one Omega Elector fed by its n-1 detectors.  The
// cluster is the glue: it wires deliveries through the incarnation filter
// (drop stale lives, rebase the Eq. 6.3 window on a bump), routes detector
// transitions into the electors, and applies cluster-level FaultPlans:
//
//   crash/recover of a process  — all its senders stop, its elector loses
//     its state and rejoins gated by the self-claim delay, and its own
//     detectors are rebuilt from scratch (a recovered process remembers
//     nothing);
//   isolation  — every link to and from the process drops all messages
//     (an asymmetric partition around one process);
//   elector crash/restart  — observer-side state loss: heartbeats keep
//     flowing but nobody at the process is watching.  On restart the
//     cluster plays MonitorSupervisor: a stored election snapshot newer
//     than max_snapshot_age restores warm (leader latch survives under the
//     elector's restore grace), otherwise the elector rejoins cold as a
//     follower.
//
// Determinism: all randomness comes from per-link RNGs split off the
// config seed in construction order; faults are pre-scheduled simulator
// events.  Two clusters with equal configs produce bit-identical leader
// traces.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "core/heartbeat_sender.hpp"
#include "core/nfd_e.hpp"
#include "core/params.hpp"
#include "election/elector.hpp"
#include "fault/fault_plan.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace chenfd::election {

class Cluster {
 public:
  struct Config {
    std::size_t size = 4;
    double delay_mean_s = 0.02;  ///< exponential per-link delay mean
    double p_loss = 0.05;        ///< per-link Bernoulli loss
    core::NfdEParams detector{seconds(1.0), seconds(0.5), 16};
    Elector::Options elector;
    std::uint64_t seed = 42;
    /// Elector snapshot cadence and freshness bound (the cluster-level
    /// stand-in for MonitorSupervisor's snapshot store).
    Duration snapshot_interval = seconds(20.0);
    Duration max_snapshot_age = seconds(120.0);
  };

  explicit Cluster(Config config);

  /// Starts heartbeats, electors and the snapshot cadence.  Call once.
  void start();

  // ---- fault injection (schedule before or during the run) ---------------

  /// Crashes process `id` at `at`: senders stop, elector and detectors die.
  void crash_at(ProcessId id, TimePoint at);
  /// Recovers process `id` at `at`: heartbeats resume with a bumped
  /// incarnation, the elector rejoins as a follower.
  void recover_at(ProcessId id, TimePoint at);
  /// Drops every message to or from `id` on [from, until).
  void isolate(ProcessId id, TimePoint from, TimePoint until);
  /// Observer-side crash/restart of `id`'s elector (see file comment).
  void elector_crash_at(ProcessId id, TimePoint at);
  void elector_restart_at(ProcessId id, TimePoint at);

  /// Applies a cluster-level FaultPlan: per-process downtime, isolation
  /// and elector windows become the scheduled faults above.  The plan is
  /// not armed (that is the two-process testbed path) and stays queryable
  /// as ground truth.  Two-process-only events (partitions, clock faults,
  /// regime swaps, monitor events) are rejected.
  void apply(const fault::FaultPlan& plan);

  // ---- observability -----------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] std::size_t size() const { return config_.size; }
  [[nodiscard]] const Elector& elector(ProcessId id) const;
  /// Process id's current local leader (kNoLeader while down/leaderless).
  [[nodiscard]] ProcessId leader_view(ProcessId id) const;
  [[nodiscard]] std::size_t warm_elector_restarts() const {
    return warm_elector_restarts_;
  }
  [[nodiscard]] std::size_t cold_elector_restarts() const {
    return cold_elector_restarts_;
  }
  /// Heartbeats dropped by the incarnation filter (stale lives).
  [[nodiscard]] std::uint64_t stale_heartbeats_dropped() const {
    return stale_dropped_;
  }
  /// Eq. 6.3 window rebases triggered by incarnation bumps.
  [[nodiscard]] std::uint64_t incarnation_rebases() const {
    return incarnation_rebases_;
  }

 private:
  /// The directed pair (from, to): link + sender at `from`, detector at
  /// `to`.  Detectors are rebuilt on observer death; the other members
  /// live for the whole run.
  struct Pair {
    std::unique_ptr<net::Link> link;
    std::unique_ptr<core::HeartbeatSender> sender;
    std::unique_ptr<core::NfdE> detector;
    bool incarnation_known = false;
    std::uint64_t incarnation = 0;
    int partition_depth = 0;  ///< isolations may overlap; >0 = severed
  };

  struct StoredSnapshot {
    persist::ElectionState state;
    TimePoint taken_at;
    bool valid = false;
  };

  [[nodiscard]] std::size_t pair_index(ProcessId from, ProcessId to) const {
    return from * config_.size + to;
  }
  [[nodiscard]] Pair& pair(ProcessId from, ProcessId to) {
    return *pairs_[pair_index(from, to)];
  }
  void make_detector(ProcessId from, ProcessId to);
  void teardown_observer(ProcessId observer);
  void rebuild_observer(ProcessId observer);
  void on_delivery(ProcessId from, ProcessId to, const net::Message& m,
                   TimePoint real_now);
  void adjust_isolation(ProcessId id, int delta);
  void take_snapshots();

  Config config_;
  sim::Simulator sim_;
  clk::SynchronizedClock clock_;
  std::vector<std::unique_ptr<Pair>> pairs_;  // from * size + to
  std::vector<std::unique_ptr<Elector>> electors_;
  std::vector<StoredSnapshot> stored_;
  std::vector<bool> process_down_;
  std::vector<bool> elector_down_;
  bool started_ = false;
  std::size_t warm_elector_restarts_ = 0;
  std::size_t cold_elector_restarts_ = 0;
  std::uint64_t stale_dropped_ = 0;
  std::uint64_t incarnation_rebases_ = 0;
};

}  // namespace chenfd::election
