#include "election/elector.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace chenfd::election {

void Elector::Options::validate() const {
  CHENFD_EXPECTS(holddown_base > Duration::zero(),
                 "Elector: holddown_base must be positive");
  CHENFD_EXPECTS(holddown_cap >= holddown_base,
                 "Elector: holddown_cap must be >= holddown_base");
  CHENFD_EXPECTS(holddown_reset > Duration::zero(),
                 "Elector: holddown_reset must be positive");
  CHENFD_EXPECTS(self_claim_delay >= Duration::zero(),
                 "Elector: self_claim_delay must be non-negative");
  CHENFD_EXPECTS(restore_grace > Duration::zero(),
                 "Elector: restore_grace must be positive");
}

Elector::Elector(sim::Simulator& simulator, ProcessId self, std::size_t n,
                 Options options)
    : sim_(simulator), self_(self), n_(n), options_(options), peers_(n) {
  expects(n >= 2, "Elector: need at least two processes");
  expects(self < n, "Elector: self id out of range");
  options_.validate();
}

void Elector::activate() {
  expects(!started_, "Elector::activate: already started");
  started_ = true;
  self_eligible_from_ = sim_.now() + options_.self_claim_delay;
  schedule_reevaluation(self_eligible_from_);
  reevaluate(sim_.now());
}

Duration Elector::holddown(std::uint64_t demotions) const {
  if (demotions == 0) return Duration::zero();
  Duration d = options_.holddown_base;
  for (std::uint64_t i = 1; i < demotions && d < options_.holddown_cap; ++i) {
    d = d * 2.0;
  }
  return std::min(d, options_.holddown_cap);
}

void Elector::note_demotion(Peer& peer, TimePoint at) {
  // The demotion count decays: a long demotion-free stretch since the last
  // demotion means the old flaps are ancient history.  (Time spent *down*
  // does not count as good behaviour — the reset clock is the gap between
  // demotions, so a peer that crashes for an hour and flaps on return is
  // still held down.)
  if (peer.demotions > 0 && at - peer.last_demotion > options_.holddown_reset) {
    peer.demotions = 0;
  }
  ++peer.demotions;
  peer.last_demotion = at;
}

void Elector::on_peer_transition(ProcessId peer, Verdict v, TimePoint at) {
  expects(peer < n_ && peer != self_,
          "Elector::on_peer_transition: invalid peer id");
  if (!started_ || !alive_) return;  // transitions may race a crash
  Peer& entry = peers_[peer];
  if (v == Verdict::kTrust) {
    entry.trusted = true;
    // Hysteresis: a previously demoted leader regains eligibility only
    // after its bounded backoff.
    entry.eligible_from = at + holddown(entry.demotions);
    if (entry.eligible_from > at) schedule_reevaluation(entry.eligible_from);
    // A real trust transition confirms a warm-restored latch.
    if (grace_leader_ == peer) grace_leader_ = kNoLeader;
  } else {
    entry.trusted = false;
    if (leader_ == peer) note_demotion(entry, at);
    if (grace_leader_ == peer) grace_leader_ = kNoLeader;
  }
  reevaluate(at);
}

void Elector::on_peer_incarnation(ProcessId peer, std::uint64_t incarnation,
                                  TimePoint at) {
  expects(peer < n_ && peer != self_,
          "Elector::on_peer_incarnation: invalid peer id");
  if (!started_ || !alive_) return;
  Peer& entry = peers_[peer];
  if (incarnation <= entry.incarnation) return;  // stale notification
  entry.incarnation = incarnation;
  // A new life starts with a clean hysteresis record: the flaps belonged
  // to the previous incarnation (and typically to the crash that ended
  // it), not to the recovered process.
  entry.demotions = 0;
  entry.eligible_from = at;
  reevaluate(at);
}

void Elector::crash(TimePoint at) {
  expects(started_, "Elector::crash: not started");
  expects(alive_, "Elector::crash: already crashed");
  alive_ = false;
  grace_leader_ = kNoLeader;
  // A crashed process holds no view; the trace records the gap so the QoS
  // layer can tell "down" from "leaderless".
  set_leader(at, kNoLeader);
}

void Elector::reset_volatile(TimePoint at) {
  std::fill(peers_.begin(), peers_.end(), Peer{});
  grace_leader_ = kNoLeader;
  grace_until_ = at;
  self_eligible_from_ = at + options_.self_claim_delay;
  schedule_reevaluation(self_eligible_from_);
}

void Elector::recover(TimePoint at) {
  expects(started_, "Elector::recover: not started");
  expects(!alive_, "Elector::recover: not crashed");
  alive_ = true;
  reset_volatile(at);
  reevaluate(at);
}

persist::ElectionState Elector::export_state(TimePoint at) const {
  persist::ElectionState state;
  state.self = self_;
  state.has_leader = leader_ != kNoLeader;
  state.leader = state.has_leader ? leader_ : 0;
  state.leader_since_s = leader_since_.seconds();
  state.leader_changes = leader_changes_;
  for (ProcessId id = 0; id < n_; ++id) {
    if (id == self_) continue;
    const Peer& entry = peers_[id];
    persist::ElectionPeerState peer;
    peer.id = id;
    peer.incarnation = entry.incarnation;
    peer.demotions = entry.demotions;
    peer.has_holddown = entry.eligible_from > at;
    peer.holddown_until_s = peer.has_holddown ? entry.eligible_from.seconds()
                                              : 0.0;
    state.peers.push_back(peer);
  }
  ensures(state.peers.size() + 1 == n_,
          "Elector::export_state: one entry per peer");
  return state;
}

void Elector::restore_state(
    const std::optional<persist::ElectionState>& state, bool warm,
    TimePoint at) {
  expects(started_, "Elector::restore_state: not started");
  expects(!warm || state.has_value(),
          "Elector::restore_state: a warm restore needs a state");
  alive_ = true;
  reset_volatile(at);
  if (warm) {
    // The process itself did not die — only its observer-side state did —
    // so self-eligibility is not re-gated.
    self_eligible_from_ = at;
    for (const persist::ElectionPeerState& peer : state->peers) {
      if (peer.id >= n_ || peer.id == self_) continue;
      Peer& entry = peers_[peer.id];
      entry.incarnation = peer.incarnation;
      entry.demotions = peer.demotions;
      if (peer.has_holddown) {
        entry.eligible_from = TimePoint(peer.holddown_until_s);
        schedule_reevaluation(entry.eligible_from);
      }
    }
    if (state->has_leader) {
      // Revive the leader latch: the rebuilt detectors suspect everyone
      // until their first heartbeat, so without the grace period a warm
      // restart would always manufacture a spurious election.
      grace_leader_ = static_cast<ProcessId>(state->leader);
      grace_until_ = at + options_.restore_grace;
      schedule_reevaluation(grace_until_);
    }
  }
  reevaluate(at);
}

std::uint64_t Elector::demotions(ProcessId peer) const {
  expects(peer < n_ && peer != self_, "Elector::demotions: invalid peer id");
  return peers_[peer].demotions;
}

void Elector::add_listener(std::function<void(const LeaderChange&)> listener) {
  expects(listener != nullptr, "Elector::add_listener: null listener");
  listeners_.push_back(std::move(listener));
}

void Elector::schedule_reevaluation(TimePoint at) {
  if (at <= sim_.now()) return;  // the caller reevaluates synchronously
  sim_.at(at, [this] {
    if (started_ && alive_) reevaluate(sim_.now());
  });
}

void Elector::reevaluate(TimePoint at) {
  if (!started_ || !alive_) return;
  // Lapse the warm-restore latch.
  if (grace_leader_ != kNoLeader && at >= grace_until_) {
    grace_leader_ = kNoLeader;
  }
  ProcessId candidate = kNoLeader;
  for (ProcessId id = 0; id < n_; ++id) {
    const bool eligible = id == self_
                              ? at >= self_eligible_from_
                              : peers_[id].trusted &&
                                    at >= peers_[id].eligible_from;
    if (eligible) {
      candidate = id;
      break;
    }
  }
  // The latched leader stands in for missing evidence, but never beats a
  // lower-id process with real evidence.
  if (grace_leader_ != kNoLeader &&
      (candidate == kNoLeader || grace_leader_ < candidate)) {
    candidate = grace_leader_;
  }
  set_leader(at, candidate);
}

void Elector::set_leader(TimePoint at, ProcessId leader) {
  if (leader == leader_) return;
  ensures(trace_.empty() || at >= trace_.back().at,
          "Elector: leader changes must be time-ordered");
  leader_ = leader;
  leader_since_ = at;
  ++leader_changes_;
  const LeaderChange change{at, leader};
  trace_.push_back(change);
  for (const auto& listener : listeners_) listener(change);
}

}  // namespace chenfd::election
