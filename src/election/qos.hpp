// Leader-election QoS metrics against FaultPlan ground truth (DESIGN.md
// section 12).
//
// The paper quantifies failure-detector quality with accuracy/speed metrics
// computed against what *actually* happened on the link; this header does
// the same one layer up, for the Omega service built on NFD-E.  Inputs are
// the per-process leader traces (right-continuous step functions: each
// LeaderChange sets the view from its time on), the per-process "view up"
// windows (process up AND elector up — ground truth from the FaultPlan),
// and the merged disturbance windows (fault windows padded by the settle
// time the scenario grants the detectors).
//
// The timeline is cut at every change point and each segment is classified:
//
//   agreement   — some live L is everyone's leader, including L itself
//                 (the "exactly one leader" predicate of Omega);
//   no leader   — every live view is kNoLeader;
//   disagreement— anything else (split views, or a claimed leader that is
//                 down or not self-claiming).
//
// From the segments: exactly-one / no-leader / disagreement time fractions,
// leader-stability intervals (maximal agreement runs on one leader),
// election gaps (maximal non-agreement runs) with latencies measured from
// the end of the last overlapping disturbance, deadline checks against the
// analytic bound (NFD-E detection time + election settling), and spurious
// demotions — a view abandoning a leader that was up, outside every
// disturbance window (switching to a *lower* id is adoption, not demotion).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "election/elector.hpp"
#include "fault/fault_plan.hpp"

namespace chenfd::election {

struct QosInput {
  std::size_t n = 0;
  TimePoint horizon;
  /// Per-process local leader traces (Elector::trace()), indexed by id.
  std::vector<std::vector<LeaderChange>> traces;
  /// Per-process windows during which the process's *view* exists: process
  /// up and elector up.  Disjoint and time-ordered per process.
  std::vector<std::vector<fault::Window>> view_windows;
  /// Merged disturbance windows: every injected fault window padded by the
  /// scenario's settle allowance.  Agreement is not demanded inside these.
  std::vector<fault::Window> disturbance_windows;
  /// Merged *raw* (unpadded) fault windows.  Election latency is measured
  /// from the last raw fault end overlapping the gap — the moment the
  /// system was actually healed — while the deadline check uses the padded
  /// windows above (the elector is entitled to the settle allowance).
  std::vector<fault::Window> fault_windows;
  /// Analytic convergence bound: once a disturbance ends, agreement must
  /// (re-)form within this (NFD-E detection bound + election overheads).
  Duration election_bound;
};

struct QosReport {
  // Time fractions of the horizon (they sum to 1).
  double exactly_one_leader_fraction = 0.0;
  double no_leader_fraction = 0.0;
  double disagreement_fraction = 0.0;
  /// Non-agreement time lying outside every disturbance window, seconds.
  double undisturbed_violation_s = 0.0;

  // Leader stability: maximal agreement runs on a single leader.
  double mean_stability_s = 0.0;
  double max_stability_s = 0.0;
  /// Agreement intervals whose leader differs from the previous one.
  std::uint64_t agreed_leader_changes = 0;

  // Election gaps: maximal non-agreement runs that closed before the
  // horizon.  Latency is measured from the end of the last disturbance
  // overlapping the gap (or the gap start if none).
  std::size_t elections = 0;
  double mean_election_latency_s = 0.0;
  double max_election_latency_s = 0.0;
  /// Gaps that outlived their deadline (last overlapping disturbance end,
  /// or gap start, plus election_bound).
  std::size_t bound_violations = 0;

  // Spurious demotions: a view dropping leader L (to kNoLeader or a higher
  // id) while L's view existed and the change lies outside every
  // disturbance window.
  std::uint64_t spurious_demotions = 0;
  /// All leader changes across all traces (including crash gaps).
  std::uint64_t total_leader_changes = 0;
};

/// Computes the report.  Contract-checks the input: traces time-ordered,
/// windows disjoint and ordered, horizon positive.
[[nodiscard]] QosReport compute_qos(const QosInput& input);

/// Merges possibly-overlapping windows into a disjoint, time-ordered set,
/// clamped to [0, horizon].  Used to build disturbance_windows from padded
/// per-fault windows.
[[nodiscard]] std::vector<fault::Window> merge_windows(
    std::vector<fault::Window> windows, TimePoint horizon);

/// Subtracts `minus` from `base` (both disjoint and ordered): the parts of
/// `base` not covered by any `minus` window.  Used to intersect process-up
/// with elector-up ground truth.
[[nodiscard]] std::vector<fault::Window> subtract_windows(
    const std::vector<fault::Window>& base,
    const std::vector<fault::Window>& minus);

}  // namespace chenfd::election
