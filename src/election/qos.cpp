#include "election/qos.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace chenfd::election {

namespace {

/// Is `t` inside any window of the disjoint, ordered set?
bool covered(const std::vector<fault::Window>& windows, TimePoint t) {
  for (const fault::Window& w : windows) {
    if (t < w.begin) return false;
    if (t < w.end) return true;
  }
  return false;
}

/// The local leader view of the right-continuous trace at time `t`.
ProcessId view_at(const std::vector<LeaderChange>& trace, TimePoint t) {
  ProcessId view = kNoLeader;
  for (const LeaderChange& c : trace) {
    if (c.at > t) break;
    view = c.leader;
  }
  return view;
}

void check_windows(const std::vector<fault::Window>& windows,
                   const char* what) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    expects(windows[i].end > windows[i].begin, what);
    if (i > 0) expects(windows[i].begin >= windows[i - 1].end, what);
  }
}

enum class Kind { kAgreement, kNoLeader, kDisagreement };

}  // namespace

std::vector<fault::Window> merge_windows(std::vector<fault::Window> windows,
                                         TimePoint horizon) {
  expects(horizon > TimePoint::zero(),
          "merge_windows: horizon must be positive");
  std::vector<fault::Window> clamped;
  for (fault::Window w : windows) {
    w.begin = std::max(w.begin, TimePoint::zero());
    w.end = std::min(w.end, horizon);
    if (w.end > w.begin) clamped.push_back(w);
  }
  std::sort(clamped.begin(), clamped.end(),
            [](const fault::Window& a, const fault::Window& b) {
              return a.begin < b.begin;
            });
  std::vector<fault::Window> merged;
  for (const fault::Window& w : clamped) {
    if (!merged.empty() && w.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  CHENFD_ENSURES(
      std::is_sorted(merged.begin(), merged.end(),
                     [](const fault::Window& a, const fault::Window& b) {
                       return a.end <= b.begin;
                     }),
      "merge_windows: result must be disjoint and ordered");
  return merged;
}

std::vector<fault::Window> subtract_windows(
    const std::vector<fault::Window>& base,
    const std::vector<fault::Window>& minus) {
  check_windows(base, "subtract_windows: base must be disjoint and ordered");
  check_windows(minus, "subtract_windows: minus must be disjoint and ordered");
  std::vector<fault::Window> out;
  for (const fault::Window& b : base) {
    TimePoint cursor = b.begin;
    for (const fault::Window& m : minus) {
      if (m.end <= cursor) continue;
      if (m.begin >= b.end) break;
      if (m.begin > cursor) out.push_back({cursor, m.begin});
      cursor = std::max(cursor, m.end);
      if (cursor >= b.end) break;
    }
    if (cursor < b.end) out.push_back({cursor, b.end});
  }
  return out;
}

QosReport compute_qos(const QosInput& input) {
  expects(input.n >= 2, "compute_qos: need at least two processes");
  expects(input.horizon > TimePoint::zero(),
          "compute_qos: horizon must be positive");
  expects(input.traces.size() == input.n,
          "compute_qos: one trace per process");
  expects(input.view_windows.size() == input.n,
          "compute_qos: one view-window set per process");
  expects(input.election_bound > Duration::zero(),
          "compute_qos: election bound must be positive");
  for (const auto& trace : input.traces) {
    for (std::size_t i = 1; i < trace.size(); ++i) {
      expects(trace[i].at >= trace[i - 1].at,
              "compute_qos: traces must be time-ordered");
    }
  }
  for (const auto& windows : input.view_windows) {
    check_windows(windows,
                  "compute_qos: view windows must be disjoint and ordered");
  }
  check_windows(
      input.disturbance_windows,
      "compute_qos: disturbance windows must be disjoint and ordered");
  check_windows(input.fault_windows,
                "compute_qos: fault windows must be disjoint and ordered");

  // Cut the timeline at every point where any input step function changes.
  std::set<TimePoint> cuts{TimePoint::zero(), input.horizon};
  auto add_cut = [&](TimePoint t) {
    if (t > TimePoint::zero() && t < input.horizon) cuts.insert(t);
  };
  for (const auto& trace : input.traces) {
    for (const LeaderChange& c : trace) add_cut(c.at);
  }
  for (const auto& windows : input.view_windows) {
    for (const fault::Window& w : windows) {
      add_cut(w.begin);
      add_cut(w.end);
    }
  }
  for (const fault::Window& w : input.disturbance_windows) {
    add_cut(w.begin);
    add_cut(w.end);
  }

  QosReport report;
  for (const auto& trace : input.traces) {
    report.total_leader_changes += trace.size();
  }

  const double horizon_s = input.horizon.seconds();
  double agree_s = 0.0;
  double none_s = 0.0;
  double split_s = 0.0;

  // Stability / gap accumulators, advanced segment by segment.
  ProcessId stable_leader = kNoLeader;
  TimePoint stable_since = TimePoint::zero();
  ProcessId last_agreed = kNoLeader;
  std::vector<double> stability_s;
  bool in_gap = false;
  TimePoint gap_begin = TimePoint::zero();
  std::vector<double> latencies_s;

  auto close_stability = [&](TimePoint at) {
    if (stable_leader == kNoLeader) return;
    stability_s.push_back((at - stable_since).seconds());
    stable_leader = kNoLeader;
  };
  auto close_gap = [&](TimePoint at, bool censored) {
    if (!in_gap) return;
    in_gap = false;
    // Both references count from the moment the system was last disturbed
    // during the gap — before that, failing to agree is expected, not slow.
    // The deadline reference uses the *padded* windows (the elector is
    // entitled to the settle allowance); the latency reference uses the
    // raw fault ends, so latencies report real convergence time.
    const auto last_overlapping_end =
        [&](const std::vector<fault::Window>& windows) {
          TimePoint reference = gap_begin;
          for (const fault::Window& w : windows) {
            if (w.begin >= at) break;
            if (w.end > gap_begin) {
              reference = std::max(reference, std::min(w.end, at));
            }
          }
          return reference;
        };
    const TimePoint deadline =
        last_overlapping_end(input.disturbance_windows) + input.election_bound;
    if (at > deadline && deadline <= input.horizon) ++report.bound_violations;
    if (!censored) {
      ++report.elections;
      latencies_s.push_back(
          (at - last_overlapping_end(input.fault_windows)).seconds());
    }
  };

  TimePoint prev = TimePoint::zero();
  bool first = true;
  for (const TimePoint cut : cuts) {
    if (first) {
      first = false;
      prev = cut;
      continue;
    }
    const TimePoint t0 = prev;
    const TimePoint t1 = cut;
    prev = cut;
    const double len_s = (t1 - t0).seconds();

    // Classify the segment at its left edge (all inputs are constant on it).
    std::vector<ProcessId> live;
    for (ProcessId id = 0; id < input.n; ++id) {
      if (covered(input.view_windows[id], t0)) live.push_back(id);
    }
    Kind kind = Kind::kNoLeader;
    if (!live.empty()) {
      const ProcessId claimed = view_at(input.traces[live.front()], t0);
      bool unanimous = true;
      bool any_claim = false;
      for (const ProcessId id : live) {
        const ProcessId v = view_at(input.traces[id], t0);
        if (v != kNoLeader) any_claim = true;
        if (v != claimed) unanimous = false;
      }
      const bool leader_live =
          claimed != kNoLeader &&
          std::find(live.begin(), live.end(), claimed) != live.end();
      if (unanimous && leader_live) {
        kind = Kind::kAgreement;
      } else if (any_claim) {
        kind = Kind::kDisagreement;
      }
    }

    if (kind == Kind::kAgreement) {
      agree_s += len_s;
      const ProcessId leader = view_at(input.traces[live.front()], t0);
      close_gap(t0, /*censored=*/false);
      if (stable_leader != leader) {
        close_stability(t0);
        stable_leader = leader;
        stable_since = t0;
        if (last_agreed != kNoLeader && last_agreed != leader) {
          ++report.agreed_leader_changes;
        }
        last_agreed = leader;
      }
    } else {
      (kind == Kind::kNoLeader ? none_s : split_s) += len_s;
      close_stability(t0);
      if (!in_gap) {
        in_gap = true;
        gap_begin = t0;
      }
      if (!covered(input.disturbance_windows, t0)) {
        report.undisturbed_violation_s += len_s;
      }
    }
  }
  close_stability(input.horizon);
  close_gap(input.horizon, /*censored=*/true);

  report.exactly_one_leader_fraction = agree_s / horizon_s;
  report.no_leader_fraction = none_s / horizon_s;
  report.disagreement_fraction = split_s / horizon_s;
  if (!stability_s.empty()) {
    double sum = 0.0;
    for (const double s : stability_s) {
      sum += s;
      report.max_stability_s = std::max(report.max_stability_s, s);
    }
    report.mean_stability_s = sum / static_cast<double>(stability_s.size());
  }
  if (!latencies_s.empty()) {
    double sum = 0.0;
    for (const double s : latencies_s) {
      sum += s;
      report.max_election_latency_s =
          std::max(report.max_election_latency_s, s);
    }
    report.mean_election_latency_s =
        sum / static_cast<double>(latencies_s.size());
  }

  // Spurious demotions: a view walking away from a live leader in calm air.
  for (ProcessId id = 0; id < input.n; ++id) {
    const auto& trace = input.traces[id];
    for (std::size_t i = 1; i < trace.size(); ++i) {
      const ProcessId old_leader = trace[i - 1].leader;
      const ProcessId new_leader = trace[i].leader;
      const TimePoint at = trace[i].at;
      if (old_leader == kNoLeader || at >= input.horizon) continue;
      if (new_leader != kNoLeader && new_leader < old_leader) continue;
      if (!covered(input.view_windows[old_leader], at)) continue;
      if (covered(input.disturbance_windows, at)) continue;
      ++report.spurious_demotions;
    }
  }

  const double total = report.exactly_one_leader_fraction +
                       report.no_leader_fraction +
                       report.disagreement_fraction;
  CHENFD_ENSURES(total > 0.999 && total < 1.001,
                 "compute_qos: fractions must partition the horizon");
  return report;
}

}  // namespace chenfd::election
