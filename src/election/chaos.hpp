// Leader-election chaos suites (DESIGN.md section 12).
//
// The fault::chaos pattern lifted to the N-process election cluster: each
// scenario runs a full Cluster under a FaultPlan combining a sampled part
// (LeaderChaosSchedule: crash-recover cycles, isolations and elector
// restarts of a victim process, placed in disjoint slots) with an optional
// scripted part, then checks the recorded leader traces against the plan's
// ground truth via compute_qos:
//
//   - outside every disturbance window (each fault padded by the settle
//     allowance the detectors and the hysteresis are entitled to) the
//     cluster must have exactly one leader that knows it is leader;
//   - every election gap must close within the analytic bound after the
//     last disturbance overlapping it ends — the bound derives from the
//     NFD-E detection time (eta + alpha) plus a margin for delivery delay
//     and election scheduling;
//   - demotions in calm air (spurious demotions) are capped, normally at
//     zero — the hysteresis exists precisely to prevent them;
//   - scenarios that script elector restarts assert the restart path
//     (warm latch vs. stale-snapshot cold fallback) taken by construction.
//
// Determinism: scenario i of a suite draws from substream i of the root
// seed (runner::parallel_map), the cluster from a seed drawn off that
// substream, so BENCH_leader.json is bit-identical for any --jobs count.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "election/cluster.hpp"
#include "election/qos.hpp"
#include "fault/fault_plan.hpp"
#include "runner/parallel_sweep.hpp"

namespace chenfd::election {

/// Samples cluster-level fault plans: the requested faults are placed in
/// disjoint equal slots of the middle 80% of the horizon (same placement
/// rule as fault::ChaosSchedule), so windows never overlap and every
/// crash/recover and elector crash/restart pair alternates by construction.
struct LeaderChaosSchedule {
  Duration horizon = seconds(2000.0);
  ProcessId victim = 0;  ///< the process the sampled faults hit

  std::size_t crash_cycles = 0;  ///< crash -> recover pairs of the victim
  Duration downtime_min = seconds(60.0);
  Duration downtime_max = seconds(180.0);

  std::size_t isolations = 0;  ///< full isolation windows of the victim
  Duration isolation_min = seconds(40.0);
  Duration isolation_max = seconds(120.0);

  std::size_t elector_restarts = 0;  ///< elector crash -> restart pairs
  Duration elector_downtime_min = seconds(20.0);
  Duration elector_downtime_max = seconds(60.0);

  /// Number of faults the schedule injects per hour of horizon.
  [[nodiscard]] double intensity_per_hour() const;

  [[nodiscard]] fault::FaultPlan sample(Rng& rng) const;
};

/// One named leader-election chaos scenario.
struct LeaderScenarioSpec {
  std::string name;
  std::string family;            ///< stability-curve grouping key
  double fault_intensity = 0.0;  ///< x-axis of the stability curve

  // Cluster shape and baseline network.
  std::size_t size = 4;
  double delay_mean_s = 0.02;
  double p_loss = 0.05;
  Duration eta = seconds(1.0);
  Duration alpha = seconds(0.5);
  std::size_t window = 16;
  Duration horizon = seconds(2000.0);

  Elector::Options elector;
  Duration snapshot_interval = seconds(20.0);
  Duration max_snapshot_age = seconds(90.0);

  LeaderChaosSchedule chaos;  ///< randomized faults (sampled per substream)
  /// Scripted faults with fixed times, appended to the sampled plan.
  std::function<void(fault::FaultPlan&)> scripted;

  // Oracle configuration.
  /// Margin on top of the NFD-E detection time (eta + alpha) in the
  /// analytic election bound: delivery delay plus election scheduling.
  Duration bound_margin = seconds(6.0);
  /// Ceiling on non-agreement time outside every disturbance window, as a
  /// fraction of the horizon.  Effectively zero: calm air must be calm.
  double max_undisturbed_violation_fraction = 1e-6;
  /// Floor on the exactly-one-leader fraction over the whole horizon.
  double min_agreement_fraction = 0.6;
  std::uint64_t max_spurious_demotions = 0;
  /// Oracle strengtheners for scenarios whose elector-restart path is
  /// known by construction: every restart warm (resp. at least one cold,
  /// none warm).
  bool expect_warm_restarts = false;
  bool expect_cold_restarts = false;
};

/// Everything measured about one leader scenario run.  All fields derive
/// deterministically from (spec, substream): bit-comparable across --jobs.
struct LeaderScenarioResult {
  std::string name;
  std::string family;
  double fault_intensity = 0.0;
  bool ok = false;
  std::vector<std::string> violations;

  QosReport qos;
  double election_bound_s = 0.0;
  std::size_t warm_elector_restarts = 0;
  std::size_t cold_elector_restarts = 0;
  std::uint64_t stale_heartbeats_dropped = 0;
  std::uint64_t incarnation_rebases = 0;

  /// Per-process leader traces (the raw evidence), for bit-equality tests
  /// and external dumps.
  std::vector<std::vector<LeaderChange>> traces;
  TimePoint horizon;
};

/// The analytic convergence bound for a spec: NFD-E detection time
/// (eta + alpha) plus the spec's margin.  Exposed so tests can assert the
/// oracle's deadline independently.
[[nodiscard]] Duration analytic_election_bound(const LeaderScenarioSpec& spec);

/// The settle allowance granted around every fault window: the analytic
/// bound plus the hysteresis overheads (holddown cap, self-claim delay,
/// restore grace) the elector is entitled to consume before agreement is
/// demanded again.
[[nodiscard]] Duration settle_allowance(const LeaderScenarioSpec& spec);

/// The named leader suites: "leader-smoke" is a two-scenario subset sized
/// for CI and sanitizer runs; "leader-full" covers the crash-recover,
/// partition-heal, flap-storm and elector-restart families.
[[nodiscard]] std::vector<LeaderScenarioSpec> leader_suite(
    const std::string& name);
[[nodiscard]] std::vector<std::string> leader_suite_names();

/// Runs one scenario against substream `rng`; evaluates its oracles.
[[nodiscard]] LeaderScenarioResult run_leader_scenario(
    const LeaderScenarioSpec& spec, Rng& rng);

/// Runs every scenario of `specs` on the deterministic parallel runner:
/// scenario i uses substream i of `root_seed`, results come back in
/// scenario order, bit-identical for any jobs count.
[[nodiscard]] std::vector<LeaderScenarioResult> run_leader_suite(
    const std::vector<LeaderScenarioSpec>& specs, std::uint64_t root_seed,
    const runner::RunnerOptions& opts = {});

}  // namespace chenfd::election
