#include "election/chaos.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace chenfd::election {

double LeaderChaosSchedule::intensity_per_hour() const {
  const double faults =
      static_cast<double>(crash_cycles + isolations + elector_restarts);
  return faults / (horizon.seconds() / 3600.0);
}

fault::FaultPlan LeaderChaosSchedule::sample(Rng& rng) const {
  fault::FaultPlan plan;
  const std::size_t total = crash_cycles + isolations + elector_restarts;
  if (total == 0) return plan;
  // Same slot-placement rule as fault::ChaosSchedule: disjoint equal slots
  // of the middle 80% of the horizon, starts in the first quarter of the
  // slot, lengths capped at half the slot — windows never overlap or touch
  // the edges, so per-process alternation holds by construction.
  const double h = horizon.seconds();
  const double width = 0.8 * h / static_cast<double>(total);
  std::size_t slot = 0;
  const auto place = [&](double min_len, double max_len) {
    const double slot_begin = 0.1 * h + static_cast<double>(slot) * width;
    ++slot;
    const double start = slot_begin + rng.uniform(0.0, 0.25 * width);
    const double len = std::min(rng.uniform(min_len, max_len), 0.5 * width);
    return fault::Window{TimePoint(start), TimePoint(start + len)};
  };
  for (std::size_t i = 0; i < crash_cycles; ++i) {
    const fault::Window w = place(downtime_min.seconds(), downtime_max.seconds());
    plan.crash_process(victim, w.begin).recover_process(victim, w.end);
  }
  for (std::size_t i = 0; i < isolations; ++i) {
    const fault::Window w =
        place(isolation_min.seconds(), isolation_max.seconds());
    plan.isolate(victim, w.begin, w.end);
  }
  for (std::size_t i = 0; i < elector_restarts; ++i) {
    const fault::Window w = place(elector_downtime_min.seconds(),
                                  elector_downtime_max.seconds());
    plan.elector_crash(victim, w.begin).elector_restart(victim, w.end);
  }
  return plan;
}

Duration analytic_election_bound(const LeaderScenarioSpec& spec) {
  return spec.eta + spec.alpha + spec.bound_margin;
}

Duration settle_allowance(const LeaderScenarioSpec& spec) {
  return analytic_election_bound(spec) + spec.elector.holddown_cap +
         spec.elector.self_claim_delay + spec.elector.restore_grace;
}

namespace {

std::string time_str(TimePoint t) {
  std::ostringstream os;
  os << t.seconds() << "s";
  return os.str();
}

}  // namespace

LeaderScenarioResult run_leader_scenario(const LeaderScenarioSpec& spec,
                                         Rng& rng) {
  expects(!spec.name.empty(), "run_leader_scenario: scenario must be named");
  expects(spec.horizon > Duration::zero(),
          "run_leader_scenario: horizon must be positive");
  expects(spec.size >= 2, "run_leader_scenario: need at least two processes");
  expects(spec.chaos.victim < spec.size,
          "run_leader_scenario: victim out of range");

  LeaderScenarioResult result;
  result.name = spec.name;
  result.family = spec.family;
  result.fault_intensity = spec.fault_intensity;
  const TimePoint horizon = TimePoint::zero() + spec.horizon;
  result.horizon = horizon;
  result.election_bound_s = analytic_election_bound(spec).seconds();

  // The cluster's stochastic components (delays, losses) draw from a seed
  // derived from the scenario substream, keeping the whole scenario a pure
  // function of (spec, substream).
  const std::uint64_t cluster_seed = rng();

  fault::FaultPlan plan = spec.chaos.sample(rng);
  if (spec.scripted) spec.scripted(plan);

  Cluster::Config config;
  config.size = spec.size;
  config.delay_mean_s = spec.delay_mean_s;
  config.p_loss = spec.p_loss;
  config.detector = core::NfdEParams{spec.eta, spec.alpha, spec.window};
  config.elector = spec.elector;
  config.seed = cluster_seed;
  config.snapshot_interval = spec.snapshot_interval;
  config.max_snapshot_age = spec.max_snapshot_age;
  Cluster cluster(std::move(config));
  cluster.apply(plan);
  cluster.start();
  cluster.simulator().run_until(horizon);

  result.warm_elector_restarts = cluster.warm_elector_restarts();
  result.cold_elector_restarts = cluster.cold_elector_restarts();
  result.stale_heartbeats_dropped = cluster.stale_heartbeats_dropped();
  result.incarnation_rebases = cluster.incarnation_rebases();

  // ---- ground truth ------------------------------------------------------
  const Duration settle = settle_allowance(spec);
  QosInput input;
  input.n = spec.size;
  input.horizon = horizon;
  input.election_bound = analytic_election_bound(spec);
  std::vector<fault::Window> disturbances;
  std::vector<fault::Window> raw_faults;
  // Startup: detectors fill windows and the self-claim delay runs off.
  disturbances.push_back({TimePoint::zero(), TimePoint::zero() + settle});
  for (ProcessId id = 0; id < spec.size; ++id) {
    result.traces.push_back(cluster.elector(id).trace());

    // A process's *view* exists while both it and its elector are up.
    std::vector<fault::Window> elector_down;
    for (fault::Window w : plan.elector_downtime_windows(id)) {
      w.end = std::min(w.end, horizon);
      if (w.end > w.begin && w.begin < horizon) elector_down.push_back(w);
    }
    input.view_windows.push_back(subtract_windows(
        plan.ground_truth_up_windows(id, horizon), elector_down));

    // Every injected fault disturbs agreement from its start until settle
    // after it ends (or forever, for a crash with no recovery).
    const auto pad = [&](const std::vector<fault::Window>& windows) {
      for (const fault::Window& w : windows) {
        if (w.begin >= horizon) continue;
        const TimePoint raw_end =
            w.end.is_infinite() ? horizon : std::min(w.end, horizon);
        raw_faults.push_back({w.begin, raw_end});
        const TimePoint end =
            w.end.is_infinite() ? horizon : std::min(w.end + settle, horizon);
        disturbances.push_back({w.begin, end});
      }
    };
    pad(plan.downtime_windows(id));
    pad(plan.isolation_windows(id));
    pad(plan.elector_downtime_windows(id));
  }
  input.traces = result.traces;
  input.disturbance_windows = merge_windows(std::move(disturbances), horizon);
  input.fault_windows = merge_windows(std::move(raw_faults), horizon);
  result.qos = compute_qos(input);

  // ---- oracles -----------------------------------------------------------
  auto& violations = result.violations;
  const double max_undisturbed_s =
      spec.max_undisturbed_violation_fraction * spec.horizon.seconds();
  if (result.qos.undisturbed_violation_s > max_undisturbed_s) {
    std::ostringstream os;
    os << "agreement lost for " << result.qos.undisturbed_violation_s
       << "s outside every disturbance window (allowed "
       << max_undisturbed_s << "s)";
    violations.push_back(os.str());
  }
  if (result.qos.bound_violations > 0) {
    std::ostringstream os;
    os << result.qos.bound_violations
       << " election gap(s) outlived the analytic bound of "
       << time_str(TimePoint(result.election_bound_s));
    violations.push_back(os.str());
  }
  if (result.qos.spurious_demotions > spec.max_spurious_demotions) {
    std::ostringstream os;
    os << result.qos.spurious_demotions << " spurious demotion(s), allowed "
       << spec.max_spurious_demotions;
    violations.push_back(os.str());
  }
  if (result.qos.exactly_one_leader_fraction < spec.min_agreement_fraction) {
    std::ostringstream os;
    os << "exactly-one-leader fraction "
       << result.qos.exactly_one_leader_fraction << " below floor "
       << spec.min_agreement_fraction;
    violations.push_back(os.str());
  }
  if (spec.expect_warm_restarts &&
      (result.warm_elector_restarts == 0 ||
       result.cold_elector_restarts != 0)) {
    std::ostringstream os;
    os << "expected warm elector restarts only, got "
       << result.warm_elector_restarts << " warm / "
       << result.cold_elector_restarts << " cold";
    violations.push_back(os.str());
  }
  if (spec.expect_cold_restarts &&
      (result.cold_elector_restarts == 0 ||
       result.warm_elector_restarts != 0)) {
    std::ostringstream os;
    os << "expected cold elector restarts only, got "
       << result.warm_elector_restarts << " warm / "
       << result.cold_elector_restarts << " cold";
    violations.push_back(os.str());
  }

  result.ok = violations.empty();
  return result;
}

std::vector<LeaderScenarioResult> run_leader_suite(
    const std::vector<LeaderScenarioSpec>& specs, std::uint64_t root_seed,
    const runner::RunnerOptions& opts) {
  return runner::parallel_map<LeaderScenarioResult>(
      specs.size(), root_seed, opts,
      [&specs](std::size_t i, Rng& rng) {
        return run_leader_scenario(specs[i], rng);
      });
}

namespace {

LeaderScenarioSpec base_spec(std::string name, std::string family,
                             double intensity) {
  LeaderScenarioSpec spec;
  spec.name = std::move(name);
  spec.family = std::move(family);
  spec.fault_intensity = intensity;
  // Election wants an *accurate* operating point, not the mistake-rate
  // measurement point of the two-process benches: with alpha a few etas the
  // freshness window spans several heartbeats, so only >= 4 consecutive
  // losses (p^4 ~ 1.6e-7 here) produce a false suspicion and leadership is
  // steady between injected faults.
  spec.alpha = seconds(3.5);
  spec.p_loss = 0.02;
  // Tight hysteresis keeps the settle allowance (and thus the undisturbed
  // portion of the horizon the oracles actually check) large.
  spec.elector.holddown_base = seconds(4.0);
  spec.elector.holddown_cap = seconds(16.0);
  spec.elector.holddown_reset = seconds(120.0);
  spec.elector.self_claim_delay = seconds(3.0);
  spec.elector.restore_grace = seconds(10.0);
  spec.snapshot_interval = seconds(10.0);
  spec.max_snapshot_age = seconds(90.0);
  return spec;
}

std::vector<LeaderScenarioSpec> smoke_suite() {
  std::vector<LeaderScenarioSpec> specs;
  {
    LeaderScenarioSpec spec =
        base_spec("smoke-leader-crash", "leader-crash-recover", 1.0);
    spec.size = 3;
    spec.horizon = seconds(800.0);
    spec.chaos.horizon = spec.horizon;
    spec.chaos.victim = 0;
    spec.chaos.crash_cycles = 1;
    spec.chaos.downtime_min = seconds(60.0);
    spec.chaos.downtime_max = seconds(120.0);
    specs.push_back(std::move(spec));
  }
  {
    LeaderScenarioSpec spec =
        base_spec("smoke-leader-elector-warm", "leader-elector-restart", 1.0);
    spec.size = 3;
    spec.horizon = seconds(800.0);
    spec.chaos.horizon = spec.horizon;
    // The victim is a follower: its warm restore must revive the leader
    // latch instead of manufacturing an election.
    spec.chaos.victim = 2;
    spec.chaos.elector_restarts = 1;
    spec.chaos.elector_downtime_min = seconds(20.0);
    spec.chaos.elector_downtime_max = seconds(40.0);
    spec.expect_warm_restarts = true;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<LeaderScenarioSpec> full_suite() {
  std::vector<LeaderScenarioSpec> specs = smoke_suite();
  // Crash-recover cycles of the lowest-id (and therefore default leader)
  // process, at increasing intensity.
  for (const std::size_t cycles : {1, 2, 4}) {
    LeaderScenarioSpec spec = base_spec(
        "leader-crash-x" + std::to_string(cycles), "leader-crash-recover",
        static_cast<double>(cycles));
    spec.chaos.victim = 0;
    spec.chaos.crash_cycles = cycles;
    specs.push_back(std::move(spec));
  }
  // Isolations of the leader: the cluster must fail over while the victim
  // is cut off and fold back in after the heal.
  for (const std::size_t isolations : {1, 2, 4}) {
    LeaderScenarioSpec spec = base_spec(
        "leader-partition-x" + std::to_string(isolations),
        "leader-partition-heal", static_cast<double>(isolations));
    spec.chaos.victim = 0;
    spec.chaos.isolations = isolations;
    specs.push_back(std::move(spec));
  }
  {
    // Flap storm: scripted short isolations of process 0 in rapid
    // succession.  The demotion hysteresis must keep the inter-flap
    // windows calm (no spurious demotions, agreement between flaps).
    LeaderScenarioSpec spec =
        base_spec("leader-flap-storm", "leader-flap-storm", 6.0);
    spec.scripted = [](fault::FaultPlan& plan) {
      for (int i = 0; i < 6; ++i) {
        const double start = 300.0 + 120.0 * static_cast<double>(i);
        plan.isolate(0, TimePoint(start), TimePoint(start + 15.0));
      }
    };
    specs.push_back(std::move(spec));
  }
  {
    // Stale-snapshot elector restart: the outage outlives max_snapshot_age,
    // so the restart must reject the snapshot and rejoin cold.
    LeaderScenarioSpec spec = base_spec("leader-elector-stale",
                                        "leader-elector-restart", 1.0);
    spec.max_snapshot_age = seconds(30.0);
    spec.scripted = [](fault::FaultPlan& plan) {
      plan.elector_crash(2, TimePoint(600.0))
          .elector_restart(2, TimePoint(680.0));
    };
    spec.expect_cold_restarts = true;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

std::vector<LeaderScenarioSpec> leader_suite(const std::string& name) {
  if (name == "leader-smoke") return smoke_suite();
  if (name == "leader-full") return full_suite();
  throw std::invalid_argument("unknown leader chaos suite: " + name);
}

std::vector<std::string> leader_suite_names() {
  return {"leader-smoke", "leader-full"};
}

}  // namespace chenfd::election
