#include "election/cluster.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"

namespace chenfd::election {

Cluster::Cluster(Config config)
    : config_(std::move(config)),
      stored_(config_.size),
      process_down_(config_.size, false),
      elector_down_(config_.size, false) {
  expects(config_.size >= 2, "Cluster: need at least two processes");
  expects(config_.delay_mean_s > 0.0, "Cluster: delay mean must be positive");
  expects(config_.p_loss >= 0.0 && config_.p_loss < 1.0,
          "Cluster: loss probability must be in [0, 1)");
  expects(config_.snapshot_interval > Duration::zero(),
          "Cluster: snapshot interval must be positive");
  expects(config_.max_snapshot_age > Duration::zero(),
          "Cluster: max snapshot age must be positive");
  config_.detector.validate();
  config_.elector.validate();

  const std::size_t n = config_.size;
  // Per-link RNGs split off the root in a fixed construction order: the
  // randomness any pair consumes is independent of what the others draw,
  // so traces are bit-identical regardless of delivery interleavings.
  Rng root(config_.seed);
  pairs_.resize(n * n);
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (from == to) continue;
      auto p = std::make_unique<Pair>();
      p->link = std::make_unique<net::Link>(
          sim_, std::make_unique<dist::Exponential>(config_.delay_mean_s),
          std::make_unique<net::BernoulliLoss>(config_.p_loss), root.split());
      p->link->set_receiver(
          [this, from, to](const net::Message& m, TimePoint real_now) {
            on_delivery(from, to, m, real_now);
          });
      p->sender = std::make_unique<core::HeartbeatSender>(
          sim_, *p->link, clock_, config_.detector.eta);
      pairs_[pair_index(from, to)] = std::move(p);
    }
  }
  for (ProcessId id = 0; id < n; ++id) {
    electors_.push_back(
        std::make_unique<Elector>(sim_, id, n, config_.elector));
  }
  // Detectors after electors: make_detector wires transitions into them.
  for (ProcessId to = 0; to < n; ++to) {
    for (ProcessId from = 0; from < n; ++from) {
      if (from == to) continue;
      make_detector(from, to);
    }
  }
}

void Cluster::make_detector(ProcessId from, ProcessId to) {
  Pair& p = pair(from, to);
  p.detector = std::make_unique<core::NfdE>(sim_, clock_, config_.detector);
  p.detector->add_listener([this, from, to](const Transition& t) {
    electors_[to]->on_peer_transition(from, t.to, t.at);
  });
  p.detector->activate();
  p.incarnation_known = false;
  p.incarnation = 0;
}

void Cluster::start() {
  expects(!started_, "Cluster::start: already started");
  started_ = true;
  for (const auto& p : pairs_) {
    if (p) p->sender->start();
  }
  for (const auto& e : electors_) e->activate();
  sim_.after(config_.snapshot_interval, [this] { take_snapshots(); });
}

void Cluster::take_snapshots() {
  const TimePoint now = sim_.now();
  for (ProcessId id = 0; id < config_.size; ++id) {
    // Only a live process with a live elector can write a snapshot.
    if (process_down_[id] || elector_down_[id]) continue;
    stored_[id] = StoredSnapshot{electors_[id]->export_state(now), now, true};
  }
  sim_.after(config_.snapshot_interval, [this] { take_snapshots(); });
}

void Cluster::on_delivery(ProcessId from, ProcessId to, const net::Message& m,
                          TimePoint real_now) {
  // Nobody home: the process or its elector is down, so the heartbeat
  // falls on the floor (the detector was torn down with its owner).
  if (process_down_[to] || elector_down_[to]) return;
  Pair& p = pair(from, to);
  if (!p.detector) return;
  if (!p.incarnation_known) {
    p.incarnation_known = true;
    p.incarnation = m.incarnation;
  } else if (m.incarnation < p.incarnation) {
    // An in-flight heartbeat of a previous life: processing it would let
    // the dead incarnation impersonate the recovered one.
    ++stale_dropped_;
    return;
  } else if (m.incarnation > p.incarnation) {
    // The sender recovered: its post-recovery schedule is shifted by the
    // outage, so pre-recovery window entries no longer fit the Eq. 6.3
    // normalization.  Rebase to start a fresh epoch at this heartbeat.
    p.incarnation = m.incarnation;
    p.detector->rebase({config_.detector.eta, config_.detector.alpha}, m.seq);
    ++incarnation_rebases_;
    electors_[to]->on_peer_incarnation(from, m.incarnation, sim_.now());
  }
  p.detector->on_heartbeat(m, real_now);
}

void Cluster::teardown_observer(ProcessId observer) {
  for (ProcessId from = 0; from < config_.size; ++from) {
    if (from == observer) continue;
    Pair& p = pair(from, observer);
    if (p.detector) {
      p.detector->stop();  // cancel pending freshness timers before delete
      p.detector.reset();
    }
  }
}

void Cluster::rebuild_observer(ProcessId observer) {
  for (ProcessId from = 0; from < config_.size; ++from) {
    if (from == observer) continue;
    make_detector(from, observer);
  }
}

void Cluster::crash_at(ProcessId id, TimePoint at) {
  expects(id < config_.size, "Cluster::crash_at: id out of range");
  expects(at >= sim_.now(), "Cluster::crash_at: cannot crash in the past");
  for (ProcessId to = 0; to < config_.size; ++to) {
    if (to == id) continue;
    pair(id, to).sender->crash_at(at);
  }
  sim_.at(at, [this, id] {
    expects(!process_down_[id], "Cluster: process crashed twice");
    process_down_[id] = true;
    electors_[id]->crash(sim_.now());
    teardown_observer(id);
  });
}

void Cluster::recover_at(ProcessId id, TimePoint at) {
  expects(id < config_.size, "Cluster::recover_at: id out of range");
  expects(at >= sim_.now(), "Cluster::recover_at: cannot recover in the past");
  for (ProcessId to = 0; to < config_.size; ++to) {
    if (to == id) continue;
    pair(id, to).sender->recover_at(at);
  }
  sim_.at(at, [this, id] {
    expects(process_down_[id], "Cluster: recovery without a crash");
    process_down_[id] = false;
    // A recovered process remembers nothing: fresh detectors (everyone
    // suspected until their first heartbeat) and a follower elector gated
    // by the self-claim delay.  Its stored snapshot is from before the
    // crash of the *process*, not just the observer, so it must not be
    // replayed — drop it.
    stored_[id].valid = false;
    rebuild_observer(id);
    electors_[id]->recover(sim_.now());
  });
}

void Cluster::adjust_isolation(ProcessId id, int delta) {
  for (ProcessId other = 0; other < config_.size; ++other) {
    if (other == id) continue;
    for (Pair* p : {&pair(id, other), &pair(other, id)}) {
      p->partition_depth += delta;
      CHENFD_ENSURES(p->partition_depth >= 0,
                     "Cluster: isolation depth underflow");
      p->link->set_partitioned(p->partition_depth > 0);
    }
  }
}

void Cluster::isolate(ProcessId id, TimePoint from, TimePoint until) {
  expects(id < config_.size, "Cluster::isolate: id out of range");
  expects(from >= sim_.now() && until > from,
          "Cluster::isolate: window must be future and non-empty");
  sim_.at(from, [this, id] { adjust_isolation(id, +1); });
  sim_.at(until, [this, id] { adjust_isolation(id, -1); });
}

void Cluster::elector_crash_at(ProcessId id, TimePoint at) {
  expects(id < config_.size, "Cluster::elector_crash_at: id out of range");
  expects(at >= sim_.now(), "Cluster::elector_crash_at: past time");
  sim_.at(at, [this, id] {
    expects(!process_down_[id] && !elector_down_[id],
            "Cluster: elector crash needs a live process and elector");
    elector_down_[id] = true;
    electors_[id]->crash(sim_.now());
    // Observer-side state dies with the elector: detectors are in-memory
    // structures of the monitoring process.
    teardown_observer(id);
  });
}

void Cluster::elector_restart_at(ProcessId id, TimePoint at) {
  expects(id < config_.size, "Cluster::elector_restart_at: id out of range");
  expects(at >= sim_.now(), "Cluster::elector_restart_at: past time");
  sim_.at(at, [this, id] {
    expects(elector_down_[id], "Cluster: elector restart without a crash");
    const TimePoint now = sim_.now();
    elector_down_[id] = false;
    rebuild_observer(id);
    // MonitorSupervisor's restart policy in miniature: warm from the
    // stored snapshot when it is fresh enough, cold otherwise.
    const StoredSnapshot& snap = stored_[id];
    if (snap.valid && now - snap.taken_at <= config_.max_snapshot_age) {
      electors_[id]->restore_state(snap.state, /*warm=*/true, now);
      ++warm_elector_restarts_;
    } else {
      electors_[id]->restore_state(std::nullopt, /*warm=*/false, now);
      ++cold_elector_restarts_;
    }
  });
}

void Cluster::apply(const fault::FaultPlan& plan) {
  expects(!started_, "Cluster::apply: apply plans before start()");
  expects(plan.partition_windows().empty(),
          "Cluster::apply: two-process partitions do not map to a cluster; "
          "use isolate events");
  expects(plan.monitor_downtime_windows().empty(),
          "Cluster::apply: monitor events are testbed-only; use elector "
          "events");
  for (ProcessId id = 0; id < config_.size; ++id) {
    for (const auto& w : plan.downtime_windows(id)) {
      crash_at(id, w.begin);
      if (!w.end.is_infinite()) recover_at(id, w.end);
    }
    for (const auto& w : plan.isolation_windows(id)) {
      expects(!w.end.is_infinite(),
              "Cluster::apply: isolation windows must close");
      isolate(id, w.begin, w.end);
    }
    for (const auto& w : plan.elector_downtime_windows(id)) {
      elector_crash_at(id, w.begin);
      if (!w.end.is_infinite()) elector_restart_at(id, w.end);
    }
  }
}

const Elector& Cluster::elector(ProcessId id) const {
  expects(id < config_.size, "Cluster::elector: id out of range");
  return *electors_[id];
}

ProcessId Cluster::leader_view(ProcessId id) const {
  expects(id < config_.size, "Cluster::leader_view: id out of range");
  return electors_[id]->leader();
}

}  // namespace chenfd::election
