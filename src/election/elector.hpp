// Omega-style eventual leader election over per-peer failure detectors
// (DESIGN.md section 12).
//
// Each process runs one Elector fed by n-1 per-peer NFD-E detectors (the
// cluster wires their transitions in).  The rule is the classic Omega
// reduction: trust yourself, trust every peer whose detector currently
// trusts it, and elect the lowest-id *eligible* trusted process.  Two
// crash-recovery refinements make the rule robust:
//
//   incarnations — heartbeats carry the sender's incarnation (lives
//     survived).  The cluster drops in-flight heartbeats of an older
//     incarnation and rebases the peer's NFD-E window on a bump, so a
//     recovered process is never mistaken for its pre-crash self; the
//     elector only observes the resulting clean trust signal plus an
//     on_peer_incarnation notification that resets the peer's hysteresis
//     history (a new life starts with a clean record).
//
//   demotion hysteresis — when the current leader is demoted (its detector
//     stops trusting it), the elector remembers and, on the next re-trust,
//     holds the peer ineligible for a bounded exponential backoff
//     (holddown_base * 2^(demotions-1), capped at holddown_cap).  A
//     flapping low-id process therefore converges to a *stable* higher-id
//     leader instead of dragging leadership back and forth; the backoff
//     decays to zero after holddown_reset of demotion-free behaviour.
//
// A process's own eligibility is gated the same way after a life change:
// on activate, recover and cold restore it waits self_claim_delay before
// claiming leadership, so a rejoining low-id process adopts the incumbent
// view first instead of immediately splitting leadership.
//
// Warm restarts (MonitorSupervisor snapshot path) revive the leader latch:
// the restored leader is kept for restore_grace even though the rebuilt
// detectors still suspect everyone (they start Suspect until the first
// heartbeat), so a monitor restart does not manufacture an election.  A
// cold or stale restore falls back to follower.
//
// Everything is deterministic: the elector draws no randomness, reacts only
// to detector transitions and its own simulator events, and appends every
// leader change to an in-order trace the QoS layer consumes.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "common/verdict.hpp"
#include "persist/snapshot.hpp"
#include "sim/simulator.hpp"

namespace chenfd::election {

using ProcessId = std::size_t;

/// Sentinel for "no leader elected" in traces and queries.
inline constexpr ProcessId kNoLeader = static_cast<ProcessId>(-1);

/// One change of a process's local leader view.
struct LeaderChange {
  TimePoint at;
  ProcessId leader = kNoLeader;  ///< kNoLeader = view became leaderless

  friend bool operator==(const LeaderChange&, const LeaderChange&) = default;
};

class Elector {
 public:
  struct Options {
    /// Holddown after the first demotion; doubles per further demotion.
    Duration holddown_base = seconds(8.0);
    /// Upper bound of the demotion backoff (the hysteresis is *bounded*:
    /// a genuinely stable ex-leader regains eligibility within this).
    Duration holddown_cap = seconds(64.0);
    /// A peer's demotion count resets after this much demotion-free time.
    Duration holddown_reset = seconds(180.0);
    /// Self-eligibility delay after activate/recover/cold-restore.
    Duration self_claim_delay = seconds(5.0);
    /// How long a warm-restored leader latch survives without the rebuilt
    /// detector confirming it.
    Duration restore_grace = seconds(20.0);

    void validate() const;
  };

  /// An elector for process `self` of `n` processes (ids 0..n-1).
  Elector(sim::Simulator& simulator, ProcessId self, std::size_t n,
          Options options);

  /// Starts the elector: arms the self-claim delay and evaluates the first
  /// view.  Call exactly once, at simulated time 0 or later.
  void activate();

  /// Feeds one transition of the detector watching `peer` (cluster glue).
  void on_peer_transition(ProcessId peer, Verdict v, TimePoint at);

  /// Notifies that `peer` re-announced itself with a higher incarnation:
  /// its demotion history belongs to a previous life and is cleared.
  void on_peer_incarnation(ProcessId peer, std::uint64_t incarnation,
                           TimePoint at);

  /// Crash of the hosting process: the elector stops (a crashed process
  /// has no leader view; the trace records kNoLeader) and all volatile
  /// state is lost.
  void crash(TimePoint at);

  /// Recovery of the hosting process: fresh state, everyone suspected,
  /// self-claim gated by self_claim_delay.
  void recover(TimePoint at);

  // ---- supervisor snapshot plumbing (warm/cold restarts) -----------------

  /// The persistent state a snapshot carries (see persist::ElectionState).
  [[nodiscard]] persist::ElectionState export_state(TimePoint at) const;

  /// Restores after an elector/monitor restart.  With a state and
  /// warm=true the leader latch revives under restore_grace; with nullopt
  /// (cold restart, stale or election-less snapshot) the elector rejoins
  /// as a follower exactly like recover().
  void restore_state(const std::optional<persist::ElectionState>& state,
                     bool warm, TimePoint at);

  // ---- observability -----------------------------------------------------

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] ProcessId leader() const { return leader_; }
  [[nodiscard]] bool self_claimed() const { return leader_ == self_; }
  [[nodiscard]] std::uint64_t leader_changes() const {
    return leader_changes_;
  }
  [[nodiscard]] std::uint64_t demotions(ProcessId peer) const;
  /// Every local leader change, in time order.
  [[nodiscard]] const std::vector<LeaderChange>& trace() const {
    return trace_;
  }

  void add_listener(std::function<void(const LeaderChange&)> listener);

 private:
  struct Peer {
    bool trusted = false;
    std::uint64_t incarnation = 0;
    std::uint64_t demotions = 0;
    TimePoint eligible_from = TimePoint::zero();
    TimePoint last_demotion = TimePoint::zero();
  };

  [[nodiscard]] Duration holddown(std::uint64_t demotions) const;
  void note_demotion(Peer& peer, TimePoint at);
  void reevaluate(TimePoint at);
  void set_leader(TimePoint at, ProcessId leader);
  void schedule_reevaluation(TimePoint at);
  void reset_volatile(TimePoint at);

  sim::Simulator& sim_;
  ProcessId self_;
  std::size_t n_;
  Options options_;
  std::vector<Peer> peers_;  // indexed by process id; entry self_ unused
  bool started_ = false;
  bool alive_ = true;
  ProcessId leader_ = kNoLeader;
  TimePoint leader_since_ = TimePoint::zero();
  TimePoint self_eligible_from_ = TimePoint::zero();
  // Warm-restore latch: `grace_leader_` stays leader until `grace_until_`
  // unless a lower process becomes eligible or the latch is confirmed by a
  // real trust transition.
  ProcessId grace_leader_ = kNoLeader;
  TimePoint grace_until_ = TimePoint::zero();
  std::uint64_t leader_changes_ = 0;
  std::vector<LeaderChange> trace_;
  std::vector<std::function<void(const LeaderChange&)>> listeners_;
};

}  // namespace chenfd::election
