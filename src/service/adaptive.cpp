#include "service/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rounding.hpp"
#include "core/chebyshev.hpp"

namespace chenfd::service {

AdaptiveMonitor::AdaptiveMonitor(sim::Simulator& simulator,
                                 const clk::Clock& q_clock,
                                 core::HeartbeatSender& sender,
                                 Options options)
    : sim_(simulator),
      q_clock_(q_clock),
      sender_(sender),
      options_(options),
      detector_(simulator, q_clock, options.initial),
      estimator_(options.short_window, options.long_window) {
  expects(options_.requirements.valid(),
          "AdaptiveMonitor: invalid QoS requirements");
  expects(options_.reconfig_interval > Duration::zero(),
          "AdaptiveMonitor: reconfiguration interval must be positive");
  expects(options_.silence_factor >= 0.0,
          "AdaptiveMonitor: silence factor must be non-negative");
  expects(options_.max_backoff_factor >= 1.0,
          "AdaptiveMonitor: max backoff factor must be >= 1");
  // Relay the inner detector's output as our own.
  detector_.add_listener(
      [this](const Transition& t) { set_output(t.at, t.to); });
}

void AdaptiveMonitor::activate() {
  CHENFD_EXPECTS(!active_, "AdaptiveMonitor::activate: already active");
  active_ = true;
  detector_.activate();
  // Re-arm the silence detector from this instant: after a stop/restart
  // cycle the pre-stop arrival history says nothing about the gap just
  // spent inactive.
  activated_local_ = q_clock_.local(sim_.now());
  last_arrival_local_.reset();
  timer_ = sim_.after(options_.reconfig_interval * backoff_,
                      [this] { reconfigure(); });
}

// detlint: allow(R4) stop is idempotent and legal in any state
void AdaptiveMonitor::stop() {
  active_ = false;
  if (timer_ != 0) sim_.cancel(timer_);
  timer_ = 0;
  detector_.stop();
}

// detlint: allow(R4) every message is admissible; inactive monitors drop them
void AdaptiveMonitor::on_heartbeat(const net::Message& m, TimePoint real_now) {
  if (!active_) return;
  const TimePoint local_now = q_clock_.local(real_now);
  if (options_.silence_factor > 0.0 && last_arrival_local_ &&
      local_now - *last_arrival_local_ > silence_bound()) {
    on_discontinuity(m.seq);
  }
  last_arrival_local_ = local_now;
  estimator_.on_heartbeat(m.seq, m.sender_timestamp, local_now);
  detector_.on_heartbeat(m, real_now);
}

void AdaptiveMonitor::on_discontinuity(net::SeqNo seq) {
  // The stream resumed after a silence no loss pattern explains: whatever
  // caused it (partition, crash-recovery of p, a regime shift) breaks both
  // the sliding estimates and the detector's Eq. 6.3 normalization, which
  // assume one uninterrupted sending schedule.  Restart estimation at the
  // resuming heartbeat and treat the QoS as unvalidated until a
  // reconfiguration round succeeds against post-disruption estimates.
  ++epoch_resets_;
  estimator_.reset();
  smoothed_loss_ = -1.0;
  smoothed_variance_ = -1.0;
  detector_.rebase(detector_.params(), seq);
  raise_risk(RiskReason::kPostDisruption, /*backoff=*/false);
}

void AdaptiveMonitor::raise_risk(RiskReason reason, bool backoff) {
  qos_at_risk_ = true;
  risk_reason_ = reason;
  if (backoff) {
    backoff_ = std::min(backoff_ * 2.0, options_.max_backoff_factor);
  }
}

void AdaptiveMonitor::update_requirements(
    const core::RelativeRequirements& req) {
  expects(req.valid(), "AdaptiveMonitor::update_requirements: invalid");
  options_.requirements = req;
}

void AdaptiveMonitor::adopt_params(core::NfdUParams params) {
  expects(!active_,
          "AdaptiveMonitor::adopt_params: adopt into an active service");
  sender_.set_eta(params.eta);
  detector_.rebase(params, sender_.next_seq());
}

void AdaptiveMonitor::latch_risk(RiskReason reason) {
  expects(reason != RiskReason::kNone,
          "AdaptiveMonitor::latch_risk: kNone is not a latchable reason");
  raise_risk(reason, /*backoff=*/false);
}

namespace {

persist::EstimatorState estimator_state(const core::NetworkEstimator& est) {
  persist::EstimatorState state;
  state.capacity = est.capacity();
  state.highest_seq = est.highest_seq();
  for (const core::NetworkEstimator::Sample& s : est.samples_snapshot()) {
    state.obs.push_back(persist::EstimatorState::Obs{s.seq, s.delay_s});
  }
  return state;
}

}  // namespace

persist::MonitorSnapshot AdaptiveMonitor::snapshot() const {
  persist::MonitorSnapshot snap;
  snap.taken_at_s = q_clock_.local(sim_.now()).seconds();

  snap.detector.eta_s = detector_.params().eta.seconds();
  snap.detector.alpha_s = detector_.params().alpha.seconds();
  snap.detector.window_capacity = detector_.window_capacity();
  snap.detector.epoch_seq = detector_.epoch_seq();
  snap.detector.max_seq = detector_.max_seq();
  for (const core::NfdE::Observation& o : detector_.window_snapshot()) {
    snap.detector.window.push_back(
        persist::DetectorState::Obs{o.normalized, o.seq});
  }

  snap.short_term = estimator_state(estimator_.short_term());
  snap.long_term = estimator_state(estimator_.long_term());

  snap.smoothed_loss = smoothed_loss_;
  snap.smoothed_variance = smoothed_variance_;

  snap.qos_at_risk = qos_at_risk_;
  snap.risk_reason = to_string(risk_reason_);
  snap.backoff = backoff_;

  snap.has_last_arrival = last_arrival_local_.has_value();
  snap.last_arrival_s =
      last_arrival_local_ ? last_arrival_local_->seconds() : 0.0;

  snap.reconfigurations = reconfigs_;
  snap.epoch_resets = epoch_resets_;

  snap.req_detection_rel_s =
      options_.requirements.detection_time_upper_rel.seconds();
  snap.req_recurrence_s =
      options_.requirements.mistake_recurrence_lower.seconds();
  snap.req_duration_s = options_.requirements.mistake_duration_upper.seconds();
  // next_app_id / apps stay at their defaults: the supervisor owns the
  // registry and fills them in before persisting.
  return snap;
}

void AdaptiveMonitor::restore_from(const persist::MonitorSnapshot& snap,
                                   Duration gap) {
  expects(!active_,
          "AdaptiveMonitor::restore_from: restore into an active service");
  expects(gap >= Duration::zero(),
          "AdaptiveMonitor::restore_from: negative downtime gap");
  expects(snap.detector.eta_s > 0.0 && snap.detector.alpha_s > 0.0,
          "AdaptiveMonitor::restore_from: non-positive detector parameters");

  const core::NfdUParams params{seconds(snap.detector.eta_s),
                                seconds(snap.detector.alpha_s)};

  // The Eq. 6.3 window restores VERBATIM: its normalized q-local values
  // stay consistent with p's unchanged sending schedule, so the first live
  // heartbeat re-trusts immediately (the whole value of a warm restart).
  std::vector<core::NfdE::Observation> window;
  window.reserve(snap.detector.window.size());
  for (const persist::DetectorState::Obs& o : snap.detector.window) {
    window.push_back(core::NfdE::Observation{o.normalized_s, o.seq});
  }
  detector_.restore(params, snap.detector.epoch_seq, window,
                    snap.detector.max_seq);

  // The estimator windows slide forward by the heartbeats p sent while the
  // monitor was down — unobservable, not lost — so the loss estimate does
  // not spike at the first post-restart arrival.  Only *completed* sending
  // intervals count: floor, not round-to-nearest, else a gap of 2.6*eta
  // would credit p with 3 sends and shift the window past a heartbeat that
  // was never due.
  const double completed_intervals = std::max(
      0.0, floor_ratio_snapped(gap.seconds(), snap.detector.eta_s));
  const net::SeqNo seq_shift = static_cast<net::SeqNo>(completed_intervals);
  auto samples = [](const persist::EstimatorState& state) {
    std::vector<core::NetworkEstimator::Sample> out;
    out.reserve(state.obs.size());
    for (const persist::EstimatorState::Obs& o : state.obs) {
      out.push_back(core::NetworkEstimator::Sample{o.seq, o.delay_s});
    }
    return out;
  };
  estimator_.restore(samples(snap.short_term), snap.short_term.highest_seq,
                     samples(snap.long_term), snap.long_term.highest_seq,
                     seq_shift);

  smoothed_loss_ = snap.smoothed_loss;
  smoothed_variance_ = snap.smoothed_variance;
  backoff_ = std::clamp(snap.backoff, 1.0, options_.max_backoff_factor);
  reconfigs_ = snap.reconfigurations;
  epoch_resets_ = snap.epoch_resets;

  const core::RelativeRequirements req{seconds(snap.req_detection_rel_s),
                                       seconds(snap.req_recurrence_s),
                                       seconds(snap.req_duration_s)};
  expects(req.valid(),
          "AdaptiveMonitor::restore_from: invalid snapshot requirements");
  options_.requirements = req;

  // The pre-crash arrival history says nothing about the downtime just
  // crossed; the silence detector re-seeds at activate() and the
  // kWarmRestart latch holds until a post-restore heartbeat is observed
  // AND a reconfiguration round then succeeds.
  last_arrival_local_.reset();
  raise_risk(RiskReason::kWarmRestart, /*backoff=*/false);
}

void AdaptiveMonitor::reconfigure() {
  if (!active_) return;
  reconfigure_round();
  if (!active_) return;
  timer_ = sim_.after(options_.reconfig_interval * backoff_,
                      [this] { reconfigure(); });
}

void AdaptiveMonitor::reconfigure_round() {
  // A warm-restarted service runs on rehydrated estimates; they are only
  // trustworthy once the live stream has confirmed the old sending
  // schedule still holds.  Until the first post-restore heartbeat the
  // round neither revalidates nor reconfigures.
  if (risk_reason_ == RiskReason::kWarmRestart && !last_arrival_local_) {
    return;
  }
  // Ongoing silence: the link is effectively down right now.  The window
  // estimates predate the outage, so reconfiguring from them would encode
  // a regime that no longer exists — only flag the risk.
  if (options_.silence_factor > 0.0) {
    const TimePoint local_now = q_clock_.local(sim_.now());
    const TimePoint last = last_arrival_local_.value_or(activated_local_);
    if (local_now - last > silence_bound()) {
      raise_risk(RiskReason::kSilence, /*backoff=*/false);
      return;
    }
  }

  // Need enough observations for a meaningful variance estimate.  (After an
  // epoch reset this also holds off revalidation until the fresh window is
  // primed, keeping the risk latched through the transient.)
  if (estimator_.long_term().samples() < 8) return;

  const double raw_loss = options_.use_two_component
                              ? estimator_.loss_probability()
                              : estimator_.long_term().loss_probability();
  const double raw_variance = options_.use_two_component
                                  ? estimator_.delay_variance()
                                  : estimator_.long_term().delay_variance();
  if (!std::isfinite(raw_loss) || !std::isfinite(raw_variance) ||
      raw_loss < 0.0 || raw_variance < 0.0) {
    // A clock jump or malformed stream produced garbage; configuring from
    // it would institutionalize the garbage.  Keep the running parameters.
    raise_risk(RiskReason::kEstimatesUnusable, /*backoff=*/true);
    return;
  }
  // Smooth across rounds so single-window noise does not flap the rate.
  const double a = options_.estimate_smoothing;
  smoothed_loss_ =
      smoothed_loss_ < 0.0 ? raw_loss : a * raw_loss + (1 - a) * smoothed_loss_;
  smoothed_variance_ = smoothed_variance_ < 0.0
                           ? raw_variance
                           : a * raw_variance + (1 - a) * smoothed_variance_;
  const double p_loss = smoothed_loss_;
  const double variance = smoothed_variance_;
  if (p_loss >= 1.0) {
    raise_risk(RiskReason::kInfeasible, /*backoff=*/true);
    return;
  }

  // Configure the candidate target with headroom on the recurrence bound,
  // so the running parameters sit comfortably inside the requirement
  // rather than exactly on its edge.
  core::RelativeRequirements padded = options_.requirements;
  padded.mistake_recurrence_lower =
      padded.mistake_recurrence_lower * options_.recurrence_safety_factor;
  auto outcome = core::configure_nfd_u(padded, p_loss, variance);
  if (!outcome.achievable()) {
    // Fall back to the unpadded requirement before declaring risk.
    outcome = core::configure_nfd_u(options_.requirements, p_loss, variance);
  }
  if (!outcome.achievable()) {
    raise_risk(RiskReason::kInfeasible, /*backoff=*/true);
    return;
  }
  qos_at_risk_ = false;
  risk_reason_ = RiskReason::kNone;
  backoff_ = 1.0;

  const core::NfdUParams target = *outcome.params;
  const double eta_now = detector_.params().eta.seconds();

  // Prefer keeping the current sending rate (no epoch reset): re-derive
  // alpha from the detection budget at the CURRENT eta and re-check the
  // Theorem 11 bounds against the current estimates.  A full rebase (rate
  // renegotiation with p) happens only when the kept parameters are no
  // longer provably sufficient, or when the achievable eta is enough
  // larger that the bandwidth saving justifies the reset.
  const Duration kept_alpha =
      options_.requirements.detection_time_upper_rel - detector_.params().eta;
  bool keep_ok = false;
  if (kept_alpha > Duration::zero()) {
    const core::NfdUParams kept{detector_.params().eta, kept_alpha};
    const auto b = core::nfd_u_bounds(kept, p_loss, variance);
    keep_ok = b.mistake_recurrence_lower >=
                  options_.requirements.mistake_recurrence_lower &&
              b.mistake_duration_upper <=
                  options_.requirements.mistake_duration_upper;
    if (keep_ok &&
        target.eta.seconds() <= eta_now * (1.0 + options_.eta_hysteresis)) {
      detector_.set_params(kept);
      return;
    }
  }

  // Renegotiate the heartbeat rate: the p-side agent switches to the new
  // eta, and the q-side detector rebases its estimation epoch at the first
  // sequence number sent under the new rate.
  sender_.set_eta(target.eta);
  detector_.rebase(target, sender_.next_seq());
  ++reconfigs_;
}

const char* to_string(AdaptiveMonitor::RiskReason reason) {
  switch (reason) {
    case AdaptiveMonitor::RiskReason::kNone:
      return "none";
    case AdaptiveMonitor::RiskReason::kInfeasible:
      return "infeasible";
    case AdaptiveMonitor::RiskReason::kEstimatesUnusable:
      return "estimates_unusable";
    case AdaptiveMonitor::RiskReason::kSilence:
      return "silence";
    case AdaptiveMonitor::RiskReason::kPostDisruption:
      return "post_disruption";
    case AdaptiveMonitor::RiskReason::kWarmRestart:
      return "warm_restart";
  }
  return "none";  // unreachable; keeps -Wreturn-type quiet
}

std::optional<AdaptiveMonitor::RiskReason> risk_reason_from_string(
    const std::string& word) {
  using R = AdaptiveMonitor::RiskReason;
  if (word == "none") return R::kNone;
  if (word == "infeasible") return R::kInfeasible;
  if (word == "estimates_unusable") return R::kEstimatesUnusable;
  if (word == "silence") return R::kSilence;
  if (word == "post_disruption") return R::kPostDisruption;
  if (word == "warm_restart") return R::kWarmRestart;
  return std::nullopt;
}

}  // namespace chenfd::service
