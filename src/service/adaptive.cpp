#include "service/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "core/chebyshev.hpp"

namespace chenfd::service {

AdaptiveMonitor::AdaptiveMonitor(sim::Simulator& simulator,
                                 const clk::Clock& q_clock,
                                 core::HeartbeatSender& sender,
                                 Options options)
    : sim_(simulator),
      q_clock_(q_clock),
      sender_(sender),
      options_(options),
      detector_(simulator, q_clock, options.initial),
      estimator_(options.short_window, options.long_window) {
  expects(options_.requirements.valid(),
          "AdaptiveMonitor: invalid QoS requirements");
  expects(options_.reconfig_interval > Duration::zero(),
          "AdaptiveMonitor: reconfiguration interval must be positive");
  expects(options_.silence_factor >= 0.0,
          "AdaptiveMonitor: silence factor must be non-negative");
  expects(options_.max_backoff_factor >= 1.0,
          "AdaptiveMonitor: max backoff factor must be >= 1");
  // Relay the inner detector's output as our own.
  detector_.add_listener(
      [this](const Transition& t) { set_output(t.at, t.to); });
}

void AdaptiveMonitor::activate() {
  detector_.activate();
  activated_local_ = q_clock_.local(sim_.now());
  timer_ = sim_.after(options_.reconfig_interval, [this] { reconfigure(); });
}

void AdaptiveMonitor::stop() {
  stopped_ = true;
  if (timer_ != 0) sim_.cancel(timer_);
  detector_.stop();
}

void AdaptiveMonitor::on_heartbeat(const net::Message& m, TimePoint real_now) {
  const TimePoint local_now = q_clock_.local(real_now);
  if (options_.silence_factor > 0.0 && last_arrival_local_ &&
      local_now - *last_arrival_local_ > silence_bound()) {
    on_discontinuity(m.seq);
  }
  last_arrival_local_ = local_now;
  estimator_.on_heartbeat(m.seq, m.sender_timestamp, local_now);
  detector_.on_heartbeat(m, real_now);
}

void AdaptiveMonitor::on_discontinuity(net::SeqNo seq) {
  // The stream resumed after a silence no loss pattern explains: whatever
  // caused it (partition, crash-recovery of p, a regime shift) breaks both
  // the sliding estimates and the detector's Eq. 6.3 normalization, which
  // assume one uninterrupted sending schedule.  Restart estimation at the
  // resuming heartbeat and treat the QoS as unvalidated until a
  // reconfiguration round succeeds against post-disruption estimates.
  ++epoch_resets_;
  estimator_.reset();
  smoothed_loss_ = -1.0;
  smoothed_variance_ = -1.0;
  detector_.rebase(detector_.params(), seq);
  raise_risk(RiskReason::kPostDisruption, /*backoff=*/false);
}

void AdaptiveMonitor::raise_risk(RiskReason reason, bool backoff) {
  qos_at_risk_ = true;
  risk_reason_ = reason;
  if (backoff) {
    backoff_ = std::min(backoff_ * 2.0, options_.max_backoff_factor);
  }
}

void AdaptiveMonitor::update_requirements(
    const core::RelativeRequirements& req) {
  expects(req.valid(), "AdaptiveMonitor::update_requirements: invalid");
  options_.requirements = req;
}

void AdaptiveMonitor::reconfigure() {
  if (stopped_) return;
  reconfigure_round();
  if (stopped_) return;
  timer_ = sim_.after(options_.reconfig_interval * backoff_,
                      [this] { reconfigure(); });
}

void AdaptiveMonitor::reconfigure_round() {
  // Ongoing silence: the link is effectively down right now.  The window
  // estimates predate the outage, so reconfiguring from them would encode
  // a regime that no longer exists — only flag the risk.
  if (options_.silence_factor > 0.0) {
    const TimePoint local_now = q_clock_.local(sim_.now());
    const TimePoint last = last_arrival_local_.value_or(activated_local_);
    if (local_now - last > silence_bound()) {
      raise_risk(RiskReason::kSilence, /*backoff=*/false);
      return;
    }
  }

  // Need enough observations for a meaningful variance estimate.  (After an
  // epoch reset this also holds off revalidation until the fresh window is
  // primed, keeping the risk latched through the transient.)
  if (estimator_.long_term().samples() < 8) return;

  const double raw_loss = options_.use_two_component
                              ? estimator_.loss_probability()
                              : estimator_.long_term().loss_probability();
  const double raw_variance = options_.use_two_component
                                  ? estimator_.delay_variance()
                                  : estimator_.long_term().delay_variance();
  if (!std::isfinite(raw_loss) || !std::isfinite(raw_variance) ||
      raw_loss < 0.0 || raw_variance < 0.0) {
    // A clock jump or malformed stream produced garbage; configuring from
    // it would institutionalize the garbage.  Keep the running parameters.
    raise_risk(RiskReason::kEstimatesUnusable, /*backoff=*/true);
    return;
  }
  // Smooth across rounds so single-window noise does not flap the rate.
  const double a = options_.estimate_smoothing;
  smoothed_loss_ =
      smoothed_loss_ < 0.0 ? raw_loss : a * raw_loss + (1 - a) * smoothed_loss_;
  smoothed_variance_ = smoothed_variance_ < 0.0
                           ? raw_variance
                           : a * raw_variance + (1 - a) * smoothed_variance_;
  const double p_loss = smoothed_loss_;
  const double variance = smoothed_variance_;
  if (p_loss >= 1.0) {
    raise_risk(RiskReason::kInfeasible, /*backoff=*/true);
    return;
  }

  // Configure the candidate target with headroom on the recurrence bound,
  // so the running parameters sit comfortably inside the requirement
  // rather than exactly on its edge.
  core::RelativeRequirements padded = options_.requirements;
  padded.mistake_recurrence_lower =
      padded.mistake_recurrence_lower * options_.recurrence_safety_factor;
  auto outcome = core::configure_nfd_u(padded, p_loss, variance);
  if (!outcome.achievable()) {
    // Fall back to the unpadded requirement before declaring risk.
    outcome = core::configure_nfd_u(options_.requirements, p_loss, variance);
  }
  if (!outcome.achievable()) {
    raise_risk(RiskReason::kInfeasible, /*backoff=*/true);
    return;
  }
  qos_at_risk_ = false;
  risk_reason_ = RiskReason::kNone;
  backoff_ = 1.0;

  const core::NfdUParams target = *outcome.params;
  const double eta_now = detector_.params().eta.seconds();

  // Prefer keeping the current sending rate (no epoch reset): re-derive
  // alpha from the detection budget at the CURRENT eta and re-check the
  // Theorem 11 bounds against the current estimates.  A full rebase (rate
  // renegotiation with p) happens only when the kept parameters are no
  // longer provably sufficient, or when the achievable eta is enough
  // larger that the bandwidth saving justifies the reset.
  const Duration kept_alpha =
      options_.requirements.detection_time_upper_rel - detector_.params().eta;
  bool keep_ok = false;
  if (kept_alpha > Duration::zero()) {
    const core::NfdUParams kept{detector_.params().eta, kept_alpha};
    const auto b = core::nfd_u_bounds(kept, p_loss, variance);
    keep_ok = b.mistake_recurrence_lower >=
                  options_.requirements.mistake_recurrence_lower &&
              b.mistake_duration_upper <=
                  options_.requirements.mistake_duration_upper;
    if (keep_ok &&
        target.eta.seconds() <= eta_now * (1.0 + options_.eta_hysteresis)) {
      detector_.set_params(kept);
      return;
    }
  }

  // Renegotiate the heartbeat rate: the p-side agent switches to the new
  // eta, and the q-side detector rebases its estimation epoch at the first
  // sequence number sent under the new rate.
  sender_.set_eta(target.eta);
  detector_.rebase(target, sender_.next_seq());
  ++reconfigs_;
}

}  // namespace chenfd::service
