#include "service/supervisor.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "core/config.hpp"

namespace chenfd::service {

MonitorSupervisor::MonitorSupervisor(sim::Simulator& simulator,
                                     const clk::Clock& q_clock,
                                     core::HeartbeatSender& sender,
                                     persist::SnapshotStore& store,
                                     Options options)
    : sim_(simulator),
      q_clock_(q_clock),
      sender_(sender),
      store_(store),
      options_(std::move(options)) {
  expects(options_.snapshot_interval > Duration::zero(),
          "MonitorSupervisor: snapshot interval must be positive");
  expects(options_.max_snapshot_age > Duration::zero(),
          "MonitorSupervisor: max snapshot age must be positive");
  expects(options_.cold_loss_assumption >= 0.0 &&
              options_.cold_loss_assumption < 1.0,
          "MonitorSupervisor: cold loss assumption must be in [0, 1)");
  expects(options_.cold_variance_assumption >= 0.0,
          "MonitorSupervisor: cold variance assumption must be >= 0");
  // Registry mutations reconfigure the live monitor immediately; while the
  // monitor is down the merged requirement is picked up at restart.
  registry_.set_merged_listener(
      [this](const std::optional<core::RelativeRequirements>& merged) {
        if (monitor_ && merged) monitor_->update_requirements(*merged);
      });
}

std::unique_ptr<AdaptiveMonitor> MonitorSupervisor::make_monitor(
    const AdaptiveMonitor::Options& options) {
  auto monitor =
      std::make_unique<AdaptiveMonitor>(sim_, q_clock_, sender_, options);
  monitor->add_listener(
      [this](const Transition& t) { set_output(t.at, t.to); });
  return monitor;
}

void MonitorSupervisor::activate() {
  expects(!started_, "MonitorSupervisor::activate: already started");
  started_ = true;
  AdaptiveMonitor::Options opts = options_.monitor;
  if (const auto merged = registry_.merged()) opts.requirements = *merged;
  monitor_ = make_monitor(opts);
  monitor_->activate();
  arm_snapshot_timer();
}

void MonitorSupervisor::on_heartbeat(const net::Message& m,
                                     TimePoint real_now) {
  if (monitor_) monitor_->on_heartbeat(m, real_now);
}

void MonitorSupervisor::arm_snapshot_timer() {
  snapshot_timer_ =
      sim_.after(options_.snapshot_interval, [this] { take_snapshot(); });
}

void MonitorSupervisor::take_snapshot() {
  if (monitor_) {
    persist::MonitorSnapshot snap = monitor_->snapshot();
    snap.next_app_id = registry_.next_id();
    for (const auto& [id, req] : registry_.entries()) {
      snap.apps.push_back(persist::AppRequirement{
          id, req.detection_time_upper_rel.seconds(),
          req.mistake_recurrence_lower.seconds(),
          req.mistake_duration_upper.seconds()});
    }
    if (election_exporter_) {
      snap.has_election = true;
      snap.election = election_exporter_();
    }
    if (fleet_exporter_) {
      snap.has_fleet = true;
      snap.fleet = fleet_exporter_();
    }
    store_.save(persist::to_string(snap), q_clock_.local(sim_.now()));
    ++snapshots_taken_;
  }
  arm_snapshot_timer();
}

void MonitorSupervisor::set_election_hooks(ElectionExporter exporter,
                                           ElectionRestorer restorer) {
  expects(exporter != nullptr && restorer != nullptr,
          "MonitorSupervisor::set_election_hooks: hooks must be non-null");
  election_exporter_ = std::move(exporter);
  election_restorer_ = std::move(restorer);
}

void MonitorSupervisor::set_fleet_hooks(FleetExporter exporter,
                                        FleetRestorer restorer) {
  expects(exporter != nullptr && restorer != nullptr,
          "MonitorSupervisor::set_fleet_hooks: hooks must be non-null");
  fleet_exporter_ = std::move(exporter);
  fleet_restorer_ = std::move(restorer);
}

AppId MonitorSupervisor::register_app(const core::RelativeRequirements& req) {
  // The registry's merged-listener pushes the new demand set into the live
  // monitor; while the monitor is down it is picked up at restart.
  return registry_.add(req);
}

bool MonitorSupervisor::update_app(AppId id,
                                   const core::RelativeRequirements& req) {
  return registry_.update(id, req);
}

bool MonitorSupervisor::deregister_app(AppId id) {
  return registry_.remove(id);
}

void MonitorSupervisor::crash_monitor() {
  expects(monitor_ != nullptr,
          "MonitorSupervisor::crash_monitor: monitor already down");
  // stop() cancels every timer the incarnation owns; destroying it then
  // takes the detector window, estimator components and risk latches with
  // it.  Only the snapshot store outlives the crash.
  monitor_->stop();
  monitor_.reset();
  set_output(q_clock_.local(sim_.now()), Verdict::kSuspect);
}

void MonitorSupervisor::restart_monitor() {
  expects(monitor_ == nullptr,
          "MonitorSupervisor::restart_monitor: monitor still up");
  const TimePoint local_now = q_clock_.local(sim_.now());

  if (options_.policy == RestartPolicy::kColdAlways) {
    last_restart_detail_ = "cold: policy forbids warm restarts";
    cold_restart();
    return;
  }
  const std::optional<persist::StoredSnapshot> stored = store_.load();
  if (!stored) {
    last_restart_detail_ = "cold: no snapshot in stable storage";
    cold_restart();
    return;
  }
  persist::MonitorSnapshot snap;
  try {
    snap = persist::from_string(stored->bytes);
  } catch (const persist::SnapshotError& e) {
    ++snapshot_rejects_;
    last_restart_detail_ = std::string("cold: ") + e.what();
    cold_restart();
    return;
  }
  // Staleness is judged from the *store's* save stamp, not the payload's
  // self-reported taken_at_s: the injected clock is the only authority on
  // q-local time, and a forged/replayed payload must not be able to claim
  // freshness the store never witnessed.  The content timestamp is still
  // rejected when it sits in the future — that is structural nonsense no
  // matter how recent the save was.
  const double age_s = (local_now - stored->saved_at).seconds();
  if (local_now.seconds() - snap.taken_at_s < 0.0 || age_s < 0.0 ||
      age_s > options_.max_snapshot_age.seconds()) {
    ++snapshot_rejects_;
    std::ostringstream os;
    os << "cold: snapshot stale (age " << age_s << "s, max "
       << options_.max_snapshot_age.seconds() << "s)";
    last_restart_detail_ = os.str();
    cold_restart();
    return;
  }
  std::ostringstream os;
  os << "warm: snapshot age " << age_s << "s";
  last_restart_detail_ = os.str();
  warm_restart(snap, local_now);
}

void MonitorSupervisor::warm_restart(const persist::MonitorSnapshot& snap,
                                     TimePoint local_now) {
  // The snapshot's demand set replaces the registry: handles issued before
  // the crash stay valid after it.
  std::map<AppId, core::RelativeRequirements> entries;
  for (const persist::AppRequirement& a : snap.apps) {
    entries.emplace(a.id, core::RelativeRequirements{
                              seconds(a.detection_time_upper_rel_s),
                              seconds(a.mistake_recurrence_lower_s),
                              seconds(a.mistake_duration_upper_s)});
  }
  registry_.restore(snap.next_app_id, entries);

  monitor_ = make_monitor(options_.monitor);
  monitor_->restore_from(snap, seconds(local_now.seconds() - snap.taken_at_s));
  monitor_->activate();
  ++warm_restarts_;
  if (election_restorer_) {
    // A warm monitor restart only revives the election latch when the
    // snapshot actually carries one; an election-less snapshot (hooks
    // attached after the last snapshot cycle) demotes to follower.
    if (snap.has_election) {
      election_restorer_(snap.election, true);
    } else {
      election_restorer_(std::nullopt, false);
    }
  }
  if (fleet_restorer_) {
    // Same rule for the fleet engine: a fleet-less snapshot means the
    // hooks were attached after the last snapshot cycle, so the engine
    // gets the cold-style reset.
    if (snap.has_fleet) {
      fleet_restorer_(snap.fleet, true);
    } else {
      fleet_restorer_(std::nullopt, false);
    }
  }
}

void MonitorSupervisor::cold_restart() {
  AdaptiveMonitor::Options opts = options_.monitor;
  if (const auto merged = registry_.merged()) opts.requirements = *merged;

  monitor_ = make_monitor(opts);
  // Conservative parameters: run the Section 6 procedure against the
  // pessimistic assumptions, so the Theorems 9-11 bounds cover a network
  // worse than the one last observed.  If even those are infeasible the
  // template's initial parameters stand — the kPostDisruption latch below
  // tells applications either way that nothing is validated yet.
  const auto outcome = core::configure_nfd_u(opts.requirements,
                                             options_.cold_loss_assumption,
                                             options_.cold_variance_assumption);
  if (outcome.achievable()) monitor_->adopt_params(*outcome.params);
  monitor_->latch_risk(AdaptiveMonitor::RiskReason::kPostDisruption);
  monitor_->activate();
  ++cold_restarts_;
  if (election_restorer_) election_restorer_(std::nullopt, false);
  if (fleet_restorer_) fleet_restorer_(std::nullopt, false);
}

}  // namespace chenfd::service
