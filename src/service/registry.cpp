#include "service/registry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chenfd::service {

AppId RequirementRegistry::add(const qos::Requirements& req) {
  expects(req.valid(), "RequirementRegistry::add: invalid requirements");
  const AppId id = next_id_++;
  apps_.emplace(id, req);
  return id;
}

bool RequirementRegistry::remove(AppId id) { return apps_.erase(id) > 0; }

std::optional<qos::Requirements> RequirementRegistry::merged() const {
  if (apps_.empty()) return std::nullopt;
  qos::Requirements out = apps_.begin()->second;
  for (const auto& [id, req] : apps_) {
    out.detection_time_upper =
        std::min(out.detection_time_upper, req.detection_time_upper);
    out.mistake_recurrence_lower =
        std::max(out.mistake_recurrence_lower, req.mistake_recurrence_lower);
    out.mistake_duration_upper =
        std::min(out.mistake_duration_upper, req.mistake_duration_upper);
  }
  return out;
}

AppId RelativeRequirementRegistry::add(const core::RelativeRequirements& req) {
  expects(req.valid(),
          "RelativeRequirementRegistry::add: invalid requirements");
  const AppId id = next_id_++;
  apps_.emplace(id, req);
  return id;
}

bool RelativeRequirementRegistry::remove(AppId id) {
  return apps_.erase(id) > 0;
}

std::optional<core::RelativeRequirements> RelativeRequirementRegistry::merged()
    const {
  if (apps_.empty()) return std::nullopt;
  core::RelativeRequirements out = apps_.begin()->second;
  for (const auto& [id, req] : apps_) {
    out.detection_time_upper_rel = std::min(out.detection_time_upper_rel,
                                            req.detection_time_upper_rel);
    out.mistake_recurrence_lower =
        std::max(out.mistake_recurrence_lower, req.mistake_recurrence_lower);
    out.mistake_duration_upper =
        std::min(out.mistake_duration_upper, req.mistake_duration_upper);
  }
  return out;
}

}  // namespace chenfd::service
