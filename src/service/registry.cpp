#include "service/registry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chenfd::service {

AppId RequirementRegistry::add(const qos::Requirements& req) {
  expects(req.valid(), "RequirementRegistry::add: invalid requirements");
  const AppId id = next_id_++;
  apps_.emplace(id, req);
  notify();
  return id;
}

bool RequirementRegistry::update(AppId id, const qos::Requirements& req) {
  expects(req.valid(), "RequirementRegistry::update: invalid requirements");
  const auto it = apps_.find(id);
  if (it == apps_.end()) return false;
  it->second = req;
  notify();
  return true;
}

// detlint: allow(R4) total over all ids; removing an absent id returns false
bool RequirementRegistry::remove(AppId id) {
  if (apps_.erase(id) == 0) return false;
  notify();
  return true;
}

std::optional<qos::Requirements> RequirementRegistry::merged() const {
  if (apps_.empty()) return std::nullopt;
  qos::Requirements out = apps_.begin()->second;
  for (const auto& [id, req] : apps_) {
    out.detection_time_upper =
        std::min(out.detection_time_upper, req.detection_time_upper);
    out.mistake_recurrence_lower =
        std::max(out.mistake_recurrence_lower, req.mistake_recurrence_lower);
    out.mistake_duration_upper =
        std::min(out.mistake_duration_upper, req.mistake_duration_upper);
  }
  return out;
}

void RequirementRegistry::notify() const {
  if (listener_) listener_(merged());
}

AppId RelativeRequirementRegistry::add(const core::RelativeRequirements& req) {
  expects(req.valid(),
          "RelativeRequirementRegistry::add: invalid requirements");
  const AppId id = next_id_++;
  apps_.emplace(id, req);
  notify();
  return id;
}

bool RelativeRequirementRegistry::update(AppId id,
                                         const core::RelativeRequirements& req) {
  expects(req.valid(),
          "RelativeRequirementRegistry::update: invalid requirements");
  const auto it = apps_.find(id);
  if (it == apps_.end()) return false;
  it->second = req;
  notify();
  return true;
}

// detlint: allow(R4) total over all ids; removing an absent id returns false
bool RelativeRequirementRegistry::remove(AppId id) {
  if (apps_.erase(id) == 0) return false;
  notify();
  return true;
}

std::optional<core::RelativeRequirements> RelativeRequirementRegistry::merged()
    const {
  if (apps_.empty()) return std::nullopt;
  core::RelativeRequirements out = apps_.begin()->second;
  for (const auto& [id, req] : apps_) {
    out.detection_time_upper_rel = std::min(out.detection_time_upper_rel,
                                            req.detection_time_upper_rel);
    out.mistake_recurrence_lower =
        std::max(out.mistake_recurrence_lower, req.mistake_recurrence_lower);
    out.mistake_duration_upper =
        std::min(out.mistake_duration_upper, req.mistake_duration_upper);
  }
  return out;
}

void RelativeRequirementRegistry::restore(
    AppId next_id,
    const std::map<AppId, core::RelativeRequirements>& entries) {
  for (const auto& [id, req] : entries) {
    expects(id < next_id,
            "RelativeRequirementRegistry::restore: handle >= next id");
    expects(req.valid(),
            "RelativeRequirementRegistry::restore: invalid requirements");
  }
  apps_ = entries;
  next_id_ = next_id;
}

void RelativeRequirementRegistry::notify() const {
  if (listener_) listener_(merged());
}

}  // namespace chenfd::service
