// The adaptive failure detection service (Section 8.1).
//
// Periodically re-executes the Fig. 11 configuration pipeline:
//
//   estimator  --(p_L, V(D), EAs)-->  configurator  --(eta, alpha)-->  NFD-E
//
// The estimator watches the live heartbeat stream (optionally with the
// two-component short/long-window scheme of Section 8.1.2 for bursty
// networks).  At each reconfiguration interval the service re-runs the
// Section 6 configuration procedure against the *current* estimates; when
// the result differs enough from the running parameters it renegotiates the
// heartbeat rate with the sender (set_eta) and rebases the detector's
// estimation epoch.  The control channel between the service's q-side and
// p-side agents is modeled as instantaneous — a deliberate substitution
// (see DESIGN.md): the paper's service architecture [15] co-locates agents
// with both processes, and control traffic is orders of magnitude rarer
// than heartbeats.
//
// If the current estimates make the registered QoS unachievable (Theorem 12
// case 2), the service keeps its previous parameters and raises the
// qos_at_risk flag for applications to inspect.
//
// Graceful degradation under faults (beyond the paper's failure-free
// model; see DESIGN.md section 8): the service survives partitions,
// crash-recovery of p, and delay/loss regime shifts without poisoning its
// estimators.
//
//   - Discontinuity epoch reset.  A heartbeat arriving after a silence
//     longer than silence_factor * eta means the stream was interrupted
//     (partition, crash-recovery): the sliding estimates and the
//     detector's Eq. 6.3 window mix incompatible regimes, so both are
//     reset and estimation restarts from the resuming heartbeat.
//   - qos_at_risk is latched with a reason code: it stays raised from the
//     moment a disruption (or an infeasible target) is detected until a
//     reconfiguration round succeeds against post-disruption estimates.
//     During an ongoing silence the estimates are stale, so the round
//     only flags the risk and leaves the running parameters alone.
//   - Bounded backoff.  While targets are infeasible the reconfiguration
//     interval doubles per failed round up to max_backoff_factor, so a
//     degraded network is not hammered with doomed renegotiations; the
//     first success resets the interval.

#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "clock/clock.hpp"
#include "core/config.hpp"
#include "core/estimators.hpp"
#include "core/heartbeat_sender.hpp"
#include "core/nfd_e.hpp"
#include "persist/snapshot.hpp"
#include "sim/simulator.hpp"

namespace chenfd::service {

class AdaptiveMonitor final : public core::FailureDetector {
 public:
  struct Options {
    core::RelativeRequirements requirements;  ///< QoS target (Section 6 form)
    core::NfdEParams initial;                 ///< parameters before estimates exist
    Duration reconfig_interval = seconds(60.0);
    std::size_t short_window = 16;   ///< two-component short term
    std::size_t long_window = 256;   ///< two-component long term
    bool use_two_component = true;   ///< false: long window only
    /// Re-parameterize only when eta changes by more than this relative
    /// amount (avoids needless epoch resets from estimation noise).
    double eta_hysteresis = 0.25;
    /// Exponential smoothing factor applied to the (p_L, V(D)) estimates
    /// across reconfiguration rounds (1 = use raw estimates).  Smoothing
    /// keeps single-window noise from flapping the heartbeat rate.
    double estimate_smoothing = 0.3;
    /// When computing a new target, the mistake-recurrence requirement is
    /// inflated by this factor.  The Section 6 procedure otherwise lands
    /// exactly on the requirement edge, where any estimate noise would
    /// flip feasibility and flap the rate; headroom buys stability at a
    /// small bandwidth cost.
    double recurrence_safety_factor = 2.0;
    /// Discontinuity detector: a gap between consecutive arrivals longer
    /// than silence_factor * eta (current detector eta) is treated as a
    /// network disruption and triggers the epoch reset described in the
    /// file comment.  At p_L = 0.5 a false trigger needs 8 consecutive
    /// losses (p ~ 0.4%); a false reset costs one window refill, nothing
    /// more.  0 disables the detector.
    double silence_factor = 8.0;
    /// Cap on the reconfiguration-interval backoff multiplier applied
    /// while targets are infeasible.
    double max_backoff_factor = 8.0;
  };

  /// Why qos_at_risk() is raised.
  enum class RiskReason {
    kNone,              ///< not at risk
    kInfeasible,        ///< Theorem 12 case 2 under current estimates
    kEstimatesUnusable, ///< non-finite / out-of-domain estimates
    kSilence,           ///< no heartbeat for longer than the silence bound
    kPostDisruption,    ///< epoch reset done, QoS not yet revalidated
    kWarmRestart,       ///< rehydrated from a snapshot, not yet revalidated
  };

  AdaptiveMonitor(sim::Simulator& simulator, const clk::Clock& q_clock,
                  core::HeartbeatSender& sender, Options options);

  /// Arms the service: activates the inner detector, seeds the silence
  /// detector at the current instant and schedules the first
  /// reconfiguration round.  Lifecycle contract: activate() on an already
  /// active service is a precondition violation; activate() after stop()
  /// cleanly re-arms both the reconfiguration timer and the silence
  /// detector (the supervisor's restart path relies on this).
  void activate() override;
  void on_heartbeat(const net::Message& m, TimePoint real_now) override;
  /// Quiesces the service: cancels the reconfiguration timer and stops the
  /// inner detector.  Idempotent; reversible via activate().
  void stop();

  /// Replaces the QoS target (e.g. when the application registry changes);
  /// takes effect at the next reconfiguration.
  void update_requirements(const core::RelativeRequirements& req);

  /// Latches qos_at_risk with `reason` (!= kNone) without touching the
  /// running parameters.  The supervisor uses it to mark a cold-restarted
  /// monitor as unvalidated; the latch clears on the next successful
  /// reconfiguration round, like every other risk reason.
  void latch_risk(RiskReason reason);

  /// Captures the full monitor-side state (DESIGN.md section 9): detector
  /// window and epoch, both estimator components, smoothed configuration
  /// inputs, risk latches and counters.  The registry fields of the
  /// returned snapshot are left empty — the supervisor owns the
  /// application registry and fills them in before persisting.
  [[nodiscard]] persist::MonitorSnapshot snapshot() const;

  /// Cold restart: adopts `params` as the running configuration by
  /// renegotiating the heartbeat rate with the sender and rebasing the
  /// detector's estimation epoch at the next sequence number — the same
  /// two-sided step a reconfiguration round performs, but driven by the
  /// supervisor's conservative Chebyshev-bound choice instead of live
  /// estimates.  Call before activate().
  void adopt_params(core::NfdUParams params);

  /// Warm restart: rehydrates the state captured by snapshot() into this
  /// (not yet activated) service.  `gap` is the q-local time elapsed since
  /// the snapshot was taken; the estimator windows are slid forward by
  /// round(gap / eta) sequence numbers so the heartbeats p sent while the
  /// monitor was down are forgiven rather than booked as losses (the same
  /// normalization shift the crash-recovery epoch rebase applies).  The
  /// restored service latches qos_at_risk with kWarmRestart; the latch can
  /// only clear after at least one post-restore heartbeat has been
  /// observed and a reconfiguration round then succeeds.
  void restore_from(const persist::MonitorSnapshot& snap, Duration gap);

  [[nodiscard]] core::NfdUParams current_params() const {
    return detector_.params();
  }
  /// True while the registered QoS is not validated against current
  /// network estimates — because the last reconfiguration found the target
  /// unachievable, or because a disruption was detected and no round has
  /// succeeded since.  Latched; cleared only by a successful round.
  [[nodiscard]] bool qos_at_risk() const { return qos_at_risk_; }
  [[nodiscard]] RiskReason risk_reason() const { return risk_reason_; }
  [[nodiscard]] std::size_t reconfigurations() const { return reconfigs_; }
  /// Discontinuity epoch resets performed (see file comment).
  [[nodiscard]] std::size_t epoch_resets() const { return epoch_resets_; }
  /// Current reconfiguration-interval backoff multiplier (1 = no backoff).
  [[nodiscard]] double backoff_factor() const { return backoff_; }
  /// Current detection-time bound *relative to E(D)* (Section 6.2):
  /// T_D <= this + E(D).  With unsynchronized clocks the absolute E(D) is
  /// unknowable from one-way messages — the arrival-minus-timestamp mean
  /// absorbs the clock skew — so only the relative bound is reportable.
  [[nodiscard]] Duration relative_detection_bound() const {
    return detector_.params().eta + detector_.params().alpha;
  }

  [[nodiscard]] const core::TwoComponentEstimator& estimator() const {
    return estimator_;
  }

 private:
  void reconfigure();
  void reconfigure_round();
  void on_discontinuity(net::SeqNo seq);
  void raise_risk(RiskReason reason, bool backoff);
  [[nodiscard]] Duration silence_bound() const {
    return detector_.params().eta * options_.silence_factor;
  }

  sim::Simulator& sim_;
  const clk::Clock& q_clock_;
  core::HeartbeatSender& sender_;
  Options options_;
  core::NfdE detector_;
  core::TwoComponentEstimator estimator_;
  bool qos_at_risk_ = false;
  RiskReason risk_reason_ = RiskReason::kNone;
  std::size_t reconfigs_ = 0;
  std::size_t epoch_resets_ = 0;
  double backoff_ = 1.0;
  sim::EventId timer_ = 0;
  bool active_ = false;
  // Local arrival time of the newest heartbeat (empty before the first);
  // activation time seeds the silence detector for a blackout-from-start.
  std::optional<TimePoint> last_arrival_local_;
  TimePoint activated_local_{};
  // EWMA state for the configuration inputs (negative = not primed yet).
  double smoothed_loss_ = -1.0;
  double smoothed_variance_ = -1.0;
};

/// Stable wire names for RiskReason, used by the snapshot format (v1).
[[nodiscard]] const char* to_string(AdaptiveMonitor::RiskReason reason);
/// Inverse of to_string; returns nullopt for unknown words.
[[nodiscard]] std::optional<AdaptiveMonitor::RiskReason>
risk_reason_from_string(const std::string& word);

}  // namespace chenfd::service
