// Multi-application QoS demand registry (Section 8.1.1).
//
// The failure detection service of the paper "is intended to be shared
// among many different concurrent applications, each with a different set
// of QoS requirements", adapting "to changes in the current set of QoS
// demands (as new applications are started and old ones terminate)".
//
// Merging rule: the service must satisfy every registered application, so
// the merged requirement takes the tightest bound of each component —
// the minimum detection-time bound, the maximum mistake-recurrence lower
// bound, and the minimum mistake-duration upper bound.
//
// Every mutation (add / update / remove) re-merges and notifies the
// registered listener, so a monitor wired to the registry is reconfigured
// the moment the demand set changes rather than at its own polling cadence.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "core/config.hpp"
#include "qos/metrics.hpp"

namespace chenfd::service {

using AppId = std::uint64_t;

/// Registry for absolute requirements (synchronized clocks, Section 4/5).
class RequirementRegistry {
 public:
  /// Called with the new merged requirement after every mutation (nullopt
  /// when the last application deregistered).
  using MergedListener =
      std::function<void(const std::optional<qos::Requirements>&)>;

  /// Registers an application's demands; returns its handle.
  AppId add(const qos::Requirements& req);

  /// Replaces a registered application's demands in place (the paper's
  /// "changes in the current set of QoS demands" also covers an existing
  /// application renegotiating).  Returns false if the handle is unknown.
  bool update(AppId id, const qos::Requirements& req);

  /// Deregisters an application; returns false if the handle is unknown.
  bool remove(AppId id);

  [[nodiscard]] std::size_t size() const { return apps_.size(); }

  /// The merged (tightest) requirement, or nullopt when no application is
  /// registered.
  [[nodiscard]] std::optional<qos::Requirements> merged() const;

  /// Installs the single mutation listener (replacing any previous one).
  void set_merged_listener(MergedListener listener) {
    listener_ = std::move(listener);
  }

 private:
  void notify() const;

  std::map<AppId, qos::Requirements> apps_;
  AppId next_id_ = 1;
  MergedListener listener_;
};

/// Registry for relative requirements (unsynchronized clocks, Section 6).
class RelativeRequirementRegistry {
 public:
  using MergedListener =
      std::function<void(const std::optional<core::RelativeRequirements>&)>;

  AppId add(const core::RelativeRequirements& req);
  /// See RequirementRegistry::update.
  bool update(AppId id, const core::RelativeRequirements& req);
  bool remove(AppId id);
  [[nodiscard]] std::size_t size() const { return apps_.size(); }
  [[nodiscard]] std::optional<core::RelativeRequirements> merged() const;
  void set_merged_listener(MergedListener listener) {
    listener_ = std::move(listener);
  }

  /// The registered demands by handle (monitor snapshots serialize these).
  [[nodiscard]] const std::map<AppId, core::RelativeRequirements>& entries()
      const {
    return apps_;
  }
  [[nodiscard]] AppId next_id() const { return next_id_; }

  /// Replaces the whole registry from a snapshot (supervised warm restart).
  /// Handles must be < `next_id`; the listener is NOT notified — the
  /// restore path configures the monitor from the snapshot directly.
  void restore(AppId next_id,
               const std::map<AppId, core::RelativeRequirements>& entries);

 private:
  void notify() const;

  std::map<AppId, core::RelativeRequirements> apps_;
  AppId next_id_ = 1;
  MergedListener listener_;
};

}  // namespace chenfd::service
