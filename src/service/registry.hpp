// Multi-application QoS demand registry (Section 8.1.1).
//
// The failure detection service of the paper "is intended to be shared
// among many different concurrent applications, each with a different set
// of QoS requirements", adapting "to changes in the current set of QoS
// demands (as new applications are started and old ones terminate)".
//
// Merging rule: the service must satisfy every registered application, so
// the merged requirement takes the tightest bound of each component —
// the minimum detection-time bound, the maximum mistake-recurrence lower
// bound, and the minimum mistake-duration upper bound.

#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/config.hpp"
#include "qos/metrics.hpp"

namespace chenfd::service {

using AppId = std::uint64_t;

/// Registry for absolute requirements (synchronized clocks, Section 4/5).
class RequirementRegistry {
 public:
  /// Registers an application's demands; returns its handle.
  AppId add(const qos::Requirements& req);

  /// Deregisters an application; returns false if the handle is unknown.
  bool remove(AppId id);

  [[nodiscard]] std::size_t size() const { return apps_.size(); }

  /// The merged (tightest) requirement, or nullopt when no application is
  /// registered.
  [[nodiscard]] std::optional<qos::Requirements> merged() const;

 private:
  std::map<AppId, qos::Requirements> apps_;
  AppId next_id_ = 1;
};

/// Registry for relative requirements (unsynchronized clocks, Section 6).
class RelativeRequirementRegistry {
 public:
  AppId add(const core::RelativeRequirements& req);
  bool remove(AppId id);
  [[nodiscard]] std::size_t size() const { return apps_.size(); }
  [[nodiscard]] std::optional<core::RelativeRequirements> merged() const;

 private:
  std::map<AppId, core::RelativeRequirements> apps_;
  AppId next_id_ = 1;
};

}  // namespace chenfd::service
