// Deterministic replay harness for the realtime front-end (DESIGN.md
// section 14).
//
// A ReplayScenario is a complete description of an overload/fault episode:
// engine options, a synthetic heartbeat workload (every process sends
// seq 1, 2, ... on a fixed interval with a per-process phase), the
// consumer and watchdog cadences, and a fault::FaultPlan whose window
// queries provide the ground truth — duplication_burst() windows are
// heartbeat storms (every send doubled), consumer_stall() windows freeze
// one shard's consumer, monitor_crash()/monitor_restart() windows take
// every consumer down and drive the watchdog's bounded-backoff restart
// path.
//
// run_replay() executes the scenario single-threaded against a
// VirtualTimeSource: events are totally ordered by (time, kind-priority,
// process, seq) with heartbeats before consumer ticks before watchdog
// ticks at equal times, so the run is a pure function of the scenario.
//
// Determinism contract (pinned by tests/test_realtime.cpp and the CI
// replay smoke): the canonical payload — transition stream, per-shard
// counters, latched risk — is byte-identical across every ReplayKnobs
// setting.  Knobs are the *unobservable* half of the configuration:
// consumer grouping (which virtual consumer drains which shard), physical
// ring capacity, and drain chunk size.  The logical queue_capacity and the
// shedding policy are part of the scenario: shedding decisions depend on
// them by design.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fleet/types.hpp"
#include "service/realtime/engine.hpp"

namespace chenfd::rt {

struct ReplayScenario {
  std::string name;
  RealtimeOptions engine;
  Duration send_interval;  ///< per-process heartbeat period
  TimePoint horizon;
  Duration consumer_period;
  Duration watchdog_period;
  fault::FaultPlan faults;

  // Oracle expectations checked by replay_smoke().
  RiskReason expect_reason = RiskReason::kNone;
  bool expect_shed = false;
  std::uint64_t min_restarts = 0;
  std::uint64_t max_restarts = 0;

  void validate() const;
};

/// The unobservable knobs: replay output must not depend on any of these.
struct ReplayKnobs {
  std::size_t consumer_groups = 1;  ///< virtual consumers (shard s -> s % n)
  std::size_t ring_capacity = 0;    ///< physical ring override (0 = scenario)
  std::size_t drain_chunk = 64;
};

struct ReplayResult {
  std::string payload;  ///< canonical text: transitions, counters, risk
  std::uint32_t crc = 0;
  std::vector<fleet::Transition> transitions;
  std::vector<ShardCounters> shards;
  ShardCounters totals;
  bool qos_at_risk = false;
  RiskReason reason = RiskReason::kNone;
};

/// Runs `scenario` to its horizon in virtual time (including a quiescent
/// final drain and an exact close, so the counter identity
/// produced == accepted + shed holds on the result).
[[nodiscard]] ReplayResult run_replay(const ReplayScenario& scenario,
                                      const ReplayKnobs& knobs = {});

/// The canonical chaos scenarios: sustained 2x overload with a storm
/// (drop-newest), a stalled consumer (drop-oldest), a monitor crash
/// driving repeated backoff restarts, and degrade-eta thinning.
[[nodiscard]] std::vector<ReplayScenario> smoke_scenarios();

/// Runs every smoke scenario across a grid of knob settings, checking
/// byte-identity of the payload plus the per-scenario oracles (counter
/// identity, expected risk reason, shed presence, restart bounds).
/// Diagnostics go to `diag`; returns true when everything held.
[[nodiscard]] bool replay_smoke(std::ostream& diag);

}  // namespace chenfd::rt
