#include "service/realtime/monotonic_clock.hpp"

#include <chrono>
#include <thread>

namespace chenfd::rt {

namespace {

[[nodiscard]] double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MonotonicClock::MonotonicClock()
    : epoch_s_(std::chrono::duration<double>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count()),
      origin_s_(steady_seconds()) {}

TimePoint MonotonicClock::now() const {
  return TimePoint(epoch_s_ + (steady_seconds() - origin_s_));
}

void MonotonicClock::sleep_for(Duration d) const {
  if (d <= Duration::zero()) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(d.seconds()));
}

}  // namespace chenfd::rt
