// Time injection for the real-time daemon path (DESIGN.md section 14).
//
// Everything in src/service/realtime/ asks *one* object what time it is: a
// TimeSource, which extends the paper's clk::Clock mapping with a now()
// query and a cooperative sleep.  Two implementations exist:
//
//   - MonotonicClock (monotonic_clock.hpp): the only wall-clock source in
//     the tree (detlint R1 allow-list is confined to that one file), used
//     by chenfd_rtd and the throughput bench;
//   - VirtualTimeSource (below): a manually advanced clock for the replay
//     harness and tests, so every overload/stall/restart path the daemon
//     has is drivable in deterministic virtual time under ctest and TSan.
//
// The engine never calls std::chrono directly; swapping the source is the
// whole difference between a bit-reproducible replay and a live daemon.

#pragma once

#include <atomic>
#include <thread>

#include "clock/clock.hpp"
#include "common/check.hpp"
#include "common/time.hpp"

namespace chenfd::rt {

/// A clk::Clock that also knows the current instant and can block a caller
/// until (approximately) a later one.  now() must be monotone
/// non-decreasing across calls — consumers stamp arrivals with it and the
/// fleet engine requires time to move forward.
class TimeSource : public clk::Clock {
 public:
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Blocks the calling thread for roughly `d` (a scheduling hint, not a
  /// precision timer).  Virtual implementations may return immediately.
  virtual void sleep_for(Duration d) const = 0;
};

/// Deterministic replay time: a thread-safe instant that only moves when
/// the harness advances it.  local()/real() are the identity mapping — the
/// replay harness works directly in q-local seconds; fault-plan clock
/// jumps are applied to the heartbeat timestamps it feeds in, not here.
class VirtualTimeSource final : public TimeSource {
 public:
  explicit VirtualTimeSource(TimePoint start = TimePoint::zero())
      : now_s_(start.seconds()) {
    expects(start >= TimePoint::zero(),
            "VirtualTimeSource: start must be >= 0");
  }

  [[nodiscard]] TimePoint now() const override {
    return TimePoint(now_s_.load(std::memory_order_acquire));
  }

  /// Moves virtual time forward to `to`.  Monotone: moving backwards is a
  /// harness bug, not a scenario feature (fault-plan clock jumps model
  /// *local* clock steps; the replay timeline itself only advances).
  void advance(TimePoint to) {
    expects(to.seconds() >= now_s_.load(std::memory_order_acquire),
            "VirtualTimeSource::advance: time must not move backwards");
    now_s_.store(to.seconds(), std::memory_order_release);
  }

  /// Virtual sleep: yield once so a live thread spinning on virtual time
  /// makes no progress claim but also never deadlocks the advancing thread.
  void sleep_for(Duration /*d*/) const override { std::this_thread::yield(); }

  [[nodiscard]] TimePoint local(TimePoint real) const override {
    return real;
  }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return local_time;
  }

 private:
  std::atomic<double> now_s_;
};

}  // namespace chenfd::rt
