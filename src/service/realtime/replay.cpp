#include "service/realtime/replay.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/verdict.hpp"
#include "persist/crc32.hpp"
#include "service/realtime/time_source.hpp"

namespace chenfd::rt {

void ReplayScenario::validate() const {
  expects(!name.empty(), "ReplayScenario: name must be non-empty");
  engine.validate();
  expects(send_interval > Duration::zero(),
          "ReplayScenario: send_interval must be > 0");
  expects(horizon > TimePoint::zero(), "ReplayScenario: horizon must be > 0");
  expects(!horizon.is_infinite(), "ReplayScenario: horizon must be finite");
  expects(consumer_period > Duration::zero(),
          "ReplayScenario: consumer_period must be > 0");
  expects(watchdog_period > Duration::zero(),
          "ReplayScenario: watchdog_period must be > 0");
}

namespace {

/// Event priorities at equal times: heartbeats land before the consumer
/// drains, and the watchdog judges the post-drain state.
enum : int { kHeartbeat = 0, kConsumerTick = 1, kWatchdogTick = 2 };

struct Event {
  double t = 0.0;
  int priority = kHeartbeat;
  fleet::ProcessIndex process = 0;
  std::uint64_t seq = 0;
};

[[nodiscard]] bool in_windows(const std::vector<fault::Window>& windows,
                              TimePoint t) {
  for (const fault::Window& w : windows) {
    if (t < w.begin) break;  // windows are time-ordered
    if (t < w.end) return true;
  }
  return false;
}

}  // namespace

ReplayResult run_replay(const ReplayScenario& scenario,
                        const ReplayKnobs& knobs) {
  scenario.validate();
  expects(knobs.consumer_groups >= 1,
          "run_replay: consumer_groups must be >= 1");
  expects(knobs.drain_chunk >= 1, "run_replay: drain_chunk must be >= 1");

  RealtimeOptions opts = scenario.engine;
  if (knobs.ring_capacity != 0) opts.ring_capacity = knobs.ring_capacity;
  opts.drain_chunk = knobs.drain_chunk;

  VirtualTimeSource time;
  RealtimeEngine engine(opts, time);

  // Ground-truth windows straight from the fault plan (same objects the
  // oracles would query — no second source of truth).
  std::vector<std::vector<fault::Window>> stalls(opts.shards);
  for (std::size_t s = 0; s < opts.shards; ++s) {
    stalls[s] = scenario.faults.consumer_stall_windows(s);
  }
  const std::vector<fault::Window> down =
      scenario.faults.monitor_downtime_windows();
  const std::vector<fault::Window> storms =
      scenario.faults.duplication_windows();

  // Materialize the whole timeline, then totally order it.
  std::vector<Event> events;
  const double interval = scenario.send_interval.seconds();
  const double horizon = scenario.horizon.seconds();
  for (fleet::ProcessIndex p = 0; p < opts.processes; ++p) {
    // Phases in (0, interval) spread the senders so no two processes share
    // a send instant (the total order below would still break the tie).
    const double phase = interval * (static_cast<double>(p) + 1.0) /
                         (static_cast<double>(opts.processes) + 1.0);
    std::uint64_t seq = 1;
    for (double t = phase; t <= horizon; t += interval, ++seq) {
      events.push_back(Event{t, kHeartbeat, p, seq});
      if (in_windows(storms, TimePoint(t))) {
        // Storm: the delivery is duplicated — same sequence number, so the
        // monitor counts a duplicate but the queue pays for both.
        events.push_back(Event{t, kHeartbeat, p, seq});
      }
    }
  }
  const double consumer_period = scenario.consumer_period.seconds();
  for (double t = consumer_period; t <= horizon; t += consumer_period) {
    events.push_back(Event{t, kConsumerTick, 0, 0});
  }
  const double watchdog_period = scenario.watchdog_period.seconds();
  for (double t = watchdog_period; t <= horizon; t += watchdog_period) {
    events.push_back(Event{t, kWatchdogTick, 0, 0});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     if (a.process != b.process) return a.process < b.process;
                     return a.seq < b.seq;
                   });

  for (const Event& ev : events) {
    const TimePoint now(ev.t);
    time.advance(now);
    switch (ev.priority) {
      case kHeartbeat:
        engine.offer(fleet::Heartbeat{ev.process, 0, ev.seq, now});
        break;
      case kConsumerTick:
        if (in_windows(down, now)) break;  // monitor down: nobody drains
        for (std::size_t g = 0; g < knobs.consumer_groups; ++g) {
          for (std::size_t s = g; s < engine.shard_count();
               s += knobs.consumer_groups) {
            if (in_windows(stalls[s], now)) continue;
            engine.drain_shard(s, now);
            engine.advance_shard(s, now);
          }
        }
        break;
      default:
        for (std::size_t s = 0; s < engine.shard_count(); ++s) {
          const bool alive = !in_windows(down, now);
          if (engine.poll_watchdog(s, now, alive) ==
              WatchdogAction::kRestart) {
            engine.warm_restart_shard(s, now);
          }
        }
        break;
    }
  }

  // Quiescent final drain + exact close: after this, every produced
  // heartbeat has been either accepted or shed, so the counter identity is
  // checkable on the result.
  time.advance(scenario.horizon);
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    engine.drain_shard(s, scenario.horizon);
  }
  engine.close(scenario.horizon);

  ReplayResult result;
  result.transitions = engine.drain_transitions();
  result.shards.reserve(engine.shard_count());
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    result.shards.push_back(engine.counters(s));
  }
  result.totals = engine.totals();
  result.qos_at_risk = engine.qos_at_risk();
  result.reason = engine.risk_reason();

  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "chenfd-rt-replay v1\n";
  os << "scenario " << scenario.name << "\n";
  os << "engine policy " << name(opts.policy) << " capacity "
     << opts.queue_capacity << " shards " << opts.shards << " processes "
     << opts.processes << "\n";
  for (const fleet::Transition& tr : result.transitions) {
    os << "transition " << tr.at.seconds() << " " << tr.process << " "
       << (tr.to == Verdict::kTrust ? 'T' : 'S') << "\n";
  }
  for (std::size_t s = 0; s < result.shards.size(); ++s) {
    const ShardCounters& c = result.shards[s];
    os << "shard " << s << " produced " << c.produced << " accepted "
       << c.accepted << " shed_newest " << c.shed_newest << " shed_degraded "
       << c.shed_degraded << " shed_oldest " << c.shed_oldest
       << " shed_overflow " << c.shed_overflow << " consumed " << c.consumed
       << " restarts " << c.restarts << "\n";
  }
  os << "risk " << (result.qos_at_risk ? 1 : 0) << " " << name(result.reason)
     << "\n";
  result.payload = os.str();
  result.crc = persist::crc32(result.payload);
  return result;
}

// ---------------------------------------------------------------------------
// Canonical smoke scenarios
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] core::NfdEParams nfde(double eta_s, double alpha_s,
                                    std::size_t window) {
  core::NfdEParams params;
  params.eta = Duration(eta_s);
  params.alpha = Duration(alpha_s);
  params.window = window;
  return params;
}

/// Sustained 2x overload on every shard (64 arrivals per shard per
/// consumer period against capacity 32) plus a duplication storm on
/// [10, 12) pushing it to 4x.  drop-newest must shed about half and latch
/// overload; the watchdog stays quiet (progress on every tick).
[[nodiscard]] ReplayScenario overload_2x_drop_newest() {
  ReplayScenario sc;
  sc.name = "overload-2x-drop-newest";
  sc.engine.processes = 48;
  sc.engine.shards = 3;
  sc.engine.params = nfde(0.25, 1.0, 16);
  sc.engine.queue_capacity = 32;
  sc.engine.policy = OverloadPolicy::kDropNewest;
  sc.send_interval = Duration(0.25);
  sc.horizon = TimePoint(30.0);
  sc.consumer_period = Duration(1.0);
  sc.watchdog_period = Duration(5.0);
  sc.faults.duplication_burst(TimePoint(10.0), TimePoint(12.0), 1.0);
  sc.expect_reason = RiskReason::kOverload;
  sc.expect_shed = true;
  return sc;
}

/// Shard 0's consumer freezes on [10, 13) under drop-oldest: the backlog
/// (112 heartbeats) exceeds the logical capacity (64) but stays under the
/// smallest physical ring the knob grid uses, so exactly the oldest excess
/// is shed at the catch-up drain.  The watchdog (stall timeout 2.5s) fires
/// one warm restart mid-stall; consumer-stall is the first latched reason.
[[nodiscard]] ReplayScenario stall_drop_oldest() {
  ReplayScenario sc;
  sc.name = "stall-drop-oldest";
  sc.engine.processes = 32;
  sc.engine.shards = 2;
  sc.engine.params = nfde(0.5, 1.0, 16);
  sc.engine.queue_capacity = 64;
  sc.engine.policy = OverloadPolicy::kDropOldest;
  sc.engine.watchdog.stall_timeout = Duration(2.5);
  sc.engine.watchdog.backoff_base = Duration(2.0);
  sc.engine.watchdog.backoff_cap = Duration(8.0);
  sc.engine.watchdog.healthy_interval = Duration(5.0);
  sc.send_interval = Duration(0.5);
  sc.horizon = TimePoint(25.0);
  sc.consumer_period = Duration(0.5);
  sc.watchdog_period = Duration(1.0);
  sc.faults.consumer_stall(0, TimePoint(10.0), TimePoint(13.0));
  sc.expect_reason = RiskReason::kConsumerStall;
  sc.expect_shed = true;
  sc.min_restarts = 1;
  sc.max_restarts = 1;
  return sc;
}

/// The whole monitor goes down on [8, 15): every consumer is dead, so the
/// watchdog warm-restarts each shard with doubling backoff (delays 1, 2,
/// 4 — capped) until the outage ends; the backlog overruns capacity late
/// in the window, so some drop-newest shedding rides along, but the first
/// latched reason is the restart at t=8.
[[nodiscard]] ReplayScenario monitor_crash_backoff() {
  ReplayScenario sc;
  sc.name = "monitor-crash-backoff";
  sc.engine.processes = 30;
  sc.engine.shards = 3;
  sc.engine.params = nfde(1.0, 1.5, 8);
  sc.engine.queue_capacity = 64;
  sc.engine.policy = OverloadPolicy::kDropNewest;
  sc.engine.watchdog.stall_timeout = Duration(2.0);
  sc.engine.watchdog.backoff_base = Duration(1.0);
  sc.engine.watchdog.backoff_cap = Duration(4.0);
  sc.engine.watchdog.healthy_interval = Duration(5.0);
  sc.send_interval = Duration(1.0);
  sc.horizon = TimePoint(30.0);
  sc.consumer_period = Duration(1.0);
  sc.watchdog_period = Duration(1.0);
  sc.faults.monitor_crash(TimePoint(8.0)).monitor_restart(TimePoint(15.0));
  sc.expect_reason = RiskReason::kWatchdogRestart;
  sc.expect_shed = true;
  sc.min_restarts = 9;  // 3 restarts (backoff 1, 2, 4) on each of 3 shards
  sc.max_restarts = 9;
  return sc;
}

/// degrade-eta under 1.6x overload: occupancy crosses the 50% watermark
/// every period, thinning to even sequence numbers, and hits the full
/// fallback at the tail of each burst.
[[nodiscard]] ReplayScenario degrade_eta_watermark() {
  ReplayScenario sc;
  sc.name = "degrade-eta-watermark";
  sc.engine.processes = 16;
  sc.engine.shards = 1;
  sc.engine.params = nfde(0.25, 1.0, 16);
  sc.engine.queue_capacity = 40;
  sc.engine.policy = OverloadPolicy::kDegradeEta;
  sc.engine.degrade_watermark = 0.5;
  sc.send_interval = Duration(0.25);
  sc.horizon = TimePoint(20.0);
  sc.consumer_period = Duration(1.0);
  sc.watchdog_period = Duration(5.0);
  sc.expect_reason = RiskReason::kOverload;
  sc.expect_shed = true;
  return sc;
}

}  // namespace

std::vector<ReplayScenario> smoke_scenarios() {
  std::vector<ReplayScenario> out;
  out.push_back(overload_2x_drop_newest());
  out.push_back(stall_drop_oldest());
  out.push_back(monitor_crash_backoff());
  out.push_back(degrade_eta_watermark());
  return out;
}

bool replay_smoke(std::ostream& diag) {
  bool ok = true;
  const std::vector<ReplayScenario> scenarios = smoke_scenarios();
  for (const ReplayScenario& sc : scenarios) {
    // Knob grid: consumer grouping, physical ring capacity, drain chunk.
    // All must be unobservable.
    const std::vector<ReplayKnobs> grid = {
        ReplayKnobs{1, 0, 64},
        ReplayKnobs{3, 0, 64},
        ReplayKnobs{2, 4 * sc.engine.queue_capacity, 7},
        ReplayKnobs{1, 2 * sc.engine.queue_capacity, 1},
    };
    const ReplayResult base = run_replay(sc, grid.front());
    diag << sc.name << ": crc " << std::hex << std::setw(8)
         << std::setfill('0') << base.crc << std::dec << std::setfill(' ')
         << ", " << base.transitions.size() << " transitions, "
         << base.totals.shed_total() << "/" << base.totals.produced
         << " shed, " << base.totals.restarts << " restarts, risk "
         << name(base.reason) << "\n";
    for (std::size_t k = 1; k < grid.size(); ++k) {
      const ReplayResult alt = run_replay(sc, grid[k]);
      if (alt.payload != base.payload) {
        diag << "FAIL " << sc.name << ": knob set " << k
             << " (groups=" << grid[k].consumer_groups
             << " ring=" << grid[k].ring_capacity
             << " chunk=" << grid[k].drain_chunk
             << ") changed the payload (crc " << std::hex << alt.crc
             << " vs " << base.crc << std::dec << ")\n";
        ok = false;
      }
    }
    // Counter identity, per shard and in total.
    for (std::size_t s = 0; s < base.shards.size(); ++s) {
      const ShardCounters& c = base.shards[s];
      if (c.accepted + c.shed_total() != c.produced) {
        diag << "FAIL " << sc.name << ": shard " << s
             << " counter identity broken: produced " << c.produced
             << " != accepted " << c.accepted << " + shed "
             << c.shed_total() << "\n";
        ok = false;
      }
    }
    if (base.reason != sc.expect_reason) {
      diag << "FAIL " << sc.name << ": expected risk reason "
           << name(sc.expect_reason) << ", got " << name(base.reason)
           << "\n";
      ok = false;
    }
    if (sc.expect_shed != (base.totals.shed_total() > 0)) {
      diag << "FAIL " << sc.name << ": expected shed="
           << (sc.expect_shed ? "yes" : "no") << ", shed_total "
           << base.totals.shed_total() << "\n";
      ok = false;
    }
    if (base.totals.restarts < sc.min_restarts ||
        base.totals.restarts > sc.max_restarts) {
      diag << "FAIL " << sc.name << ": restarts " << base.totals.restarts
           << " outside [" << sc.min_restarts << ", " << sc.max_restarts
           << "]\n";
      ok = false;
    }
    if (base.transitions.empty()) {
      diag << "FAIL " << sc.name << ": no transitions emitted\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace chenfd::rt
