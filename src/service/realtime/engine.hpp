// RealtimeEngine — the wall-clock ingestion front-end in front of
// fleet::FleetMonitor (DESIGN.md section 14).
//
// Topology: the fleet is block-partitioned into `shards` realtime shards
// (balanced like FleetMonitor's own partition).  Each shard owns a bounded
// lock-free MPSC queue (mpsc_queue.hpp), a single-shard FleetMonitor whose
// FleetOptions::first_process offset keeps transitions in global process
// ids, and a WatchdogPolicy.  Producers — transport callbacks, bench load
// generators, the replay harness — call offer() from any thread and NEVER
// block and NEVER take a lock: when a shard is overloaded the configured
// OverloadPolicy sheds (policies.hpp) and the shard's RiskLatch records
// that QoS was at risk.  Exactly one consumer at a time drains a given
// shard under its mutex; the per-shard mutex is a consumer/watchdog
// affair, invisible to producers.
//
// Counter identity, checked by tests after a quiescent final drain:
//
//   produced == accepted + shed_newest + shed_degraded + shed_oldest
//                         + shed_overflow
//
// where `accepted` counts heartbeats actually ingested into the monitor.
//
// The engine is *passive* plus an optional live mode: drain_shard(),
// advance(), poll_watchdog() and warm_restart_shard() are the replay
// harness's verbs (driven in deterministic virtual time); start()/stop()
// spin real consumer threads plus a watchdog thread over the same verbs
// for chenfd_rtd and the TSan tests.  Time only ever comes from the
// injected TimeSource.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fleet/fleet_monitor.hpp"
#include "fleet/types.hpp"
#include "persist/snapshot.hpp"
#include "service/realtime/mpsc_queue.hpp"
#include "service/realtime/policies.hpp"
#include "service/realtime/time_source.hpp"

namespace chenfd::rt {

struct RealtimeOptions {
  std::size_t processes = 0;
  std::size_t shards = 1;
  core::NfdEParams params;
  Duration wheel_resolution = Duration(0.0);

  /// Logical admission bound per shard.  Part of the scenario: shedding
  /// decisions depend on it, so replay output may too (by design).
  std::size_t queue_capacity = 1024;
  /// Physical ring slots per shard; 0 derives 2 * queue_capacity.  NOT
  /// part of the scenario: replay output must be byte-identical across
  /// ring capacities (the replay determinism test varies it).
  std::size_t ring_capacity = 0;
  OverloadPolicy policy = OverloadPolicy::kDropNewest;
  /// degrade-eta starts thinning at occupancy >= watermark * capacity.
  double degrade_watermark = 0.75;
  /// Heartbeats ingested per monitor call while draining (batch size; not
  /// part of the scenario).
  std::size_t drain_chunk = 64;
  WatchdogConfig watchdog;

  void validate() const;
  [[nodiscard]] std::size_t effective_ring_capacity() const {
    return ring_capacity != 0 ? ring_capacity : 2 * queue_capacity;
  }
};

/// Per-shard (and, summed, per-engine) ingestion accounting.
struct ShardCounters {
  std::uint64_t produced = 0;       ///< offer() calls routed to this shard
  std::uint64_t accepted = 0;       ///< ingested into the FleetMonitor
  std::uint64_t shed_newest = 0;    ///< rejected at the producer (queue full)
  std::uint64_t shed_degraded = 0;  ///< thinned by degrade-eta
  std::uint64_t shed_oldest = 0;    ///< old backlog dropped at drain
  std::uint64_t shed_overflow = 0;  ///< physical ring full (memory backstop)
  std::uint64_t consumed = 0;       ///< popped off the queue
  std::uint64_t restarts = 0;       ///< watchdog warm restarts

  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_newest + shed_degraded + shed_oldest + shed_overflow;
  }
};

class RealtimeEngine {
 public:
  RealtimeEngine(RealtimeOptions opts, TimeSource& time);
  ~RealtimeEngine();

  RealtimeEngine(const RealtimeEngine&) = delete;
  RealtimeEngine& operator=(const RealtimeEngine&) = delete;

  // ---- producer path (any thread; never blocks, never locks) ------------

  /// Routes a pre-stamped heartbeat to its shard, applying the overload
  /// policy.  Returns false when the heartbeat was shed.
  bool offer(const fleet::Heartbeat& hb);

  /// Stamps arrival with the TimeSource and offers (live transport path).
  bool offer_now(fleet::ProcessIndex process, std::uint32_t incarnation,
                 net::SeqNo seq);

  // ---- consumer path (one drainer per shard at a time) ------------------

  /// Drains shard `shard`'s queue into its monitor: pops, monotonizes
  /// arrivals, applies consumer-side shedding (drop-oldest), ingests, and
  /// reports progress to the watchdog.  Returns the number ingested.
  std::size_t drain_shard(std::size_t shard, TimePoint now);

  /// Advances one shard's monitor (freshness expiries) to `to`.
  void advance_shard(std::size_t shard, TimePoint to);

  /// Advances every shard's monitor to `to`.
  void advance(TimePoint to);

  /// Exact end-of-run flush of every shard's monitor (FleetMonitor::close).
  void close(TimePoint horizon);

  /// Moves out all transitions emitted since the last call, merged across
  /// shards and stable-sorted by (time, process) — same total order as
  /// FleetMonitor::drain_transitions, so the stream is independent of how
  /// shards were drained or restarted in between.
  [[nodiscard]] std::vector<fleet::Transition> drain_transitions();

  // ---- watchdog ----------------------------------------------------------

  /// One watchdog tick for `shard`.  `consumer_alive` is false when the
  /// draining thread is known dead (live mode) or the scenario says the
  /// monitor is down (replay).  Latches kConsumerStall / kWatchdogRestart
  /// as appropriate.  kRestart means: call warm_restart_shard now.
  WatchdogAction poll_watchdog(std::size_t shard, TimePoint now,
                               bool consumer_alive);

  /// Warm restart of one shard's monitor: drains its pending transitions
  /// into the engine-side log (nothing already emitted is lost), exports
  /// its summary, rebuilds the monitor, and restores warm (all-suspect
  /// soft state; see FleetMonitor::restore_summary).  The shard's queue
  /// and counters survive — ingestion never stops.
  void warm_restart_shard(std::size_t shard, TimePoint now);

  // ---- live mode (chenfd_rtd, TSan tests) --------------------------------

  /// Spawns `consumers` consumer threads (shard s belongs to thread
  /// s % consumers) and one watchdog thread.  Threads pace themselves with
  /// TimeSource::sleep_for.
  void start(std::size_t consumers, Duration consumer_period,
             Duration watchdog_period);
  void stop();

  /// Test hook: while stalled, consumer thread `thread_index` stops
  /// draining its shards (it stays alive — models a stuck consumer).
  void stall_consumer(std::size_t thread_index, bool stalled);

  /// Test hook: consumer thread `thread_index` exits its loop (models a
  /// crashed consumer; the watchdog respawns it on the restart path).
  void kill_consumer(std::size_t thread_index);

  // ---- observability -----------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t processes() const { return opts_.processes; }
  [[nodiscard]] std::size_t shard_of(fleet::ProcessIndex id) const;
  [[nodiscard]] std::size_t pending(std::size_t shard) const;
  [[nodiscard]] ShardCounters counters(std::size_t shard) const;
  [[nodiscard]] ShardCounters totals() const;
  [[nodiscard]] RiskReason shard_risk(std::size_t shard) const;
  [[nodiscard]] RiskReason risk_reason() const { return risk_.reason(); }
  [[nodiscard]] bool qos_at_risk() const { return risk_.engaged(); }
  [[nodiscard]] Verdict verdict(fleet::ProcessIndex id) const;
  [[nodiscard]] std::size_t memory_bytes() const;

  // ---- supervisor persistence -------------------------------------------

  /// Per-shard summary in global shard ids (shape mirrors a single
  /// FleetMonitor with the same partition; snapshot-compatible).
  [[nodiscard]] persist::FleetState export_summary() const;
  void restore_summary(const std::optional<persist::FleetState>& state,
                       bool warm);

 private:
  struct Shard;

  /// Source instants are rebased to an engine-local epoch captured at
  /// construction before they reach the monitors: the fleet timing wheel
  /// steps tick-by-tick from zero, so feeding it wall-clock epoch seconds
  /// (~10^9) would spin for years.  VirtualTimeSource starts at zero, so
  /// the rebase is the identity for the replay harness — payloads are
  /// unaffected.  Transitions are mapped back to source time on the way
  /// out.
  [[nodiscard]] TimePoint to_engine(TimePoint t) const {
    CHENFD_EXPECTS(t.seconds() >= base_s_,
                   "RealtimeEngine: time predates the engine epoch");
    return TimePoint(t.seconds() - base_s_);
  }

  void latch(Shard& shard, RiskReason reason);
  bool admit_bounded(Shard& shard, const fleet::Heartbeat& hb);
  std::size_t ingest_locked(Shard& shard, fleet::Heartbeat* batch,
                            std::size_t n);
  void consumer_loop(std::size_t thread_index);
  void watchdog_loop();
  void respawn_consumer(std::size_t thread_index);

  RealtimeOptions opts_;
  TimeSource& time_;
  double base_s_ = 0.0;           ///< engine epoch in source seconds
  std::size_t base_members_ = 0;  ///< processes / shards
  std::size_t big_shards_ = 0;    ///< shards holding base_members_ + 1
  std::vector<std::unique_ptr<Shard>> shards_;
  RiskLatch risk_;

  // Live mode.
  std::atomic<bool> running_{false};
  std::size_t consumer_count_ = 0;
  Duration consumer_period_ = Duration::zero();
  Duration watchdog_period_ = Duration::zero();
  std::mutex threads_mutex_;  ///< guards threads_ respawn bookkeeping
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<std::atomic<bool>>> thread_alive_;
  std::vector<std::unique_ptr<std::atomic<bool>>> thread_stalled_;
  std::vector<std::unique_ptr<std::atomic<bool>>> thread_killed_;
  std::thread watchdog_thread_;
};

}  // namespace chenfd::rt
