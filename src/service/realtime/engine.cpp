#include "service/realtime/engine.hpp"

#include <algorithm>
#include <cmath>
#include <span>

namespace chenfd::rt {

void RealtimeOptions::validate() const {
  CHENFD_EXPECTS(processes >= 1, "RealtimeOptions: processes must be >= 1");
  CHENFD_EXPECTS(shards >= 1, "RealtimeOptions: shards must be >= 1");
  CHENFD_EXPECTS(shards <= processes,
                 "RealtimeOptions: more shards than processes");
  params.validate();
  CHENFD_EXPECTS(wheel_resolution >= Duration::zero(),
                 "RealtimeOptions: wheel resolution must be >= 0");
  CHENFD_EXPECTS(queue_capacity >= 1,
                 "RealtimeOptions: queue_capacity must be >= 1");
  CHENFD_EXPECTS(ring_capacity == 0 || ring_capacity >= queue_capacity,
                 "RealtimeOptions: ring_capacity must be >= queue_capacity "
                 "(the physical ring absorbs the logical admission bound)");
  CHENFD_EXPECTS(degrade_watermark > 0.0 && degrade_watermark <= 1.0,
                 "RealtimeOptions: degrade_watermark must be in (0, 1]");
  CHENFD_EXPECTS(drain_chunk >= 1, "RealtimeOptions: drain_chunk must be >= 1");
  watchdog.validate();
}

// ---------------------------------------------------------------------------
// Shard state
// ---------------------------------------------------------------------------

struct RealtimeEngine::Shard {
  Shard(const fleet::FleetOptions& fleet_opts, std::size_t ring_capacity,
        const WatchdogConfig& wd)
      : opts(fleet_opts),
        queue(ring_capacity),
        monitor(std::make_unique<fleet::FleetMonitor>(fleet_opts)),
        watchdog(wd) {}

  fleet::FleetOptions opts;  ///< single-shard options with first_process set

  // ---- producer-facing (lock-free) ----
  MpscQueue<fleet::Heartbeat> queue;
  std::atomic<std::size_t> occupancy{0};  ///< logical pushed-minus-popped
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> shed_newest{0};
  std::atomic<std::uint64_t> shed_degraded{0};
  std::atomic<std::uint64_t> shed_overflow{0};
  RiskLatch risk;

  // ---- consumer/watchdog side (under mutex; producers never take it) ----
  mutable std::mutex mutex;
  std::unique_ptr<fleet::FleetMonitor> monitor;
  std::vector<fleet::Transition> transitions;  ///< survives warm restarts
  std::vector<fleet::Heartbeat> scratch;
  double ingest_floor_s = 0.0;  ///< max(ingested arrivals, advance targets)
  WatchdogPolicy watchdog;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed_oldest{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> restarts{0};
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

RealtimeEngine::RealtimeEngine(RealtimeOptions opts, TimeSource& time)
    : opts_(opts), time_(time) {
  opts_.validate();
  base_s_ = time_.now().seconds();
  base_members_ = opts_.processes / opts_.shards;
  big_shards_ = opts_.processes % opts_.shards;
  shards_.reserve(opts_.shards);
  fleet::ProcessIndex first = 0;
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    const std::size_t members = base_members_ + (s < big_shards_ ? 1 : 0);
    fleet::FleetOptions fleet_opts;
    fleet_opts.processes = members;
    fleet_opts.shards = 1;
    fleet_opts.params = opts_.params;
    fleet_opts.wheel_resolution = opts_.wheel_resolution;
    fleet_opts.first_process = first;
    shards_.push_back(std::make_unique<Shard>(
        fleet_opts, opts_.effective_ring_capacity(), opts_.watchdog));
    first += static_cast<fleet::ProcessIndex>(members);
  }
}

RealtimeEngine::~RealtimeEngine() { stop(); }

std::size_t RealtimeEngine::shard_of(fleet::ProcessIndex id) const {
  CHENFD_EXPECTS(id < opts_.processes,
                 "RealtimeEngine::shard_of: process index out of range");
  const std::size_t big_span = big_shards_ * (base_members_ + 1);
  if (id < big_span) return id / (base_members_ + 1);
  return big_shards_ + (id - big_span) / base_members_;
}

// ---------------------------------------------------------------------------
// Producer path
// ---------------------------------------------------------------------------

void RealtimeEngine::latch(Shard& shard, RiskReason reason) {
  shard.risk.latch(reason);
  risk_.latch(reason);
}

bool RealtimeEngine::admit_bounded(Shard& shard, const fleet::Heartbeat& hb) {
  // Reserve a logical slot first; the reservation (not a re-read) is the
  // admission decision, so concurrent producers can never exceed the bound.
  const std::size_t occ =
      shard.occupancy.fetch_add(1, std::memory_order_acq_rel);
  if (occ >= opts_.queue_capacity) {
    shard.occupancy.fetch_sub(1, std::memory_order_acq_rel);
    shard.shed_newest.fetch_add(1, std::memory_order_relaxed);
    latch(shard, RiskReason::kOverload);
    return false;
  }
  if (!shard.queue.try_push(hb)) {
    // Physical backstop — unreachable while ring_capacity >= queue_capacity
    // (validated), kept as a counted safety net rather than an assumption.
    shard.occupancy.fetch_sub(1, std::memory_order_acq_rel);
    shard.shed_overflow.fetch_add(1, std::memory_order_relaxed);
    latch(shard, RiskReason::kOverload);
    return false;
  }
  return true;
}

bool RealtimeEngine::offer(const fleet::Heartbeat& hb) {
  CHENFD_EXPECTS(hb.seq >= 1,
                 "RealtimeEngine::offer: sequence numbers start at 1");
  Shard& shard = *shards_[shard_of(hb.process)];
  shard.produced.fetch_add(1, std::memory_order_relaxed);
  fleet::Heartbeat rebased = hb;
  rebased.arrival = to_engine(hb.arrival);
  switch (opts_.policy) {
    case OverloadPolicy::kDropNewest:
      return admit_bounded(shard, rebased);
    case OverloadPolicy::kDegradeEta: {
      const std::size_t occ =
          shard.occupancy.load(std::memory_order_acquire);
      const auto watermark = static_cast<std::size_t>(
          opts_.degrade_watermark *
          static_cast<double>(opts_.queue_capacity));
      if (occ < opts_.queue_capacity && occ >= watermark &&
          (hb.seq % 2) == 1) {
        // Thin to even sequence numbers: effective eta doubles, NFD-E's
        // freshness estimate absorbs the gaps.  At full we fall through to
        // the bounded admit, which sheds as drop-newest.
        shard.shed_degraded.fetch_add(1, std::memory_order_relaxed);
        latch(shard, RiskReason::kOverload);
        return false;
      }
      return admit_bounded(shard, rebased);
    }
    case OverloadPolicy::kDropOldest: {
      // Always admit; the consumer sheds the *oldest* backlog at drain.
      // The physical ring is the memory backstop.
      if (!shard.queue.try_push(rebased)) {
        shard.shed_overflow.fetch_add(1, std::memory_order_relaxed);
        latch(shard, RiskReason::kOverload);
        return false;
      }
      shard.occupancy.fetch_add(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;  // unreachable: the switch is exhaustive
}

bool RealtimeEngine::offer_now(fleet::ProcessIndex process,
                               std::uint32_t incarnation, net::SeqNo seq) {
  return offer(fleet::Heartbeat{process, incarnation, seq, time_.now()});
}

// ---------------------------------------------------------------------------
// Consumer path
// ---------------------------------------------------------------------------

std::size_t RealtimeEngine::ingest_locked(Shard& shard,
                                          fleet::Heartbeat* batch,
                                          std::size_t n) {
  if (n == 0) return 0;
  // Arrival monotonization: a live producer can stamp now() and get
  // preempted before pushing, so the FIFO queue may hold arrivals slightly
  // out of order (or behind an advance target).  Clamp to the shard's
  // ingest floor — FleetMonitor requires batches sorted at or above its
  // watermark.
  double floor_s = shard.ingest_floor_s;
  for (std::size_t i = 0; i < n; ++i) {
    if (batch[i].arrival.seconds() < floor_s) {
      batch[i].arrival = TimePoint(floor_s);
    } else {
      floor_s = batch[i].arrival.seconds();
    }
  }
  shard.ingest_floor_s = floor_s;
  shard.monitor->ingest(std::span<const fleet::Heartbeat>(batch, n));
  shard.accepted.fetch_add(n, std::memory_order_relaxed);
  return n;
}

std::size_t RealtimeEngine::drain_shard(std::size_t shard_index,
                                        TimePoint now) {
  CHENFD_EXPECTS(shard_index < shards_.size(),
                 "RealtimeEngine::drain_shard: shard index out of range");
  Shard& shard = *shards_[shard_index];
  const TimePoint engine_now = to_engine(now);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  std::size_t popped_total = 0;
  std::size_t ingested = 0;
  if (opts_.policy == OverloadPolicy::kDropOldest) {
    // Pop the whole backlog, then keep only the newest queue_capacity of
    // it — the oldest excess is shed (it would only delay fresher news).
    shard.scratch.clear();
    fleet::Heartbeat hb;
    while (shard.queue.try_pop(hb)) shard.scratch.push_back(hb);
    popped_total = shard.scratch.size();
    if (popped_total != 0) {
      shard.occupancy.fetch_sub(popped_total, std::memory_order_acq_rel);
      shard.consumed.fetch_add(popped_total, std::memory_order_relaxed);
      std::size_t start = 0;
      if (popped_total > opts_.queue_capacity) {
        start = popped_total - opts_.queue_capacity;
        shard.shed_oldest.fetch_add(start, std::memory_order_relaxed);
        latch(shard, RiskReason::kOverload);
      }
      ingested = ingest_locked(shard, shard.scratch.data() + start,
                               popped_total - start);
    }
  } else {
    shard.scratch.resize(opts_.drain_chunk);
    for (;;) {
      const std::size_t n =
          shard.queue.pop_batch(shard.scratch.data(), opts_.drain_chunk);
      if (n == 0) break;
      popped_total += n;
      shard.occupancy.fetch_sub(n, std::memory_order_acq_rel);
      shard.consumed.fetch_add(n, std::memory_order_relaxed);
      ingested += ingest_locked(shard, shard.scratch.data(), n);
      if (n < opts_.drain_chunk) break;
    }
  }
  if (popped_total != 0 || shard.queue.empty()) {
    shard.watchdog.note_progress(engine_now);
  }
  return ingested;
}

void RealtimeEngine::advance_shard(std::size_t shard_index, TimePoint to) {
  CHENFD_EXPECTS(shard_index < shards_.size(),
                 "RealtimeEngine::advance_shard: shard index out of range");
  Shard& shard = *shards_[shard_index];
  const TimePoint engine_to = to_engine(to);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.monitor->advance(engine_to);
  shard.ingest_floor_s = std::max(shard.ingest_floor_s, engine_to.seconds());
}

void RealtimeEngine::advance(TimePoint to) {
  CHENFD_EXPECTS(!to.is_infinite(),
                 "RealtimeEngine::advance: target must be finite");
  for (std::size_t s = 0; s < shards_.size(); ++s) advance_shard(s, to);
}

void RealtimeEngine::close(TimePoint horizon) {
  CHENFD_EXPECTS(!horizon.is_infinite(),
                 "RealtimeEngine::close: horizon must be finite");
  const TimePoint engine_horizon = to_engine(horizon);
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.monitor->close(engine_horizon);
    shard.ingest_floor_s =
        std::max(shard.ingest_floor_s, engine_horizon.seconds());
  }
}

// detlint: allow(R4) draining is legal in any state; an empty result is valid
std::vector<fleet::Transition> RealtimeEngine::drain_transitions() {
  std::vector<fleet::Transition> out;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const std::lock_guard<std::mutex> lock(shard.mutex);
    std::vector<fleet::Transition> fresh = shard.monitor->drain_transitions();
    shard.transitions.insert(shard.transitions.end(), fresh.begin(),
                             fresh.end());
    out.insert(out.end(), shard.transitions.begin(), shard.transitions.end());
    shard.transitions.clear();
  }
  // Same total order as FleetMonitor::drain_transitions: each process's
  // stream lives in one shard (already in order), and (time, process)
  // totally orders same-time pairs of distinct processes across shards —
  // so the merged stream cannot depend on who drained which shard when.
  std::stable_sort(out.begin(), out.end(),
                   [](const fleet::Transition& a, const fleet::Transition& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.process < b.process;
                   });
  // Back to source time (identity under a zero-epoch VirtualTimeSource).
  if (base_s_ != 0.0) {
    for (fleet::Transition& t : out) t.at = TimePoint(t.at.seconds() + base_s_);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Watchdog and warm restart
// ---------------------------------------------------------------------------

WatchdogAction RealtimeEngine::poll_watchdog(std::size_t shard_index,
                                             TimePoint now,
                                             bool consumer_alive) {
  CHENFD_EXPECTS(shard_index < shards_.size(),
                 "RealtimeEngine::poll_watchdog: shard index out of range");
  Shard& shard = *shards_[shard_index];
  const TimePoint engine_now = to_engine(now);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const WatchdogAction action =
      shard.watchdog.poll(engine_now, consumer_alive, !shard.queue.empty());
  if (action != WatchdogAction::kNone) {
    latch(shard, consumer_alive ? RiskReason::kConsumerStall
                                : RiskReason::kWatchdogRestart);
  }
  return action;
}

void RealtimeEngine::warm_restart_shard(std::size_t shard_index,
                                        TimePoint now) {
  CHENFD_EXPECTS(shard_index < shards_.size(),
                 "RealtimeEngine::warm_restart_shard: shard index out of "
                 "range");
  Shard& shard = *shards_[shard_index];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  // Nothing already emitted may be lost: move the dying monitor's pending
  // transitions into the engine-side log before replacing it.
  std::vector<fleet::Transition> pending = shard.monitor->drain_transitions();
  shard.transitions.insert(shard.transitions.end(), pending.begin(),
                           pending.end());
  const persist::FleetState summary = shard.monitor->export_summary();
  shard.monitor = std::make_unique<fleet::FleetMonitor>(shard.opts);
  shard.monitor->restore_summary(summary, /*warm=*/true);
  // The reborn monitor starts at the restart instant; queued heartbeats
  // stamped during the outage are ingested as of now.
  shard.ingest_floor_s =
      std::max(shard.ingest_floor_s, to_engine(now).seconds());
  shard.restarts.fetch_add(1, std::memory_order_relaxed);
  latch(shard, RiskReason::kWatchdogRestart);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

std::size_t RealtimeEngine::pending(std::size_t shard_index) const {
  CHENFD_EXPECTS(shard_index < shards_.size(),
                 "RealtimeEngine::pending: shard index out of range");
  return shards_[shard_index]->queue.size();
}

ShardCounters RealtimeEngine::counters(std::size_t shard_index) const {
  CHENFD_EXPECTS(shard_index < shards_.size(),
                 "RealtimeEngine::counters: shard index out of range");
  const Shard& shard = *shards_[shard_index];
  ShardCounters c;
  c.produced = shard.produced.load(std::memory_order_acquire);
  c.accepted = shard.accepted.load(std::memory_order_acquire);
  c.shed_newest = shard.shed_newest.load(std::memory_order_acquire);
  c.shed_degraded = shard.shed_degraded.load(std::memory_order_acquire);
  c.shed_oldest = shard.shed_oldest.load(std::memory_order_acquire);
  c.shed_overflow = shard.shed_overflow.load(std::memory_order_acquire);
  c.consumed = shard.consumed.load(std::memory_order_acquire);
  c.restarts = shard.restarts.load(std::memory_order_acquire);
  return c;
}

ShardCounters RealtimeEngine::totals() const {
  ShardCounters total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardCounters c = counters(s);
    total.produced += c.produced;
    total.accepted += c.accepted;
    total.shed_newest += c.shed_newest;
    total.shed_degraded += c.shed_degraded;
    total.shed_oldest += c.shed_oldest;
    total.shed_overflow += c.shed_overflow;
    total.consumed += c.consumed;
    total.restarts += c.restarts;
  }
  return total;
}

RiskReason RealtimeEngine::shard_risk(std::size_t shard_index) const {
  CHENFD_EXPECTS(shard_index < shards_.size(),
                 "RealtimeEngine::shard_risk: shard index out of range");
  return shards_[shard_index]->risk.reason();
}

Verdict RealtimeEngine::verdict(fleet::ProcessIndex id) const {
  const Shard& shard = *shards_[shard_of(id)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.monitor->verdict(id);
}

std::size_t RealtimeEngine::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.queue.memory_bytes();
    total += shard.monitor->memory_bytes();
    total += shard.transitions.capacity() * sizeof(fleet::Transition);
    total += shard.scratch.capacity() * sizeof(fleet::Heartbeat);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Supervisor persistence
// ---------------------------------------------------------------------------

persist::FleetState RealtimeEngine::export_summary() const {
  persist::FleetState state;
  state.processes = opts_.processes;
  state.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const persist::FleetState sub = shard.monitor->export_summary();
    persist::FleetShardState shard_state = sub.shards.front();
    shard_state.shard = s;
    state.shards.push_back(shard_state);
  }
  return state;
}

void RealtimeEngine::restore_summary(
    const std::optional<persist::FleetState>& state, bool warm) {
  if (warm) {
    expects(state.has_value(),
            "RealtimeEngine::restore_summary: warm restore requires a "
            "summary");
    expects(state->processes == opts_.processes,
            "RealtimeEngine::restore_summary: snapshot fleet size mismatch");
    expects(state->shards.size() == shards_.size(),
            "RealtimeEngine::restore_summary: snapshot shard count mismatch");
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (warm) {
      persist::FleetState sub;
      sub.processes = shard.opts.processes;
      persist::FleetShardState shard_state = state->shards[s];
      shard_state.shard = 0;
      sub.shards.push_back(shard_state);
      shard.monitor->restore_summary(sub, /*warm=*/true);
    } else {
      shard.monitor->restore_summary(std::nullopt, /*warm=*/false);
    }
  }
}

// ---------------------------------------------------------------------------
// Live mode
// ---------------------------------------------------------------------------

void RealtimeEngine::start(std::size_t consumers, Duration consumer_period,
                           Duration watchdog_period) {
  expects(consumers >= 1, "RealtimeEngine::start: need >= 1 consumer");
  expects(consumer_period > Duration::zero(),
          "RealtimeEngine::start: consumer_period must be > 0");
  expects(watchdog_period > Duration::zero(),
          "RealtimeEngine::start: watchdog_period must be > 0");
  expects(!running_.load(std::memory_order_acquire),
          "RealtimeEngine::start: already running");
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  consumer_count_ = consumers;
  consumer_period_ = consumer_period;
  watchdog_period_ = watchdog_period;
  threads_.clear();
  thread_alive_.clear();
  thread_stalled_.clear();
  thread_killed_.clear();
  for (std::size_t t = 0; t < consumers; ++t) {
    thread_alive_.push_back(std::make_unique<std::atomic<bool>>(false));
    thread_stalled_.push_back(std::make_unique<std::atomic<bool>>(false));
    thread_killed_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  running_.store(true, std::memory_order_release);
  threads_.reserve(consumers);
  for (std::size_t t = 0; t < consumers; ++t) {
    threads_.emplace_back([this, t] { consumer_loop(t); });
  }
  watchdog_thread_ = std::thread([this] { watchdog_loop(); });
}

// detlint: allow(R4) stopping is legal in any state (idempotent)
void RealtimeEngine::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // The watchdog is the only thread that respawns consumers; join it first
  // so the consumer roster is stable while we join the rest.
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
}

void RealtimeEngine::stall_consumer(std::size_t thread_index, bool stalled) {
  CHENFD_EXPECTS(thread_index < thread_stalled_.size(),
                 "RealtimeEngine::stall_consumer: thread index out of range");
  thread_stalled_[thread_index]->store(stalled, std::memory_order_release);
}

void RealtimeEngine::kill_consumer(std::size_t thread_index) {
  CHENFD_EXPECTS(thread_index < thread_killed_.size(),
                 "RealtimeEngine::kill_consumer: thread index out of range");
  thread_killed_[thread_index]->store(true, std::memory_order_release);
}

void RealtimeEngine::consumer_loop(std::size_t thread_index) {
  thread_alive_[thread_index]->store(true, std::memory_order_release);
  while (running_.load(std::memory_order_acquire)) {
    if (thread_killed_[thread_index]->load(std::memory_order_acquire)) break;
    bool idle = true;
    if (!thread_stalled_[thread_index]->load(std::memory_order_acquire)) {
      const TimePoint now = time_.now();
      for (std::size_t s = thread_index; s < shards_.size();
           s += consumer_count_) {
        if (drain_shard(s, now) != 0) idle = false;
        advance_shard(s, now);
      }
    }
    if (idle) time_.sleep_for(consumer_period_);
  }
  thread_alive_[thread_index]->store(false, std::memory_order_release);
}

void RealtimeEngine::watchdog_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const TimePoint now = time_.now();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::size_t t = s % consumer_count_;
      const bool alive =
          thread_alive_[t]->load(std::memory_order_acquire) &&
          !thread_killed_[t]->load(std::memory_order_acquire);
      if (poll_watchdog(s, now, alive) == WatchdogAction::kRestart) {
        warm_restart_shard(s, now);
        if (!alive) respawn_consumer(t);
      }
    }
    time_.sleep_for(watchdog_period_);
  }
}

void RealtimeEngine::respawn_consumer(std::size_t thread_index) {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  if (thread_alive_[thread_index]->load(std::memory_order_acquire)) return;
  if (threads_[thread_index].joinable()) threads_[thread_index].join();
  thread_killed_[thread_index]->store(false, std::memory_order_release);
  thread_stalled_[thread_index]->store(false, std::memory_order_release);
  threads_[thread_index] = std::thread([this, thread_index] {
    consumer_loop(thread_index);
  });
}

}  // namespace chenfd::rt
