// Overload-shedding and watchdog policies for the realtime front-end
// (DESIGN.md section 14).
//
// These are the *decisions* of the daemon path, separated from its
// machinery (queues, threads) so they are pure, unit-testable, and shared
// verbatim between the live daemon and the deterministic replay harness:
//
//   - OverloadPolicy: what to do when a shard's logical queue saturates.
//     drop-newest rejects at the producer; drop-oldest admits everything
//     and sheds the *oldest* backlog at drain time (only the newest
//     `queue_capacity` items survive); degrade-eta thins the heartbeat
//     stream to every other sequence number above a watermark (doubling
//     the effective interarrival eta — NFD-E's freshness estimate handles
//     sequence gaps natively), then falls back to drop-newest at full.
//
//   - RiskLatch: once QoS has been at risk the fact must not be washed out
//     by later recovery — operators need "was it ever degraded", not "is
//     it degraded right now".  First reason sticks (atomic CAS from
//     kNone), per shard and per engine.
//
//   - WatchdogPolicy: a pure state machine deciding when a stalled or dead
//     consumer warrants a warm restart, with bounded exponential backoff
//     so a crash-looping shard cannot hog the supervisor.

#pragma once

#include <atomic>
#include <cstdint>

#include "common/check.hpp"
#include "common/time.hpp"

namespace chenfd::rt {

// ---------------------------------------------------------------------------
// Overload shedding
// ---------------------------------------------------------------------------

enum class OverloadPolicy : std::uint8_t {
  kDropNewest,  ///< producer rejects pushes once the logical queue is full
  kDropOldest,  ///< always admit; consumer keeps only the newest backlog
  kDegradeEta,  ///< thin to alternate seq numbers above a watermark
};

[[nodiscard]] constexpr const char* name(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kDropNewest: return "drop-newest";
    case OverloadPolicy::kDropOldest: return "drop-oldest";
    case OverloadPolicy::kDegradeEta: return "degrade-eta";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Latched risk
// ---------------------------------------------------------------------------

/// Why QoS first became at-risk.  Ordered by severity only for display;
/// the latch keeps the *first* reason, not the worst.
enum class RiskReason : std::uint8_t {
  kNone = 0,
  kOverload,         ///< a shedding policy dropped or thinned heartbeats
  kConsumerStall,    ///< watchdog saw a live consumer make no progress
  kWatchdogRestart,  ///< a consumer was warm-restarted (detector state reset)
};

[[nodiscard]] constexpr const char* name(RiskReason r) {
  switch (r) {
    case RiskReason::kNone: return "none";
    case RiskReason::kOverload: return "overload";
    case RiskReason::kConsumerStall: return "consumer-stall";
    case RiskReason::kWatchdogRestart: return "watchdog-restart";
  }
  return "?";
}

/// First-reason-sticks latch, safe to set from any producer/consumer/
/// watchdog thread.  Resettable only explicitly (warm restart does *not*
/// clear it — the restart itself is a risk event).
class RiskLatch {
 public:
  /// Latches `reason` iff nothing latched before.  Returns true when this
  /// call won the latch.
  bool latch(RiskReason reason) {
    CHENFD_EXPECTS(reason != RiskReason::kNone,
                   "RiskLatch: cannot latch kNone");
    std::uint8_t expected = 0;
    return state_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }

  [[nodiscard]] RiskReason reason() const {
    return static_cast<RiskReason>(state_.load(std::memory_order_acquire));
  }

  [[nodiscard]] bool engaged() const {
    return reason() != RiskReason::kNone;
  }

  void reset() { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint8_t> state_{0};
};

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

struct WatchdogConfig {
  Duration stall_timeout = seconds(2.0);   ///< no-progress window => stalled
  Duration backoff_base = seconds(0.5);    ///< first restart delay
  Duration backoff_cap = seconds(8.0);     ///< ceiling on the delay
  Duration healthy_interval = seconds(10.0);  ///< progress run resetting backoff

  void validate() const {
    expects(stall_timeout > Duration::zero(),
            "WatchdogConfig: stall_timeout must be > 0");
    expects(backoff_base > Duration::zero(),
            "WatchdogConfig: backoff_base must be > 0");
    expects(backoff_cap >= backoff_base,
            "WatchdogConfig: backoff_cap must be >= backoff_base");
    expects(healthy_interval > Duration::zero(),
            "WatchdogConfig: healthy_interval must be > 0");
  }
};

enum class WatchdogAction : std::uint8_t {
  kNone,     ///< consumer healthy
  kBackoff,  ///< stalled, but a restart is not yet allowed (inside backoff)
  kRestart,  ///< warm-restart the shard's consumer now
};

/// Per-shard watchdog state machine.  Pure: time is always passed in, so
/// the same object drives the live daemon (MonotonicClock) and the replay
/// harness (VirtualTimeSource) identically.
///
/// A consumer is *stalled* when it is dead, or when its queue is nonempty
/// and it has made no progress for `stall_timeout`.  A stalled consumer is
/// restarted as soon as `now >= next_allowed_restart`; each restart doubles
/// the next delay (base * 2^(n-1), capped), and a `healthy_interval` of
/// progress after the last restart resets the streak to zero.
class WatchdogPolicy {
 public:
  explicit WatchdogPolicy(WatchdogConfig config) : config_(config) {
    config_.validate();
  }

  /// The consumer ingested at least one heartbeat (or proved liveness on an
  /// empty queue) at `now`.
  void note_progress(TimePoint now) {
    CHENFD_EXPECTS(!now.is_infinite(),
                   "WatchdogPolicy::note_progress: now must be finite");
    last_progress_at_ = now;
    if (consecutive_restarts_ > 0 &&
        now - last_restart_at_ >= config_.healthy_interval) {
      consecutive_restarts_ = 0;
    }
  }

  /// One watchdog tick.  Decides whether the shard needs a restart at `now`
  /// given the consumer's liveness and whether work is waiting.
  [[nodiscard]] WatchdogAction poll(TimePoint now, bool consumer_alive,
                                    bool queue_nonempty) {
    CHENFD_EXPECTS(!now.is_infinite(),
                   "WatchdogPolicy::poll: now must be finite");
    const bool stalled =
        !consumer_alive ||
        (queue_nonempty && now - last_progress_at_ >= config_.stall_timeout);
    if (!stalled) return WatchdogAction::kNone;
    if (now < next_allowed_restart_) return WatchdogAction::kBackoff;
    ++consecutive_restarts_;
    last_restart_at_ = now;
    last_progress_at_ = now;  // grant the fresh consumer a full stall window
    Duration delay = config_.backoff_base;
    for (int i = 1; i < consecutive_restarts_ && delay < config_.backoff_cap;
         ++i) {
      delay *= 2.0;
    }
    if (delay > config_.backoff_cap) delay = config_.backoff_cap;
    next_allowed_restart_ = now + delay;
    return WatchdogAction::kRestart;
  }

  [[nodiscard]] int consecutive_restarts() const {
    return consecutive_restarts_;
  }
  [[nodiscard]] TimePoint next_allowed_restart() const {
    return next_allowed_restart_;
  }
  [[nodiscard]] TimePoint last_progress_at() const {
    return last_progress_at_;
  }
  [[nodiscard]] const WatchdogConfig& config() const { return config_; }

 private:
  WatchdogConfig config_;
  TimePoint last_progress_at_ = TimePoint::zero();
  TimePoint last_restart_at_ = TimePoint::zero();
  TimePoint next_allowed_restart_ = TimePoint::zero();
  int consecutive_restarts_ = 0;
};

}  // namespace chenfd::rt
