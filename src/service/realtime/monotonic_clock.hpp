// The one wall-clock source in the tree (DESIGN.md section 14).
//
// Every other component takes time from sim::Simulator or a clk::Clock;
// this file (and only this file) is on detlint R1's wallclock allow-list.
// chenfd_rtd and bench_rt_throughput construct one MonotonicClock and hand
// it to the realtime engine as a TimeSource — nothing downstream can tell
// it apart from the replay harness's VirtualTimeSource, which is exactly
// the property that keeps the daemon's overload and restart paths testable
// in deterministic virtual time.

#pragma once

#include "service/realtime/time_source.hpp"

namespace chenfd::rt {

/// Wall-clock TimeSource: now() is the steady-clock elapsed time since
/// construction plus the system-clock epoch captured *once* at
/// construction.  Readings are therefore monotone (immune to NTP steps
/// mid-run) while still being comparable across daemon restarts — which is
/// what lets a restarting daemon measure the age of a FileSnapshotStore
/// snapshot stamped by a previous incarnation.
class MonotonicClock final : public TimeSource {
 public:
  MonotonicClock();

  [[nodiscard]] TimePoint now() const override;
  void sleep_for(Duration d) const override;

  [[nodiscard]] TimePoint local(TimePoint real) const override {
    return real;
  }
  [[nodiscard]] TimePoint real(TimePoint local_time) const override {
    return local_time;
  }

 private:
  double epoch_s_;   ///< system-clock seconds at construction
  double origin_s_;  ///< steady-clock seconds at construction
};

}  // namespace chenfd::rt
