// Bounded lock-free MPSC ring (DESIGN.md section 14).
//
// One queue sits in front of every realtime fleet shard: any number of
// producer threads (transport callbacks, bench load generators) push
// heartbeats; exactly one consumer thread drains them into that shard's
// FleetMonitor.  The design is the classic bounded sequence-number ring
// (Vyukov): each slot carries an atomic sequence that encodes both "whose
// turn" and "which lap", so producers claim slots with one fetch_add and
// never touch a lock, and the consumer reads items in FIFO order without
// CAS loops.  Slots are cache-line padded — a producer writing slot i and
// the consumer reading slot i-1 must not false-share.
//
// Contract highlights:
//   - try_push never blocks and never spins unboundedly: when the ring is
//     full it fails immediately (the shedding policy decides what that
//     means — see policies.hpp);
//   - pop/pop_batch are single-consumer: two concurrent consumers are a
//     precondition violation, not a supported mode (shards share nothing,
//     so per-shard single consumers need no MPMC generality);
//   - capacity is rounded up to a power of two for mask arithmetic; the
//     *logical* admission bound lives in the engine, so the physical ring
//     size is not observable in replay output (determinism contract).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#include "common/check.hpp"

namespace chenfd::rt {

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] constexpr std::size_t ceil_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1U;
  return p;
}

template <typename T>
class MpscQueue {
 public:
  /// `capacity` is a minimum: the ring allocates the next power of two.
  explicit MpscQueue(std::size_t capacity)
      : capacity_(ceil_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {
    expects(capacity >= 1, "MpscQueue: capacity must be >= 1");
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Multi-producer, non-blocking: claims the tail slot and publishes
  /// `value`, or returns false when the ring is full.  Wait-free in the
  /// common case; on a lost race the producer re-reads the tail (bounded
  /// by the number of concurrent producers, never by the consumer).
  bool try_push(const T& value) {
    CHENFD_AUDIT(capacity_ != 0, "MpscQueue: pushed into a moved-from ring");
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // pos was refreshed by the failed CAS; retry with the new tail.
      } else if (diff < 0) {
        return false;  // full: the slot still holds an unconsumed lap
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    CHENFD_AUDIT(capacity_ != 0, "MpscQueue: popped from a moved-from ring");
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff < 0) return false;  // empty (or the producer is mid-publish)
    out = slot.value;
    slot.seq.store(pos + capacity_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Single-consumer batch pop: moves up to `max` items into `out` in FIFO
  /// order and returns how many were taken.
  std::size_t pop_batch(T* out, std::size_t max) {
    CHENFD_EXPECTS(out != nullptr || max == 0,
                   "MpscQueue::pop_batch: null output buffer");
    std::size_t n = 0;
    while (n < max && try_pop(out[n])) ++n;
    return n;
  }

  /// Items currently published and unconsumed (approximate under
  /// concurrency; exact when producers and the consumer are quiescent).
  [[nodiscard]] std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Steady-state heap footprint (slots are the only allocation).
  [[nodiscard]] std::size_t memory_bytes() const {
    return capacity_ * sizeof(Slot);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers claim here
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer reads here
};

}  // namespace chenfd::rt
