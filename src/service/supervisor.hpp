// Supervised crash-tolerant monitoring (DESIGN.md section 9).
//
// The paper's QoS analysis assumes the *monitor* q never fails; in a real
// deployment the monitoring process is as mortal as the process it watches.
// The MonitorSupervisor closes that gap on the q side: it owns the
// AdaptiveMonitor instance, periodically persists its full state to stable
// storage (persist/snapshot.hpp via a SnapshotStore), and when the monitor
// crashes — its heap, timers and estimator windows gone — drives a restart:
//
//   warm  — a fresh, structurally valid snapshot exists: a new monitor is
//           rehydrated from it.  The Eq. 6.3 window restores verbatim (p's
//           sending schedule survived the monitor's downtime, so the
//           normalized q-local arrival times are still a valid basis for
//           expected_arrival), which lets the detector re-trust on the
//           first live heartbeat instead of refilling a window; the
//           estimator windows slide forward by the heartbeats sent while
//           unobserved.  The restarted monitor latches qos_at_risk with
//           kWarmRestart until a post-restore heartbeat arrives and a
//           reconfiguration round revalidates the rehydrated estimates.
//
//   cold  — the snapshot is missing, corrupt (CRC / structural rejection),
//           stale, or the policy forbids warm restarts: a new monitor
//           starts from conservative Chebyshev-bound parameters — the
//           Section 6 configuration procedure (Theorems 9-11 bounds) run
//           against pessimistic loss/variance assumptions — so the
//           registered detection bound holds even on a worse network than
//           the one last observed.  It latches kPostDisruption until live
//           estimates revalidate the target.
//
// The supervisor is itself the FailureDetector the testbed sees: it
// forwards heartbeat deliveries to the current monitor incarnation and
// relays its output transitions, so Testbed::attach keeps one stable
// pointer across arbitrarily many monitor crashes.  While the monitor is
// down the supervisor's output is Suspect — with nobody home to judge
// freshness, trusting would be a lie.
//
// The supervisor also fronts the application registry (Section 8.1.1):
// register/update/deregister push the merged requirement into the running
// monitor, and the registry contents ride along in every snapshot so a
// warm restart restores the demand set, not just the estimator state.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "clock/clock.hpp"
#include "core/failure_detector.hpp"
#include "core/heartbeat_sender.hpp"
#include "persist/snapshot.hpp"
#include "persist/store.hpp"
#include "service/adaptive.hpp"
#include "service/registry.hpp"
#include "sim/simulator.hpp"

namespace chenfd::service {

class MonitorSupervisor final : public core::FailureDetector {
 public:
  enum class RestartPolicy {
    kWarmPreferred,  ///< warm when a fresh valid snapshot exists, else cold
    kColdAlways,     ///< never rehydrate (distrust-storage baseline)
  };

  struct Options {
    /// Construction template for every monitor incarnation.
    AdaptiveMonitor::Options monitor;
    Duration snapshot_interval = seconds(30.0);
    /// Snapshots older than this (q-local) are stale: the network regime
    /// they encode may be gone, so they trigger a cold restart.
    Duration max_snapshot_age = seconds(300.0);
    RestartPolicy policy = RestartPolicy::kWarmPreferred;
    /// Pessimistic network assumptions for the cold-restart configuration
    /// (Theorems 9-11): loss probability and delay variance (s^2) assumed
    /// when no trustworthy estimate survived the crash.
    double cold_loss_assumption = 0.3;
    double cold_variance_assumption = 0.01;
  };

  MonitorSupervisor(sim::Simulator& simulator, const clk::Clock& q_clock,
                    core::HeartbeatSender& sender,
                    persist::SnapshotStore& store, Options options);

  /// Starts supervision: brings up the first monitor incarnation and arms
  /// the periodic snapshot timer.  Called by Testbed::start().
  void activate() override;
  void on_heartbeat(const net::Message& m, TimePoint real_now) override;

  // ---- crash / restart (fault-injection entry points) --------------------

  /// Kills the current monitor: every in-memory structure — detector
  /// window, estimator components, risk latches, pending timers — is
  /// destroyed.  Stable storage (the snapshot store) survives; the
  /// supervisor's output drops to Suspect.
  void crash_monitor();

  /// Brings up a new monitor incarnation, warm or cold per the policy and
  /// the stored snapshot's state (see file comment).
  void restart_monitor();

  // ---- election piggyback (DESIGN.md section 12) -------------------------

  /// Contributes the Omega elector's state to every periodic snapshot.
  using ElectionExporter = std::function<persist::ElectionState()>;
  /// Invoked on every restart decision: with the snapshot's election state
  /// and warm=true when the monitor restarts warm from a snapshot carrying
  /// one, with nullopt and warm=false otherwise (cold restart, stale or
  /// election-less snapshot) — the elector must then fall back to follower.
  using ElectionRestorer =
      std::function<void(const std::optional<persist::ElectionState>&, bool)>;

  /// Attaches an election service's state to this supervisor's snapshot
  /// cycle.  Both hooks must be non-null; call before activate() so the
  /// first snapshot already carries the election section.
  void set_election_hooks(ElectionExporter exporter,
                          ElectionRestorer restorer);

  // ---- fleet piggyback (DESIGN.md section 13) ----------------------------

  /// Contributes the fleet engine's per-shard summary to every periodic
  /// snapshot (a summary, not the full table — see persist/snapshot.hpp).
  using FleetExporter = std::function<persist::FleetState()>;
  /// Invoked on every restart decision: with the snapshot's fleet state
  /// and warm=true when the monitor restarts warm from a snapshot carrying
  /// one, with nullopt and warm=false otherwise — the fleet engine resets
  /// to all-suspect soft state either way (FleetMonitor::restore_summary).
  using FleetRestorer =
      std::function<void(const std::optional<persist::FleetState>&, bool)>;

  /// Attaches a fleet engine's summary to this supervisor's snapshot
  /// cycle.  Both hooks must be non-null; call before activate() so the
  /// first snapshot already carries the fleet section.
  void set_fleet_hooks(FleetExporter exporter, FleetRestorer restorer);

  // ---- application registry facade (Section 8.1.1) -----------------------

  AppId register_app(const core::RelativeRequirements& req);
  bool update_app(AppId id, const core::RelativeRequirements& req);
  bool deregister_app(AppId id);
  [[nodiscard]] std::size_t app_count() const { return registry_.size(); }

  // ---- observability -----------------------------------------------------

  /// The live monitor, or nullptr while crashed.
  [[nodiscard]] const AdaptiveMonitor* monitor() const {
    return monitor_.get();
  }
  [[nodiscard]] bool monitor_alive() const { return monitor_ != nullptr; }
  [[nodiscard]] std::size_t warm_restarts() const { return warm_restarts_; }
  [[nodiscard]] std::size_t cold_restarts() const { return cold_restarts_; }
  [[nodiscard]] std::size_t snapshots_taken() const {
    return snapshots_taken_;
  }
  /// Snapshots rejected at restart (corrupt / unsupported / stale).
  [[nodiscard]] std::size_t snapshot_rejects() const {
    return snapshot_rejects_;
  }
  /// Human-readable reason for the most recent restart decision.
  [[nodiscard]] const std::string& last_restart_detail() const {
    return last_restart_detail_;
  }

 private:
  void take_snapshot();
  void arm_snapshot_timer();
  [[nodiscard]] std::unique_ptr<AdaptiveMonitor> make_monitor(
      const AdaptiveMonitor::Options& options);
  void warm_restart(const persist::MonitorSnapshot& snap, TimePoint local_now);
  void cold_restart();

  sim::Simulator& sim_;
  const clk::Clock& q_clock_;
  core::HeartbeatSender& sender_;
  persist::SnapshotStore& store_;
  Options options_;
  RelativeRequirementRegistry registry_;
  std::unique_ptr<AdaptiveMonitor> monitor_;
  sim::EventId snapshot_timer_ = 0;
  bool started_ = false;
  std::size_t warm_restarts_ = 0;
  std::size_t cold_restarts_ = 0;
  std::size_t snapshots_taken_ = 0;
  std::size_t snapshot_rejects_ = 0;
  std::string last_restart_detail_;
  ElectionExporter election_exporter_;
  ElectionRestorer election_restorer_;
  FleetExporter fleet_exporter_;
  FleetRestorer fleet_restorer_;
};

}  // namespace chenfd::service
