#include "runner/thread_pool.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace chenfd::runner {
namespace {

/// One worker's task deque.  The owner pops from the front; thieves take
/// from the back, so the owner keeps the cache-warm low indices it was
/// dealt and thieves walk off with the work furthest from it.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<std::size_t> tasks;
};

class WorkStealingPool {
 public:
  WorkStealingPool(std::size_t n_tasks, unsigned workers)
      : queues_(workers) {
    for (std::size_t i = 0; i < n_tasks; ++i) {
      queues_[i % workers].tasks.push_back(i);
    }
  }

  void run(const std::function<void(std::size_t)>& body) {
    std::vector<std::thread> threads;
    threads.reserve(queues_.size());
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      threads.emplace_back([this, w, &body] { worker_loop(w, body); });
    }
    for (auto& t : threads) t.join();
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  void worker_loop(std::size_t self,
                   const std::function<void(std::size_t)>& body) {
    while (true) {
      std::size_t task;
      if (!pop_own(self, task) && !steal(self, task)) return;
      try {
        body(task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }

  bool pop_own(std::size_t self, std::size_t& task) {
    auto& q = queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) return false;
    task = q.tasks.front();
    q.tasks.pop_front();
    return true;
  }

  bool steal(std::size_t self, std::size_t& task) {
    const std::size_t n = queues_.size();
    for (std::size_t step = 1; step < n; ++step) {
      auto& victim = queues_[(self + step) % n];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (victim.tasks.empty()) continue;
      task = victim.tasks.back();
      victim.tasks.pop_back();
      return true;
    }
    return false;
  }

  std::vector<WorkerQueue> queues_;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  return std::max(1u, std::thread::hardware_concurrency());
}

void run_indexed(std::size_t n_tasks, unsigned jobs,
                 const std::function<void(std::size_t)>& body) {
  if (n_tasks == 0) return;
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      resolve_jobs(jobs), n_tasks));
  if (workers == 1) {
    for (std::size_t i = 0; i < n_tasks; ++i) body(i);
    return;
  }
  WorkStealingPool pool(n_tasks, workers);
  pool.run(body);
}

}  // namespace chenfd::runner
