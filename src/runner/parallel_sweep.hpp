// Deterministic parallel Monte-Carlo runner for sweeps and replications.
//
// A sweep is a grid of (sweep-point × replication) simulation tasks.  The
// runner fans the grid across a work-stealing thread pool
// (runner::run_indexed) and merges per-task statistics into one result per
// sweep point.  Two rules make the output bit-identical for any thread
// count, including --jobs 1:
//
//   1. Per-task RNG substreams.  Task i draws from substream i of the root
//      seed: Rng(root_seed) advanced by i xoshiro256++ jumps (2^128 draws
//      apart, so streams never overlap).  Substream 0 is Rng(root_seed)
//      itself, which keeps single-task runs identical to the pre-runner
//      serial code paths.
//   2. Ordered reduction.  Per-task results land in index-addressed slots
//      and are merged in ascending task index after the pool drains, so
//      floating-point accumulation order never depends on which thread
//      finished first.
//
// The runner drives both the fast heartbeat-level engines
// (core::fast_nfd_s_accuracy and friends, wrapped by the *_task factories
// below) and the discrete-event reference drivers (core::run_accuracy /
// core::measure_detection_times via a core::DetectorFactory).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "core/experiments.hpp"
#include "core/fast_sim.hpp"
#include "qos/recorder.hpp"
#include "runner/arena.hpp"
#include "runner/thread_pool.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::runner {

struct RunnerOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned jobs = 0;
};

/// Builds the n non-overlapping substreams of `root_seed` used for tasks
/// 0..n-1 (one jump apart each; see file comment).  Exposed for tests.
[[nodiscard]] std::vector<Rng> make_substreams(std::uint64_t root_seed,
                                               std::size_t n);

/// One cell of the task grid: runs a single simulation drawing all its
/// randomness from the supplied task-private generator and all its scratch
/// memory from the supplied task-private arena (reset before each task, so
/// a warm worker's tasks never touch the global heap for scratch).
using AccuracyTask =
    std::function<core::AccuracyResult(Rng&, MonotonicArena&)>;

class ParallelSweep {
 public:
  explicit ParallelSweep(RunnerOptions opts = {}) : opts_(opts) {}

  /// Runs `replications` independent replications of every sweep point and
  /// returns one merged AccuracyResult per point (replications merged in
  /// ascending replication index).  Task (p, r) uses substream
  /// p * replications + r of `root_seed`.
  [[nodiscard]] std::vector<core::AccuracyResult> run(
      const std::vector<AccuracyTask>& points, std::size_t replications,
      std::uint64_t root_seed) const;

  /// Single-point convenience: replications of one task, merged.
  [[nodiscard]] core::AccuracyResult run_one(const AccuracyTask& task,
                                             std::size_t replications,
                                             std::uint64_t root_seed) const;

 private:
  RunnerOptions opts_;
};

/// Generic deterministic parallel map: result[i] = fn(i, substream_i) for
/// i in [0, n).  Same substream/ordering rules as ParallelSweep.
template <typename R>
[[nodiscard]] std::vector<R> parallel_map(
    std::size_t n, std::uint64_t root_seed, const RunnerOptions& opts,
    const std::function<R(std::size_t, Rng&)>& fn) {
  std::vector<Rng> streams = make_substreams(root_seed, n);
  std::vector<R> results(n);
  run_indexed(n, opts.jobs,
              [&](std::size_t i) { results[i] = fn(i, streams[i]); });
  return results;
}

// ---- task factories for the fast heartbeat-level engines ----------------
// Each factory compiles the delay distribution once (core::CompiledSampler;
// immutable, so one compiled sampler is shared by every replication on
// every worker) and returns a self-contained task safe to run on any
// worker thread after the caller's arguments have gone out of scope.

[[nodiscard]] AccuracyTask nfd_s_task(core::NfdSParams params, double p_loss,
                                      const dist::DelayDistribution& delay,
                                      core::StopCriteria stop = {});

[[nodiscard]] AccuracyTask nfd_e_task(core::NfdEParams params, double p_loss,
                                      const dist::DelayDistribution& delay,
                                      core::StopCriteria stop = {});

[[nodiscard]] AccuracyTask sfd_task(core::SfdParams params, Duration eta,
                                    double p_loss,
                                    const dist::DelayDistribution& delay,
                                    core::StopCriteria stop = {});

// ---- discrete-event reference drivers -----------------------------------
// The DetectorFactory is invoked concurrently from worker threads (once per
// replication/chunk, each against its own Testbed); factories must not
// mutate shared state.

/// Converts a finished qos::Recorder into an AccuracyResult so DES runs can
/// be merged alongside fast-engine runs.  The DES path does not count
/// heartbeats, so `heartbeats` stays 0.
[[nodiscard]] core::AccuracyResult to_accuracy_result(
    const qos::Recorder& recorder);

/// Task running one core::run_accuracy window.  The experiment's seed field
/// is overwritten per replication with a draw from the task substream.
[[nodiscard]] AccuracyTask des_accuracy_task(core::DetectorFactory factory,
                                             double p_loss,
                                             const dist::DelayDistribution& delay,
                                             core::AccuracyExperiment exp);

/// Parallel core::measure_detection_times: splits exp.runs into fixed-size
/// chunks of `kDetectionChunk` runs (the decomposition is independent of the
/// thread count, preserving determinism), runs the chunks on the pool, and
/// merges the T_D samples in chunk order.
inline constexpr std::size_t kDetectionChunk = 32;
[[nodiscard]] stats::SampleSet parallel_detection_times(
    const core::DetectorFactory& factory, const core::NetworkModel& model,
    core::DetectionExperiment exp, const RunnerOptions& opts = {});

}  // namespace chenfd::runner
