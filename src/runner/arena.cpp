#include "runner/arena.hpp"

namespace chenfd::runner {

ArenaLease::~ArenaLease() {
  if (pool_ != nullptr) pool_->release(arena_);
}

ArenaLease ArenaPool::acquire() {
  MonotonicArena* arena = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      arena = idle_.back();
      idle_.pop_back();
    } else {
      all_.push_back(std::make_unique<MonotonicArena>(block_bytes_));
      arena = all_.back().get();
    }
  }
  arena->reset();
  return {this, arena};
}

void ArenaPool::release(MonotonicArena* arena) {
  const std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(arena);
}

std::size_t ArenaPool::arena_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return all_.size();
}

std::size_t ArenaPool::total_blocks() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& a : all_) total += a->block_count();
  return total;
}

}  // namespace chenfd::runner
