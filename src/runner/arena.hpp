// Per-task arenas for ParallelSweep workers.
//
// Every fast-engine run needs scratch memory (SoA receipt blocks, window
// rings, the in-flight heap).  With tasks fanned across a work-stealing
// pool, allocating that scratch from the global heap serializes workers on
// the allocator lock and churns cache lines.  ArenaPool keeps one
// MonotonicArena per concurrent worker: a worker leases an arena for the
// duration of one task, the lease resets the arena (recycling its blocks)
// and returns it on destruction, so after each worker's first task no
// per-task scratch allocation reaches the global heap.
//
// The pool is thread-safe; a leased arena is thread-confined (exactly one
// worker holds it until the lease is released).

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/arena.hpp"

namespace chenfd::runner {

class ArenaPool;

/// RAII lease of one arena.  Movable, not copyable; returns the arena to
/// the pool on destruction.  The arena is reset when leased, so a task
/// always starts from an empty (but warm) arena.
class ArenaLease {
 public:
  ArenaLease(ArenaLease&& other) noexcept
      : pool_(other.pool_), arena_(other.arena_) {
    other.pool_ = nullptr;
    other.arena_ = nullptr;
  }
  ArenaLease& operator=(ArenaLease&&) = delete;
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  ~ArenaLease();

  [[nodiscard]] MonotonicArena& arena() { return *arena_; }

 private:
  friend class ArenaPool;
  ArenaLease(ArenaPool* pool, MonotonicArena* arena)
      : pool_(pool), arena_(arena) {}

  ArenaPool* pool_;
  MonotonicArena* arena_;
};

/// A grow-on-demand pool of reusable arenas.  Holds at most as many arenas
/// as the peak number of concurrent leases — with ParallelSweep, one per
/// worker thread.
class ArenaPool {
 public:
  explicit ArenaPool(
      std::size_t block_bytes = MonotonicArena::kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  /// Leases an idle arena (reset, blocks recycled), creating one only when
  /// every existing arena is on lease.
  [[nodiscard]] ArenaLease acquire();

  /// Number of arenas ever created == peak concurrent leases so far.
  [[nodiscard]] std::size_t arena_count() const;

  /// Total backing-block heap traffic across all arenas: stable across
  /// repeated sweeps once the pool is warm (asserted in tests).
  [[nodiscard]] std::size_t total_blocks() const;

 private:
  friend class ArenaLease;
  void release(MonotonicArena* arena);

  std::size_t block_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MonotonicArena>> all_;
  std::vector<MonotonicArena*> idle_;
};

}  // namespace chenfd::runner
