// A small work-stealing thread pool for independent, index-addressed tasks.
//
// Monte-Carlo sweeps decompose into a grid of independent simulations whose
// runtimes vary by orders of magnitude (an accurate NFD-S point needs ~10^8
// heartbeats to observe 500 mistakes; a loose one needs ~10^5).  Static
// partitioning would leave most workers idle behind the slowest shard, so
// the pool deals task indices round-robin into per-worker deques and lets
// idle workers steal from the back of busy ones.
//
// Determinism contract: the pool only decides *where and when* a task runs,
// never what it computes — tasks receive their index, derive all randomness
// from it (see runner::make_substreams), and write results into
// caller-owned, index-addressed slots.  Scheduling is therefore invisible
// in the output.

#pragma once

#include <cstddef>
#include <functional>

namespace chenfd::runner {

/// Resolves a --jobs style value: 0 means "one worker per hardware thread",
/// anything else is used as-is (minimum 1).
[[nodiscard]] unsigned resolve_jobs(unsigned jobs);

/// Runs body(0), body(1), ..., body(n_tasks - 1), each exactly once, across
/// `jobs` worker threads (resolved via resolve_jobs).  Blocks until every
/// task has finished.  With jobs == 1 the tasks run inline on the calling
/// thread in index order, with no threads spawned.  If any task throws, the
/// first exception (in worker-observation order) is rethrown after all
/// workers have drained.
void run_indexed(std::size_t n_tasks, unsigned jobs,
                 const std::function<void(std::size_t)>& body);

}  // namespace chenfd::runner
