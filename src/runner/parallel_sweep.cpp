#include "runner/parallel_sweep.hpp"

#include <memory>
#include <utility>

namespace chenfd::runner {

std::vector<Rng> make_substreams(std::uint64_t root_seed, std::size_t n) {
  std::vector<Rng> streams;
  streams.reserve(n);
  Rng base(root_seed);
  for (std::size_t i = 0; i < n; ++i) {
    streams.push_back(base);
    base.jump();
  }
  return streams;
}

std::vector<core::AccuracyResult> ParallelSweep::run(
    const std::vector<AccuracyTask>& points, std::size_t replications,
    std::uint64_t root_seed) const {
  if (points.empty() || replications == 0) return {};
  const std::size_t n_tasks = points.size() * replications;
  std::vector<Rng> streams = make_substreams(root_seed, n_tasks);
  std::vector<core::AccuracyResult> per_task(n_tasks);
  // One reusable arena per concurrent worker: a task leases an arena for
  // its duration, so after each worker's first task the engines' scratch
  // (receipt blocks, window rings, in-flight heaps) recycles warm blocks
  // instead of hitting the global allocator.
  ArenaPool arenas;
  run_indexed(n_tasks, opts_.jobs, [&](std::size_t i) {
    ArenaLease lease = arenas.acquire();
    per_task[i] = points[i / replications](streams[i], lease.arena());
  });
  // Ordered reduction: replication r of point p sits at p*replications + r,
  // merged in ascending r — independent of completion order.  Merging into
  // a fresh accumulator (rather than moving replication 0) keeps the merged
  // reservoirs at full capacity even though per-task results pre-size
  // theirs from the stop criteria; merging into an empty result is an exact
  // copy, so the reduction stays bit-identical.
  std::vector<core::AccuracyResult> merged(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t r = 0; r < replications; ++r) {
      merged[p].merge(per_task[p * replications + r]);
    }
  }
  return merged;
}

core::AccuracyResult ParallelSweep::run_one(const AccuracyTask& task,
                                            std::size_t replications,
                                            std::uint64_t root_seed) const {
  auto merged = run({task}, replications, root_seed);
  return merged.empty() ? core::AccuracyResult{} : std::move(merged.front());
}

AccuracyTask nfd_s_task(core::NfdSParams params, double p_loss,
                        const dist::DelayDistribution& delay,
                        core::StopCriteria stop) {
  auto sampler = std::make_shared<const core::CompiledSampler>(delay);
  return [params, p_loss, sampler, stop](Rng& rng, MonotonicArena& arena) {
    return core::fast_nfd_s_accuracy(params, p_loss, *sampler, rng, stop,
                                     &arena);
  };
}

AccuracyTask nfd_e_task(core::NfdEParams params, double p_loss,
                        const dist::DelayDistribution& delay,
                        core::StopCriteria stop) {
  auto sampler = std::make_shared<const core::CompiledSampler>(delay);
  return [params, p_loss, sampler, stop](Rng& rng, MonotonicArena& arena) {
    return core::fast_nfd_e_accuracy(params, p_loss, *sampler, rng, stop,
                                     &arena);
  };
}

AccuracyTask sfd_task(core::SfdParams params, Duration eta, double p_loss,
                      const dist::DelayDistribution& delay,
                      core::StopCriteria stop) {
  auto sampler = std::make_shared<const core::CompiledSampler>(delay);
  return [params, eta, p_loss, sampler, stop](Rng& rng,
                                              MonotonicArena& arena) {
    return core::fast_sfd_accuracy(params, eta, p_loss, *sampler, rng, stop,
                                   &arena);
  };
}

core::AccuracyResult to_accuracy_result(const qos::Recorder& recorder) {
  core::AccuracyResult out;
  out.observed_seconds = recorder.elapsed().seconds();
  out.trust_seconds = recorder.query_accuracy() * out.observed_seconds;
  out.s_transitions = recorder.s_transitions();
  out.mistake_recurrence.merge(recorder.mistake_recurrence());
  out.mistake_duration.merge(recorder.mistake_duration());
  out.good_period.merge(recorder.good_period());
  return out;
}

AccuracyTask des_accuracy_task(core::DetectorFactory factory, double p_loss,
                               const dist::DelayDistribution& delay,
                               core::AccuracyExperiment exp) {
  std::shared_ptr<const dist::DelayDistribution> d = delay.clone();
  return [factory = std::move(factory), p_loss, d, exp](Rng& rng,
                                                        MonotonicArena&) {
    core::AccuracyExperiment task_exp = exp;
    task_exp.seed = rng();
    const core::NetworkModel model{p_loss, *d};
    return to_accuracy_result(core::run_accuracy(factory, model, task_exp));
  };
}

stats::SampleSet parallel_detection_times(const core::DetectorFactory& factory,
                                          const core::NetworkModel& model,
                                          core::DetectionExperiment exp,
                                          const RunnerOptions& opts) {
  stats::SampleSet merged(exp.runs);
  if (exp.runs == 0) return merged;
  const std::size_t n_chunks =
      (exp.runs + kDetectionChunk - 1) / kDetectionChunk;
  std::shared_ptr<const dist::DelayDistribution> d = model.delay.clone();
  const double p_loss = model.p_loss;
  std::vector<stats::SampleSet> chunks = parallel_map<stats::SampleSet>(
      n_chunks, exp.seed, opts,
      [&factory, &exp, d, p_loss, n_chunks](std::size_t c, Rng& rng) {
        core::DetectionExperiment chunk_exp = exp;
        chunk_exp.runs = (c + 1 < n_chunks || exp.runs % kDetectionChunk == 0)
                             ? kDetectionChunk
                             : exp.runs % kDetectionChunk;
        chunk_exp.seed = rng();
        const core::NetworkModel chunk_model{p_loss, *d};
        return core::measure_detection_times(factory, chunk_model, chunk_exp);
      });
  for (const auto& chunk : chunks) merged.merge(chunk);
  return merged;
}

}  // namespace chenfd::runner
