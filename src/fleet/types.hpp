// Plain-data vocabulary of the fleet monitoring engine (DESIGN.md §13).
//
// The per-pair detectors in src/core/ are objects wired to a simulator; at
// 10^5–10^6 monitored processes the fleet engine instead works on dense
// indices and POD records, so everything here is trivially copyable and
// free of behavior.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/check.hpp"
#include "common/time.hpp"
#include "common/verdict.hpp"
#include "core/params.hpp"
#include "net/message.hpp"

namespace chenfd::fleet {

/// Dense index of a monitored process in [0, FleetOptions::processes).
using ProcessIndex = std::uint32_t;

/// One received heartbeat, already timestamped by the monitor.  Sequence
/// numbers start at 1 and continue across crash/recovery; the incarnation
/// bumps on each recovery (crash-recovery model, DESIGN.md §12).
struct Heartbeat {
  ProcessIndex process = 0;
  std::uint32_t incarnation = 0;
  net::SeqNo seq = 0;
  TimePoint arrival;  ///< receipt time at the monitor (real time)
};

/// A suspicion-level change of one monitored process.  `at` is the exact
/// (unquantized) instant: heartbeat arrival for trust, the Eq. 6.3
/// freshness point for suspicion.
struct Transition {
  TimePoint at;
  ProcessIndex process = 0;
  Verdict to = Verdict::kSuspect;

  friend constexpr bool operator==(const Transition&,
                                   const Transition&) = default;
};

struct FleetOptions {
  std::size_t processes = 0;
  std::size_t shards = 1;
  core::NfdEParams params;
  /// Tick size of the freshness-expiry timing wheel; zero means eta / 8.
  /// Granularity affects only *when* an expiry is noticed by advance(), not
  /// the emitted timestamps — those are the stored exact freshness points.
  Duration wheel_resolution = Duration(0.0);
  /// Global index of this engine's first process: heartbeat ids live in
  /// [first_process, first_process + processes) and transitions carry the
  /// same global ids.  Lets a front-end (service/realtime) run one
  /// FleetMonitor per partition of a larger fleet without renumbering.
  ProcessIndex first_process = 0;

  void validate() const {
    CHENFD_EXPECTS(processes >= 1, "FleetOptions: processes must be >= 1");
    CHENFD_EXPECTS(shards >= 1, "FleetOptions: shards must be >= 1");
    CHENFD_EXPECTS(shards <= processes,
                   "FleetOptions: more shards than processes");
    params.validate();
    CHENFD_EXPECTS(wheel_resolution >= Duration::zero(),
                   "FleetOptions: wheel resolution must be >= 0");
    CHENFD_EXPECTS(processes <= std::numeric_limits<ProcessIndex>::max() -
                                    first_process,
                   "FleetOptions: first_process + processes overflows "
                   "ProcessIndex");
  }

  [[nodiscard]] Duration resolution() const {
    return wheel_resolution > Duration::zero()
               ? wheel_resolution
               : Duration(params.eta.seconds() / 8.0);
  }
};

}  // namespace chenfd::fleet
