// FleetMonitor — a sharded NFD-E engine monitoring 10^4–10^6 processes in
// one address space (DESIGN.md §13).
//
// Each monitored process gets one row of a struct-of-arrays table inside
// its shard: incarnation, largest-seen sequence number, freshness epoch,
// the Eq. 6.3 ring (count/next-slot/running-sum plus a flat ring arena),
// the current freshness point, and the trust latch.  Freshness expiry is
// driven by a per-shard hierarchical timing wheel (timing_wheel.hpp), so a
// heartbeat costs O(1) amortized rather than the O(log n) heap ops of the
// per-pair path; around 70 + 8*window bytes per process all-in.
//
// Determinism contract (pinned by tests/test_fleet.cpp): the drained
// transition stream is a pure function of the heartbeat stream — it does
// not depend on the shard count or on the wheel resolution.  Three rules
// make that hold:
//
//   1. transitions carry *exact* timestamps: the heartbeat arrival for
//      trust, the stored (unquantized) Eq. 6.3 freshness point for
//      suspicion — never a wheel tick;
//   2. before a heartbeat is applied, its process's own overdue freshness
//      point is fired (the catch-up check), so a per-process outcome never
//      depends on when the coarse wheel happened to notice the expiry;
//   3. per-process streams are generated independently (all heartbeats of
//      a process land in one shard, in ingest order) and the global drain
//      stable-sorts by (time, process), which is a total order across
//      shards of every same-time pair.
//
// The per-pair NfdE object remains the reference implementation; the
// single-process parity test in test_fleet.cpp pins this engine to it.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fleet/timing_wheel.hpp"
#include "fleet/types.hpp"
#include "persist/snapshot.hpp"

namespace chenfd::fleet {

class FleetMonitor {
 public:
  explicit FleetMonitor(FleetOptions opts);

  /// Applies a batch of heartbeats.  The batch must be sorted by arrival
  /// time, and no arrival may precede the engine's high-water mark (the
  /// latest arrival already ingested) — heartbeat *reordering across
  /// batches* is the transport's problem; within the engine time moves
  /// forward.  Sequence numbers start at 1.
  void ingest(std::span<const Heartbeat> batch);

  /// Advances every shard's wheel to `to`, firing freshness expiries whose
  /// deadline tick has passed.  Granular: an expiry within the last
  /// partial tick is noticed by the next advance()/ingest()/close() that
  /// crosses it (its emitted timestamp is exact regardless).
  void advance(TimePoint to);

  /// Exact end-of-run flush: fires every pending freshness point <= horizon
  /// directly from the process table (no tick rounding).  The wheel's
  /// remaining entries are discarded; the engine stays usable only for
  /// draining and inspection afterwards.
  void close(TimePoint horizon);

  /// Moves out all transitions emitted since the last drain, merged across
  /// shards and stable-sorted by (time, process).
  [[nodiscard]] std::vector<Transition> drain_transitions();

  // ---- observability ----------------------------------------------------

  [[nodiscard]] std::size_t processes() const { return opts_.processes; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Verdict verdict(ProcessIndex id) const;
  [[nodiscard]] std::uint32_t incarnation(ProcessIndex id) const;
  [[nodiscard]] std::uint32_t window_count(ProcessIndex id) const;

  [[nodiscard]] std::uint64_t heartbeats() const { return heartbeats_; }
  [[nodiscard]] std::uint64_t dropped_stale() const { return dropped_stale_; }
  [[nodiscard]] std::uint64_t dropped_pre_epoch() const {
    return dropped_pre_epoch_;
  }
  [[nodiscard]] std::uint64_t dropped_duplicate() const {
    return dropped_duplicate_;
  }
  [[nodiscard]] std::uint64_t suspects() const { return suspects_; }
  [[nodiscard]] std::uint64_t trusts() const { return trusts_; }

  /// Steady-state heap footprint of the process table, rings, wheels and
  /// transition buffers (vector capacities, not just sizes).
  [[nodiscard]] std::size_t memory_bytes() const;

  // ---- supervisor persistence (soft-state summary; see snapshot.hpp) ----

  [[nodiscard]] persist::FleetState export_summary() const;

  /// Warm restart (`state` present, `warm` true): validates that the
  /// summary's shape matches this engine (process count, shard layout) and
  /// resumes from all-suspect soft state — every live process re-trusts on
  /// its first heartbeat.  Cold restart (`warm` false or no state): the
  /// same reset without the shape check.
  void restore_summary(const std::optional<persist::FleetState>& state,
                       bool warm);

 private:
  struct Shard {
    ProcessIndex first = 0;  ///< global index of member 0
    // Parallel per-member arrays (struct of arrays).
    std::vector<std::uint32_t> incarnation;
    std::vector<std::uint64_t> ell;        ///< largest seq processed (0 = none)
    std::vector<std::uint64_t> epoch;      ///< Eq. 6.3 epoch seq
    std::vector<std::uint32_t> win_count;  ///< entries in the Eq. 6.3 ring
    std::vector<std::uint32_t> win_next;   ///< next ring slot to overwrite
    std::vector<double> win_sum;           ///< running normalized sum
    std::vector<double> fresh_point;       ///< exact tau while trusted
    std::vector<std::uint8_t> trusted;
    std::vector<double> ring;              ///< members * window, flat
    TimingWheel wheel;
    std::vector<Transition> log;

    Shard(ProcessIndex first_id, std::size_t members, std::size_t window)
        : first(first_id),
          incarnation(members, 0),
          ell(members, 0),
          epoch(members, 0),
          win_count(members, 0),
          win_next(members, 0),
          win_sum(members, 0.0),
          fresh_point(members, 0.0),
          trusted(members, 0),
          ring(members * window, 0.0),
          wheel(members) {}

    [[nodiscard]] std::size_t members() const { return incarnation.size(); }
  };

  [[nodiscard]] std::size_t shard_of(ProcessIndex id) const;
  void apply(Shard& shard, const Heartbeat& hb);
  void fire(Shard& shard, std::uint32_t member);
  void advance_shard(Shard& shard, TimingWheel::Tick to_tick);
  void reset_soft_state();

  FleetOptions opts_;
  double resolution_s_;
  std::size_t big_shards_;       ///< shards holding base_members_ + 1
  std::size_t base_members_;     ///< processes / shards
  std::vector<Shard> shards_;
  double watermark_s_ = 0.0;     ///< latest ingested arrival
  std::uint64_t heartbeats_ = 0;
  std::uint64_t dropped_stale_ = 0;
  std::uint64_t dropped_pre_epoch_ = 0;
  std::uint64_t dropped_duplicate_ = 0;
  std::uint64_t suspects_ = 0;
  std::uint64_t trusts_ = 0;
};

}  // namespace chenfd::fleet
