#include "fleet/workload.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/rng.hpp"
#include "common/verdict.hpp"
#include "fault/fault_plan.hpp"
#include "persist/crc32.hpp"

namespace chenfd::fleet {

namespace {

/// Stateless draw: one SplitMix64 step keyed by (seed, process, slot,
/// purpose).  Every heartbeat attribute is a pure function of its
/// coordinates, so generation order can never leak into the stream.
std::uint64_t draw(std::uint64_t seed, std::uint64_t process,
                   std::uint64_t slot, std::uint64_t purpose) {
  SplitMix64 sm(seed ^ (process * 0x9E3779B97F4A7C15ULL) ^
                (slot * 0xC2B2AE3D27D4EB4FULL) ^
                (purpose * 0x165667B19E3779F9ULL));
  return sm.next();
}

double unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

enum Purpose : std::uint64_t { kPhase = 1, kLoss = 2, kDelay = 3 };

}  // namespace

std::vector<Heartbeat> generate_workload(const WorkloadOptions& opts,
                                         const fault::FaultPlan* faults) {
  opts.validate();
  const double eta_s = opts.eta.seconds();
  const double delay_span =
      opts.delay_max.seconds() - opts.delay_min.seconds();
  std::vector<Heartbeat> out;
  out.reserve(opts.processes * opts.slots);
  for (std::size_t g = 0; g < opts.processes; ++g) {
    // Sending phases are staggered across [0, 0.1 * eta) so a million
    // processes do not all heartbeat on the same instant.
    const double phase = unit(draw(opts.seed, g, 0, kPhase)) * 0.1 * eta_s;
    std::vector<fault::Window> down;
    if (faults != nullptr) down = faults->downtime_windows(g);
    for (std::uint64_t s = 1; s <= opts.slots; ++s) {
      const double sigma = phase + static_cast<double>(s - 1) * eta_s;
      // Crash-recovery model: no sends while down; the incarnation counts
      // completed downtime windows (bumps at each recovery); sequence
      // numbers continue across the outage.
      std::uint32_t incarnation = 0;
      bool suppressed = false;
      for (const fault::Window& w : down) {
        if (sigma >= w.begin.seconds() && sigma < w.end.seconds()) {
          suppressed = true;
          break;
        }
        if (w.end.seconds() <= sigma) ++incarnation;
      }
      if (suppressed) continue;
      if (unit(draw(opts.seed, g, s, kLoss)) < opts.loss_prob) continue;
      const double delay =
          opts.delay_min.seconds() +
          unit(draw(opts.seed, g, s, kDelay)) * delay_span;
      Heartbeat hb;
      hb.process = static_cast<ProcessIndex>(g);
      hb.incarnation = incarnation;
      hb.seq = s;
      hb.arrival = TimePoint(sigma + delay);
      out.push_back(hb);
    }
  }
  std::sort(out.begin(), out.end(), [](const Heartbeat& a, const Heartbeat& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.process != b.process) return a.process < b.process;
    return a.seq < b.seq;
  });
  return out;
}

std::uint32_t stream_crc(const std::vector<Transition>& ts) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const Transition& t : ts) {
    os << t.at.seconds() << " " << t.process << " " << to_string(t.to)
       << "\n";
  }
  return persist::crc32(os.str());
}

TimePoint workload_horizon(const WorkloadOptions& opts,
                           const core::NfdEParams& params) {
  // Past every reachable freshness point: the latest send is at
  // phase + (slots-1)*eta, the Eq. 6.3 estimate for slot slots+1 is at
  // most one eta plus the maximum delay beyond it, plus alpha.
  return TimePoint(0.1 * opts.eta.seconds() +
                   static_cast<double>(opts.slots + 1) * opts.eta.seconds() +
                   opts.delay_max.seconds() + params.alpha.seconds() + 1.0);
}

FleetRunResult run_fleet(const WorkloadOptions& workload, std::size_t shards,
                         const core::NfdEParams& params,
                         const fault::FaultPlan* faults) {
  FleetOptions options;
  options.processes = workload.processes;
  options.shards = shards;
  options.params = params;
  FleetMonitor monitor(options);

  const std::vector<Heartbeat> heartbeats =
      generate_workload(workload, faults);
  // Chunked ingestion exercises the batch boundary handling; the chunk
  // size is invisible in the results (the stream is already time-sorted).
  constexpr std::size_t kChunk = 8192;
  for (std::size_t i = 0; i < heartbeats.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, heartbeats.size() - i);
    monitor.ingest(std::span<const Heartbeat>(&heartbeats[i], n));
  }
  monitor.close(workload_horizon(workload, params));

  const std::vector<Transition> stream = monitor.drain_transitions();
  FleetRunResult r;
  r.processes = workload.processes;
  r.heartbeats = monitor.heartbeats();
  r.dropped_stale = monitor.dropped_stale();
  r.dropped_pre_epoch = monitor.dropped_pre_epoch();
  r.dropped_duplicate = monitor.dropped_duplicate();
  r.ingested = r.heartbeats - r.dropped_stale - r.dropped_pre_epoch -
               r.dropped_duplicate;
  r.transitions = stream.size();
  r.suspects = monitor.suspects();
  r.trusts = monitor.trusts();
  r.stream_crc32 = stream_crc(stream);
  r.shards = shards;
  r.bytes_per_process =
      static_cast<double>(monitor.memory_bytes()) /
      static_cast<double>(workload.processes);
  return r;
}

void write_fleet_json(std::ostream& os,
                      const std::vector<FleetRunResult>& results,
                      bool include_measurements, bool fast_mode) {
  os << "{\n";
  os << "  \"bench\": \"fleet\",\n";
  os << "  \"fast_mode\": " << (fast_mode ? "true" : "false") << ",\n";
  os << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetRunResult& r = results[i];
    os << "    {\n";
    os << "      \"processes\": " << r.processes << ",\n";
    os << "      \"heartbeats\": " << r.heartbeats << ",\n";
    os << "      \"ingested\": " << r.ingested << ",\n";
    os << "      \"dropped_stale\": " << r.dropped_stale << ",\n";
    os << "      \"dropped_pre_epoch\": " << r.dropped_pre_epoch << ",\n";
    os << "      \"dropped_duplicate\": " << r.dropped_duplicate << ",\n";
    os << "      \"transitions\": " << r.transitions << ",\n";
    os << "      \"suspects\": " << r.suspects << ",\n";
    os << "      \"trusts\": " << r.trusts << ",\n";
    os << "      \"stream_crc32\": \"" << std::hex << std::setw(8)
       << std::setfill('0') << r.stream_crc32 << std::dec
       << std::setfill(' ') << "\"";
    if (include_measurements) {
      std::ostringstream ms;
      ms.precision(std::numeric_limits<double>::max_digits10);
      ms << ",\n      \"shards\": " << r.shards << ",\n";
      ms << "      \"heartbeats_per_sec\": " << r.heartbeats_per_sec << ",\n";
      ms << "      \"bytes_per_process\": " << r.bytes_per_process;
      os << ms.str();
    }
    os << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace chenfd::fleet
