#include "fleet/fleet_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rounding.hpp"
#include "core/nfd_e_math.hpp"

namespace chenfd::fleet {

FleetMonitor::FleetMonitor(FleetOptions opts) : opts_(opts) {
  opts_.validate();
  resolution_s_ = opts_.resolution().seconds();
  // Balanced block partition: the first `processes % shards` shards monitor
  // one extra member, so every shard is non-empty and sizes differ by at
  // most one.
  base_members_ = opts_.processes / opts_.shards;
  big_shards_ = opts_.processes % opts_.shards;
  shards_.reserve(opts_.shards);
  ProcessIndex first = opts_.first_process;
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    const std::size_t members = base_members_ + (s < big_shards_ ? 1 : 0);
    shards_.emplace_back(first, members, opts_.params.window);
    first += static_cast<ProcessIndex>(members);
  }
}

std::size_t FleetMonitor::shard_of(ProcessIndex id) const {
  const std::size_t local = id - opts_.first_process;
  const std::size_t big_span = big_shards_ * (base_members_ + 1);
  if (local < big_span) return local / (base_members_ + 1);
  return big_shards_ + (local - big_span) / base_members_;
}

void FleetMonitor::fire(Shard& shard, std::uint32_t member) {
  shard.log.push_back(
      Transition{TimePoint(shard.fresh_point[member]),
                 shard.first + static_cast<ProcessIndex>(member),
                 Verdict::kSuspect});
  shard.trusted[member] = 0;
  ++suspects_;
}

void FleetMonitor::advance_shard(Shard& shard, TimingWheel::Tick to_tick) {
  shard.wheel.advance(
      to_tick, [this, &shard](TimingWheel::TimerId id, TimingWheel::Tick) {
        CHENFD_AUDIT(shard.trusted[id] != 0,
                     "FleetMonitor: wheel fired for an untrusted member");
        fire(shard, id);
      });
}

void FleetMonitor::apply(Shard& shard, const Heartbeat& hb) {
  const std::uint32_t m = hb.process - shard.first;
  const double t = hb.arrival.seconds();
  const double eta_s = opts_.params.eta.seconds();

  // Determinism rule 2 (catch-up): this member's own overdue freshness
  // point fires before the heartbeat is applied, so the outcome does not
  // depend on the wheel's tick granularity.
  if (shard.trusted[m] != 0 && shard.fresh_point[m] <= t) {
    shard.wheel.cancel(m);
    fire(shard, m);
  }

  // Incarnation-filtered admission (crash-recovery model, DESIGN.md §12):
  // heartbeats from an older incarnation are stale echoes; a newer one
  // starts a fresh Eq. 6.3 epoch at this sequence number.
  if (hb.incarnation < shard.incarnation[m]) {
    ++dropped_stale_;
    return;
  }
  if (hb.incarnation > shard.incarnation[m]) {
    shard.incarnation[m] = hb.incarnation;
    shard.epoch[m] = hb.seq;
    shard.ell[m] = hb.seq - 1;  // tolerate sequence restarts across crashes
    shard.win_count[m] = 0;
    shard.win_next[m] = 0;
    shard.win_sum[m] = 0.0;
  }
  if (hb.seq < shard.epoch[m]) {
    ++dropped_pre_epoch_;
    return;
  }
  if (hb.seq <= shard.ell[m]) {
    ++dropped_duplicate_;
    return;
  }
  shard.ell[m] = hb.seq;

  // Admit into the Eq. 6.3 ring (evicting the oldest entry when full) and
  // recompute the freshness point for the *next* heartbeat, exactly as the
  // per-pair NfdE does.
  const std::size_t window = opts_.params.window;
  double* ring = &shard.ring[static_cast<std::size_t>(m) * window];
  const double normalized =
      core::eq63::normalize(t, hb.seq, shard.epoch[m], eta_s);
  if (shard.win_count[m] == window) {
    shard.win_sum[m] -= ring[shard.win_next[m]];
  } else {
    ++shard.win_count[m];
  }
  ring[shard.win_next[m]] = normalized;
  shard.win_sum[m] += normalized;
  shard.win_next[m] =
      (shard.win_next[m] + 1) % static_cast<std::uint32_t>(window);

  const double tau =
      core::eq63::estimate(shard.win_sum[m], shard.win_count[m],
                           shard.ell[m] + 1, shard.epoch[m], eta_s) +
      opts_.params.alpha.seconds();
  shard.wheel.cancel(m);
  if (t < tau) {
    if (shard.trusted[m] == 0) {
      shard.log.push_back(
          Transition{TimePoint(t),
                     shard.first + static_cast<ProcessIndex>(m),
                     Verdict::kTrust});
      shard.trusted[m] = 1;
      ++trusts_;
    }
    shard.fresh_point[m] = tau;
    // tau > t implies ceil(tau/res) > floor(t/res) = wheel now in exact
    // arithmetic; the clamp guards the one-ULP float case (fires a tick
    // late, never early).
    TimingWheel::Tick tick = grid_ceil(tau, resolution_s_);
    if (tick <= shard.wheel.now()) tick = shard.wheel.now() + 1;
    shard.wheel.schedule(m, tick);
  } else if (shard.trusted[m] != 0) {
    // Already past the refreshed deadline: the per-pair NfdU suspects at
    // receipt time in this case (the estimate moved backwards).
    shard.log.push_back(Transition{
        TimePoint(t), shard.first + static_cast<ProcessIndex>(m),
        Verdict::kSuspect});
    shard.trusted[m] = 0;
    ++suspects_;
  }
  CHENFD_AUDIT((shard.trusted[m] != 0) == shard.wheel.pending(m),
               "FleetMonitor: trust latch and armed timer diverged");
}

void FleetMonitor::ingest(std::span<const Heartbeat> batch) {
  double prev = watermark_s_;
  for (const Heartbeat& hb : batch) {
    CHENFD_EXPECTS(hb.process >= opts_.first_process &&
                       hb.process - opts_.first_process < opts_.processes,
                   "FleetMonitor::ingest: process index out of range");
    CHENFD_EXPECTS(hb.seq >= 1,
                   "FleetMonitor::ingest: sequence numbers start at 1");
    const double t = hb.arrival.seconds();
    CHENFD_EXPECTS(t >= prev,
                   "FleetMonitor::ingest: batch not sorted by arrival time "
                   "or precedes the ingest watermark");
    prev = t;
    Shard& shard = shards_[shard_of(hb.process)];
    advance_shard(shard, grid_floor(t, resolution_s_));
    apply(shard, hb);
    ++heartbeats_;
    watermark_s_ = t;
  }
}

void FleetMonitor::advance(TimePoint to) {
  const double to_s = to.seconds();
  CHENFD_EXPECTS(std::isfinite(to_s) && to_s >= 0.0,
                 "FleetMonitor::advance: target time must be finite and "
                 ">= 0");
  const TimingWheel::Tick tick = grid_floor(to_s, resolution_s_);
  for (Shard& shard : shards_) advance_shard(shard, tick);
  watermark_s_ = std::max(watermark_s_, to_s);
}

void FleetMonitor::close(TimePoint horizon) {
  const double horizon_s = horizon.seconds();
  CHENFD_EXPECTS(std::isfinite(horizon_s) && horizon_s >= 0.0,
                 "FleetMonitor::close: horizon must be finite and >= 0");
  for (Shard& shard : shards_) {
    for (std::size_t m = 0; m < shard.members(); ++m) {
      if (shard.trusted[m] != 0 && shard.fresh_point[m] <= horizon_s) {
        shard.wheel.cancel(static_cast<TimingWheel::TimerId>(m));
        fire(shard, static_cast<std::uint32_t>(m));
      }
    }
  }
  watermark_s_ = std::max(watermark_s_, horizon_s);
}

// detlint: allow(R4) draining is legal in any state; an empty result is valid
std::vector<Transition> FleetMonitor::drain_transitions() {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.log.size();
  std::vector<Transition> out;
  out.reserve(total);
  for (Shard& shard : shards_) {
    out.insert(out.end(), shard.log.begin(), shard.log.end());
    shard.log.clear();
  }
  // (time, process) is a total order across shards for distinct processes;
  // a process's same-time pair (suspect at tau == trust at arrival) keeps
  // its emission order because the sort is stable and each process's
  // transitions come from exactly one shard, already in order.
  std::stable_sort(out.begin(), out.end(),
                   [](const Transition& a, const Transition& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.process < b.process;
                   });
  return out;
}

Verdict FleetMonitor::verdict(ProcessIndex id) const {
  CHENFD_EXPECTS(id >= opts_.first_process &&
                     id - opts_.first_process < opts_.processes,
                 "FleetMonitor::verdict: process index out of range");
  const Shard& shard = shards_[shard_of(id)];
  return shard.trusted[id - shard.first] != 0 ? Verdict::kTrust
                                              : Verdict::kSuspect;
}

std::uint32_t FleetMonitor::incarnation(ProcessIndex id) const {
  CHENFD_EXPECTS(id >= opts_.first_process &&
                     id - opts_.first_process < opts_.processes,
                 "FleetMonitor::incarnation: process index out of range");
  const Shard& shard = shards_[shard_of(id)];
  return shard.incarnation[id - shard.first];
}

std::uint32_t FleetMonitor::window_count(ProcessIndex id) const {
  CHENFD_EXPECTS(id >= opts_.first_process &&
                     id - opts_.first_process < opts_.processes,
                 "FleetMonitor::window_count: process index out of range");
  const Shard& shard = shards_[shard_of(id)];
  return shard.win_count[id - shard.first];
}

std::size_t FleetMonitor::memory_bytes() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.incarnation.capacity() * sizeof(std::uint32_t);
    total += shard.ell.capacity() * sizeof(std::uint64_t);
    total += shard.epoch.capacity() * sizeof(std::uint64_t);
    total += shard.win_count.capacity() * sizeof(std::uint32_t);
    total += shard.win_next.capacity() * sizeof(std::uint32_t);
    total += shard.win_sum.capacity() * sizeof(double);
    total += shard.fresh_point.capacity() * sizeof(double);
    total += shard.trusted.capacity() * sizeof(std::uint8_t);
    total += shard.ring.capacity() * sizeof(double);
    total += shard.wheel.memory_bytes();
    total += shard.log.capacity() * sizeof(Transition);
  }
  return total;
}

persist::FleetState FleetMonitor::export_summary() const {
  persist::FleetState state;
  state.processes = opts_.processes;
  state.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    persist::FleetShardState out;
    out.shard = s;
    out.processes = shard.members();
    for (std::size_t m = 0; m < shard.members(); ++m) {
      out.max_incarnation =
          std::max<std::uint64_t>(out.max_incarnation, shard.incarnation[m]);
      out.max_seq = std::max(out.max_seq, shard.ell[m]);
    }
    state.shards.push_back(out);
  }
  return state;
}

void FleetMonitor::restore_summary(
    const std::optional<persist::FleetState>& state, bool warm) {
  if (warm) {
    expects(state.has_value(),
            "FleetMonitor::restore_summary: warm restore requires a summary");
    expects(state->processes == opts_.processes,
            "FleetMonitor::restore_summary: snapshot fleet size mismatch");
    expects(state->shards.size() == shards_.size(),
            "FleetMonitor::restore_summary: snapshot shard count mismatch");
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      expects(state->shards[s].processes == shards_[s].members(),
              "FleetMonitor::restore_summary: snapshot shard layout mismatch");
    }
  }
  reset_soft_state();
}

void FleetMonitor::reset_soft_state() {
  for (Shard& shard : shards_) {
    std::fill(shard.incarnation.begin(), shard.incarnation.end(), 0U);
    std::fill(shard.ell.begin(), shard.ell.end(), std::uint64_t{0});
    std::fill(shard.epoch.begin(), shard.epoch.end(), std::uint64_t{0});
    std::fill(shard.win_count.begin(), shard.win_count.end(), 0U);
    std::fill(shard.win_next.begin(), shard.win_next.end(), 0U);
    std::fill(shard.win_sum.begin(), shard.win_sum.end(), 0.0);
    std::fill(shard.fresh_point.begin(), shard.fresh_point.end(), 0.0);
    std::fill(shard.trusted.begin(), shard.trusted.end(), std::uint8_t{0});
    shard.wheel.clear();
    shard.log.clear();
  }
}

}  // namespace chenfd::fleet
