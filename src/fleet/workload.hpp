// Deterministic fleet workload generation and the shared run/report
// harness used by tests/test_fleet.cpp and bench/fleet_throughput.cpp.
//
// Workloads are generated *statelessly*: every random draw is a SplitMix64
// hash of (seed, process, slot, purpose), so the heartbeat stream for a
// given option set is one fixed function — independent of generation
// order, shard count, or batch size.  A FaultPlan can be layered on top:
// its per-process downtime windows suppress sends and bump the incarnation
// after each recovery (crash-recovery model; sequence numbers continue
// across the outage).
//
// The run result splits into a deterministic payload (counters plus a
// CRC-32 of the canonical transition stream) and measurement fields
// (heartbeats/sec, bytes/process) that depend on the host and the shard
// count.  write_fleet_json() keeps the two apart so tests can require
// byte-identical payloads across shard counts while the bench still
// reports throughput.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "fleet/fleet_monitor.hpp"
#include "fleet/types.hpp"

namespace chenfd::fault {
class FaultPlan;
}  // namespace chenfd::fault

namespace chenfd::fleet {

struct WorkloadOptions {
  std::size_t processes = 0;
  std::uint64_t seed = 1;
  Duration eta = Duration(1.0);
  /// Heartbeats per process (sequence numbers 1..slots).
  std::uint64_t slots = 30;
  double loss_prob = 0.01;
  Duration delay_min = Duration(0.05);
  Duration delay_max = Duration(0.25);

  void validate() const {
    CHENFD_EXPECTS(processes >= 1, "WorkloadOptions: processes must be >= 1");
    CHENFD_EXPECTS(slots >= 1, "WorkloadOptions: slots must be >= 1");
    CHENFD_EXPECTS(eta > Duration::zero(),
                   "WorkloadOptions: eta must be positive");
    CHENFD_EXPECTS(loss_prob >= 0.0 && loss_prob < 1.0,
                   "WorkloadOptions: loss probability outside [0, 1)");
    CHENFD_EXPECTS(delay_min >= Duration::zero() && delay_max >= delay_min,
                   "WorkloadOptions: delay bounds must satisfy 0 <= min <= "
                   "max");
  }
};

/// Generates the heartbeat stream for `opts`, time-sorted and ready for
/// FleetMonitor::ingest.  With a FaultPlan, sends inside a process's
/// downtime windows are suppressed and its incarnation counts completed
/// windows (bumps on each recovery).
[[nodiscard]] std::vector<Heartbeat> generate_workload(
    const WorkloadOptions& opts, const fault::FaultPlan* faults = nullptr);

/// CRC-32 over the canonical text form of a transition stream (one
/// "<time> <process> <S|T>" line per transition, max_digits10) — the
/// fingerprint the determinism suite and the bench compare across shard
/// counts.
[[nodiscard]] std::uint32_t stream_crc(const std::vector<Transition>& ts);

struct FleetRunResult {
  // Deterministic payload: identical for any shard count.
  std::uint64_t processes = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t ingested = 0;
  std::uint64_t dropped_stale = 0;
  std::uint64_t dropped_pre_epoch = 0;
  std::uint64_t dropped_duplicate = 0;
  std::uint64_t transitions = 0;
  std::uint64_t suspects = 0;
  std::uint64_t trusts = 0;
  std::uint32_t stream_crc32 = 0;
  // Shard/host-dependent measurements (reported by the bench only).
  std::uint64_t shards = 0;
  double heartbeats_per_sec = 0.0;
  double bytes_per_process = 0.0;
};

/// Generates the workload, ingests it through a FleetMonitor with `shards`
/// shards, closes past the last freshness point and summarizes.  Pure
/// virtual-time run: heartbeats_per_sec is left at 0 (the bench times its
/// own ingest loop); bytes_per_process is filled from memory_bytes().
[[nodiscard]] FleetRunResult run_fleet(const WorkloadOptions& workload,
                                       std::size_t shards,
                                       const core::NfdEParams& params,
                                       const fault::FaultPlan* faults =
                                           nullptr);

/// A close() horizon past every freshness point `opts` can produce under
/// detector parameters `params`.
[[nodiscard]] TimePoint workload_horizon(const WorkloadOptions& opts,
                                         const core::NfdEParams& params);

/// Writes BENCH_fleet.json.  With `include_measurements` false the output
/// is a pure function of the heartbeat streams (the determinism suite
/// requires byte-identical strings across shard counts); with true it adds
/// shards, heartbeats_per_sec and bytes_per_process per config.
void write_fleet_json(std::ostream& os,
                      const std::vector<FleetRunResult>& results,
                      bool include_measurements, bool fast_mode);

}  // namespace chenfd::fleet
