// A hierarchical timing wheel (Varghese & Lauck) for freshness-point expiry
// at fleet scale.
//
// The general simulator keeps its `sim::EventQueue` binary heap — it must
// order arbitrary continuous timestamps exactly.  The fleet monitor has a
// much narrower problem: at most one pending freshness deadline per
// monitored process, deadlines quantized onto a coarse tick grid, and the
// only queries are "schedule", "cancel", and "fire everything due up to
// tick T".  The wheel does all three in O(1) amortized — no heap churn, no
// allocation after construction — which is what turns per-heartbeat cost
// from O(log n) into O(1) at 10^6 processes.
//
// Structure: kLevels levels of kSlots slots each (base-64 digits of the
// tick).  An entry's level is chosen by the most significant base-64 digit
// in which its deadline differs from the current tick — NOT by the delta.
// (Delta-based selection has a classic boundary bug: a deadline a few ticks
// away but across a digit rollover lands in the current rotation's slot and
// fires a rotation late.)  When a digit of `now` rolls over, the slot it
// exposes is cascaded: its entries are re-placed by the same rule, sinking
// toward level 0, where the slot reached by `now` holds exactly the entries
// due at that tick.
//
// Timer ids are dense process indices; all per-timer state lives in four
// parallel arrays (next/prev/slot plus the deadline), so the wheel costs
// 20 bytes per monitored process and scheduling touches no allocator.
//
// Determinism: entries within a slot are kept in LIFO insertion order, which
// is itself deterministic; the FleetMonitor additionally re-emits exact
// (unquantized) deadline timestamps and sorts its merged transition stream,
// so nothing observable depends on intra-tick firing order.

#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace chenfd::fleet {

class TimingWheel {
 public:
  using TimerId = std::uint32_t;
  using Tick = std::uint64_t;

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr Tick kSlots = Tick{1} << kSlotBits;  // 64
  /// Longest schedulable horizon: 64^4 ~= 16.7M ticks ahead of `now`.
  static constexpr Tick kMaxDelta = Tick{1} << (kSlotBits * kLevels);

  /// A wheel for timer ids in [0, capacity).
  explicit TimingWheel(std::size_t capacity)
      : head_(static_cast<std::size_t>(kLevels) * kSlots, kNil),
        next_(capacity, kNil),
        prev_(capacity, kNil),
        slot_of_(capacity, kNil),
        deadline_(capacity, 0) {}

  [[nodiscard]] Tick now() const { return now_; }
  [[nodiscard]] std::size_t capacity() const { return next_.size(); }
  [[nodiscard]] std::size_t pending_count() const { return pending_count_; }

  [[nodiscard]] bool pending(TimerId id) const {
    CHENFD_EXPECTS(id < next_.size(), "TimingWheel: timer id out of range");
    return slot_of_[id] != kNil;
  }

  /// Deadline tick of a pending timer.
  [[nodiscard]] Tick deadline(TimerId id) const {
    CHENFD_EXPECTS(id < next_.size(), "TimingWheel: timer id out of range");
    CHENFD_EXPECTS(slot_of_[id] != kNil,
                   "TimingWheel::deadline: timer is not pending");
    return deadline_[id];
  }

  /// Schedules timer `id` to fire at `tick`.  At most one pending deadline
  /// per id: reschedule by cancel() first.
  void schedule(TimerId id, Tick tick) {
    CHENFD_EXPECTS(id < next_.size(), "TimingWheel: timer id out of range");
    CHENFD_EXPECTS(slot_of_[id] == kNil,
                   "TimingWheel::schedule: timer already pending");
    CHENFD_EXPECTS(tick > now_,
                   "TimingWheel::schedule: deadline not in the future");
    CHENFD_EXPECTS(tick - now_ < kMaxDelta,
                   "TimingWheel::schedule: deadline beyond the wheel horizon");
    deadline_[id] = tick;
    link(id, slot_index(tick));
    ++pending_count_;
  }

  /// Drops every pending timer without firing it, keeping `now()` — used
  /// by the fleet soft-state reset (restart policies discard deadlines but
  /// time does not rewind).
  // detlint: allow(R4) clear is idempotent and legal in any state
  void clear() {
    std::fill(head_.begin(), head_.end(), kNil);
    std::fill(slot_of_.begin(), slot_of_.end(), kNil);
    pending_count_ = 0;
  }

  /// Heap footprint of the wheel's arrays, for memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const {
    return head_.capacity() * sizeof(std::int32_t) +
           next_.capacity() * sizeof(std::int32_t) +
           prev_.capacity() * sizeof(std::int32_t) +
           slot_of_.capacity() * sizeof(std::int32_t) +
           deadline_.capacity() * sizeof(Tick);
  }

  /// Cancels a pending timer.  Returns false if it was not pending.
  bool cancel(TimerId id) {
    CHENFD_EXPECTS(id < next_.size(), "TimingWheel: timer id out of range");
    if (slot_of_[id] == kNil) return false;
    unlink(id);
    --pending_count_;
    return true;
  }

  /// Advances the wheel to `to_tick`, invoking `on_expire(id, deadline)`
  /// for every timer whose deadline lies in (now, to_tick], in tick order.
  /// Expired timers are no longer pending when the callback runs, so the
  /// callback may re-schedule them.
  template <class F>
  void advance(Tick to_tick, F&& on_expire) {
    while (now_ < to_tick) {
      ++now_;
      // A digit of `now` that just rolled over exposes a higher-level slot
      // whose entries are now at most one rotation of the level below away;
      // cascade top-down so re-placed entries keep sinking in one pass.
      for (int level = kLevels - 1; level >= 1; --level) {
        const Tick span = Tick{1} << (kSlotBits * level);
        if ((now_ & (span - 1)) == 0) cascade(slot_index_at(level, now_));
      }
      const std::uint32_t due = slot_index_at(0, now_);
      while (head_[due] != kNil) {
        const TimerId id = static_cast<TimerId>(head_[due]);
        CHENFD_AUDIT(deadline_[id] == now_,
                     "TimingWheel: level-0 slot held a future deadline");
        unlink(id);
        --pending_count_;
        on_expire(id, deadline_[id]);
      }
    }
  }

 private:
  static constexpr std::int32_t kNil = -1;

  [[nodiscard]] static std::uint32_t slot_index_at(int level, Tick tick) {
    return static_cast<std::uint32_t>(level) * static_cast<std::uint32_t>(
               kSlots) +
           static_cast<std::uint32_t>((tick >> (kSlotBits * level)) &
                                      (kSlots - 1));
  }

  /// Level = most significant base-64 digit where `tick` differs from
  /// `now_`; a deadline equal to `now_` (possible mid-cascade) maps to the
  /// level-0 slot being expired this tick.  When the deadline crosses a
  /// 64^kLevels boundary relative to `now_` the XOR flags digits above the
  /// top level even though the delta is in range; slot addressing is
  /// modular in the tick digits, so clamping to the top level places the
  /// entry in the slot its digit will expose within one rotation.
  [[nodiscard]] std::uint32_t slot_index(Tick tick) const {
    const Tick diff = tick ^ now_;
    int level = diff == 0 ? 0 : (std::bit_width(diff) - 1) / kSlotBits;
    if (level >= kLevels) level = kLevels - 1;
    return slot_index_at(level, tick);
  }

  void link(TimerId id, std::uint32_t slot) {
    next_[id] = head_[slot];
    prev_[id] = kNil;
    if (head_[slot] != kNil) prev_[static_cast<std::size_t>(head_[slot])] = static_cast<std::int32_t>(id);
    head_[slot] = static_cast<std::int32_t>(id);
    slot_of_[id] = static_cast<std::int32_t>(slot);
  }

  void unlink(TimerId id) {
    const std::int32_t slot = slot_of_[id];
    if (prev_[id] != kNil) {
      next_[static_cast<std::size_t>(prev_[id])] = next_[id];
    } else {
      head_[static_cast<std::size_t>(slot)] = next_[id];
    }
    if (next_[id] != kNil) {
      prev_[static_cast<std::size_t>(next_[id])] = prev_[id];
    }
    slot_of_[id] = kNil;
  }

  /// Re-places every entry of a freshly exposed higher-level slot one or
  /// more levels down (their leading digits now agree with `now_`).
  void cascade(std::uint32_t slot) {
    std::int32_t id = head_[slot];
    head_[slot] = kNil;
    while (id != kNil) {
      const std::int32_t next = next_[static_cast<std::size_t>(id)];
      slot_of_[static_cast<std::size_t>(id)] = kNil;
      link(static_cast<TimerId>(id),
           slot_index(deadline_[static_cast<std::size_t>(id)]));
      id = next;
    }
  }

  Tick now_ = 0;
  std::size_t pending_count_ = 0;
  std::vector<std::int32_t> head_;     // kLevels * kSlots chain heads
  std::vector<std::int32_t> next_;     // per-timer intrusive chain
  std::vector<std::int32_t> prev_;
  std::vector<std::int32_t> slot_of_;  // kNil when not pending
  std::vector<Tick> deadline_;
};

}  // namespace chenfd::fleet
