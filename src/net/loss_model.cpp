#include "net/loss_model.hpp"

#include <sstream>

namespace chenfd::net {

std::string BernoulliLoss::name() const {
  std::ostringstream os;
  os << "Bernoulli(pL=" << p_ << ")";
  return os.str();
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad,
                                       double p_bad_to_good, double loss_good,
                                       double loss_bad)
    : p_gb_(p_good_to_bad),
      p_bg_(p_bad_to_good),
      loss_good_(loss_good),
      loss_bad_(loss_bad) {
  expects(p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0,
          "GilbertElliottLoss: p_good_to_bad must be in [0,1]");
  expects(p_bad_to_good > 0.0 && p_bad_to_good <= 1.0,
          "GilbertElliottLoss: p_bad_to_good must be in (0,1]");
  expects(loss_good >= 0.0 && loss_good < 1.0,
          "GilbertElliottLoss: loss_good must be in [0,1)");
  expects(loss_bad >= 0.0 && loss_bad <= 1.0,
          "GilbertElliottLoss: loss_bad must be in [0,1]");
}

bool GilbertElliottLoss::drop_next(Rng& rng) {
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
}

double GilbertElliottLoss::steady_state_loss() const {
  // Stationary distribution of the two-state chain.
  const double pi_bad = p_gb_ / (p_gb_ + p_bg_);
  return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

std::string GilbertElliottLoss::name() const {
  std::ostringstream os;
  os << "GilbertElliott(gb=" << p_gb_ << ",bg=" << p_bg_
     << ",lossG=" << loss_good_ << ",lossB=" << loss_bad_ << ")";
  return os.str();
}

std::unique_ptr<LossModel> GilbertElliottLoss::clone() const {
  return std::make_unique<GilbertElliottLoss>(p_gb_, p_bg_, loss_good_,
                                              loss_bad_);
}

}  // namespace chenfd::net
