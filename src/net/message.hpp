// Heartbeat messages (Section 3.2 of the paper).
//
// Every heartbeat m_i carries its sequence number i and a sender-local
// timestamp.  With synchronized clocks the timestamp equals the real sending
// time sigma_i; with skewed clocks it is sigma_i plus the (unknown) skew —
// which is all the Section 5.2 / 6.2.2 estimators need, since the variance
// of (arrival - timestamp) is invariant to a constant skew.

#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace chenfd::net {

using SeqNo = std::uint64_t;

struct Message {
  SeqNo seq = 0;                ///< heartbeat sequence number i >= 1
  TimePoint sent_real;          ///< real (simulated) sending time sigma_i
  TimePoint sender_timestamp;   ///< sending time per the sender's local clock
};

}  // namespace chenfd::net
