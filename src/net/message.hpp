// Heartbeat messages (Section 3.2 of the paper).
//
// Every heartbeat m_i carries its sequence number i and a sender-local
// timestamp.  With synchronized clocks the timestamp equals the real sending
// time sigma_i; with skewed clocks it is sigma_i plus the (unknown) skew —
// which is all the Section 5.2 / 6.2.2 estimators need, since the variance
// of (arrival - timestamp) is invariant to a constant skew.
//
// In the crash-recovery extension (DESIGN.md sections 8 and 12) heartbeats
// additionally carry the sender's incarnation number: 0 for the initial
// life, incremented on every recovery.  Receivers use it to tell a
// recovered process from its pre-crash self — in-flight heartbeats of an
// older incarnation are stale and must not refresh trust, and an
// incarnation bump signals that the sending schedule was re-anchored at
// recovery time, so Eq. 6.3 estimation windows must be rebased.

#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace chenfd::net {

using SeqNo = std::uint64_t;

struct Message {
  SeqNo seq = 0;                ///< heartbeat sequence number i >= 1
  TimePoint sent_real;          ///< real (simulated) sending time sigma_i
  TimePoint sender_timestamp;   ///< sending time per the sender's local clock
  std::uint64_t incarnation = 0;  ///< sender lives survived (0 = first life)
};

}  // namespace chenfd::net
