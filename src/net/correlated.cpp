#include "net/correlated.hpp"

#include <cmath>
#include <numbers>
#include <utility>

#include "common/check.hpp"

namespace chenfd::net {
namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

/// One standard normal draw (Box-Muller, spare discarded).
double normal(Rng& rng) {
  const double u1 = rng.uniform01_open_zero();
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

CorrelatedDelaySampler::CorrelatedDelaySampler(
    std::unique_ptr<dist::DelayDistribution> marginal, double rho)
    : marginal_(std::move(marginal)), rho_(rho) {
  expects(marginal_ != nullptr,
          "CorrelatedDelaySampler: marginal distribution required");
  expects(rho >= 0.0 && rho < 1.0,
          "CorrelatedDelaySampler: rho must be in [0, 1)");
}

double CorrelatedDelaySampler::sample(Rng& rng) {
  if (!primed_) {
    z_ = normal(rng);  // stationary start: z_0 ~ N(0,1)
    primed_ = true;
  } else {
    z_ = rho_ * z_ + std::sqrt(1.0 - rho_ * rho_) * normal(rng);
  }
  // Map through the copula; clamp u away from {0,1} for quantile().
  double u = phi(z_);
  constexpr double kEps = 1e-12;
  if (u < kEps) u = kEps;
  if (u > 1.0 - kEps) u = 1.0 - kEps;
  return marginal_->quantile(u);
}

}  // namespace chenfd::net
