// Message loss models.
//
// The paper's base model (Section 3.1) drops each message independently with
// probability p_L (Bernoulli).  Section 8.1.2 discusses bursty traffic, for
// which we provide a Gilbert-Elliott two-state Markov loss model: the link
// alternates between a Good state (low loss) and a Bad state (high loss),
// producing correlated loss bursts with tunable burst length.

#pragma once

#include <memory>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace chenfd::net {

class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Decides whether the next message is dropped.  Stateful models advance
  /// their state on every call (one call per message sent).
  [[nodiscard]] virtual bool drop_next(Rng& rng) = 0;

  /// Long-run marginal loss probability of the model.
  [[nodiscard]] virtual double steady_state_loss() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Independent losses with fixed probability p_L — the paper's base model.
/// p = 1 (total blackout) is admitted for fault injection; the QoS analysis
/// itself assumes p_L < 1, which the configuration procedures enforce.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p_loss) : p_(p_loss) {
    expects(p_loss >= 0.0 && p_loss <= 1.0,
            "BernoulliLoss: p must be in [0, 1]");
  }

  [[nodiscard]] bool drop_next(Rng& rng) override { return rng.bernoulli(p_); }
  [[nodiscard]] double steady_state_loss() const override { return p_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<BernoulliLoss>(p_);
  }

 private:
  double p_;
};

/// Gilbert-Elliott bursty loss.  Per message, the chain first (possibly)
/// switches state, then drops with the loss probability of the current
/// state.
class GilbertElliottLoss final : public LossModel {
 public:
  /// p_good_to_bad / p_bad_to_good: per-message transition probabilities.
  /// loss_good / loss_bad: per-state drop probabilities.
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_good, double loss_bad);

  [[nodiscard]] bool drop_next(Rng& rng) override;
  [[nodiscard]] double steady_state_loss() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LossModel> clone() const override;

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  /// Mean number of consecutive messages spent in the Bad state.
  [[nodiscard]] double mean_burst_length() const { return 1.0 / p_bg_; }

 private:
  double p_gb_;
  double p_bg_;
  double loss_good_;
  double loss_bad_;
  bool bad_ = false;
};

}  // namespace chenfd::net
