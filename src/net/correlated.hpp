// Correlated heartbeat delays — probing the message-independence
// assumption.
//
// The paper's QoS analysis assumes "the behaviors of any two heartbeat
// messages are independent" and notes (footnote 10) that in practice this
// only holds when consecutive heartbeats are sent far enough apart.  This
// sampler generates delays whose *marginal* distribution is exactly a
// given DelayDistribution, but which are serially correlated through a
// Gaussian copula:
//
//   z_i = rho * z_{i-1} + sqrt(1 - rho^2) * N(0,1)     (latent AR(1))
//   d_i = Q(Phi(z_i))                                  (Q = quantile of D)
//
// rho = 0 recovers i.i.d. delays; rho -> 1 models a congested path where
// a slow heartbeat predicts a slow successor.  Because the marginals are
// unchanged, any deviation of the measured QoS from the Theorem 5 values
// isolates the effect of the independence assumption — quantified in
// bench/correlation.cpp.

#pragma once

#include <memory>

#include "common/rng.hpp"
#include "dist/distribution.hpp"

namespace chenfd::net {

class CorrelatedDelaySampler {
 public:
  /// rho in [0, 1): lag-1 correlation of the latent Gaussian chain.
  CorrelatedDelaySampler(std::unique_ptr<dist::DelayDistribution> marginal,
                         double rho);

  /// Next delay in the correlated sequence.
  [[nodiscard]] double sample(Rng& rng);

  [[nodiscard]] const dist::DelayDistribution& marginal() const {
    return *marginal_;
  }
  [[nodiscard]] double rho() const { return rho_; }

 private:
  std::unique_ptr<dist::DelayDistribution> marginal_;
  double rho_;
  double z_ = 0.0;
  bool primed_ = false;
};

}  // namespace chenfd::net
