// The probabilistic communication link of Section 3.1.
//
// An end-to-end, unidirectional link from p to q that may drop or delay
// messages but never creates or (by default) duplicates them.  Each send
// independently consults the loss model; surviving messages are delivered
// after a delay drawn from the delay distribution.  Delays are sampled
// independently per message (the "message independence" property assumed by
// the QoS analysis), so deliveries can be reordered — receivers must cope,
// as the paper's algorithms do via sequence numbers.
//
// An optional duplication probability exercises footnote 8 of the paper
// (duplicates are harmless because receivers act on the first copy).  The
// link can be re-pointed at a different delay distribution or loss model at
// run time, which is how benches model regime changes (Section 8.1.1).

#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "dist/distribution.hpp"
#include "net/loss_model.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace chenfd::net {

class Link {
 public:
  /// Called on delivery with the message and the real receipt time.
  using Receiver = std::function<void(const Message&, TimePoint)>;

  Link(sim::Simulator& simulator,
       std::unique_ptr<dist::DelayDistribution> delay,
       std::unique_ptr<LossModel> loss, Rng rng);

  /// Registers the delivery callback.  Must be set before the first send.
  void set_receiver(Receiver receiver);

  /// Sends `m` at the current simulated time.  May drop it, deliver it once
  /// after a random delay, or (with `duplication probability`) twice.
  void send(const Message& m);

  /// Swaps the delay distribution (takes effect for subsequent sends).
  void set_delay(std::unique_ptr<dist::DelayDistribution> delay);
  /// Swaps the loss model (takes effect for subsequent sends).
  void set_loss(std::unique_ptr<LossModel> loss);
  /// Sets the probability that a delivered message is delivered twice
  /// (second copy with an independent delay).  Default 0.  p = 1 makes
  /// every delivery a duplicate pair — the "heartbeat storm" fault.
  void set_duplication_probability(double p);

  /// Severs the path entirely (fault injection): while partitioned every
  /// send is dropped and counted in partition_dropped_count().  Distinct
  /// from the loss model, whose state does not advance during a partition —
  /// a partition is an outage of the path, not part of the loss process.
  /// Messages already in flight still deliver, mirroring the crash
  /// semantics of Section 3.1 (the link is independent of the fault).
  void set_partitioned(bool on) { partitioned_ = on; }
  [[nodiscard]] bool partitioned() const { return partitioned_; }

  [[nodiscard]] const dist::DelayDistribution& delay() const { return *delay_; }
  [[nodiscard]] const LossModel& loss() const { return *loss_; }

  [[nodiscard]] std::uint64_t sent_count() const { return sent_; }
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  /// Sends dropped because the link was partitioned (a subset of
  /// dropped_count()).
  [[nodiscard]] std::uint64_t partition_dropped_count() const {
    return partition_dropped_;
  }

 private:
  void deliver_after(const Message& m, Duration delay);

  sim::Simulator& sim_;
  std::unique_ptr<dist::DelayDistribution> delay_;
  std::unique_ptr<LossModel> loss_;
  Rng rng_;
  Receiver receiver_;
  double duplication_probability_ = 0.0;
  bool partitioned_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t partition_dropped_ = 0;
};

}  // namespace chenfd::net
