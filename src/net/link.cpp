#include "net/link.hpp"

#include <utility>

#include "common/check.hpp"

namespace chenfd::net {

Link::Link(sim::Simulator& simulator,
           std::unique_ptr<dist::DelayDistribution> delay,
           std::unique_ptr<LossModel> loss, Rng rng)
    : sim_(simulator),
      delay_(std::move(delay)),
      loss_(std::move(loss)),
      rng_(rng) {
  expects(delay_ != nullptr, "Link: delay distribution must not be null");
  expects(loss_ != nullptr, "Link: loss model must not be null");
}

void Link::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

void Link::send(const Message& m) {
  expects(static_cast<bool>(receiver_), "Link::send: no receiver registered");
  ++sent_;
  if (partitioned_) {
    ++dropped_;
    ++partition_dropped_;
    return;
  }
  if (loss_->drop_next(rng_)) {
    ++dropped_;
    return;
  }
  deliver_after(m, Duration(delay_->sample(rng_)));
  if (duplication_probability_ > 0.0 &&
      rng_.bernoulli(duplication_probability_)) {
    deliver_after(m, Duration(delay_->sample(rng_)));
  }
}

void Link::deliver_after(const Message& m, Duration delay) {
  sim_.after(delay, [this, m] {
    ++delivered_;
    receiver_(m, sim_.now());
  });
}

void Link::set_delay(std::unique_ptr<dist::DelayDistribution> delay) {
  expects(delay != nullptr, "Link::set_delay: null distribution");
  delay_ = std::move(delay);
}

void Link::set_loss(std::unique_ptr<LossModel> loss) {
  expects(loss != nullptr, "Link::set_loss: null loss model");
  loss_ = std::move(loss);
}

void Link::set_duplication_probability(double p) {
  expects(p >= 0.0 && p <= 1.0,
          "Link::set_duplication_probability: p must be in [0,1]");
  duplication_probability_ = p;
}

}  // namespace chenfd::net
