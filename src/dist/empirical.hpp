// Empirical delay distribution built from observed samples (e.g. measured
// heartbeat delays).  Serves two roles: (1) as a stand-in for a production
// trace — the closest synthetic equivalent per the reproduction plan — and
// (2) as the bridge from the estimator (Section 5.2) back into the exact
// Section 4 configurator when the real distribution is unknown.

#pragma once

#include <span>
#include <vector>

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Empirical final : public DelayDistribution {
 public:
  /// Builds from at least one observed delay; copies and sorts the samples.
  explicit Empirical(std::span<const double> samples);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double cdf_strict(double x) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return variance_; }
  /// Draws a uniformly random retained sample (bootstrap resampling).
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// The retained (sorted) samples — the bootstrap-resampling population.
  [[nodiscard]] const std::vector<double>& samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace chenfd::dist
