// Exponential message delay — the distribution used in the paper's
// simulation study (Section 7): Pr(D <= x) = 1 - exp(-x / E(D)).

#pragma once

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Exponential final : public DelayDistribution {
 public:
  /// Constructs an exponential delay with the given mean (> 0).
  explicit Exponential(double mean);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return mean_ * mean_; }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

 private:
  double mean_;
};

}  // namespace chenfd::dist
