// Weibull message delay.  Interpolates between heavy-ish (k < 1) and
// light (k > 1) tails with a single shape knob, which makes it useful for
// sweeping the tightness of the Theorem 9 / 11 Chebyshev bounds.

#pragma once

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Weibull final : public DelayDistribution {
 public:
  /// Pr(D <= x) = 1 - exp(-(x/lambda)^k), k > 0, lambda > 0.
  Weibull(double shape_k, double scale_lambda);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] double shape() const { return k_; }
  [[nodiscard]] double scale() const { return lambda_; }

 private:
  double k_;
  double lambda_;
};

}  // namespace chenfd::dist
