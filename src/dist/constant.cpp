#include "dist/constant.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Constant::Constant(double value) : value_(value) {
  CHENFD_EXPECTS(std::isfinite(value) && value > 0.0,
                 "Constant: delay must be positive and finite");
}

double Constant::sample(Rng& rng) const {
  (void)rng;
  return value_;
}

std::string Constant::name() const {
  std::ostringstream os;
  os << "Const(" << value_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Constant::clone() const {
  return std::make_unique<Constant>(value_);
}

}  // namespace chenfd::dist
