#include "dist/constant.hpp"

#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Constant::Constant(double value) : value_(value) {
  expects(value > 0.0, "Constant: delay must be positive");
}

double Constant::sample(Rng& rng) const {
  (void)rng;
  return value_;
}

std::string Constant::name() const {
  std::ostringstream os;
  os << "Const(" << value_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Constant::clone() const {
  return std::make_unique<Constant>(value_);
}

}  // namespace chenfd::dist
