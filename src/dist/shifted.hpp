// A delay distribution shifted right by a constant: D = offset + D_inner.
// Models the deterministic propagation + processing floor that real links
// have below their stochastic queueing delay.

#pragma once

#include <memory>

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Shifted final : public DelayDistribution {
 public:
  /// offset >= 0, inner non-null.
  Shifted(double offset, std::unique_ptr<DelayDistribution> inner);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double cdf_strict(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] double offset() const { return offset_; }
  [[nodiscard]] const DelayDistribution& inner() const { return *inner_; }

 private:
  double offset_;
  std::unique_ptr<DelayDistribution> inner_;
};

}  // namespace chenfd::dist
