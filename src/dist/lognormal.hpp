// Log-normal message delay — a heavy-ish tailed distribution frequently
// used to model wide-area network latency.  Parameterized directly by the
// (mu, sigma) of the underlying normal; use LogNormal::with_moments to build
// one from a target mean and variance.

#pragma once

#include "dist/distribution.hpp"

namespace chenfd::dist {

class LogNormal final : public DelayDistribution {
 public:
  /// log D ~ Normal(mu, sigma^2), sigma > 0.
  LogNormal(double mu, double sigma);

  /// Builds the unique log-normal with the given mean and variance (> 0).
  [[nodiscard]] static LogNormal with_moments(double mean, double variance);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace chenfd::dist
