// Pareto message delay — a genuinely heavy-tailed distribution.  The paper's
// model only requires finite E(D) and V(D), so we require alpha > 2.  Pareto
// delays are the stress test for the "maximum message delay is orders of
// magnitude larger than the average" observation in Section 1.2.1 that
// motivates NFD-S over the common algorithm.

#pragma once

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Pareto final : public DelayDistribution {
 public:
  /// Pr(D > x) = (xm / x)^alpha for x >= xm.  Requires xm > 0, alpha > 2
  /// (finite variance, per the network model of Section 3.1).
  Pareto(double xm, double alpha);

  /// Builds the Pareto with the given mean and tail index alpha (> 2).
  [[nodiscard]] static Pareto with_mean(double mean, double alpha);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] double xm() const { return xm_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double xm_;
  double alpha_;
};

}  // namespace chenfd::dist
