#include "dist/shifted.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace chenfd::dist {

Shifted::Shifted(double offset, std::unique_ptr<DelayDistribution> inner)
    : offset_(offset), inner_(std::move(inner)) {
  CHENFD_EXPECTS(std::isfinite(offset) && offset >= 0.0,
                 "Shifted: offset must be non-negative and finite");
  CHENFD_EXPECTS(inner_ != nullptr, "Shifted: inner distribution must not be null");
}

double Shifted::cdf(double x) const { return inner_->cdf(x - offset_); }

double Shifted::cdf_strict(double x) const {
  return inner_->cdf_strict(x - offset_);
}

double Shifted::mean() const { return offset_ + inner_->mean(); }

double Shifted::variance() const { return inner_->variance(); }

double Shifted::sample(Rng& rng) const { return offset_ + inner_->sample(rng); }

std::string Shifted::name() const {
  std::ostringstream os;
  os << "Shifted(+" << offset_ << "," << inner_->name() << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Shifted::clone() const {
  return std::make_unique<Shifted>(offset_, inner_->clone());
}

}  // namespace chenfd::dist
