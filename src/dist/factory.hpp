// Convenience constructors for families of delay distributions with matched
// means, used by the bound-tightness benches and parameterized tests to
// sweep distribution shape while holding E(D) fixed.

#pragma once

#include <memory>
#include <vector>

#include "dist/distribution.hpp"

namespace chenfd::dist {

/// Returns one representative of each supported family with the given mean:
/// Exponential, Uniform[0, 2m], Erlang-4, LogNormal (V = 4 m^2),
/// Pareto (alpha = 2.5), Weibull (k = 0.7).
[[nodiscard]] std::vector<std::unique_ptr<DelayDistribution>>
standard_family_with_mean(double mean);

}  // namespace chenfd::dist
