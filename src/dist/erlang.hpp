// Erlang-k message delay: the sum of k i.i.d. exponentials.  Models a
// multi-hop path where each hop contributes an exponential queueing delay,
// and provides a closed-form CDF for validating the analytic pipeline on a
// non-exponential distribution.

#pragma once

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Erlang final : public DelayDistribution {
 public:
  /// Sum of `stages` exponentials, each with the given rate (1/mean-per-hop).
  Erlang(int stages, double rate);

  /// Builds an Erlang-k with the given total mean.
  [[nodiscard]] static Erlang with_mean(int stages, double mean);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override {
    return static_cast<double>(stages_) / rate_;
  }
  [[nodiscard]] double variance() const override {
    return static_cast<double>(stages_) / (rate_ * rate_);
  }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] int stages() const { return stages_; }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  int stages_;
  double rate_;
};

}  // namespace chenfd::dist
