#include "dist/pareto.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  CHENFD_EXPECTS(std::isfinite(xm) && xm > 0.0,
                 "Pareto: xm must be positive and finite");
  CHENFD_EXPECTS(std::isfinite(alpha) && alpha > 2.0,
                 "Pareto: alpha must exceed 2 for finite variance");
}

Pareto Pareto::with_mean(double mean, double alpha) {
  CHENFD_EXPECTS(mean > 0.0, "Pareto::with_mean: mean must be positive");
  CHENFD_EXPECTS(alpha > 2.0, "Pareto::with_mean: alpha must exceed 2");
  // mean = alpha * xm / (alpha - 1)  =>  xm = mean (alpha-1)/alpha.
  return Pareto(mean * (alpha - 1.0) / alpha, alpha);
}

double Pareto::cdf(double x) const {
  if (x <= xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::mean() const { return alpha_ * xm_ / (alpha_ - 1.0); }

double Pareto::variance() const {
  const double a = alpha_;
  return xm_ * xm_ * a / ((a - 1.0) * (a - 1.0) * (a - 2.0));
}

double Pareto::quantile(double u) const {
  CHENFD_EXPECTS(u > 0.0 && u < 1.0, "Pareto::quantile: u must be in (0, 1)");
  return xm_ * std::pow(1.0 - u, -1.0 / alpha_);
}

double Pareto::sample(Rng& rng) const {
  return xm_ * std::pow(rng.uniform01_open_zero(), -1.0 / alpha_);
}

std::string Pareto::name() const {
  std::ostringstream os;
  os << "Pareto(xm=" << xm_ << ",alpha=" << alpha_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Pareto::clone() const {
  return std::make_unique<Pareto>(xm_, alpha_);
}

}  // namespace chenfd::dist
