#include "dist/weibull.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Weibull::Weibull(double shape_k, double scale_lambda)
    : k_(shape_k), lambda_(scale_lambda) {
  CHENFD_EXPECTS(std::isfinite(shape_k) && shape_k > 0.0,
                 "Weibull: shape must be positive and finite");
  CHENFD_EXPECTS(std::isfinite(scale_lambda) && scale_lambda > 0.0,
                 "Weibull: scale must be positive and finite");
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / lambda_, k_));
}

double Weibull::mean() const { return lambda_ * std::tgamma(1.0 + 1.0 / k_); }

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / k_);
  const double g2 = std::tgamma(1.0 + 2.0 / k_);
  return lambda_ * lambda_ * (g2 - g1 * g1);
}

double Weibull::quantile(double u) const {
  CHENFD_EXPECTS(u > 0.0 && u < 1.0, "Weibull::quantile: u must be in (0, 1)");
  return lambda_ * std::pow(-std::log(1.0 - u), 1.0 / k_);
}

double Weibull::sample(Rng& rng) const {
  return lambda_ * std::pow(-std::log(rng.uniform01_open_zero()), 1.0 / k_);
}

std::string Weibull::name() const {
  std::ostringstream os;
  os << "Weibull(k=" << k_ << ",lambda=" << lambda_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Weibull::clone() const {
  return std::make_unique<Weibull>(k_, lambda_);
}

}  // namespace chenfd::dist
