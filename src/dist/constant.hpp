// Degenerate (constant) message delay.  Useful in unit tests because every
// quantity of Proposition 3 / Theorem 5 has an exact closed form, and
// because its atom at `value` exercises the Pr(D < x) vs Pr(D <= x)
// distinction that the paper's q_0 = (1-p_L) Pr(D < delta + eta) relies on.

#pragma once

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Constant final : public DelayDistribution {
 public:
  explicit Constant(double value);

  [[nodiscard]] double cdf(double x) const override {
    return x >= value_ ? 1.0 : 0.0;
  }
  [[nodiscard]] double cdf_strict(double x) const override {
    return x > value_ ? 1.0 : 0.0;
  }
  [[nodiscard]] double mean() const override { return value_; }
  [[nodiscard]] double variance() const override { return 0.0; }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] double value() const { return value_; }

 private:
  double value_;
};

}  // namespace chenfd::dist
