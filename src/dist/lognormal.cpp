#include "dist/lognormal.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  CHENFD_EXPECTS(std::isfinite(mu), "LogNormal: mu must be finite");
  CHENFD_EXPECTS(std::isfinite(sigma) && sigma > 0.0,
                 "LogNormal: sigma must be positive and finite");
}

LogNormal LogNormal::with_moments(double mean, double variance) {
  CHENFD_EXPECTS(mean > 0.0, "LogNormal::with_moments: mean must be positive");
  CHENFD_EXPECTS(variance > 0.0, "LogNormal::with_moments: variance must be positive");
  // mean = exp(mu + sigma^2/2); variance = (exp(sigma^2)-1) exp(2mu+sigma^2).
  const double s2 = std::log(1.0 + variance / (mean * mean));
  const double mu = std::log(mean) - s2 / 2.0;
  return LogNormal(mu, std::sqrt(s2));
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double LogNormal::mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2.0); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::sample(Rng& rng) const {
  // Box-Muller transform; the spare variate is discarded for simplicity.
  const double u1 = rng.uniform01_open_zero();
  const double u2 = rng.uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return std::exp(mu_ + sigma_ * z);
}

std::string LogNormal::name() const {
  std::ostringstream os;
  os << "LogNormal(mu=" << mu_ << ",sigma=" << sigma_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> LogNormal::clone() const {
  return std::make_unique<LogNormal>(mu_, sigma_);
}

}  // namespace chenfd::dist
