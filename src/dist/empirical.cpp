#include "dist/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Empirical::Empirical(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  CHENFD_EXPECTS(!sorted_.empty(), "Empirical: need at least one sample");
  for (double s : sorted_) {
    CHENFD_EXPECTS(std::isfinite(s) && s > 0.0,
                   "Empirical: delays must be positive and finite");
  }
  std::sort(sorted_.begin(), sorted_.end());
  const double n = static_cast<double>(sorted_.size());
  double acc = 0.0;
  for (double s : sorted_) acc += s;
  mean_ = acc / n;
  double m2 = 0.0;
  for (double s : sorted_) m2 += (s - mean_) * (s - mean_);
  variance_ = m2 / n;
}

double Empirical::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::cdf_strict(double x) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::sample(Rng& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.uniform01() * static_cast<double>(sorted_.size()));
  return sorted_[idx < sorted_.size() ? idx : sorted_.size() - 1];
}

std::string Empirical::name() const {
  std::ostringstream os;
  os << "Empirical(n=" << sorted_.size() << ",mean=" << mean_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Empirical::clone() const {
  return std::make_unique<Empirical>(
      std::span<const double>(sorted_.data(), sorted_.size()));
}

}  // namespace chenfd::dist
