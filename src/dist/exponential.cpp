#include "dist/exponential.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Exponential::Exponential(double mean) : mean_(mean) {
  CHENFD_EXPECTS(std::isfinite(mean) && mean > 0.0,
                 "Exponential: mean must be positive and finite");
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-x / mean_);
}

double Exponential::quantile(double u) const {
  CHENFD_EXPECTS(u > 0.0 && u < 1.0, "Exponential::quantile: u must be in (0, 1)");
  return -mean_ * std::log(1.0 - u);
}

double Exponential::sample(Rng& rng) const {
  return -mean_ * std::log(rng.uniform01_open_zero());
}

std::string Exponential::name() const {
  std::ostringstream os;
  os << "Exp(mean=" << mean_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Exponential::clone() const {
  return std::make_unique<Exponential>(mean_);
}

}  // namespace chenfd::dist
