#include "dist/distribution.hpp"

#include "common/check.hpp"

namespace chenfd::dist {

double DelayDistribution::quantile(double u) const {
  CHENFD_EXPECTS(u > 0.0 && u < 1.0,
                   "DelayDistribution::quantile: u must be in (0, 1)");
  // Bracket [lo, hi] with cdf(lo) < u <= cdf(hi).
  double hi = mean() > 0.0 ? mean() : 1.0;
  for (int i = 0; i < 2000 && cdf(hi) < u; ++i) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200 && (hi - lo) > 1e-15 * hi; ++i) {
    const double mid = (lo + hi) / 2.0;
    (cdf(mid) < u ? lo : hi) = mid;
  }
  return hi;
}

}  // namespace chenfd::dist
