#include "dist/uniform.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  CHENFD_EXPECTS(std::isfinite(lo) && lo >= 0.0,
                 "Uniform: lo must be non-negative and finite");
  CHENFD_EXPECTS(std::isfinite(hi) && hi > lo,
                 "Uniform: hi must exceed lo and be finite");
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

double Uniform::quantile(double u) const {
  CHENFD_EXPECTS(u > 0.0 && u < 1.0, "Uniform::quantile: u must be in (0, 1)");
  return lo_ + u * (hi_ - lo_);
}

std::string Uniform::name() const {
  std::ostringstream os;
  os << "Uniform[" << lo_ << "," << hi_ << "]";
  return os.str();
}

std::unique_ptr<DelayDistribution> Uniform::clone() const {
  return std::make_unique<Uniform>(lo_, hi_);
}

}  // namespace chenfd::dist
