#include "dist/factory.hpp"

#include <cmath>

#include "common/check.hpp"
#include "dist/erlang.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"

namespace chenfd::dist {

std::vector<std::unique_ptr<DelayDistribution>> standard_family_with_mean(
    double mean) {
  CHENFD_EXPECTS(mean > 0.0, "standard_family_with_mean: mean must be positive");
  std::vector<std::unique_ptr<DelayDistribution>> out;
  out.push_back(std::make_unique<Exponential>(mean));
  out.push_back(std::make_unique<Uniform>(0.0, 2.0 * mean));
  out.push_back(std::make_unique<Erlang>(Erlang::with_mean(4, mean)));
  out.push_back(std::make_unique<LogNormal>(
      LogNormal::with_moments(mean, 4.0 * mean * mean)));
  out.push_back(std::make_unique<Pareto>(Pareto::with_mean(mean, 2.5)));
  const double k = 0.7;
  out.push_back(
      std::make_unique<Weibull>(k, mean / std::tgamma(1.0 + 1.0 / k)));
  return out;
}

}  // namespace chenfd::dist
