// Uniform message delay on [lo, hi] — a light-tailed distribution used to
// probe the configurators and the Chebyshev bounds away from the
// exponential case.

#pragma once

#include "dist/distribution.hpp"

namespace chenfd::dist {

class Uniform final : public DelayDistribution {
 public:
  /// Uniform delay on [lo, hi], 0 <= lo < hi.
  Uniform(double lo, double hi);

  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override { return (lo_ + hi_) / 2.0; }
  [[nodiscard]] double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DelayDistribution> clone() const override;

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

}  // namespace chenfd::dist
