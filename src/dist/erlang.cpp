#include "dist/erlang.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace chenfd::dist {

Erlang::Erlang(int stages, double rate) : stages_(stages), rate_(rate) {
  CHENFD_EXPECTS(stages >= 1, "Erlang: stages must be >= 1");
  CHENFD_EXPECTS(std::isfinite(rate) && rate > 0.0,
                 "Erlang: rate must be positive and finite");
}

Erlang Erlang::with_mean(int stages, double mean) {
  CHENFD_EXPECTS(mean > 0.0, "Erlang::with_mean: mean must be positive");
  CHENFD_EXPECTS(stages >= 1, "Erlang::with_mean: stages must be >= 1");
  return Erlang(stages, static_cast<double>(stages) / mean);
}

double Erlang::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  // 1 - exp(-rate x) * sum_{n=0}^{k-1} (rate x)^n / n!
  const double rx = rate_ * x;
  double term = 1.0;  // (rx)^0 / 0!
  double sum = term;
  for (int n = 1; n < stages_; ++n) {
    term *= rx / static_cast<double>(n);
    sum += term;
  }
  return 1.0 - std::exp(-rx) * sum;
}

double Erlang::sample(Rng& rng) const {
  double acc = 0.0;
  for (int i = 0; i < stages_; ++i) {
    acc += -std::log(rng.uniform01_open_zero());
  }
  return acc / rate_;
}

std::string Erlang::name() const {
  std::ostringstream os;
  os << "Erlang(k=" << stages_ << ",rate=" << rate_ << ")";
  return os.str();
}

std::unique_ptr<DelayDistribution> Erlang::clone() const {
  return std::make_unique<Erlang>(stages_, rate_);
}

}  // namespace chenfd::dist
