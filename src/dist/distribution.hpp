// Message-delay distributions (Section 3.1 of the paper).
//
// The probabilistic network model characterizes a link by a message loss
// probability p_L and a message delay D, a random variable on (0, inf) with
// finite mean E(D) and variance V(D).  The paper deliberately does NOT fix a
// particular distribution; its analysis (Proposition 3, Theorem 5) only uses
// Pr(D > x), and the distribution-free configurator (Section 5) only uses
// E(D) and V(D).  This interface captures exactly that contract.
//
// Every distribution supports:
//   cdf(x)        Pr(D <= x)
//   cdf_strict(x) Pr(D <  x)   (differs from cdf only at atoms, e.g. the
//                               Constant distribution used in tests)
//   tail(x)       Pr(D >  x)
//   mean(), variance()
//   sample(rng)   one random draw
//
// Implementations are immutable after construction and therefore safe to
// share by const reference across simulation components.

#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"

namespace chenfd::dist {

class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;

  /// Pr(D <= x).  Must be 0 for x < 0.
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Pr(D < x).  Equal to cdf(x) for continuous distributions; overridden by
  /// distributions with atoms.
  [[nodiscard]] virtual double cdf_strict(double x) const { return cdf(x); }

  /// Pr(D > x) = 1 - cdf(x).
  [[nodiscard]] double tail(double x) const { return 1.0 - cdf(x); }

  /// E(D).  Finite by the model assumption.
  [[nodiscard]] virtual double mean() const = 0;

  /// V(D).  Finite by the model assumption.
  [[nodiscard]] virtual double variance() const = 0;

  /// One random delay draw, in seconds, > 0.
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;

  /// Human-readable name for tables and logs, e.g. "Exp(mean=0.02)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (distributions are immutable, so this is cheap and safe).
  [[nodiscard]] virtual std::unique_ptr<DelayDistribution> clone() const = 0;

  /// Generalized inverse CDF: the smallest x with cdf(x) >= u, u in (0, 1).
  /// Default implementation brackets geometrically and bisects on cdf();
  /// override where a closed form exists.  Used by the Gaussian-copula
  /// correlated-delay link (net::CorrelatedDelays).
  [[nodiscard]] virtual double quantile(double u) const;
};

}  // namespace chenfd::dist
