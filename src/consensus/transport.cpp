#include "consensus/transport.hpp"

#include <utility>

#include "common/check.hpp"

namespace chenfd::consensus {

const char* to_string(Message::Type t) {
  switch (t) {
    case Message::Type::kEstimate:
      return "ESTIMATE";
    case Message::Type::kSelect:
      return "SELECT";
    case Message::Type::kAck:
      return "ACK";
    case Message::Type::kNack:
      return "NACK";
    case Message::Type::kDecide:
      return "DECIDE";
  }
  return "?";
}

Transport::Transport(sim::Simulator& simulator, std::size_t n,
                     std::unique_ptr<dist::DelayDistribution> delay,
                     double p_loss, std::uint64_t seed)
    : sim_(simulator),
      n_(n),
      delay_(std::move(delay)),
      p_loss_(p_loss),
      rng_(seed),
      handlers_(n),
      crashed_(n, false) {
  expects(n >= 2, "Transport: need at least two processes");
  expects(delay_ != nullptr, "Transport: delay distribution required");
  expects(p_loss >= 0.0 && p_loss < 1.0,
          "Transport: p_loss must be in [0, 1)");
}

void Transport::register_handler(ProcessId id, Handler handler) {
  expects(id < n_, "Transport::register_handler: id out of range");
  handlers_[id] = std::move(handler);
}

void Transport::send(ProcessId to, const Message& m) {
  expects(to < n_ && m.from < n_, "Transport::send: id out of range");
  if (crashed_[m.from]) return;
  ++sent_;
  if (p_loss_ > 0.0 && rng_.bernoulli(p_loss_)) {
    ++dropped_;
    return;
  }
  const Duration d(delay_->sample(rng_));
  sim_.after(d, [this, to, m] {
    if (crashed_[to]) return;  // crashed receivers process nothing
    if (handlers_[to]) handlers_[to](m, sim_.now());
  });
}

void Transport::broadcast(const Message& m) {
  for (ProcessId to = 0; to < n_; ++to) send(to, m);
}

void Transport::crash(ProcessId id) {
  expects(id < n_, "Transport::crash: id out of range");
  crashed_[id] = true;
}

}  // namespace chenfd::consensus
