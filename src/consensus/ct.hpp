// Chandra-Toueg rotating-coordinator consensus over an unreliable failure
// detector — the canonical application the paper's introduction motivates
// ("failure detectors can be used to solve ... consensus"), and the reason
// failure detector QoS matters: every false suspicion of a coordinator
// burns a round, and every crash stalls the protocol for one detection
// time.
//
// The algorithm (Chandra & Toueg, JACM 1996), round r, coordinator
// c_r = (r-1) mod n:
//
//   phase 1  every process sends (ESTIMATE, r, estimate, ts) to c_r;
//   phase 2  c_r gathers ceil((n+1)/2) estimates, adopts the one with the
//            largest ts, broadcasts (SELECT, r, v);
//   phase 3  each process waits until it receives c_r's SELECT — in which
//            case it adopts v (ts := r) and ACKs — or until its failure
//            detector suspects c_r — in which case it NACKs; either way it
//            immediately proceeds to round r+1;
//   phase 4  c_r gathers ceil((n+1)/2) replies; if all are ACKs it
//            reliable-broadcasts (DECIDE, v).
//
// Suspicion is read from a group::SuspicionOracle (the Group mesh of NFD-S
// detectors); phase 3 polls it at a configurable period, emulating an
// application that queries the detector (the paper's query accuracy
// probability P_A is exactly the probability such a query is not a false
// suspicion).
//
// Guarantees exercised by the tests: validity and (uniform) agreement hold
// under any detector behaviour and any message loss; termination holds when
// channels are reliable and the detector eventually stops suspecting some
// correct coordinator (our NFD-S in steady state suspects rarely).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "consensus/transport.hpp"
#include "group/group.hpp"
#include "sim/simulator.hpp"

namespace chenfd::consensus {

class CtProcess {
 public:
  struct Options {
    /// Phase-3 polling period of the suspicion oracle.
    Duration suspicion_poll = seconds(0.05);
    /// Safety valve for runaway executions (0 = unlimited).
    std::uint64_t max_rounds = 0;
    /// Optional Omega-style leader hint (election::Elector output): when
    /// set and returning a valid id, that process coordinates *every*
    /// round instead of the static rotation c_r = (r-1) mod n.  Under a
    /// stable leader the first coordinator is already a correct process,
    /// so no round is burned detecting a crashed one — the QoS payoff the
    /// election service exists for.  Safety is untouched (any coordinator
    /// choice preserves validity and agreement; only termination needs the
    /// hints to eventually converge, which Omega guarantees).  With
    /// divergent hints a process may receive coordinator traffic it did
    /// not expect; such messages are handled rather than rejected.
    std::function<std::optional<ProcessId>()> leader_hint;
  };

  CtProcess(sim::Simulator& simulator, Transport& transport,
            const group::SuspicionOracle& oracle, ProcessId id,
            std::size_t n, std::int64_t proposal, Options options);
  CtProcess(sim::Simulator& simulator, Transport& transport,
            const group::SuspicionOracle& oracle, ProcessId id,
            std::size_t n, std::int64_t proposal);

  /// Registers the transport handler and begins round 1.
  void start();

  /// Halts the process (its transport endpoint should be crashed too).
  void crash();

  [[nodiscard]] bool decided() const { return decision_.has_value(); }
  [[nodiscard]] std::int64_t decision() const;
  [[nodiscard]] TimePoint decision_time() const;
  [[nodiscard]] std::uint64_t decided_round() const;
  [[nodiscard]] std::uint64_t current_round() const { return round_; }
  [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
  [[nodiscard]] ProcessId id() const { return id_; }

  [[nodiscard]] std::size_t majority() const { return n_ / 2 + 1; }

 private:
  struct CoordinatorRound {
    std::vector<Message> estimates;
    std::size_t acks = 0;
    std::size_t nacks = 0;
    bool select_sent = false;
    bool done = false;  // decided or aborted
  };

  [[nodiscard]] ProcessId coordinator_of(std::uint64_t round) const;

  void begin_round(std::uint64_t round);
  void on_message(const Message& m, TimePoint at);
  void on_select(const Message& m);
  void coordinator_on_estimate(const Message& m);
  void coordinator_on_reply(const Message& m);
  void poll_suspicion();
  void decide(std::int64_t value, std::uint64_t round);

  sim::Simulator& sim_;
  Transport& transport_;
  const group::SuspicionOracle& oracle_;
  ProcessId id_;
  std::size_t n_;
  Options options_;

  std::int64_t estimate_;
  std::uint64_t estimate_ts_ = 0;
  std::uint64_t round_ = 0;
  bool awaiting_select_ = false;
  bool halted_ = false;
  std::optional<std::int64_t> decision_;
  TimePoint decision_time_{};
  std::uint64_t decided_round_ = 0;
  std::uint64_t nacks_sent_ = 0;

  std::map<std::uint64_t, CoordinatorRound> coordinator_rounds_;
  std::map<std::uint64_t, Message> pending_selects_;
  sim::EventId poll_timer_ = 0;
};

/// Convenience driver: runs one consensus instance over an existing Group
/// (its simulator, its suspicion oracle) and a fresh transport.
struct InstanceResult {
  bool all_correct_decided = false;
  std::int64_t decision = 0;
  bool agreement = true;          ///< all deciders agree
  bool validity = true;           ///< decision was someone's proposal
  double latency_seconds = 0.0;   ///< start -> last correct decision
  std::uint64_t max_round = 0;    ///< largest round any process reached
  std::uint64_t nacks = 0;        ///< total false-suspicion NACKs
};

}  // namespace chenfd::consensus
