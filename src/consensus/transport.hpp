// Point-to-point message transport for the consensus substrate.
//
// Chandra-Toueg consensus assumes quasi-reliable channels (every message
// between correct processes is eventually delivered), which real systems
// get from TCP.  This transport therefore defaults to lossless delivery
// with random per-message delays drawn from a DelayDistribution, but can be
// configured lossy to demonstrate (in tests) that message loss endangers
// only liveness, never agreement.
//
// Crashed processes stop sending; messages already in flight are still
// delivered (consistent with the crash model of Section 3.1).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "dist/distribution.hpp"
#include "group/group.hpp"
#include "sim/simulator.hpp"

namespace chenfd::consensus {

using group::ProcessId;

/// A consensus protocol message (Chandra-Toueg rotating coordinator).
struct Message {
  enum class Type : std::uint8_t {
    kEstimate,  ///< phase 1: participant -> coordinator
    kSelect,    ///< phase 2: coordinator -> all
    kAck,       ///< phase 3: participant -> coordinator (got the select)
    kNack,      ///< phase 3: participant -> coordinator (suspected you)
    kDecide,    ///< phase 4: reliable-broadcast of the decision
  };

  Type type = Type::kEstimate;
  ProcessId from = 0;
  std::uint64_t round = 0;
  std::int64_t value = 0;
  std::uint64_t value_ts = 0;  ///< round in which `value` was last adopted
};

[[nodiscard]] const char* to_string(Message::Type t);

class Transport {
 public:
  using Handler = std::function<void(const Message&, TimePoint)>;

  /// n processes; per-message delays drawn from `delay`; messages dropped
  /// with probability p_loss (0 for the quasi-reliable default).
  Transport(sim::Simulator& simulator, std::size_t n,
            std::unique_ptr<dist::DelayDistribution> delay, double p_loss,
            std::uint64_t seed);

  /// Registers the delivery callback of process `id`.
  void register_handler(ProcessId id, Handler handler);

  /// Sends `m` from m.from to `to`.  Self-sends are delivered after the
  /// same random delay (simplification; harmless for the protocol).
  void send(ProcessId to, const Message& m);

  /// Sends `m` to every process, including m.from.
  void broadcast(const Message& m);

  /// After this, `id` sends nothing (its handler also stops firing).
  void crash(ProcessId id);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

 private:
  sim::Simulator& sim_;
  std::size_t n_;
  std::unique_ptr<dist::DelayDistribution> delay_;
  double p_loss_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace chenfd::consensus
