#include "consensus/ct.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chenfd::consensus {

CtProcess::CtProcess(sim::Simulator& simulator, Transport& transport,
                     const group::SuspicionOracle& oracle, ProcessId id,
                     std::size_t n, std::int64_t proposal, Options options)
    : sim_(simulator),
      transport_(transport),
      oracle_(oracle),
      id_(id),
      n_(n),
      options_(options),
      estimate_(proposal) {
  expects(n >= 2, "CtProcess: need at least two processes");
  expects(id < n, "CtProcess: id out of range");
  expects(options_.suspicion_poll > Duration::zero(),
          "CtProcess: suspicion poll period must be positive");
}

CtProcess::CtProcess(sim::Simulator& simulator, Transport& transport,
                     const group::SuspicionOracle& oracle, ProcessId id,
                     std::size_t n, std::int64_t proposal)
    : CtProcess(simulator, transport, oracle, id, n, proposal, Options{}) {}

ProcessId CtProcess::coordinator_of(std::uint64_t round) const {
  // A valid leader hint overrides the rotation; an empty or out-of-range
  // hint (election still converging) falls back to it, so termination
  // never depends on the hint being well-behaved.
  if (options_.leader_hint) {
    if (const std::optional<ProcessId> hinted = options_.leader_hint();
        hinted.has_value() && *hinted < n_) {
      return *hinted;
    }
  }
  return static_cast<ProcessId>((round - 1) % n_);
}

std::int64_t CtProcess::decision() const {
  expects(decision_.has_value(), "CtProcess::decision: not decided yet");
  return *decision_;
}

TimePoint CtProcess::decision_time() const {
  expects(decision_.has_value(), "CtProcess::decision_time: not decided");
  return decision_time_;
}

std::uint64_t CtProcess::decided_round() const {
  expects(decision_.has_value(), "CtProcess::decided_round: not decided");
  return decided_round_;
}

void CtProcess::start() {
  transport_.register_handler(
      id_, [this](const Message& m, TimePoint at) { on_message(m, at); });
  poll_timer_ = sim_.after(options_.suspicion_poll,
                           [this] { poll_suspicion(); });
  begin_round(1);
}

void CtProcess::crash() {
  halted_ = true;
  if (poll_timer_ != 0) sim_.cancel(poll_timer_);
}

void CtProcess::begin_round(std::uint64_t round) {
  if (halted_ || decision_) return;
  if (options_.max_rounds != 0 && round > options_.max_rounds) {
    halted_ = true;  // safety valve (liveness experiments with lossy links)
    return;
  }
  round_ = round;
  awaiting_select_ = true;

  // Phase 1: send the current estimate to this round's coordinator.
  Message est;
  est.type = Message::Type::kEstimate;
  est.from = id_;
  est.round = round;
  est.value = estimate_;
  est.value_ts = estimate_ts_;
  transport_.send(coordinator_of(round), est);

  // A SELECT for this round may have arrived while we were in an earlier
  // round (coordinators can run ahead).
  const auto it = pending_selects_.find(round);
  if (it != pending_selects_.end()) {
    const Message buffered = it->second;
    pending_selects_.erase(it);
    on_select(buffered);
  }
}

void CtProcess::on_message(const Message& m, TimePoint at) {
  if (halted_) return;
  switch (m.type) {
    case Message::Type::kEstimate:
      coordinator_on_estimate(m);
      break;
    case Message::Type::kSelect:
      if (m.round == round_ && awaiting_select_) {
        on_select(m);
      } else if (m.round > round_) {
        pending_selects_.emplace(m.round, m);
      }
      break;
    case Message::Type::kAck:
    case Message::Type::kNack:
      coordinator_on_reply(m);
      break;
    case Message::Type::kDecide:
      if (!decision_) decide(m.value, m.round);
      break;
  }
  (void)at;
}

void CtProcess::on_select(const Message& m) {
  // Phase 3, happy path: adopt the coordinator's value and ACK.
  awaiting_select_ = false;
  estimate_ = m.value;
  estimate_ts_ = round_;
  Message ack;
  ack.type = Message::Type::kAck;
  ack.from = id_;
  ack.round = round_;
  // ACK the coordinator that actually sent the SELECT: identical to
  // coordinator_of(round_) under the rotation, and the only correct
  // addressee when a leader hint changed mid-round.
  transport_.send(m.from, ack);
  begin_round(round_ + 1);
}

void CtProcess::coordinator_on_estimate(const Message& m) {
  // Under a rotation the addressing is static and checkable; under hints
  // two processes may briefly disagree on the leader, so a coordinator
  // accepts whatever estimates were addressed to it.
  expects(options_.leader_hint != nullptr || coordinator_of(m.round) == id_,
          "CtProcess: received an ESTIMATE addressed to another coordinator");
  auto& cr = coordinator_rounds_[m.round];
  if (cr.select_sent) return;
  cr.estimates.push_back(m);
  if (cr.estimates.size() < majority()) return;

  // Phase 2: adopt the estimate with the largest timestamp (ties broken by
  // arrival order) and broadcast the selection.
  const auto best = std::max_element(
      cr.estimates.begin(), cr.estimates.end(),
      [](const Message& a, const Message& b) {
        return a.value_ts < b.value_ts;
      });
  cr.select_sent = true;
  Message sel;
  sel.type = Message::Type::kSelect;
  sel.from = id_;
  sel.round = m.round;
  sel.value = best->value;
  transport_.broadcast(sel);
}

void CtProcess::coordinator_on_reply(const Message& m) {
  expects(options_.leader_hint != nullptr || coordinator_of(m.round) == id_,
          "CtProcess: received a reply addressed to another coordinator");
  auto& cr = coordinator_rounds_[m.round];
  if (cr.done) return;
  if (m.type == Message::Type::kAck) {
    ++cr.acks;
  } else {
    ++cr.nacks;
  }
  if (cr.acks + cr.nacks < majority()) return;
  cr.done = true;
  if (cr.nacks == 0) {
    // Phase 4: a majority adopted (locked) this round's value — decide.
    const auto best =
        std::max_element(cr.estimates.begin(), cr.estimates.end(),
                         [](const Message& a, const Message& b) {
                           return a.value_ts < b.value_ts;
                         });
    Message dec;
    dec.type = Message::Type::kDecide;
    dec.from = id_;
    dec.round = m.round;
    dec.value = best->value;
    transport_.broadcast(dec);
  }
  // Any NACK among the first majority of replies aborts the round; the
  // participants have already moved on.
}

void CtProcess::poll_suspicion() {
  if (halted_ || decision_) return;
  poll_timer_ = sim_.after(options_.suspicion_poll,
                           [this] { poll_suspicion(); });
  if (!awaiting_select_) return;
  const ProcessId c = coordinator_of(round_);
  if (c == id_ || !oracle_.suspects(id_, c)) return;

  // Phase 3, suspicion path: NACK the coordinator and move on.
  awaiting_select_ = false;
  ++nacks_sent_;
  Message nack;
  nack.type = Message::Type::kNack;
  nack.from = id_;
  nack.round = round_;
  transport_.send(c, nack);
  begin_round(round_ + 1);
}

void CtProcess::decide(std::int64_t value, std::uint64_t round) {
  decision_ = value;
  decision_time_ = sim_.now();
  decided_round_ = round;
  awaiting_select_ = false;
  if (poll_timer_ != 0) sim_.cancel(poll_timer_);
  // Reliable broadcast emulation: forward the decision once.
  Message dec;
  dec.type = Message::Type::kDecide;
  dec.from = id_;
  dec.round = round;
  dec.value = value;
  transport_.broadcast(dec);
}

}  // namespace chenfd::consensus
