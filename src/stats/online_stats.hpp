// Numerically stable online summary statistics (Welford's algorithm).

#pragma once

#include <cstddef>
#include <limits>

namespace chenfd::stats {

/// Accumulates count, mean, variance, min and max of a stream of doubles
/// in O(1) memory using Welford's online algorithm.
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? mean_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Population variance (divides by n).
  [[nodiscard]] double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_)
                      : std::numeric_limits<double>::quiet_NaN();
  }
  /// Unbiased sample variance (divides by n-1).
  [[nodiscard]] double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1)
                      : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double min() const {
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace chenfd::stats
