// A fixed-width histogram over [lo, hi) with overflow/underflow buckets.
// Used by benches to print delay and interval distributions.

#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace chenfd::stats {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    CHENFD_EXPECTS(hi > lo, "Histogram: hi must exceed lo");
    CHENFD_EXPECTS(bins > 0, "Histogram: need at least one bin");
  }

  void add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const double frac = (x - lo_) / (hi_ - lo_);
      auto idx = static_cast<std::size_t>(frac *
                                          static_cast<double>(counts_.size()));
      if (idx >= counts_.size()) idx = counts_.size() - 1;
      ++counts_[idx];
    }
  }

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    CHENFD_EXPECTS(bin < counts_.size(),
                   "Histogram::count: bin out of range");
    return counts_[bin];
  }
  [[nodiscard]] double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Fraction of all observations falling in `bin`.
  [[nodiscard]] double fraction(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(total_);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace chenfd::stats
