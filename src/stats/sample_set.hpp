// A bounded sample reservoir with exact moments and empirical distribution
// queries.  Used by the QoS recorder to retain T_G / T_MR / T_M samples so
// that higher moments (needed by Theorem 1 part 3 of the paper, the forward
// good period formulas) and quantiles can be computed after a run.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "stats/online_stats.hpp"

namespace chenfd::stats {

/// Stores up to `capacity` samples verbatim (no reservoir subsampling by
/// default; callers that feed more than `capacity` samples simply stop
/// retaining raw values but keep exact online statistics).
class SampleSet {
 public:
  explicit SampleSet(std::size_t capacity = 1u << 20) : capacity_(capacity) {}

  void add(double x) {
    online_.add(x);
    if (samples_.size() < capacity_) samples_.push_back(x);
    sorted_ = false;
  }

  /// Pre-allocates room for up to n retained samples (clamped to capacity).
  /// The fast-sim engines size their reservoirs from the stop criteria so
  /// steady-state measurement never reallocates; within_reserve() is the
  /// audit witness for that property.
  void reserve(std::size_t n) {
    n = std::min(n, capacity_);
    samples_.reserve(n);
    reserved_ = std::max(reserved_, n);
  }

  /// True while no sample has been retained beyond the reserved prefix —
  /// i.e. add() has provably never grown the reservoir's heap allocation.
  /// Meaningful only after reserve(); trivially false otherwise.
  [[nodiscard]] bool within_reserve() const {
    return samples_.size() <= reserved_;
  }

  [[nodiscard]] std::size_t count() const { return online_.count(); }
  [[nodiscard]] double mean() const { return online_.mean(); }
  [[nodiscard]] double variance() const { return online_.variance(); }
  [[nodiscard]] double min() const { return online_.min(); }
  [[nodiscard]] double max() const { return online_.max(); }
  [[nodiscard]] const OnlineStats& online() const { return online_; }

  /// Merges another sample set into this one.  Exact online moments (count,
  /// mean, variance, min, max) combine losslessly; retained raw samples are
  /// appended in `other`'s insertion order until this set's capacity is
  /// reached, so quantile/moment/tail queries stay exact as long as both
  /// inputs were complete() and the union fits, and degrade to a
  /// prefix-subsample otherwise.  Merging is associative over the online
  /// moments, and reducing a fixed sequence of sets in a fixed order yields
  /// bit-identical results — the property the parallel runner relies on.
  void merge(const SampleSet& other) {
    // Associativity of the reduction (what the parallel runner relies on)
    // requires each operand to be internally consistent: the retained raw
    // samples must be a prefix of what the online moments have seen.
    CHENFD_EXPECTS(other.samples_.size() <= other.online_.count(),
                   "SampleSet::merge: operand retains samples it never saw");
    CHENFD_EXPECTS(samples_.size() <= capacity_,
                   "SampleSet::merge: reservoir overflowed its capacity");
    online_.merge(other.online_);
    for (double x : other.samples_) {
      if (samples_.size() >= capacity_) break;
      samples_.push_back(x);
    }
    sorted_ = false;
  }

  /// True if every sample fed to add() is still retained.
  [[nodiscard]] bool complete() const {
    return samples_.size() == online_.count();
  }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// k-th raw moment E(X^k) over the retained samples.
  [[nodiscard]] double moment(int k) const {
    CHENFD_EXPECTS(k >= 1, "SampleSet::moment: k must be >= 1");
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    double acc = 0.0;
    for (double x : samples_) acc += std::pow(x, k);
    return acc / static_cast<double>(samples_.size());
  }

  /// Empirical Pr(X > x) over the retained samples.
  [[nodiscard]] double tail_probability(double x) const {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    const auto above = std::count_if(samples_.begin(), samples_.end(),
                                     [x](double s) { return s > x; });
    return static_cast<double>(above) / static_cast<double>(samples_.size());
  }

  /// Empirical q-quantile (q in [0,1]) over the retained samples.
  [[nodiscard]] double quantile(double q) {
    CHENFD_EXPECTS(q >= 0.0 && q <= 1.0,
                   "SampleSet::quantile: q must be in [0,1]");
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    sort_if_needed();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

 private:
  void sort_if_needed() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::size_t capacity_;
  std::size_t reserved_ = 0;
  std::vector<double> samples_;
  OnlineStats online_;
  bool sorted_ = false;
};

}  // namespace chenfd::stats
