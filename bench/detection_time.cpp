// Detection-time study (Theorem 5.1 and Sections 1.2/6.2): distribution of
// T_D under randomized crash times for each algorithm, with the same
// detection budget T_D^U = 3.
//
//   - NFD-S: T_D <= delta + eta surely, and the bound is tight.
//   - NFD-U/NFD-E: T_D <= eta + alpha + E(D) (relative bound).
//   - SFD with cutoff: T_D <= c + TO.
//   - SFD without cutoff: the worst case grows with the *maximum* delay —
//     the drawback motivating the paper's design (shown with a fat-tailed
//     link where the effect is visible at small sample sizes).

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/experiments.hpp"
#include "core/nfd_e.hpp"
#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "dist/exponential.hpp"
#include "dist/pareto.hpp"

int main() {
  using namespace chenfd;
  const std::size_t runs = bench::fast_mode() ? 100 : 1000;
  const double e_d = 0.02;
  dist::Exponential delay(e_d);
  core::NetworkModel model{0.01, delay};

  core::DetectionExperiment exp;
  exp.runs = runs;
  exp.warmup = seconds(50.0);
  exp.settle = seconds(200.0);
  exp.seed = 8800;

  bench::print_header(
      "Detection time T_D under randomized crashes (T_D^U = 3, eta = 1)",
      "p_L = 0.01, D ~ Exp(0.02); crash uniform within a heartbeat period; " +
          std::to_string(runs) + " runs per algorithm.");

  bench::Table table(
      {"algorithm", "mean", "p95", "max", "declared bound", "bound held"});

  const auto add = [&](const std::string& name,
                       const core::DetectorFactory& factory, double bound) {
    auto samples = core::measure_detection_times(factory, model, exp);
    table.add_row({name, bench::Table::num(samples.mean()),
                   bench::Table::num(samples.quantile(0.95)),
                   bench::Table::num(samples.max()),
                   bench::Table::num(bound),
                   samples.max() <= bound + 1e-9 ? "yes" : "NO"});
  };

  add("NFD-S (delta=2)",
      [](core::Testbed& tb) -> std::unique_ptr<core::FailureDetector> {
        return std::make_unique<core::NfdS>(
            tb.simulator(), core::NfdSParams{Duration(1.0), Duration(2.0)});
      },
      3.0);
  add("NFD-E (alpha=1.98, n=32)",
      [](core::Testbed& tb) -> std::unique_ptr<core::FailureDetector> {
        return std::make_unique<core::NfdE>(
            tb.simulator(), tb.q_clock(),
            core::NfdEParams{Duration(1.0), Duration(1.98), 32});
      },
      3.0 + 0.05 /* EA estimation slack */);
  add("SFD-L (c=0.16, TO=2.84)",
      [](core::Testbed& tb) -> std::unique_ptr<core::FailureDetector> {
        return std::make_unique<core::Sfd>(
            tb.simulator(), tb.q_clock(),
            core::SfdParams{Duration(2.84), Duration(0.16)});
      },
      3.0);
  table.print();

  // The closed-form T_D distribution for NFD-S (library extension; the
  // paper gives only the bound): T_D = max(0, delta + eta(1-phi) - G*eta),
  // G ~ Geometric(q_0).
  const core::NfdSAnalysis a(core::NfdSParams{Duration(1.0), Duration(2.0)},
                             0.01, delay);
  std::cout << "\nAnalytic T_D distribution for NFD-S (extension): mean = "
            << a.detection_time_mean().seconds()
            << " s, Pr(T_D <= 2.5) = " << a.detection_time_cdf(2.5)
            << ", Pr(T_D <= 3) = " << a.detection_time_cdf(3.0)
            << ", Pr(already suspecting) = "
            << a.detection_time_zero_probability() << "\n";

  // The no-cutoff drawback, on a fat-tailed link where it shows quickly.
  bench::print_header(
      "Why a bounded T_D needs freshness points (or a cutoff)",
      "Same experiment on a Pareto(alpha=2.5) link with E(D) = 0.3 and "
      "plain SFD (TO = 2.84, no cutoff):");
  dist::Pareto fat = dist::Pareto::with_mean(0.3, 2.5);
  core::NetworkModel fat_model{0.0, fat};
  auto plain = core::measure_detection_times(
      [](core::Testbed& tb) -> std::unique_ptr<core::FailureDetector> {
        return std::make_unique<core::Sfd>(tb.simulator(), tb.q_clock(),
                                           core::SfdParams{Duration(2.84)});
      },
      fat_model, exp);
  auto nfds_fat = core::measure_detection_times(
      [](core::Testbed& tb) -> std::unique_ptr<core::FailureDetector> {
        return std::make_unique<core::NfdS>(
            tb.simulator(), core::NfdSParams{Duration(1.0), Duration(2.0)});
      },
      fat_model, exp);
  bench::Table fatt({"algorithm", "mean", "max", "exceeds T_D^U = 3?"});
  fatt.add_row({"plain SFD", bench::Table::num(plain.mean()),
                bench::Table::num(plain.max()),
                plain.max() > 3.0 ? "YES (unbounded tail)" : "no"});
  fatt.add_row({"NFD-S", bench::Table::num(nfds_fat.mean()),
                bench::Table::num(nfds_fat.max()),
                nfds_fat.max() > 3.0 ? "YES" : "no (bounded by design)"});
  fatt.print();
  return 0;
}
