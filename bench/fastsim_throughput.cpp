// Throughput study of the batched fast-sim kernels, and the producer of
// the perf-regression baseline.
//
// Runs each fast engine (NFD-S skip-scan, NFD-E and SFD event loops) on
// the same workloads as bench_micro's per-heartbeat benchmarks, measures
// heartbeats/sec over several repetitions, and writes the medians to
// BENCH_fastsim.json.  CI's perf-smoke job (tools/perf_gate.py) compares
// that file against the committed baseline bench/BENCH_fastsim_baseline.json
// and fails on a >20% regression.
//
// The pre-batching reference constants below were measured on the same
// workloads with the per-event virtual-dispatch engines this kernel
// replaced (Release build, idle machine, median of 3 google-benchmark
// repetitions); they exist so the reported multiple has a fixed, documented
// denominator.  See EXPERIMENTS.md E16.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/arena.hpp"
#include "core/fast_sim.hpp"
#include "core/sampler.hpp"
#include "dist/exponential.hpp"

namespace {

using namespace chenfd;

struct Budget {
  std::uint64_t heartbeats_per_rep;
  int repetitions;
};

Budget budget() {
  if (bench::fast_mode()) return {2'000'000, 3};
  return {20'000'000, 5};
}

struct EngineResult {
  std::string name;
  double items_per_sec;       // median across repetitions
  double pre_batching_ref;    // items/sec of the replaced engine (0 = n/a)
};

/// Medians are robust to a single slow repetition (cold cache, scheduler
/// blip) without needing long settle times.
double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename RunFn>
EngineResult measure(const std::string& name, double pre_batching_ref,
                     std::uint64_t items_per_rep, int reps, RunFn&& run) {
  std::vector<double> rates;
  for (int r = 0; r < reps; ++r) {
    // detlint: allow(R1) measuring wall-clock throughput is this bench's job
    const auto t0 = std::chrono::steady_clock::now();
    run(static_cast<std::uint64_t>(r + 1));
    // detlint: allow(R1) measuring wall-clock throughput is this bench's job
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    rates.push_back(static_cast<double>(items_per_rep) / secs);
  }
  return {name, median(rates), pre_batching_ref};
}

}  // namespace

int main() {
  const Budget b = budget();
  dist::Exponential delay(0.02);
  const core::CompiledSampler sampler(delay);
  MonotonicArena arena;

  core::StopCriteria stop;
  stop.target_s_transitions = std::size_t{1} << 30;  // run to the cap
  stop.max_heartbeats = b.heartbeats_per_rep;

  bench::print_header(
      "Fast-sim kernel throughput",
      std::to_string(b.heartbeats_per_rep) + " heartbeats/repetition x " +
          std::to_string(b.repetitions) +
          " repetitions per engine; median reported.\n"
          "Workloads match bench_micro (eta = 1, p_L = 0.01, "
          "exponential delay, mean 0.02).");

  // Pre-batching references: the per-event engines on identical workloads.
  constexpr double kPreNfdS = 65.2e6;
  constexpr double kPreNfdE = 31.9e6;
  constexpr double kPreSfd = 54.6e6;

  std::vector<EngineResult> results;
  results.push_back(measure(
      "nfd_s", kPreNfdS, b.heartbeats_per_rep, b.repetitions,
      [&](std::uint64_t seed) {
        Rng rng(seed);
        const auto r = core::fast_nfd_s_accuracy(
            core::NfdSParams{Duration(1.0), Duration(2.0)}, 0.01, sampler,
            rng, stop, &arena);
        if (r.heartbeats == 0) std::abort();  // keep the run observable
      }));
  results.push_back(measure(
      "nfd_e", kPreNfdE, b.heartbeats_per_rep, b.repetitions,
      [&](std::uint64_t seed) {
        Rng rng(100 + seed);
        const auto r = core::fast_nfd_e_accuracy(
            core::NfdEParams{Duration(1.0), Duration(2.0), 32}, 0.01,
            sampler, rng, stop, &arena);
        if (r.heartbeats == 0) std::abort();
      }));
  results.push_back(measure(
      "sfd", kPreSfd, b.heartbeats_per_rep, b.repetitions,
      [&](std::uint64_t seed) {
        Rng rng(200 + seed);
        const auto r = core::fast_sfd_accuracy(
            core::SfdParams{Duration(1.84), Duration(0.16)}, Duration(1.0),
            0.01, sampler, rng, stop, &arena);
        if (r.heartbeats == 0) std::abort();
      }));

  bench::Table table({"engine", "items/sec", "pre-batching", "multiple"});
  for (const auto& r : results) {
    table.add_row({r.name, bench::Table::sci(r.items_per_sec),
                   bench::Table::sci(r.pre_batching_ref),
                   bench::Table::num(r.items_per_sec / r.pre_batching_ref)});
  }
  table.print();

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"fastsim_throughput\",\n"
       << "  \"fast_mode\": " << (bench::fast_mode() ? "true" : "false")
       << ",\n"
       << "  \"heartbeats_per_rep\": " << b.heartbeats_per_rep << ",\n"
       << "  \"repetitions\": " << b.repetitions << ",\n"
       << "  \"engines\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"name\": \"" << r.name
         << "\", \"items_per_sec\": " << r.items_per_sec
         << ", \"pre_batching_items_per_sec\": " << r.pre_batching_ref
         << ", \"multiple_vs_pre_batching\": "
         << r.items_per_sec / r.pre_batching_ref << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream("BENCH_fastsim.json") << json.str();
  std::cout << "\nWrote BENCH_fastsim.json\n";
  return 0;
}
