// Reproduces two robustness claims about NFD-E:
//
//   Section 6.3: "Our simulations show that NFD-E and NFD-U are practically
//   indistinguishable for values of n as low as 30" — we sweep the
//   estimation window n and compare E(T_MR) and P_A against NFD-U (whose
//   QoS equals NFD-S with delta = E(D) + alpha, Section 6.2).
//
//   Section 3.1: "clock drift is usually negligible because ... only
//   messages from a short period of time are used for detection" — we give
//   q a drifting clock (rates 1 +/- 1e-6 .. 1e-3) and measure how NFD-E's
//   accuracy degrades.  With n = 32 and eta = 1, the EA window spans ~32 s,
//   so drift rho shifts the freshness points by ~32*rho — invisible at
//   1e-6, noticeable at 1e-3.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/experiments.hpp"
#include "core/fast_sim.hpp"
#include "core/nfd_e.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"

int main() {
  using namespace chenfd;
  const double p_loss = 0.01;
  const double e_d = 0.02;
  const double alpha = 1.0 - e_d;  // detection budget T_D^U = 2
  dist::Exponential delay(e_d);

  const std::size_t mistakes = bench::fast_mode() ? 300 : 3000;

  bench::print_header(
      "Section 6.3 — NFD-E vs NFD-U as the EA window n grows",
      "eta = 1, p_L = 0.01, D ~ Exp(0.02), alpha = 0.98 (T_D^U = 2).\n"
      "NFD-U reference = NFD-S with delta = E(D) + alpha (Section 6.2).");

  // NFD-U reference via the exact equivalence.
  const core::NfdSParams u_equiv{Duration(1.0), Duration(e_d + alpha)};
  core::StopCriteria stop;
  stop.target_s_transitions = mistakes;
  Rng rng_u(41000);
  const auto ru = core::fast_nfd_s_accuracy(u_equiv, p_loss, delay, rng_u,
                                            stop);
  const core::NfdSAnalysis exact(u_equiv, p_loss, delay);

  bench::Table table({"window n", "E(T_MR)", "vs NFD-U", "P_A",
                      "mistakes"});
  table.add_row({"NFD-U (exact EAs)", bench::Table::sci(ru.e_tmr()), "1.00",
                 bench::Table::num(ru.query_accuracy()),
                 std::to_string(ru.s_transitions)});
  std::uint64_t seed = 41001;
  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    Rng rng(seed++);
    const auto re = core::fast_nfd_e_accuracy(
        core::NfdEParams{Duration(1.0), Duration(alpha), n}, p_loss, delay,
        rng, stop);
    table.add_row({std::to_string(n), bench::Table::sci(re.e_tmr()),
                   bench::Table::num(re.e_tmr() / ru.e_tmr()),
                   bench::Table::num(re.query_accuracy()),
                   std::to_string(re.s_transitions)});
  }
  table.print();
  std::cout << "Analytic NFD-U E(T_MR) (Thm 5 with delta = E(D)+alpha): "
            << bench::Table::sci(exact.e_tmr().seconds())
            << "\nReading: by n ~ 16-32 the ratio settles near 1 — the "
               "paper's 'indistinguishable\nfor n as low as 30' claim.\n";

  // ---- Clock drift sensitivity (Section 3.1's negligibility claim) ----
  bench::print_header(
      "Section 3.1 — sensitivity of NFD-E to clock drift",
      "Same settings, n = 32; q's clock runs at rate 1 + rho.  DES "
      "measurement.");
  bench::Table drift({"drift rho", "E(T_MR)", "P_A", "mistakes"});
  const double horizon = bench::fast_mode() ? 30000.0 : 120000.0;
  for (const double rho : {0.0, 1e-6, 1e-4, 1e-3}) {
    core::Testbed::Config cfg;
    cfg.delay = delay.clone();
    cfg.loss = std::make_unique<net::BernoulliLoss>(p_loss);
    cfg.eta = seconds(1.0);
    cfg.seed = 42424;
    core::Testbed tb(std::move(cfg));
    clk::DriftingClock q_clock(Duration::zero(), 1.0 + rho);
    core::NfdE det(tb.simulator(), q_clock,
                   core::NfdEParams{Duration(1.0), Duration(alpha), 32});
    std::vector<Transition> log;
    det.add_listener([&log](const Transition& t) { log.push_back(t); });
    tb.attach(det);
    tb.start();
    tb.simulator().run_until(TimePoint(horizon));
    const auto rec = qos::replay(log, TimePoint(100.0), TimePoint(horizon));
    drift.add_row({bench::Table::num(rho),
                   bench::Table::sci(rec.mistake_recurrence().count() > 0
                                         ? rec.mistake_recurrence().mean()
                                         : horizon),
                   bench::Table::num(rec.query_accuracy()),
                   std::to_string(rec.s_transitions())});
    det.stop();
  }
  drift.print();
  std::cout << "Reading: realistic drift (1e-6) is invisible; even 1e-4 "
               "barely moves the QoS,\nconfirming the paper's negligibility "
               "argument.  Extreme drift (1e-3) shifts the\nfreshness "
               "points by ~eta/30 per window and costs accuracy.\n";
  return 0;
}
