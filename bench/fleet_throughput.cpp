// Throughput and memory study of the sharded FleetMonitor, and the
// producer of the fleet perf baseline (DESIGN.md §13, EXPERIMENTS.md E18).
//
// For each fleet size the bench generates one deterministic heartbeat
// workload (fleet::generate_workload), then times the pure engine path —
// ingest batches + close — over several repetitions with a fresh monitor
// each time, reporting the median heartbeats/sec and the steady-state
// bytes per monitored process.  Results go to BENCH_fleet.json; CI's
// perf-smoke job gates it against bench/BENCH_fleet_baseline.json via
// tools/perf_gate.py --check-fleet.
//
// Before timing anything the bench re-runs the smallest size at shard
// counts {1, 4, 16} and requires byte-identical deterministic payloads
// (counters + transition-stream CRC): the sharding discipline of PRs 1/3/5
// — parallel structure must never change results — applied to the fleet.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fleet/fleet_monitor.hpp"
#include "fleet/workload.hpp"

namespace {

using namespace chenfd;

struct Config {
  std::size_t processes;
  std::uint64_t slots;
  int repetitions;
};

std::vector<Config> configs() {
  if (bench::fast_mode()) {
    return {{10'000, 20, 2}, {100'000, 10, 2}};
  }
  // The 10^6 row keeps fewer slots so the generated stream (32 bytes per
  // heartbeat) stays within a sane memory budget; throughput is
  // per-heartbeat, so fewer slots do not flatter the result.
  return {{10'000, 30, 5}, {100'000, 30, 3}, {1'000'000, 12, 2}};
}

core::NfdEParams detector_params() {
  return core::NfdEParams{seconds(1.0), seconds(0.5), 16};
}

fleet::WorkloadOptions workload_options(const Config& c) {
  fleet::WorkloadOptions w;
  w.processes = c.processes;
  w.seed = 0xF1EE7u + c.processes;
  w.slots = c.slots;
  w.loss_prob = 0.01;
  return w;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

constexpr std::size_t kShards = 16;
constexpr std::size_t kChunk = 8192;

}  // namespace

int main() {
  const std::vector<Config> cs = configs();
  const core::NfdEParams params = detector_params();

  bench::print_header(
      "Fleet monitor throughput",
      "Sharded NFD-E engine: batched ingest + timing-wheel expiry.\n"
      "Timed path: ingest + close over a pregenerated stream, fresh "
      "monitor per repetition, median reported; " +
          std::to_string(kShards) + " shards.");

  // ---- determinism gate: shard counts must not change results ----------
  {
    const fleet::WorkloadOptions w = workload_options(cs.front());
    std::string reference;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                     std::size_t{16}}) {
      const fleet::FleetRunResult r = fleet::run_fleet(w, shards, params);
      std::ostringstream payload;
      fleet::write_fleet_json(payload, {r}, /*include_measurements=*/false,
                              bench::fast_mode());
      if (reference.empty()) {
        reference = payload.str();
      } else if (payload.str() != reference) {
        std::cerr << "FATAL: fleet results differ across shard counts "
                     "(shards="
                  << shards << ")\n";
        return 1;
      }
    }
    std::cout << "shard determinism: payloads identical for shards {1,4,16}"
              << "\n\n";
  }

  std::vector<fleet::FleetRunResult> results;
  for (const Config& c : cs) {
    const fleet::WorkloadOptions w = workload_options(c);
    const std::vector<fleet::Heartbeat> stream = fleet::generate_workload(w);
    const TimePoint horizon = fleet::workload_horizon(w, params);

    fleet::FleetRunResult r;
    std::vector<double> rates;
    for (int rep = 0; rep < c.repetitions; ++rep) {
      fleet::FleetOptions fo;
      fo.processes = c.processes;
      fo.shards = kShards;
      fo.params = params;
      fleet::FleetMonitor monitor(fo);
      // detlint: allow(R1) measuring wall-clock throughput is this bench's job
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < stream.size(); i += kChunk) {
        const std::size_t n = std::min(kChunk, stream.size() - i);
        monitor.ingest(std::span<const fleet::Heartbeat>(&stream[i], n));
      }
      monitor.close(horizon);
      // detlint: allow(R1) measuring wall-clock throughput is this bench's job
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      rates.push_back(static_cast<double>(stream.size()) / secs);

      const std::vector<fleet::Transition> ts = monitor.drain_transitions();
      if (ts.empty()) std::abort();  // keep the run observable
      if (rep + 1 == c.repetitions) {
        r.processes = c.processes;
        r.heartbeats = monitor.heartbeats();
        r.dropped_stale = monitor.dropped_stale();
        r.dropped_pre_epoch = monitor.dropped_pre_epoch();
        r.dropped_duplicate = monitor.dropped_duplicate();
        r.ingested = r.heartbeats - r.dropped_stale - r.dropped_pre_epoch -
                     r.dropped_duplicate;
        r.transitions = ts.size();
        r.suspects = monitor.suspects();
        r.trusts = monitor.trusts();
        r.stream_crc32 = fleet::stream_crc(ts);
        r.shards = kShards;
        r.bytes_per_process = static_cast<double>(monitor.memory_bytes()) /
                              static_cast<double>(c.processes);
      }
    }
    r.heartbeats_per_sec = median(rates);
    results.push_back(r);
  }

  bench::Table table(
      {"processes", "heartbeats", "hb/sec", "bytes/process", "transitions"});
  for (const fleet::FleetRunResult& r : results) {
    table.add_row({std::to_string(r.processes), std::to_string(r.heartbeats),
                   bench::Table::sci(r.heartbeats_per_sec),
                   bench::Table::num(r.bytes_per_process),
                   std::to_string(r.transitions)});
  }
  table.print();

  std::ofstream out("BENCH_fleet.json");
  fleet::write_fleet_json(out, results, /*include_measurements=*/true,
                          bench::fast_mode());
  std::cout << "\nWrote BENCH_fleet.json\n";
  return 0;
}
