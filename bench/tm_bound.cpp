// Reproduces the Section 7 remark accompanying Fig. 12: "We do not show
// the plots for E(T_M) because the E(T_M) of all the algorithms were
// similar and bounded above by approximately eta = 1."
//
// Same settings as Fig. 12; this binary prints the E(T_M) series the paper
// omitted and checks the eta bound empirically, together with the
// Theorem 5.3 analytic value for NFD-S and the Proposition 21 bound
// eta / q_0.

#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/fast_sim.hpp"
#include "dist/exponential.hpp"

int main() {
  using namespace chenfd;
  const double eta = 1.0;
  const double p_loss = 0.01;
  const double e_d = 0.02;
  dist::Exponential delay(e_d);

  const std::size_t mistakes = bench::fast_mode() ? 200 : 2000;
  const std::uint64_t cap = bench::fast_mode() ? 2'000'000 : 50'000'000;

  bench::print_header(
      "Section 7 — E(T_M) of all algorithms (companion to Fig. 12)",
      "eta = 1, p_L = 0.01, D ~ Exp(0.02).  The paper reports all E(T_M)\n"
      "series are similar and bounded by ~eta = 1.");

  bench::Table table({"T_D^U", "NFD-S", "NFD-E", "SFD-L", "SFD-S",
                      "analytic(Thm5)", "eta/q0 (Prop21)"});

  std::uint64_t seed = 93000;
  for (const double t_du : {1.25, 1.75, 2.25, 2.75, 3.25}) {
    core::StopCriteria stop;
    stop.target_s_transitions = mistakes;
    stop.max_heartbeats = cap;

    const core::NfdSParams nfd_s{Duration(eta), Duration(t_du - eta)};
    Rng rng_s(seed++);
    const auto rs =
        core::fast_nfd_s_accuracy(nfd_s, p_loss, delay, rng_s, stop);

    const core::NfdEParams nfd_e{Duration(eta), Duration(t_du - e_d - eta),
                                 32};
    Rng rng_e(seed++);
    const auto re =
        core::fast_nfd_e_accuracy(nfd_e, p_loss, delay, rng_e, stop);

    Rng rng_l(seed++);
    const auto rl = core::fast_sfd_accuracy(
        core::SfdParams{Duration(t_du - 0.16), Duration(0.16)},
        Duration(eta), p_loss, delay, rng_l, stop);
    Rng rng_ss(seed++);
    const auto rss = core::fast_sfd_accuracy(
        core::SfdParams{Duration(t_du - 0.08), Duration(0.08)},
        Duration(eta), p_loss, delay, rng_ss, stop);

    const core::NfdSAnalysis exact(nfd_s, p_loss, delay);

    table.add_row({bench::Table::num(t_du), bench::Table::num(rs.e_tm()),
                   bench::Table::num(re.e_tm()), bench::Table::num(rl.e_tm()),
                   bench::Table::num(rss.e_tm()),
                   bench::Table::num(exact.e_tm().seconds()),
                   bench::Table::num(eta / exact.q0())});
  }
  table.print();

  std::cout << "\nReading: every measured E(T_M) is below ~eta = 1, as the "
               "paper states.\n";
  return 0;
}
