// Shared helpers for the reproduction harness binaries.

#pragma once

#include <cstddef>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace chenfd::bench {

/// True when CHENFD_BENCH_FAST=1: binaries shrink their sample counts so a
/// full `for b in build/bench/*; do $b; done` smoke pass stays quick.
[[nodiscard]] bool fast_mode();

/// Prints a section header for one reproduced table/figure.
void print_header(const std::string& title, const std::string& setup);

/// Fixed-width table printer: set columns once, then add rows of cells.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14);

  void add_row(const std::vector<std::string>& cells);
  void print(std::ostream& os = std::cout) const;

  /// Formats a double compactly (%.4g-style).
  [[nodiscard]] static std::string num(double v);
  /// Formats a double in scientific notation with 3 significant digits.
  [[nodiscard]] static std::string sci(double v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  int width_;
};

}  // namespace chenfd::bench
