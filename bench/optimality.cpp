// Empirical check of Theorem 6: among all failure detectors that send
// heartbeats every eta and guarantee T_D <= T_D^U, the NFD-S instance with
// delta = T_D^U - eta (called A*) has the best query accuracy probability.
//
// All candidates run attached to the SAME testbed, so they see identical
// heartbeat losses and delays — the coupling used in the paper's proof
// (Lemma 19).  We print P_A for A*, NFD-S with suboptimal deltas, and the
// SFD variants, across several detection budgets.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"

int main() {
  using namespace chenfd;
  const double horizon = bench::fast_mode() ? 20000.0 : 200000.0;

  bench::print_header(
      "Theorem 6 — optimality of A* = NFD-S(delta = T_D^U - eta)",
      "eta = 1, p_L = 0.02, D ~ Exp(0.02); all candidates observe the SAME "
      "deliveries.\nCells are query accuracy probabilities P_A (higher is "
      "better; A* must lead each row).");

  bench::Table table({"T_D^U", "A*", "NFD-S(3/4 delta)", "NFD-S(1/2 delta)",
                      "SFD-L", "SFD-S"});

  for (const double t_du : {1.5, 2.0, 2.5, 3.0}) {
    core::Testbed::Config cfg;
    cfg.delay = std::make_unique<dist::Exponential>(0.02);
    cfg.loss = std::make_unique<net::BernoulliLoss>(0.02);
    cfg.eta = seconds(1.0);
    cfg.seed = 7100 + static_cast<std::uint64_t>(t_du * 4);
    core::Testbed tb(std::move(cfg));

    std::vector<std::unique_ptr<core::FailureDetector>> detectors;
    detectors.push_back(std::make_unique<core::NfdS>(
        tb.simulator(), core::NfdSParams{Duration(1.0),
                                         Duration(t_du - 1.0)}));
    detectors.push_back(std::make_unique<core::NfdS>(
        tb.simulator(),
        core::NfdSParams{Duration(1.0), Duration(0.75 * (t_du - 1.0))}));
    detectors.push_back(std::make_unique<core::NfdS>(
        tb.simulator(),
        core::NfdSParams{Duration(1.0), Duration(0.5 * (t_du - 1.0))}));
    detectors.push_back(std::make_unique<core::Sfd>(
        tb.simulator(), tb.q_clock(),
        core::SfdParams{Duration(t_du - 0.16), Duration(0.16)}));
    detectors.push_back(std::make_unique<core::Sfd>(
        tb.simulator(), tb.q_clock(),
        core::SfdParams{Duration(t_du - 0.08), Duration(0.08)}));

    std::vector<std::vector<Transition>> logs(detectors.size());
    for (std::size_t i = 0; i < detectors.size(); ++i) {
      tb.attach(*detectors[i]);
      auto* log = &logs[i];
      detectors[i]->add_listener(
          [log](const Transition& t) { log->push_back(t); });
    }
    tb.start();
    tb.simulator().run_until(TimePoint(horizon));

    std::vector<std::string> row{bench::Table::num(t_du)};
    double pa_star = 0.0;
    for (std::size_t i = 0; i < detectors.size(); ++i) {
      const double pa = qos::replay(logs[i], TimePoint(100.0),
                                    TimePoint(horizon))
                            .query_accuracy();
      if (i == 0) pa_star = pa;
      std::string cell = bench::Table::num(pa);
      if (i > 0 && pa > pa_star + 1e-12) cell += " (!)";
      row.push_back(cell);
    }
    table.add_row(row);
  }
  table.print();
  std::cout << "\nReading: no cell to the right of A* exceeds it (a '(!)'"
               " mark would flag a violation of Theorem 6).\n";
  return 0;
}
