// Section 8.2 — the trade-off between QoS and cost.
//
// The network-bandwidth cost of a heartbeat failure detector is 1/eta
// messages per second.  Two sweeps quantify the trade-off the paper
// discusses:
//
//   (a) Fixed detection budget T_D^U = 3: spending more bandwidth (smaller
//       eta, larger delta = T_D^U - eta) buys exponentially better
//       E(T_MR) — the configurator's "largest eta" choice is the cheapest
//       point meeting a requirement.
//   (b) Fixed accuracy target E(T_MR) >= 1 year: the configurator's eta
//       (cost) as a function of the required detection time, showing how
//       fast detection gets expensive.

#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/config.hpp"
#include "dist/exponential.hpp"

int main() {
  using namespace chenfd;
  const double p_loss = 0.01;
  dist::Exponential delay(0.02);

  bench::print_header(
      "Section 8.2(a) — accuracy bought per unit bandwidth (T_D^U = 3 s)",
      "NFD-S with eta + delta = 3 s, p_L = 0.01, D ~ Exp(0.02); Theorem 5 "
      "values.");
  bench::Table a({"eta (s)", "heartbeats/min", "delta (s)", "E(T_MR)",
                  "P_A"});
  for (const double eta : {1.5, 1.0, 0.75, 0.5, 0.375, 0.25, 0.1875}) {
    const core::NfdSParams params{Duration(eta), Duration(3.0 - eta)};
    const core::NfdSAnalysis an(params, p_loss, delay);
    a.add_row({bench::Table::num(eta), bench::Table::num(60.0 / eta),
               bench::Table::num(3.0 - eta),
               bench::Table::sci(an.e_tmr().seconds()),
               bench::Table::num(an.query_accuracy())});
  }
  a.print();
  std::cout << "Reading: halving eta roughly squares the loss term in p_s "
               "— accuracy is\nexponentially cheap in bandwidth until delta "
               "saturates the delay tail.\n";

  bench::print_header(
      "Section 8.2(b) — the price of fast detection (E(T_MR) >= 1 year)",
      "Section 4 configurator; T_M^U = 60 s, p_L = 0.01, D ~ Exp(0.02).");
  bench::Table b({"required T_D^U (s)", "eta (s)", "heartbeats/min",
                  "delta (s)", "achievable"});
  for (const double t_du : {60.0, 30.0, 10.0, 3.0, 1.0, 0.3, 0.1}) {
    const qos::Requirements req{seconds(t_du), days(365.0), seconds(60.0)};
    const auto out = core::configure_exact(req, p_loss, delay);
    if (out.achievable()) {
      b.add_row({bench::Table::num(t_du),
                 bench::Table::num(out.params->eta.seconds()),
                 bench::Table::num(60.0 / out.params->eta.seconds()),
                 bench::Table::num(out.params->delta.seconds()), "yes"});
    } else {
      b.add_row({bench::Table::num(t_du), "-", "-", "-", "NO"});
    }
  }
  b.print();
  std::cout << "Reading: sub-second detection with a one-year MTBM is "
               "feasible on this link\nbut costs two orders of magnitude "
               "more bandwidth than 30 s detection.\n";
  return 0;
}
