// Reproduces Fig. 12 of the paper: average mistake recurrence time E(T_MR)
// as a function of the detection-time bound T_D^U, for
//
//   - NFD-S  (delta = T_D^U - eta), simulated,
//   - NFD-E  (alpha = T_D^U - E(D) - eta, 32-sample EA window), simulated,
//   - SFD-L  (cutoff c = 0.16 = 8 E(D), TO = T_D^U - c), simulated,
//   - SFD-S  (cutoff c = 0.08 = 4 E(D), TO = T_D^U - c), simulated,
//   - NFD-S analytic (Theorem 5),
//
// with the paper's settings: eta = 1, p_L = 0.01, D ~ Exp(E(D) = 0.02),
// >= 500 mistake recurrence intervals per point (heartbeat-capped at the
// most accurate points, where mistakes take ~10^6 periods to appear).
//
// Expected shape (the paper's finding): NFD-S and NFD-E are essentially
// indistinguishable and match the analytic curve; both dominate the simple
// algorithm — by an order of magnitude over much of the range — and SFD-S
// (aggressive cutoff) trails SFD-L.

#include <cstdint>
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/fast_sim.hpp"
#include "dist/exponential.hpp"

namespace {

using namespace chenfd;
using core::StopCriteria;

struct Budget {
  std::size_t mistakes;
  std::uint64_t cap_scan;   // NFD-S sliding-window engine
  std::uint64_t cap_event;  // NFD-E / SFD event-loop engines
};

Budget budget() {
  if (bench::fast_mode()) return {100, 2'000'000, 1'000'000};
  return {500, 250'000'000, 100'000'000};
}

}  // namespace

int main() {
  const double eta = 1.0;
  const double p_loss = 0.01;
  const double e_d = 0.02;
  dist::Exponential delay(e_d);
  const Budget b = budget();

  bench::print_header(
      "Fig. 12 — E(T_MR) vs detection-time bound T_D^U",
      "eta = 1, p_L = 0.01, D ~ Exp(0.02); >= " +
          std::to_string(b.mistakes) +
          " mistake intervals per point (heartbeat-capped at accurate "
          "points).\nColumns are in units of eta.  '(n=...)' rows note "
          "points that hit the cap.");

  bench::Table table({"T_D^U", "NFD-S", "NFD-E", "SFD-L", "SFD-S",
                      "analytic(Thm5)", "mistakes(S/E/L/S)"});

  std::uint64_t seed = 92000;
  for (const double t_du :
       {1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0, 3.25, 3.5}) {
    StopCriteria scan_stop;
    scan_stop.target_s_transitions = b.mistakes;
    scan_stop.max_heartbeats = b.cap_scan;
    StopCriteria event_stop = scan_stop;
    event_stop.max_heartbeats = b.cap_event;

    // NFD-S: delta = T_D^U - eta (Theorem 5.1 makes the bound tight).
    const core::NfdSParams nfd_s{Duration(eta), Duration(t_du - eta)};
    Rng rng_s(seed++);
    const auto rs =
        core::fast_nfd_s_accuracy(nfd_s, p_loss, delay, rng_s, scan_stop);

    // NFD-E: alpha = T_D^U - E(D) - eta (Section 7.1), n = 32.
    const core::NfdEParams nfd_e{Duration(eta), Duration(t_du - e_d - eta),
                                 32};
    Rng rng_e(seed++);
    const auto re =
        core::fast_nfd_e_accuracy(nfd_e, p_loss, delay, rng_e, event_stop);

    // SFD-L / SFD-S: cutoff + timeout = T_D^U (Section 7.2).
    Rng rng_l(seed++);
    const auto rl = core::fast_sfd_accuracy(
        core::SfdParams{Duration(t_du - 0.16), Duration(0.16)},
        Duration(eta), p_loss, delay, rng_l, event_stop);
    Rng rng_ss(seed++);
    const auto rss = core::fast_sfd_accuracy(
        core::SfdParams{Duration(t_du - 0.08), Duration(0.08)},
        Duration(eta), p_loss, delay, rng_ss, event_stop);

    const core::NfdSAnalysis exact(nfd_s, p_loss, delay);

    table.add_row(
        {bench::Table::num(t_du), bench::Table::sci(rs.e_tmr()),
         bench::Table::sci(re.e_tmr()), bench::Table::sci(rl.e_tmr()),
         bench::Table::sci(rss.e_tmr()),
         bench::Table::sci(exact.e_tmr().seconds()),
         std::to_string(rs.s_transitions) + "/" +
             std::to_string(re.s_transitions) + "/" +
             std::to_string(rl.s_transitions) + "/" +
             std::to_string(rss.s_transitions)});
  }
  table.print();

  std::cout
      << "\nReading: NFD-S ~= NFD-E ~= analytic at every point; the simple\n"
         "algorithm (esp. SFD-S) is up to orders of magnitude less "
         "accurate\nat the same detection bound and heartbeat rate.\n";
  return 0;
}
