// Reproduces Fig. 12 of the paper: average mistake recurrence time E(T_MR)
// as a function of the detection-time bound T_D^U, for
//
//   - NFD-S  (delta = T_D^U - eta), simulated,
//   - NFD-E  (alpha = T_D^U - E(D) - eta, 32-sample EA window), simulated,
//   - SFD-L  (cutoff c = 0.16 = 8 E(D), TO = T_D^U - c), simulated,
//   - SFD-S  (cutoff c = 0.08 = 4 E(D), TO = T_D^U - c), simulated,
//   - NFD-S analytic (Theorem 5),
//
// with the paper's settings: eta = 1, p_L = 0.01, D ~ Exp(E(D) = 0.02),
// >= 500 mistake recurrence intervals per point (heartbeat-capped at the
// most accurate points, where mistakes take ~10^6 periods to appear).
//
// The 4 algorithms x 10 sweep points = 40 independent simulations run on
// the deterministic parallel runner (CHENFD_JOBS to override the thread
// count); the table is bit-identical for any job count.
//
// Expected shape (the paper's finding): NFD-S and NFD-E are essentially
// indistinguishable and match the analytic curve; both dominate the simple
// algorithm — by an order of magnitude over much of the range — and SFD-S
// (aggressive cutoff) trails SFD-L.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/fast_sim.hpp"
#include "dist/exponential.hpp"
#include "runner/parallel_sweep.hpp"

namespace {

using namespace chenfd;
using core::StopCriteria;

struct Budget {
  std::size_t mistakes;
  std::uint64_t cap_scan;   // NFD-S sliding-window engine
  std::uint64_t cap_event;  // NFD-E / SFD event-loop engines
};

Budget budget() {
  if (bench::fast_mode()) return {100, 2'000'000, 1'000'000};
  return {500, 250'000'000, 100'000'000};
}

unsigned jobs_from_env() {
  // detlint: allow(R1) job-count override affects scheduling, not output
  const char* env = std::getenv("CHENFD_JOBS");
  return env ? static_cast<unsigned>(std::atoi(env)) : 0;
}

}  // namespace

int main() {
  const double eta = 1.0;
  const double p_loss = 0.01;
  const double e_d = 0.02;
  dist::Exponential delay(e_d);
  const Budget b = budget();

  bench::print_header(
      "Fig. 12 — E(T_MR) vs detection-time bound T_D^U",
      "eta = 1, p_L = 0.01, D ~ Exp(0.02); >= " +
          std::to_string(b.mistakes) +
          " mistake intervals per point (heartbeat-capped at accurate "
          "points).\nColumns are in units of eta.  '(n=...)' rows note "
          "points that hit the cap.");

  StopCriteria scan_stop;
  scan_stop.target_s_transitions = b.mistakes;
  scan_stop.max_heartbeats = b.cap_scan;
  StopCriteria event_stop = scan_stop;
  event_stop.max_heartbeats = b.cap_event;

  const std::vector<double> t_du_sweep{1.25, 1.5, 1.75, 2.0,  2.25,
                                       2.5,  2.75, 3.0, 3.25, 3.5};

  // Task grid: 4 algorithm series per sweep point, flattened in row-major
  // (point, series) order so the runner's substream indices are stable.
  std::vector<runner::AccuracyTask> tasks;
  for (const double t_du : t_du_sweep) {
    // NFD-S: delta = T_D^U - eta (Theorem 5.1 makes the bound tight).
    tasks.push_back(runner::nfd_s_task(
        core::NfdSParams{Duration(eta), Duration(t_du - eta)}, p_loss, delay,
        scan_stop));
    // NFD-E: alpha = T_D^U - E(D) - eta (Section 7.1), n = 32.
    tasks.push_back(runner::nfd_e_task(
        core::NfdEParams{Duration(eta), Duration(t_du - e_d - eta), 32},
        p_loss, delay, event_stop));
    // SFD-L / SFD-S: cutoff + timeout = T_D^U (Section 7.2).
    tasks.push_back(runner::sfd_task(
        core::SfdParams{Duration(t_du - 0.16), Duration(0.16)}, Duration(eta),
        p_loss, delay, event_stop));
    tasks.push_back(runner::sfd_task(
        core::SfdParams{Duration(t_du - 0.08), Duration(0.08)}, Duration(eta),
        p_loss, delay, event_stop));
  }

  const runner::ParallelSweep sweep(runner::RunnerOptions{jobs_from_env()});
  const auto results = sweep.run(tasks, 1, 92000);

  bench::Table table({"T_D^U", "NFD-S", "NFD-E", "SFD-L", "SFD-S",
                      "analytic(Thm5)", "mistakes(S/E/L/S)"});
  for (std::size_t p = 0; p < t_du_sweep.size(); ++p) {
    const double t_du = t_du_sweep[p];
    const auto& rs = results[4 * p];
    const auto& re = results[4 * p + 1];
    const auto& rl = results[4 * p + 2];
    const auto& rss = results[4 * p + 3];
    const core::NfdSAnalysis exact(
        core::NfdSParams{Duration(eta), Duration(t_du - eta)}, p_loss, delay);
    table.add_row(
        {bench::Table::num(t_du), bench::Table::sci(rs.e_tmr()),
         bench::Table::sci(re.e_tmr()), bench::Table::sci(rl.e_tmr()),
         bench::Table::sci(rss.e_tmr()),
         bench::Table::sci(exact.e_tmr().seconds()),
         std::to_string(rs.s_transitions) + "/" +
             std::to_string(re.s_transitions) + "/" +
             std::to_string(rl.s_transitions) + "/" +
             std::to_string(rss.s_transitions)});
  }
  table.print();

  std::cout
      << "\nReading: NFD-S ~= NFD-E ~= analytic at every point; the simple\n"
         "algorithm (esp. SFD-S) is up to orders of magnitude less "
         "accurate\nat the same detection bound and heartbeat rate.\n";
  return 0;
}
