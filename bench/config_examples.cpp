// Reproduces the worked configuration examples of Sections 4, 5 and 6:
//
//   Requirements: detect crashes within 30 s (T_D^U), at most one mistake
//   per month on average (T_MR^L = 30 days), mistakes corrected within 60 s
//   on average (T_M^U).  Network: p_L = 0.01, E(D) = 0.02 s.
//
//   Section 4 (distribution known, exponential):  eta = 9.97, delta = 20.03
//   Section 5 (only E(D), V(D) = 0.02 known):     eta = 9.71, delta = 20.29
//   Section 6 (unsynchronized clocks, NFD-U):     same procedure on the
//                                                  relative bound T_D^u
//
// plus the Proposition 8 ceiling on eta and a verification pass feeding the
// computed parameters back into the exact Theorem 5 analysis.

#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/chebyshev.hpp"
#include "core/config.hpp"
#include "dist/exponential.hpp"

int main() {
  using namespace chenfd;

  const qos::Requirements req{seconds(30.0), days(30.0), seconds(60.0)};
  const double p_loss = 0.01;
  dist::Exponential delay(0.02);

  bench::print_header(
      "Sections 4-6 — configuring (eta, delta/alpha) from QoS requirements",
      "T_D^U = 30 s, T_MR^L = 30 days, T_M^U = 60 s; p_L = 0.01, "
      "E(D) = 0.02 s.");

  bench::Table table({"procedure", "paper eta", "ours eta", "paper delta",
                      "ours delta"});

  const auto s4 = core::configure_exact(req, p_loss, delay);
  table.add_row({"Sec. 4 exact", "9.97",
                 bench::Table::num(s4.params->eta.seconds()), "20.03",
                 bench::Table::num(s4.params->delta.seconds())});

  const auto s5 = core::configure_from_moments(req, p_loss, 0.02, 0.02);
  table.add_row({"Sec. 5 moments", "9.71",
                 bench::Table::num(s5.params->eta.seconds()), "20.29",
                 bench::Table::num(s5.params->delta.seconds())});

  const core::RelativeRequirements rel{seconds(29.98), days(30.0),
                                       seconds(60.0)};
  const auto s6 = core::configure_nfd_u(rel, p_loss, 0.02);
  table.add_row({"Sec. 6 NFD-U", "9.71",
                 bench::Table::num(s6.params->eta.seconds()),
                 "20.27 (alpha)",
                 bench::Table::num(s6.params->alpha.seconds())});
  table.print();

  std::cout << "\nProposition 8 ceiling on eta (Sec. 4 setting): "
            << core::max_eta_bound(req, p_loss, delay).seconds() << " s\n";

  // Verification: feed the Section 4 parameters back into Theorem 5.
  const core::NfdSAnalysis verify(*s4.params, p_loss, delay);
  std::cout << "\nVerification of the Sec. 4 output against Theorem 5:\n";
  bench::Table check({"metric", "required", "analytic value", "ok"});
  check.add_row({"T_D bound (s)", "<= 30",
                 bench::Table::num(verify.detection_time_bound().seconds()),
                 verify.detection_time_bound() <= req.detection_time_upper
                     ? "yes"
                     : "NO"});
  check.add_row(
      {"E(T_MR) (days)", ">= 30",
       bench::Table::num(verify.e_tmr().seconds() / 86400.0),
       verify.e_tmr() >= req.mistake_recurrence_lower ? "yes" : "NO"});
  check.add_row(
      {"E(T_M) (s)", "<= 60", bench::Table::num(verify.e_tm().seconds()),
       verify.e_tm() <= req.mistake_duration_upper ? "yes" : "NO"});
  check.print();

  // And the Section 5 parameters against the Theorem 9 guaranteed bounds.
  const auto b9 = core::nfd_s_bounds(*s5.params, p_loss, 0.02, 0.02);
  std::cout << "\nSec. 5 output against the Theorem 9 distribution-free "
               "bounds:\n  E(T_MR) >= "
            << b9.mistake_recurrence_lower.seconds() / 86400.0
            << " days (need 30),  E(T_M) <= "
            << b9.mistake_duration_upper.seconds() << " s (need 60)\n";

  // The cost of ignorance: knowing only moments costs bandwidth.
  std::cout << "\nCost of not knowing the distribution: eta drops from "
            << s4.params->eta.seconds() << " to " << s5.params->eta.seconds()
            << " s (" << 100.0 * (1.0 - s5.params->eta / s4.params->eta)
            << "% more heartbeats).\n";
  return 0;
}
