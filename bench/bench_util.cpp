#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>

namespace chenfd::bench {

bool fast_mode() {
  // detlint: allow(R1) CI toggle only scales rep counts, never results
  const char* v = std::getenv("CHENFD_BENCH_FAST");
  return v != nullptr && std::string(v) == "1";
}

void print_header(const std::string& title, const std::string& setup) {
  std::cout << "\n== " << title << " ==\n";
  if (!setup.empty()) std::cout << setup << "\n";
  if (fast_mode()) {
    std::cout << "(CHENFD_BENCH_FAST=1: reduced sample counts)\n";
  }
  std::cout << "\n";
}

Table::Table(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void Table::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void Table::print(std::ostream& os) const {
  // Per-column widths: wide enough for the header and every cell.
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      os << std::setw(static_cast<int>(widths[i]) + (i == 0 ? 0 : 3))
         << cells[i];
    }
    os << "\n";
  };
  line(columns_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i == 0 ? 0 : 3);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) line(r);
  os.flush();
}

std::string Table::num(double v) {
  std::ostringstream ss;
  ss << std::setprecision(4) << v;
  return ss.str();
}

std::string Table::sci(double v) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(2) << v;
  return ss.str();
}

}  // namespace chenfd::bench
