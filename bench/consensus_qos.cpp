// How failure detector QoS translates into application performance — the
// paper's motivating scenario ("a failure detector that starts suspecting
// a process one hour after it crashed ... is useless to an application
// that needs to solve many instances of consensus per minute", Section 1).
//
// Chandra-Toueg consensus over a 5-process group; we sweep the NFD-S
// freshness shift delta and measure:
//
//   - crash-free decision latency (hurt by false suspicions: a premature
//     NACK burns a round),
//   - decision latency when round 1's coordinator has just crashed (hurt
//     by detection time: progress stalls until the detector fires),
//   - NACKs per instance (the cost of an aggressive detector).
//
// The sweet spot the paper's configurator finds analytically — delta large
// enough for accuracy, small enough for detection — is visible empirically
// here.

#include <iostream>
#include <memory>
#include <optional>

#include "bench_util.hpp"
#include "consensus/ct.hpp"
#include "dist/exponential.hpp"
#include "group/group.hpp"
#include "stats/online_stats.hpp"

namespace {

using namespace chenfd;

struct SweepResult {
  stats::OnlineStats latency;  // seconds, start -> last correct decision
  stats::OnlineStats rounds;
  std::uint64_t nacks = 0;
  std::size_t failures = 0;  // instances that did not fully decide
};

SweepResult run_instances(double delta, bool crash_coordinator,
                          std::size_t instances, std::uint64_t seed0) {
  SweepResult out;
  for (std::size_t k = 0; k < instances; ++k) {
    group::Group::Config gc;
    gc.size = 5;
    gc.delay = std::make_unique<dist::Exponential>(0.02);
    gc.p_loss = 0.01;
    gc.detector = core::NfdSParams{seconds(1.0), seconds(delta)};
    gc.seed = seed0 + k;
    group::Group g(std::move(gc));
    consensus::Transport tr(g.simulator(), 5,
                            std::make_unique<dist::Exponential>(0.02), 0.0,
                            seed0 ^ (k * 1315423911u));
    std::vector<std::unique_ptr<consensus::CtProcess>> procs;
    for (group::ProcessId i = 0; i < 5; ++i) {
      procs.push_back(std::make_unique<consensus::CtProcess>(
          g.simulator(), tr, g, i, 5,
          static_cast<std::int64_t>(100 + i)));
    }
    g.start();
    const double start = 20.0;  // detectors in steady state
    if (crash_coordinator) {
      g.simulator().at(TimePoint(start + 1e-3), [&] {
        g.crash_at(0, g.simulator().now());
        tr.crash(0);
        procs[0]->crash();
      });
    }
    g.simulator().run_until(TimePoint(start));
    for (auto& p : procs) p->start();
    g.simulator().run_until(TimePoint(start + 300.0));

    double last = 0.0;
    std::uint64_t max_round = 0;
    bool complete = true;
    for (group::ProcessId i = 0; i < 5; ++i) {
      if (g.crashed(i)) continue;
      if (!procs[i]->decided()) {
        complete = false;
        continue;
      }
      last = std::max(last, procs[i]->decision_time().seconds() - start);
      max_round = std::max(max_round, procs[i]->decided_round());
      out.nacks += procs[i]->nacks_sent();
    }
    if (complete) {
      out.latency.add(last);
      out.rounds.add(static_cast<double>(max_round));
    } else {
      ++out.failures;
    }
    g.stop();
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t instances = bench::fast_mode() ? 10 : 60;

  bench::print_header(
      "Consensus latency vs failure detector QoS (5 processes, CT / NFD-S)",
      "eta = 1, p_L = 0.01, D ~ Exp(0.02); " + std::to_string(instances) +
          " consensus instances per cell.\nLatency = time from proposal to "
          "the last correct process's decision.");

  bench::Table table({"delta", "T_D bound", "crash-free latency (s)",
                      "coord-crash latency (s)", "rounds (crash)",
                      "false-susp NACKs/inst", "undecided"});
  std::uint64_t seed = 61000;
  for (const double delta : {0.1, 0.3, 1.0, 2.0, 4.0, 8.0}) {
    const auto free_run = run_instances(delta, false, instances, seed);
    seed += 1000;
    const auto crash_run = run_instances(delta, true, instances, seed);
    seed += 1000;
    table.add_row(
        {bench::Table::num(delta), bench::Table::num(delta + 1.0),
         bench::Table::num(free_run.latency.mean()),
         bench::Table::num(crash_run.latency.mean()),
         bench::Table::num(crash_run.rounds.mean()),
         // Crash-free NACKs can only come from false suspicions.
         bench::Table::num(static_cast<double>(free_run.nacks) /
                           static_cast<double>(instances)),
         std::to_string(free_run.failures + crash_run.failures)});
  }
  table.print();

  std::cout
      << "\nReading: crash recovery latency tracks the detection bound "
         "almost 1:1 — the\napplication waits out T_D before round 2 can "
         "decide — while crash-free latency\nis delta-independent.  An "
         "application solving many consensus instances per\nminute "
         "therefore needs exactly what the Section 4 configurator "
         "computes: the\nlargest delta (best accuracy) that still meets "
         "its T_D^U.\n";
  return 0;
}
