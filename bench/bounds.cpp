// Tightness study of the Section 5 machinery: how conservative are the
// one-sided-inequality bounds (Theorems 9/11) compared with the exact
// Theorem 5 values, across delay-distribution families with identical
// E(D)?  This quantifies the cost of the distribution-free configuration
// (the paper shows it qualitatively via the 9.97 -> 9.71 eta drop).

#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/chebyshev.hpp"
#include "core/config.hpp"
#include "dist/factory.hpp"

int main() {
  using namespace chenfd;

  const core::NfdSParams params{Duration(1.0), Duration(2.0)};
  const double p_loss = 0.01;

  bench::print_header(
      "Theorem 9 bound tightness across delay families (same E(D) = 0.02)",
      "NFD-S with eta = 1, delta = 2, p_L = 0.01.  'bound' is the "
      "guaranteed\nE(T_MR) lower bound from (p_L, E, V) only; 'exact' is "
      "Theorem 5 with the\nfull distribution.  ratio = exact / bound "
      "(1 = tight).");

  bench::Table table({"distribution", "V(D)", "E(T_MR) bound", "exact",
                      "ratio", "E(T_M) bound", "exact"});

  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    const auto b =
        core::nfd_s_bounds(params, p_loss, d->mean(), d->variance());
    const core::NfdSAnalysis exact(params, p_loss, *d);
    table.add_row(
        {d->name(), bench::Table::sci(d->variance()),
         bench::Table::sci(b.mistake_recurrence_lower.seconds()),
         bench::Table::sci(exact.e_tmr().seconds()),
         bench::Table::num(exact.e_tmr().seconds() /
                           b.mistake_recurrence_lower.seconds()),
         bench::Table::num(b.mistake_duration_upper.seconds()),
         bench::Table::num(exact.e_tm().seconds())});
  }
  table.print();

  // The configuration consequence: eta chosen by the exact (Sec. 4) vs the
  // distribution-free (Sec. 5) procedure, per family.
  bench::print_header(
      "Configuration cost of distribution-freeness per family",
      "Requirements: T_D^U = 30 s, T_MR^L = 30 days, T_M^U = 60 s; "
      "p_L = 0.01.");
  bench::Table cfg({"distribution", "eta (Sec.4 exact)",
                    "eta (Sec.5 moments)", "extra heartbeats"});
  const qos::Requirements req{seconds(30.0), days(30.0), seconds(60.0)};
  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    const auto exact = core::configure_exact(req, p_loss, *d);
    const auto moments =
        core::configure_from_moments(req, p_loss, d->mean(), d->variance());
    if (!exact.achievable() || !moments.achievable()) continue;
    const double overhead =
        exact.params->eta / moments.params->eta - 1.0;
    cfg.add_row({d->name(), bench::Table::num(exact.params->eta.seconds()),
                 bench::Table::num(moments.params->eta.seconds()),
                 bench::Table::num(100.0 * overhead) + "%"});
  }
  cfg.print();

  std::cout << "\nReading: the bounds always hold (ratio >= 1) and are "
               "tightest for\nlight-tailed families; heavy tails "
               "(Pareto/LogNormal) pay the most\nbandwidth for not knowing "
               "the distribution.\n";
  return 0;
}
