// Section 8 — the adaptive failure detection service:
//
//   8.1.1 Gradual change: the network's delay/loss regime shifts (peak vs
//         off-peak hours); the service re-estimates (p_L, V(D)), re-runs
//         the Section 6 configurator, renegotiates the heartbeat rate and
//         keeps meeting the registered QoS.
//   8.1.2 Bursty traffic: under Gilbert-Elliott loss bursts, the
//         two-component (short+long window) estimator reacts to bursts
//         faster than a long-window estimator alone.
//   Registry: multiple applications' demands merge into the tightest
//         requirement (the service reconfigures when demands change).

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/estimators.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"
#include "runner/parallel_sweep.hpp"
#include "service/adaptive.hpp"
#include "service/registry.hpp"

int main() {
  using namespace chenfd;
  const double scale = bench::fast_mode() ? 0.25 : 1.0;

  // ---- 8.1.1: regime change ------------------------------------------
  bench::print_header(
      "Section 8.1.1 — adapting to a gradual network regime change",
      "Registered QoS: T_D <= 10 + E(D), E(T_MR) >= 2000 s, E(T_M) <= 5 s.\n"
      "Phase 1 (off-peak): p_L = 0.01, D ~ Exp(0.02).  Phase 2 (peak): "
      "p_L = 0.05, D ~ Exp(0.3).");

  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.01);
  cfg.eta = seconds(1.0);
  cfg.seed = 8601;
  core::Testbed tb(std::move(cfg));

  service::AdaptiveMonitor::Options opts;
  opts.requirements = core::RelativeRequirements{seconds(10.0),
                                                 seconds(2000.0),
                                                 seconds(5.0)};
  opts.initial = core::NfdEParams{Duration(1.0), Duration(1.0), 32};
  opts.reconfig_interval = seconds(50.0);
  service::AdaptiveMonitor monitor(tb.simulator(), tb.q_clock(), tb.sender(),
                                   opts);
  std::vector<Transition> log;
  monitor.add_listener([&log](const Transition& t) { log.push_back(t); });
  tb.attach(monitor);
  tb.start();

  bench::Table phases({"phase", "est. p_L", "est. V(D)", "eta", "alpha",
                       "rel. det. bound", "P_A (window)"});
  const double t1 = 3000.0 * scale;
  const double t2 = 6000.0 * scale;

  tb.simulator().run_until(TimePoint(t1));
  const auto pa1 =
      qos::replay(log, TimePoint(200.0 * scale), TimePoint(t1))
          .query_accuracy();
  phases.add_row(
      {"off-peak", bench::Table::num(monitor.estimator().loss_probability()),
       bench::Table::sci(monitor.estimator().delay_variance()),
       bench::Table::num(monitor.current_params().eta.seconds()),
       bench::Table::num(monitor.current_params().alpha.seconds()),
       bench::Table::num(monitor.relative_detection_bound().seconds()),
       bench::Table::num(pa1)});

  // Peak hours arrive.
  tb.link().set_delay(std::make_unique<dist::Exponential>(0.3));
  tb.link().set_loss(std::make_unique<net::BernoulliLoss>(0.05));
  tb.simulator().run_until(TimePoint(t2));
  const auto pa2 =
      qos::replay(log, TimePoint(t1 + 500.0 * scale), TimePoint(t2))
          .query_accuracy();
  phases.add_row(
      {"peak", bench::Table::num(monitor.estimator().loss_probability()),
       bench::Table::sci(monitor.estimator().delay_variance()),
       bench::Table::num(monitor.current_params().eta.seconds()),
       bench::Table::num(monitor.current_params().alpha.seconds()),
       bench::Table::num(monitor.relative_detection_bound().seconds()),
       bench::Table::num(pa2)});
  phases.print();
  std::cout << "Reconfigurations (rate renegotiations): "
            << monitor.reconfigurations()
            << ";  QoS at risk: " << (monitor.qos_at_risk() ? "YES" : "no")
            << "\nReading: the service tracks the new variance and keeps "
               "P_A high through the regime change.\n";

  // ---- 8.1.2: bursty loss and the two-component estimator --------------
  // Replicated over independent loss realizations on the parallel runner
  // (one RNG substream per replication; merged in replication order, so the
  // table is identical for any thread count).
  const std::size_t burst_reps = bench::fast_mode() ? 4 : 8;
  bench::print_header(
      "Section 8.1.2 — two-component estimation under bursty loss",
      "Gilbert-Elliott loss (mean burst 5 messages, bad-state loss 0.8); "
      "estimated p_L right after a long burst,\naveraged over " +
          std::to_string(burst_reps) + " independent 20000-heartbeat runs:");
  {
    struct BurstStats {
      double two = 0.0;
      double long_only = 0.0;
      int bursts = 0;
    };
    const auto reps = runner::parallel_map<BurstStats>(
        burst_reps, 8602, runner::RunnerOptions{},
        [](std::size_t, Rng& rng) {
          core::TwoComponentEstimator two(8, 256);
          core::NetworkEstimator long_only(256);
          net::GilbertElliottLoss ge(0.02, 0.2, 0.002, 0.8);
          BurstStats out;
          bool in_burst = false;
          int burst_len = 0;
          for (net::SeqNo s = 1; s <= 20000; ++s) {
            const bool lost = ge.drop_next(rng);
            if (!lost) {
              two.on_heartbeat(s, TimePoint(static_cast<double>(s)),
                               TimePoint(static_cast<double>(s) + 0.02));
              long_only.on_heartbeat(s, TimePoint(static_cast<double>(s)),
                                     TimePoint(static_cast<double>(s) + 0.02));
            }
            if (lost) {
              ++burst_len;
              in_burst = true;
            } else if (in_burst) {
              if (burst_len >= 3) {
                out.two += two.loss_probability();
                out.long_only += long_only.loss_probability();
                ++out.bursts;
              }
              in_burst = false;
              burst_len = 0;
            }
          }
          return out;
        });
    double after_burst_two = 0.0;
    double after_burst_long = 0.0;
    int bursts_sampled = 0;
    for (const auto& r : reps) {
      after_burst_two += r.two;
      after_burst_long += r.long_only;
      bursts_sampled += r.bursts;
    }
    const net::GilbertElliottLoss ge_ref(0.02, 0.2, 0.002, 0.8);
    bench::Table burst({"estimator", "mean p_L estimate right after bursts",
                        "true marginal p_L"});
    burst.add_row({"two-component (conservative)",
                   bench::Table::num(after_burst_two / bursts_sampled),
                   bench::Table::num(ge_ref.steady_state_loss())});
    burst.add_row({"long-window only",
                   bench::Table::num(after_burst_long / bursts_sampled),
                   bench::Table::num(ge_ref.steady_state_loss())});
    burst.print();
    std::cout << "Reading: the short component makes the combined estimate "
                 "jump after a burst\n(conservative configuration), while "
                 "the long window alone barely moves.\n";
  }

  // ---- Registry: merging application demands ---------------------------
  bench::print_header(
      "Section 8.1.1 — multi-application demand registry",
      "Three applications register; the service follows the tightest "
      "merge.");
  {
    service::RelativeRequirementRegistry reg;
    reg.add(core::RelativeRequirements{seconds(30.0), seconds(1000.0),
                                       seconds(60.0)});
    reg.add(core::RelativeRequirements{seconds(12.0), seconds(8000.0),
                                       seconds(45.0)});
    const auto id = reg.add(core::RelativeRequirements{
        seconds(20.0), seconds(500.0), seconds(10.0)});
    auto m = *reg.merged();
    bench::Table rt({"registry state", "T_D^u", "T_MR^L", "T_M^U"});
    rt.add_row({"3 apps", bench::Table::num(m.detection_time_upper_rel.seconds()),
                bench::Table::num(m.mistake_recurrence_lower.seconds()),
                bench::Table::num(m.mistake_duration_upper.seconds())});
    reg.remove(id);
    m = *reg.merged();
    rt.add_row({"app 3 leaves",
                bench::Table::num(m.detection_time_upper_rel.seconds()),
                bench::Table::num(m.mistake_recurrence_lower.seconds()),
                bench::Table::num(m.mistake_duration_upper.seconds())});
    rt.print();
  }
  return 0;
}
