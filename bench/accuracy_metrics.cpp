// Reproduces the Section 1/2 accuracy-metric illustrations and Theorem 1:
//
//   Fig. 2: FD_1 and FD_2 with the same query accuracy probability (0.75)
//           but a 4x different mistake rate.
//   Fig. 3: FD_1 and FD_2 with the same mistake rate (1/16) but query
//           accuracy probabilities 0.75 vs 0.50.
//   Theorem 1: on a simulated NFD-S run, the derived metrics (lambda_M,
//           P_A, T_G, E(T_FG)) computed from the primary metrics match the
//           directly measured ones — including the waiting-time-paradox
//           value of E(T_FG), which exceeds E(T_G)/2.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiments.hpp"
#include "core/nfd_s.hpp"
#include "dist/exponential.hpp"
#include "qos/recorder.hpp"
#include "qos/relations.hpp"

namespace {

using namespace chenfd;

qos::Recorder scripted(double period, const std::vector<double>& s_offsets,
                       double mistake_len, int cycles) {
  qos::Recorder rec(TimePoint(0.0), Verdict::kTrust);
  for (int c = 0; c < cycles; ++c) {
    for (double off : s_offsets) {
      const double base = period * c + off;
      rec.on_transition(TimePoint(base), Verdict::kSuspect);
      rec.on_transition(TimePoint(base + mistake_len), Verdict::kTrust);
    }
  }
  rec.finish(TimePoint(period * cycles));
  return rec;
}

}  // namespace

int main() {
  bench::print_header("Figs. 2 and 3 — why one accuracy metric is not enough",
                      "Scripted failure-detector output signals.");

  // Fig. 2: FD_1 = one 4-long mistake per 16; FD_2 = four 1-long mistakes.
  const auto fd1_fig2 = scripted(16.0, {12.0}, 4.0, 512);
  const auto fd2_fig2 = scripted(16.0, {3.0, 7.0, 11.0, 15.0}, 1.0, 512);
  bench::Table fig2({"Fig. 2", "P_A", "mistake rate (1/s)"});
  fig2.add_row({"FD_1", bench::Table::num(fd1_fig2.query_accuracy()),
                bench::Table::num(fd1_fig2.mistake_rate())});
  fig2.add_row({"FD_2", bench::Table::num(fd2_fig2.query_accuracy()),
                bench::Table::num(fd2_fig2.mistake_rate())});
  fig2.print();
  std::cout << "Same P_A = 0.75; FD_2's mistake rate is 4x FD_1's.\n\n";

  // Fig. 3: both one mistake per 16; durations 4 vs 8.
  const auto fd1_fig3 = scripted(16.0, {12.0}, 4.0, 512);
  const auto fd2_fig3 = scripted(16.0, {8.0}, 8.0, 512);
  bench::Table fig3({"Fig. 3", "P_A", "mistake rate (1/s)"});
  fig3.add_row({"FD_1", bench::Table::num(fd1_fig3.query_accuracy()),
                bench::Table::num(fd1_fig3.mistake_rate())});
  fig3.add_row({"FD_2", bench::Table::num(fd2_fig3.query_accuracy()),
                bench::Table::num(fd2_fig3.mistake_rate())});
  fig3.print();
  std::cout << "Same mistake rate 1/16; P_A differs (0.75 vs 0.50).\n";

  // Theorem 1 on live NFD-S output.
  bench::print_header(
      "Theorem 1 — derived metrics from the primary ones (measured NFD-S)",
      "eta = 1, delta = 1, p_L = 0.05, D ~ Exp(0.02); one long "
      "failure-free run.");

  dist::Exponential delay(0.02);
  core::NetworkModel model{0.05, delay};
  core::AccuracyExperiment exp;
  exp.duration = seconds(bench::fast_mode() ? 20000.0 : 200000.0);
  exp.seed = 424242;
  const auto rec = core::run_accuracy(
      [](core::Testbed& tb) {
        return std::make_unique<core::NfdS>(
            tb.simulator(),
            core::NfdSParams{Duration(1.0), Duration(1.0)});
      },
      model, exp);

  const double e_tmr = rec.mistake_recurrence().mean();
  const double e_tm = rec.mistake_duration().mean();
  const auto& tg = rec.good_period();

  bench::Table thm({"metric", "measured directly", "derived via Thm 1"});
  thm.add_row({"E(T_MR) (s)", bench::Table::num(e_tmr), "(primary)"});
  thm.add_row({"E(T_M) (s)", bench::Table::num(e_tm), "(primary)"});
  thm.add_row({"E(T_G) (s)", bench::Table::num(tg.mean()),
               bench::Table::num(e_tmr - e_tm)});
  thm.add_row({"lambda_M (1/s)", bench::Table::num(rec.mistake_rate()),
               bench::Table::num(qos::mistake_rate(e_tmr))});
  thm.add_row({"P_A", bench::Table::num(rec.query_accuracy()),
               bench::Table::num(qos::query_accuracy(tg.mean(), e_tmr))});
  thm.add_row(
      {"E(T_FG) (s)",
       bench::Table::num(rec.forward_good_period_mean_direct()),
       bench::Table::num(
           qos::forward_good_period_mean(tg.mean(), tg.variance()))});
  thm.add_row({"E(T_G)/2 (s)  [naive]", bench::Table::num(tg.mean() / 2.0),
               "(waiting-time paradox: E(T_FG) > this)"});
  thm.print();

  std::cout << "\nMistakes observed: " << rec.s_transitions() << "\n";
  return 0;
}
