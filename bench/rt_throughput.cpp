// Realtime front-end throughput and overload study (EXPERIMENTS.md E19).
//
// Two halves:
//
//   1. Wall-clock ingestion: the live RealtimeEngine (MonotonicClock, real
//      consumer threads) hammered by multi-threaded producers, per shard
//      count.  Reports sustained ingested heartbeats/sec, the raw offered
//      rate, and the p99 producer-side offer() latency (sampled every 64th
//      call).  This half is machine-dependent by nature — CI's perf gate
//      checks the JSON's *shape* and internal consistency, not absolute
//      rates.
//
//   2. Deterministic 2x overload: a virtual-time replay of one shard fed
//      exactly twice what its consumer drains per tick, so drop-newest must
//      shed ~half of every interval's arrivals, latch qos_at_risk with
//      reason "overload", and keep the counter identity.  Byte-determinism
//      is re-checked here across two knob settings; the payload CRC lands
//      in the JSON so a CI log diff can spot a drifting replay instantly.
//
// Writes BENCH_rt.json for tools/perf_gate.py --check-rt.  Honors
// CHENFD_BENCH_FAST=1.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/realtime/engine.hpp"
#include "service/realtime/monotonic_clock.hpp"
#include "service/realtime/replay.hpp"

namespace {

using namespace chenfd;

struct ConfigResult {
  std::size_t shards = 0;
  std::uint64_t produced = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  bool identity = false;
  double offered_hb_per_sec = 0.0;
  double sustained_hb_per_sec = 0.0;
  double p99_ingest_latency_us = 0.0;
};

ConfigResult run_config(std::size_t shards, std::uint64_t rounds_per_producer) {
  rt::MonotonicClock wall;

  rt::RealtimeOptions opts;
  opts.processes = 64 * shards;
  opts.shards = shards;
  opts.params.eta = seconds(0.01);
  opts.params.alpha = seconds(0.02);
  opts.queue_capacity = 4096;
  opts.policy = rt::OverloadPolicy::kDropNewest;
  opts.validate();

  rt::RealtimeEngine engine(opts, wall);
  engine.start(std::min<std::size_t>(shards, 4), seconds(0.0005),
               seconds(0.05));

  const std::size_t producer_count = 4;
  std::vector<std::vector<double>> latencies_us(producer_count);
  std::vector<std::thread> producers;
  producers.reserve(producer_count);

  // detlint: allow(R1) measuring wall-clock throughput is this bench's job
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < producer_count; ++t) {
    producers.emplace_back([&, t] {
      const std::size_t lo = opts.processes * t / producer_count;
      const std::size_t hi = opts.processes * (t + 1) / producer_count;
      std::vector<double>& lat = latencies_us[t];
      lat.reserve(rounds_per_producer * (hi - lo) / 64 + 1);
      std::uint64_t calls = 0;
      for (std::uint64_t round = 1; round <= rounds_per_producer; ++round) {
        for (std::size_t p = lo; p < hi; ++p) {
          if (++calls % 64 == 0) {
            // detlint: allow(R1) p99 offer latency is this bench's metric
            const auto s0 = std::chrono::steady_clock::now();
            (void)engine.offer_now(static_cast<fleet::ProcessIndex>(p), 0,
                                   round);
            // detlint: allow(R1) p99 offer latency is this bench's metric
            const auto s1 = std::chrono::steady_clock::now();
            lat.push_back(
                std::chrono::duration<double, std::micro>(s1 - s0).count());
          } else {
            (void)engine.offer_now(static_cast<fleet::ProcessIndex>(p), 0,
                                   round);
          }
        }
      }
    });
  }
  for (std::thread& th : producers) th.join();
  // detlint: allow(R1) measuring wall-clock throughput is this bench's job
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed_s = std::chrono::duration<double>(t1 - t0).count();

  engine.stop();
  const TimePoint end = wall.now();
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    (void)engine.drain_shard(s, end);
  }

  std::vector<double> all;
  for (const auto& v : latencies_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const double p99 =
      all.empty() ? 0.0 : all[static_cast<std::size_t>(
                              static_cast<double>(all.size() - 1) * 0.99)];

  const rt::ShardCounters totals = engine.totals();
  ConfigResult r;
  r.shards = shards;
  r.produced = totals.produced;
  r.accepted = totals.accepted;
  r.shed = totals.shed_total();
  r.identity = totals.produced == totals.accepted + totals.shed_total();
  r.offered_hb_per_sec = static_cast<double>(totals.produced) / elapsed_s;
  r.sustained_hb_per_sec = static_cast<double>(totals.accepted) / elapsed_s;
  r.p99_ingest_latency_us = p99;
  return r;
}

/// One shard fed 2x what its consumer drains per tick: 32 processes at
/// 4 hb/s each = 128 per 1s consumer interval against queue capacity 64.
rt::ReplayScenario overload_2x_scenario() {
  rt::ReplayScenario s;
  s.name = "bench-overload-2x";
  s.engine.processes = 32;
  s.engine.shards = 1;
  s.engine.params.eta = seconds(0.25);
  s.engine.params.alpha = seconds(0.5);
  s.engine.queue_capacity = 64;
  s.engine.policy = rt::OverloadPolicy::kDropNewest;
  s.send_interval = seconds(0.25);
  s.horizon = TimePoint(50.0);
  s.consumer_period = seconds(1.0);
  s.watchdog_period = seconds(5.0);
  s.expect_reason = rt::RiskReason::kOverload;
  s.expect_shed = true;
  return s;
}

}  // namespace

int main() {
  const bool fast = bench::fast_mode();
  const std::uint64_t rounds = fast ? 100 : 1500;
  const std::vector<std::size_t> shard_counts = fast ? std::vector<std::size_t>{1, 4}
                                                     : std::vector<std::size_t>{1, 4, 8};

  bench::print_header(
      "Realtime ingestion throughput",
      "Live engine, MonotonicClock, 4 producer threads, drop-newest, "
      "queue capacity 4096/shard;\np99 offer latency sampled every 64th "
      "call.  Overload half: deterministic 2x replay.");

  std::vector<ConfigResult> configs;
  for (const std::size_t s : shard_counts) {
    configs.push_back(run_config(s, rounds));
  }

  bench::Table table({"shards", "offered/s", "sustained/s", "shed frac",
                      "p99 offer us", "identity"});
  for (const auto& c : configs) {
    table.add_row({std::to_string(c.shards),
                   bench::Table::sci(c.offered_hb_per_sec),
                   bench::Table::sci(c.sustained_hb_per_sec),
                   bench::Table::num(static_cast<double>(c.shed) /
                                     static_cast<double>(c.produced)),
                   bench::Table::num(c.p99_ingest_latency_us),
                   c.identity ? "ok" : "VIOLATED"});
  }
  table.print();

  // Deterministic overload half.  Two knob settings must agree byte-for-
  // byte; the scenario's arithmetic pins shed_fraction near 0.5.
  const rt::ReplayScenario scenario = overload_2x_scenario();
  const rt::ReplayResult a = rt::run_replay(scenario, {1, 0, 64});
  const rt::ReplayResult b = rt::run_replay(scenario, {1, 256, 7});
  if (a.payload != b.payload) {
    std::cerr << "FAIL: overload replay is knob-dependent\n";
    return 1;
  }
  const double shed_fraction = static_cast<double>(a.totals.shed_total()) /
                               static_cast<double>(a.totals.produced);
  const bool overload_identity =
      a.totals.produced == a.totals.accepted + a.totals.shed_total();
  std::ostringstream crc_hex;
  crc_hex << std::hex << std::setw(8) << std::setfill('0') << a.crc;

  std::cout << "\n2x overload replay: produced " << a.totals.produced
            << ", shed " << a.totals.shed_total() << " (fraction "
            << shed_fraction << "), risk " << rt::name(a.reason) << ", crc "
            << crc_hex.str() << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"rt\",\n"
       << "  \"fast_mode\": " << (fast ? "true" : "false") << ",\n"
       << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    json << "    {\"shards\": " << c.shards << ", \"produced\": " << c.produced
         << ", \"accepted\": " << c.accepted << ", \"shed\": " << c.shed
         << ", \"identity\": " << (c.identity ? "true" : "false")
         << ", \"offered_hb_per_sec\": " << c.offered_hb_per_sec
         << ", \"sustained_hb_per_sec\": " << c.sustained_hb_per_sec
         << ", \"p99_ingest_latency_us\": " << c.p99_ingest_latency_us << "}"
         << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"overload\": {\n"
       << "    \"policy\": \"" << rt::name(scenario.engine.policy) << "\",\n"
       << "    \"produced\": " << a.totals.produced << ",\n"
       << "    \"accepted\": " << a.totals.accepted << ",\n"
       << "    \"shed\": " << a.totals.shed_total() << ",\n"
       << "    \"identity\": " << (overload_identity ? "true" : "false")
       << ",\n"
       << "    \"shed_fraction\": " << shed_fraction << ",\n"
       << "    \"qos_at_risk\": " << (a.qos_at_risk ? "true" : "false")
       << ",\n"
       << "    \"risk_reason\": \"" << rt::name(a.reason) << "\",\n"
       << "    \"replay_crc\": \"" << crc_hex.str() << "\"\n"
       << "  }\n}\n";
  std::ofstream("BENCH_rt.json") << json.str();
  std::cout << "\nWrote BENCH_rt.json\n";

  bool ok = overload_identity && a.qos_at_risk &&
            a.reason == rt::RiskReason::kOverload && shed_fraction > 0.25 &&
            shed_fraction < 0.75;
  for (const auto& c : configs) ok = ok && c.identity;
  if (!ok) std::cerr << "FAIL: internal consistency check\n";
  return ok ? 0 : 1;
}
