// Scaling study for the deterministic parallel Monte-Carlo runner.
//
// Runs the Fig. 12 NFD-S sweep (10 detection-bound points x several
// replications) through runner::ParallelSweep at 1/2/4/8 worker threads,
// checks that the merged results are bit-identical across thread counts,
// and reports wall-clock time, throughput, and speedup per thread count.
// The numbers are appended to BENCH_parallel.json so the perf trajectory
// is tracked across PRs.

#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/fast_sim.hpp"
#include "dist/exponential.hpp"
#include "runner/parallel_sweep.hpp"

namespace {

using namespace chenfd;

struct Budget {
  std::size_t mistakes;
  std::uint64_t cap;
  std::size_t replications;
};

Budget budget() {
  if (bench::fast_mode()) return {50, 500'000, 2};
  return {200, 5'000'000, 4};
}

struct Measurement {
  unsigned jobs;
  double seconds;
  std::uint64_t heartbeats;
  std::vector<double> e_tmr;  // per sweep point, for the identity check
};

}  // namespace

int main() {
  const double eta = 1.0;
  const double p_loss = 0.01;
  dist::Exponential delay(0.02);
  const Budget b = budget();

  core::StopCriteria stop;
  stop.target_s_transitions = b.mistakes;
  stop.max_heartbeats = b.cap;

  const std::vector<double> t_du_sweep{1.25, 1.5, 1.75, 2.0,  2.25,
                                       2.5,  2.75, 3.0, 3.25, 3.5};
  std::vector<runner::AccuracyTask> points;
  for (const double t_du : t_du_sweep) {
    points.push_back(runner::nfd_s_task(
        core::NfdSParams{Duration(eta), Duration(t_du - eta)}, p_loss, delay,
        stop));
  }

  bench::print_header(
      "Parallel runner scaling — Fig. 12 NFD-S sweep",
      std::to_string(points.size()) + " sweep points x " +
          std::to_string(b.replications) +
          " replications; identical root seed at every thread count.\n"
          "Hardware threads available: " +
          std::to_string(std::thread::hardware_concurrency()));

  const std::uint64_t root_seed = 92000;
  std::vector<Measurement> runs;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    const runner::ParallelSweep sweep(runner::RunnerOptions{jobs});
    // detlint: allow(R1) measuring wall-clock scaling is this bench's job
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = sweep.run(points, b.replications, root_seed);
    // detlint: allow(R1) measuring wall-clock scaling is this bench's job
    const auto t1 = std::chrono::steady_clock::now();

    Measurement m;
    m.jobs = jobs;
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    m.heartbeats = 0;
    for (const auto& r : results) {
      m.heartbeats += r.heartbeats;
      m.e_tmr.push_back(r.e_tmr());
    }
    runs.push_back(std::move(m));
  }

  bool identical = true;
  for (const auto& m : runs) {
    // Bit-identity, not approximate agreement: the runner's determinism
    // guarantee is exact.  Compare bit patterns so a capped point with no
    // T_MR samples (e_tmr = NaN) still counts as equal to itself.
    if (m.e_tmr.size() != runs.front().e_tmr.size()) identical = false;
    for (std::size_t p = 0; identical && p < m.e_tmr.size(); ++p) {
      identical = std::bit_cast<std::uint64_t>(m.e_tmr[p]) ==
                  std::bit_cast<std::uint64_t>(runs.front().e_tmr[p]);
    }
    if (m.heartbeats != runs.front().heartbeats) identical = false;
  }

  bench::Table table(
      {"jobs", "seconds", "heartbeats/sec", "speedup", "efficiency"});
  for (const auto& m : runs) {
    const double speedup = runs.front().seconds / m.seconds;
    table.add_row({std::to_string(m.jobs), bench::Table::num(m.seconds),
                   bench::Table::sci(static_cast<double>(m.heartbeats) /
                                     m.seconds),
                   bench::Table::num(speedup),
                   bench::Table::num(speedup / m.jobs)});
  }
  table.print();
  std::cout << "\nMerged results bit-identical across thread counts: "
            << (identical ? "YES" : "NO — DETERMINISM BUG") << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"parallel_scaling\",\n"
       << "  \"workload\": {\"points\": " << points.size()
       << ", \"replications\": " << b.replications
       << ", \"target_mistakes\": " << b.mistakes
       << ", \"heartbeat_cap\": " << b.cap << "},\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"deterministic_across_jobs\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& m = runs[i];
    json << "    {\"jobs\": " << m.jobs << ", \"seconds\": " << m.seconds
         << ", \"items_per_sec\": "
         << static_cast<double>(m.heartbeats) / m.seconds
         << ", \"speedup\": " << runs.front().seconds / m.seconds << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream("BENCH_parallel.json") << json.str();
  std::cout << "Wrote BENCH_parallel.json\n";
  return identical ? 0 : 1;
}
