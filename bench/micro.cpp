// Microbenchmarks (google-benchmark): per-heartbeat cost of each detector,
// the fast simulation engines, the analytic evaluation, and the
// configurators.  These quantify the cost claims in DESIGN.md (the fast
// engines process a heartbeat in a few nanoseconds, which is what makes
// the Fig. 12 points with E(T_MR) ~ 10^6 eta feasible).

#include <benchmark/benchmark.h>

#include <memory>

#include "clock/clock.hpp"
#include "core/analysis.hpp"
#include "core/config.hpp"
#include "core/estimators.hpp"
#include "core/fast_sim.hpp"
#include "core/nfd_e.hpp"
#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "dist/exponential.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace chenfd;

void BM_FastNfdSPerHeartbeat(benchmark::State& state) {
  dist::Exponential delay(0.02);
  Rng rng(1);
  core::StopCriteria stop;
  stop.target_s_transitions = 1u << 30;
  stop.max_heartbeats = 200'000;
  for (auto _ : state) {
    auto r = core::fast_nfd_s_accuracy(
        core::NfdSParams{Duration(1.0), Duration(2.0)}, 0.01, delay, rng,
        stop);
    benchmark::DoNotOptimize(r.s_transitions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200'000);
}
BENCHMARK(BM_FastNfdSPerHeartbeat);

void BM_FastNfdEPerHeartbeat(benchmark::State& state) {
  dist::Exponential delay(0.02);
  Rng rng(2);
  core::StopCriteria stop;
  stop.target_s_transitions = 1u << 30;
  stop.max_heartbeats = 100'000;
  for (auto _ : state) {
    auto r = core::fast_nfd_e_accuracy(
        core::NfdEParams{Duration(1.0), Duration(2.0), 32}, 0.01, delay,
        rng, stop);
    benchmark::DoNotOptimize(r.s_transitions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_FastNfdEPerHeartbeat);

void BM_FastSfdPerHeartbeat(benchmark::State& state) {
  dist::Exponential delay(0.02);
  Rng rng(3);
  core::StopCriteria stop;
  stop.target_s_transitions = 1u << 30;
  stop.max_heartbeats = 100'000;
  for (auto _ : state) {
    auto r = core::fast_sfd_accuracy(
        core::SfdParams{Duration(1.84), Duration(0.16)}, Duration(1.0),
        0.01, delay, rng, stop);
    benchmark::DoNotOptimize(r.s_transitions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_FastSfdPerHeartbeat);

void BM_DesNfdSPerHeartbeat(benchmark::State& state) {
  // The general discrete-event path, for comparison with the fast engine.
  for (auto _ : state) {
    sim::Simulator sim;
    core::NfdS detector(sim, core::NfdSParams{Duration(1.0), Duration(2.0)});
    detector.activate();
    dist::Exponential delay(0.02);
    Rng rng(4);
    net::Message m;
    for (int i = 1; i <= 2000; ++i) {
      const TimePoint at(static_cast<double>(i) + delay.sample(rng));
      m.seq = static_cast<net::SeqNo>(i);
      m.sent_real = TimePoint(static_cast<double>(i));
      m.sender_timestamp = m.sent_real;
      sim.run_until(at);
      detector.on_heartbeat(m, at);
    }
    benchmark::DoNotOptimize(detector.output());
    detector.stop();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_DesNfdSPerHeartbeat);

void BM_NfdSOnHeartbeat(benchmark::State& state) {
  sim::Simulator sim;
  core::NfdS detector(sim, core::NfdSParams{Duration(1.0), Duration(2.0)});
  detector.activate();
  net::Message m;
  m.seq = 1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    m.seq = i;
    m.sent_real = TimePoint(0.0);
    detector.on_heartbeat(m, TimePoint(0.5));
    benchmark::DoNotOptimize(detector.output());
  }
}
BENCHMARK(BM_NfdSOnHeartbeat);

void BM_AnalysisEvaluate(benchmark::State& state) {
  dist::Exponential delay(0.02);
  for (auto _ : state) {
    core::NfdSAnalysis a(core::NfdSParams{Duration(1.0), Duration(2.0)},
                         0.01, delay);
    benchmark::DoNotOptimize(a.e_tmr());
    benchmark::DoNotOptimize(a.e_tm());  // includes the numeric integral
  }
}
BENCHMARK(BM_AnalysisEvaluate);

void BM_ConfigureExact(benchmark::State& state) {
  dist::Exponential delay(0.02);
  const qos::Requirements req{seconds(30.0), days(30.0), seconds(60.0)};
  for (auto _ : state) {
    auto out = core::configure_exact(req, 0.01, delay);
    benchmark::DoNotOptimize(out.params->eta);
  }
}
BENCHMARK(BM_ConfigureExact);

void BM_ConfigureNfdU(benchmark::State& state) {
  const core::RelativeRequirements req{seconds(29.98), days(30.0),
                                       seconds(60.0)};
  for (auto _ : state) {
    auto out = core::configure_nfd_u(req, 0.01, 0.02);
    benchmark::DoNotOptimize(out.params->eta);
  }
}
BENCHMARK(BM_ConfigureNfdU);

void BM_EstimatorOnHeartbeat(benchmark::State& state) {
  core::NetworkEstimator est(256);
  std::uint64_t s = 0;
  for (auto _ : state) {
    ++s;
    est.on_heartbeat(s, TimePoint(static_cast<double>(s)),
                     TimePoint(static_cast<double>(s) + 0.02));
    benchmark::DoNotOptimize(est.delay_mean());
  }
}
BENCHMARK(BM_EstimatorOnHeartbeat);

}  // namespace

BENCHMARK_MAIN();
