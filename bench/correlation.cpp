// Ablation: the message-independence assumption (Section 3.3,
// footnote 10).
//
// The Theorem 5 analysis assumes any two heartbeats behave independently;
// the paper notes this "holds only if consecutive heartbeats are sent more
// than some Delta time units apart".  We break the assumption on purpose:
// delays keep the exact same exponential marginal but become serially
// correlated through a Gaussian copula with lag-1 latent correlation rho
// (a congested path where one slow heartbeat predicts the next).
//
// Measured E(T_MR) is compared with the independence-based analytic value
// as rho grows, with delays either much smaller than delta (the regime the
// paper's footnote sanctions: eta large relative to network time
// constants) or comparable to delta (where independence genuinely
// matters).

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/fast_sim.hpp"
#include "dist/exponential.hpp"
#include "net/correlated.hpp"

int main() {
  using namespace chenfd;
  const std::size_t mistakes = bench::fast_mode() ? 500 : 5000;

  bench::print_header(
      "Footnote 10 ablation — correlated heartbeat delays vs Theorem 5",
      "NFD-S; delays keep their exponential marginal but gain lag-1 copula "
      "correlation rho.\nratio = measured E(T_MR) / independence-based "
      "analytic E(T_MR).");

  struct Regime {
    const char* label;
    double mean_delay;
    core::NfdSParams params;
    double p_loss;
  };
  const Regime regimes[] = {
      // The sanctioned regime: delays tiny vs eta and delta; mistakes are
      // loss-driven, and losses here remain independent.
      {"E(D) = 0.02 << delta = 1 (paper's regime)", 0.02,
       core::NfdSParams{Duration(1.0), Duration(1.0)}, 0.01},
      // The violating regime: mistakes need several consecutive late
      // heartbeats (k = 2 freshness window, delays comparable to delta/k);
      // correlation makes "several consecutive late" far more likely.
      {"E(D) = 0.6, delta = 2 (delay-driven, k = 2)", 0.6,
       core::NfdSParams{Duration(1.0), Duration(2.0)}, 0.0},
  };

  std::uint64_t seed = 95000;
  for (const auto& regime : regimes) {
    dist::Exponential marginal(regime.mean_delay);
    const core::NfdSAnalysis exact(regime.params, regime.p_loss, marginal);
    std::cout << "-- " << regime.label
              << "   analytic E(T_MR) = "
              << bench::Table::sci(exact.e_tmr().seconds()) << "\n";
    bench::Table table({"rho", "measured E(T_MR)", "ratio vs analytic",
                        "P_A", "mistakes"});
    for (const double rho : {0.0, 0.5, 0.8, 0.95}) {
      net::CorrelatedDelaySampler sampler(marginal.clone(), rho);
      Rng rng(seed++);
      core::StopCriteria stop;
      stop.target_s_transitions = mistakes;
      stop.max_heartbeats = 50'000'000;
      const auto r = core::fast_nfd_s_accuracy_sampled(
          regime.params, regime.p_loss,
          [&sampler](Rng& g) { return sampler.sample(g); }, rng, stop);
      table.add_row({bench::Table::num(rho), bench::Table::sci(r.e_tmr()),
                     bench::Table::num(r.e_tmr() / exact.e_tmr().seconds()),
                     bench::Table::num(r.query_accuracy()),
                     std::to_string(r.s_transitions)});
    }
    table.print();
    std::cout << "\n";
  }

  std::cout
      << "Reading: in the paper's regime the analysis stays accurate even "
         "under strong\ndelay correlation (mistakes come from independent "
         "losses); when delays drive\nmistakes, correlation shifts E(T_MR) "
         "substantially — quantifying exactly when\nfootnote 10's caveat "
         "bites (here: 3-4x more mistakes than predicted).\n";
  return 0;
}
