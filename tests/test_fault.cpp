// Tests for the fault-injection subsystem: FaultPlan scripting,
// ChaosSchedule sampling, and the chaos suites with their oracles.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/testbed.hpp"
#include "dist/constant.hpp"
#include "fault/chaos.hpp"
#include "fault/fault_plan.hpp"
#include "net/loss_model.hpp"
#include "persist/store.hpp"
#include "service/supervisor.hpp"

namespace chenfd::fault {
namespace {

core::Testbed::Config quiet_config(std::uint64_t seed) {
  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Constant>(0.001);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.0);
  cfg.eta = seconds(1.0);
  cfg.seed = seed;
  return cfg;
}

struct CountingDetector final : core::FailureDetector {
  std::vector<double> arrivals;
  void on_heartbeat(const net::Message&, TimePoint real_now) override {
    arrivals.push_back(real_now.seconds());
  }
};

TEST(FaultPlan, BuilderRejectsMisuse) {
  FaultPlan plan;
  EXPECT_THROW(plan.partition(TimePoint(10.0), TimePoint(10.0)),
               std::invalid_argument);
  EXPECT_THROW(plan.duplication_burst(TimePoint(0.0), TimePoint(1.0), 1.5),
               std::invalid_argument);
  EXPECT_THROW(plan.duplication_burst(TimePoint(0.0), TimePoint(1.0), -0.1),
               std::invalid_argument);
  EXPECT_THROW(plan.clock_rate_p(TimePoint(0.0), 0.0), std::invalid_argument);
  EXPECT_THROW(plan.clock_rate_q(TimePoint(0.0), -1.0),
               std::invalid_argument);
  EXPECT_THROW(plan.swap_delay(TimePoint(0.0), nullptr),
               std::invalid_argument);
  EXPECT_THROW(plan.swap_loss(TimePoint(0.0), nullptr),
               std::invalid_argument);
  EXPECT_THROW(plan.crash_p(TimePoint(-1.0)), std::invalid_argument);
  EXPECT_THROW(plan.clock_jump_p(TimePoint(0.0), Duration::infinity()),
               std::invalid_argument);
  EXPECT_THROW(plan.clock_jump_q(TimePoint(0.0), Duration::infinity()),
               std::invalid_argument);
  EXPECT_EQ(plan.event_count(), 0u);  // nothing half-added

  core::Testbed tb(quiet_config(1));
  CountingDetector det;
  tb.attach(det);
  plan.partition(TimePoint(2.0), TimePoint(3.0));
  plan.arm(tb);
  EXPECT_TRUE(plan.armed());
  EXPECT_THROW(plan.arm(tb), std::invalid_argument);
  EXPECT_THROW(plan.crash_p(TimePoint(5.0)), std::invalid_argument);
}

TEST(FaultPlan, ReportsInjectedWindowsInTimeOrder) {
  FaultPlan plan;
  // Deliberately out of order; queries sort.
  plan.partition(TimePoint(300.0), TimePoint(350.0))
      .crash_p(TimePoint(200.0))
      .recover_p(TimePoint(260.0))
      .partition(TimePoint(100.0), TimePoint(160.0))
      .crash_p(TimePoint(400.0));  // never recovers

  const auto parts = plan.partition_windows();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].begin, TimePoint(100.0));
  EXPECT_EQ(parts[0].end, TimePoint(160.0));
  EXPECT_EQ(parts[1].begin, TimePoint(300.0));
  EXPECT_DOUBLE_EQ(parts[1].length().seconds(), 50.0);

  const auto down = plan.downtime_windows();
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0].begin, TimePoint(200.0));
  EXPECT_EQ(down[0].end, TimePoint(260.0));
  EXPECT_TRUE(down[1].end.is_infinite());

  const auto outages = plan.outage_windows();
  ASSERT_EQ(outages.size(), 4u);
  for (std::size_t i = 1; i < outages.size(); ++i) {
    EXPECT_LE(outages[i - 1].begin, outages[i].begin);
  }
}

TEST(FaultPlan, ArmDrivesTheTestbed) {
  core::Testbed tb(quiet_config(101));
  CountingDetector det;
  tb.attach(det);

  FaultPlan plan;
  plan.partition(TimePoint(4.5), TimePoint(9.5))
      .crash_p(TimePoint(20.5))
      .recover_p(TimePoint(25.0))
      .duplication_burst(TimePoint(30.5), TimePoint(34.5), 1.0);
  plan.arm(tb);
  tb.start();
  tb.simulator().run_until(TimePoint(40.0));

  // Partition [4.5, 9.5): the sends at t = 5..9 were dropped.
  EXPECT_EQ(tb.link().partition_dropped_count(), 5u);
  // Crash [20.5, 25): sends at 21..24 suppressed, immediate re-announce at
  // 25 with the sequence numbers continuing.
  EXPECT_EQ(tb.sender().recoveries(), 1u);
  std::size_t in_outage = 0;
  std::size_t at_recovery = 0;
  std::size_t in_burst = 0;
  for (double t : det.arrivals) {
    if (t > 20.6 && t < 25.0) ++in_outage;
    if (t >= 25.0 && t < 25.1) ++at_recovery;
    if (t > 30.6 && t < 34.6) ++in_burst;
  }
  EXPECT_EQ(in_outage, 0u);
  EXPECT_EQ(at_recovery, 1u);
  // Burst covers the sends at 31..34; with p = 1 each delivers twice.
  EXPECT_EQ(in_burst, 8u);
}

service::MonitorSupervisor::Options supervisor_options() {
  service::MonitorSupervisor::Options o;
  o.monitor.requirements = core::RelativeRequirements{
      seconds(8.0), seconds(2000.0), seconds(4.0)};
  o.monitor.initial = core::NfdEParams{Duration(1.0), Duration(1.0), 32};
  o.monitor.reconfig_interval = seconds(50.0);
  o.snapshot_interval = seconds(2.0);
  return o;
}

TEST(FaultPlan, MonitorEventsNeedTheSupervisorAwareArm) {
  core::Testbed tb(quiet_config(11));
  CountingDetector det;
  tb.attach(det);
  FaultPlan plan;
  plan.monitor_crash(TimePoint(10.0)).monitor_restart(TimePoint(20.0));
  EXPECT_THROW(plan.arm(tb), std::invalid_argument);
}

TEST(FaultPlan, MonitorEventsMustAlternate) {
  core::Testbed tb(quiet_config(12));
  persist::MemorySnapshotStore store;
  service::MonitorSupervisor sup(tb.simulator(), tb.q_clock(), tb.sender(),
                                 store, supervisor_options());
  tb.attach(sup);
  {
    FaultPlan plan;
    plan.monitor_restart(TimePoint(5.0));  // restart before any crash
    EXPECT_THROW(plan.arm(tb, &sup), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.monitor_crash(TimePoint(5.0)).monitor_crash(TimePoint(10.0));
    EXPECT_THROW(plan.arm(tb, &sup), std::invalid_argument);
  }
}

TEST(FaultPlan, ArmDrivesTheSupervisor) {
  core::Testbed tb(quiet_config(13));
  persist::MemorySnapshotStore store;
  service::MonitorSupervisor sup(tb.simulator(), tb.q_clock(), tb.sender(),
                                 store, supervisor_options());
  tb.attach(sup);

  FaultPlan plan;
  plan.monitor_crash(TimePoint(10.5)).monitor_restart(TimePoint(15.5));
  plan.arm(tb, &sup);
  tb.start();

  tb.simulator().run_until(TimePoint(12.0));
  EXPECT_FALSE(sup.monitor_alive());
  EXPECT_EQ(sup.output(), Verdict::kSuspect);

  tb.simulator().run_until(TimePoint(30.0));
  EXPECT_TRUE(sup.monitor_alive());
  // Snapshots every 2 s meant a fresh one existed at the restart.
  EXPECT_EQ(sup.warm_restarts(), 1u);
  EXPECT_EQ(sup.cold_restarts(), 0u);
}

TEST(FaultPlan, MonitorDowntimeIsSeparateFromOutageGroundTruth) {
  FaultPlan plan;
  plan.partition(TimePoint(10.0), TimePoint(20.0))
      .monitor_crash(TimePoint(100.0))
      .monitor_restart(TimePoint(150.0))
      .monitor_crash(TimePoint(200.0));  // never restarted

  const auto down = plan.monitor_downtime_windows();
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0].begin, TimePoint(100.0));
  EXPECT_EQ(down[0].end, TimePoint(150.0));
  EXPECT_EQ(down[1].begin, TimePoint(200.0));
  EXPECT_TRUE(down[1].end.is_infinite());

  // Heartbeats still flow while the monitor is down: monitor downtime must
  // NOT count as a heartbeat outage, or the suspect-during-outage oracles
  // would fire on windows where trusting is legitimate.
  const auto outages = plan.outage_windows();
  ASSERT_EQ(outages.size(), 1u);
  EXPECT_EQ(outages[0].begin, TimePoint(10.0));
}

TEST(ChaosSchedule, SampleIsDeterministicAndNonOverlapping) {
  ChaosSchedule sched;
  sched.horizon = seconds(4000.0);
  sched.partitions = 3;
  sched.crash_cycles = 2;
  sched.duplication_bursts = 1;

  Rng rng_a(77);
  Rng rng_b(77);
  const FaultPlan plan_a = sched.sample(rng_a);
  const FaultPlan plan_b = sched.sample(rng_b);

  const auto windows_a = plan_a.outage_windows();
  const auto windows_b = plan_b.outage_windows();
  ASSERT_EQ(windows_a.size(), 5u);  // partitions + crash cycles
  ASSERT_EQ(windows_b.size(), 5u);
  for (std::size_t i = 0; i < windows_a.size(); ++i) {
    EXPECT_EQ(windows_a[i].begin, windows_b[i].begin);
    EXPECT_EQ(windows_a[i].end, windows_b[i].end);
  }
  // Slot placement: every fault closed, inside the horizon, no overlap.
  for (std::size_t i = 0; i < windows_a.size(); ++i) {
    EXPECT_FALSE(windows_a[i].end.is_infinite());
    EXPECT_GE(windows_a[i].begin, TimePoint::zero());
    EXPECT_LE(windows_a[i].end.seconds(), 4000.0);
    if (i > 0) {
      EXPECT_GT(windows_a[i].begin, windows_a[i - 1].end);
    }
  }
  EXPECT_GT(sched.intensity_per_hour(), 0.0);
}

TEST(ChaosSuite, NamedSuitesExist) {
  const auto names = suite_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_FALSE(suite("smoke").empty());
  EXPECT_FALSE(suite("monitor-restart").empty());
  EXPECT_GT(suite("full").size(), suite("smoke").size());
  EXPECT_THROW(suite("nope"), std::invalid_argument);
  // Every scenario carries the metadata the degradation curves group by.
  for (const auto& spec : suite("full")) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.family.empty());
  }
  // Every monitor-restart scenario is supervised, and the full suite
  // includes them all.
  const auto restart = suite("monitor-restart");
  for (const auto& spec : restart) {
    EXPECT_TRUE(spec.supervised) << spec.name;
  }
  std::size_t in_full = 0;
  for (const auto& spec : suite("full")) {
    if (spec.supervised) ++in_full;
  }
  EXPECT_GE(in_full, restart.size());
}

TEST(ChaosSuite, SmokeSuitePassesItsOracles) {
  const auto results = run_suite(suite("smoke"), 42, {1});
  ASSERT_EQ(results.size(), suite("smoke").size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GT(r.availability, 0.0);
    EXPECT_GT(r.transitions, 0u);
    EXPECT_GT(r.outages, 0u);
    EXPECT_FALSE(r.trace.empty());
  }
}

TEST(ChaosSuite, ResultsAreBitIdenticalAcrossJobCounts) {
  const auto specs = suite("smoke");
  const auto serial = run_suite(specs, 42, {1});
  const auto parallel = run_suite(specs, 42, {4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].ok, parallel[i].ok);
    // Exact double equality on purpose: substream-per-scenario makes the
    // runs bit-identical, not just statistically close.
    EXPECT_EQ(serial[i].availability, parallel[i].availability);
    EXPECT_EQ(serial[i].mistake_rate, parallel[i].mistake_rate);
    EXPECT_EQ(serial[i].mean_mistake_s, parallel[i].mean_mistake_s);
    EXPECT_EQ(serial[i].transitions, parallel[i].transitions);
    ASSERT_EQ(serial[i].trace.size(), parallel[i].trace.size());
    for (std::size_t j = 0; j < serial[i].trace.size(); ++j) {
      EXPECT_EQ(serial[i].trace[j].at, parallel[i].trace[j].at);
      EXPECT_EQ(serial[i].trace[j].to, parallel[i].trace[j].to);
    }
  }
}

TEST(ChaosSuite, VerdictAtReplaysTheTransitionHistory) {
  const std::vector<Transition> transitions = {
      {TimePoint(5.0), Verdict::kTrust},
      {TimePoint(10.0), Verdict::kSuspect},
      {TimePoint(12.0), Verdict::kTrust},
  };
  // Detectors start suspecting; output is right-continuous.
  EXPECT_EQ(verdict_at(transitions, TimePoint(0.0)), Verdict::kSuspect);
  EXPECT_EQ(verdict_at(transitions, TimePoint(5.0)), Verdict::kTrust);
  EXPECT_EQ(verdict_at(transitions, TimePoint(9.9)), Verdict::kTrust);
  EXPECT_EQ(verdict_at(transitions, TimePoint(10.0)), Verdict::kSuspect);
  EXPECT_EQ(verdict_at(transitions, TimePoint(30.0)), Verdict::kTrust);
  EXPECT_EQ(verdict_at({}, TimePoint(3.0)), Verdict::kSuspect);
}

TEST(Testbed, RejectsLifecycleMisuse) {
  core::Testbed tb(quiet_config(7));
  EXPECT_THROW(tb.start(), std::invalid_argument);  // no detector attached
  CountingDetector det;
  tb.attach(det);
  tb.start();
  EXPECT_TRUE(tb.started());
  EXPECT_THROW(tb.start(), std::invalid_argument);
  CountingDetector late;
  EXPECT_THROW(tb.attach(late), std::invalid_argument);
}

TEST(FaultPlan, ConsumerStallWindowsArePerShardGroundTruth) {
  FaultPlan plan;
  // Deliberately out of order across two shards; queries sort per shard.
  plan.consumer_stall(1, TimePoint(40.0), TimePoint(45.0))
      .consumer_stall(0, TimePoint(10.0), TimePoint(13.0))
      .consumer_stall(1, TimePoint(20.0), TimePoint(22.0))
      .duplication_burst(TimePoint(5.0), TimePoint(7.0), 1.0);
  EXPECT_THROW(plan.consumer_stall(0, TimePoint(50.0), TimePoint(50.0)),
               std::invalid_argument);

  const auto shard0 = plan.consumer_stall_windows(0);
  ASSERT_EQ(shard0.size(), 1u);
  EXPECT_EQ(shard0[0].begin, TimePoint(10.0));
  EXPECT_EQ(shard0[0].end, TimePoint(13.0));

  const auto shard1 = plan.consumer_stall_windows(1);
  ASSERT_EQ(shard1.size(), 2u);
  EXPECT_EQ(shard1[0].begin, TimePoint(20.0));
  EXPECT_EQ(shard1[1].begin, TimePoint(40.0));
  EXPECT_TRUE(plan.consumer_stall_windows(2).empty());

  // The realtime replay harness reads storms through the same query.
  const auto storms = plan.duplication_windows();
  ASSERT_EQ(storms.size(), 1u);
  EXPECT_EQ(storms[0].begin, TimePoint(5.0));
  EXPECT_DOUBLE_EQ(storms[0].length().seconds(), 2.0);
}

TEST(FaultPlan, ConsumerStallEventsAreRealtimeReplayOnly) {
  // Consumer stalls freeze a realtime shard's drain loop — there is no
  // such thing in the two-process testbed, so arming must refuse.
  core::Testbed tb(quiet_config(7));
  CountingDetector det;
  tb.attach(det);
  FaultPlan plan;
  plan.consumer_stall(0, TimePoint(1.0), TimePoint(2.0));
  EXPECT_THROW(plan.arm(tb), std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::fault
