// Property sweep for the configurators: across randomized requirements,
// network parameters, and distribution families, whatever parameters a
// procedure outputs must satisfy the requirements under the exact
// Theorem 5 analysis (Theorems 7 and 10 part 1), and "unachievable" may
// only be reported in the provably impossible cases.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "core/chebyshev.hpp"
#include "core/config.hpp"
#include "dist/constant.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"

namespace chenfd::core {
namespace {

struct Scenario {
  std::string label;
  std::uint64_t seed;
};

class ConfiguratorProperties : public ::testing::TestWithParam<Scenario> {};

TEST_P(ConfiguratorProperties, ExactOutputAlwaysSatisfies) {
  Rng rng(GetParam().seed);
  const auto family = dist::standard_family_with_mean(0.02);
  for (int trial = 0; trial < 12; ++trial) {
    const auto& d = family[trial % family.size()];
    const double p_loss = rng.uniform(0.0, 0.3);
    const qos::Requirements req{
        seconds(rng.uniform(0.5, 100.0)),       // T_D^U
        seconds(rng.uniform(10.0, 1e7)),        // T_MR^L
        seconds(rng.uniform(0.5, 600.0))};      // T_M^U
    const auto out = configure_exact(req, p_loss, *d);
    ASSERT_TRUE(out.achievable())
        << d->name() << " " << req << " pL=" << p_loss;
    out.params->validate();
    NfdSAnalysis a(*out.params, p_loss, *d);
    EXPECT_TRUE(a.figures().satisfies(req))
        << d->name() << " " << req << " pL=" << p_loss << " -> "
        << *out.params;
  }
}

TEST_P(ConfiguratorProperties, MomentsOutputAlwaysSatisfies) {
  Rng rng(GetParam().seed ^ 0xBEEF);
  const auto family = dist::standard_family_with_mean(0.02);
  for (int trial = 0; trial < 12; ++trial) {
    const auto& d = family[trial % family.size()];
    const double p_loss = rng.uniform(0.0, 0.3);
    const qos::Requirements req{
        seconds(rng.uniform(1.0, 100.0)), seconds(rng.uniform(10.0, 1e7)),
        seconds(rng.uniform(0.5, 600.0))};
    const auto out =
        configure_from_moments(req, p_loss, d->mean(), d->variance());
    ASSERT_TRUE(out.achievable()) << d->name() << " " << req;
    NfdSAnalysis a(*out.params, p_loss, *d);
    EXPECT_TRUE(a.figures().satisfies(req))
        << d->name() << " " << req << " pL=" << p_loss << " -> "
        << *out.params;
  }
}

TEST_P(ConfiguratorProperties, NfdUOutputAlwaysSatisfiesBounds) {
  Rng rng(GetParam().seed ^ 0xF00D);
  for (int trial = 0; trial < 20; ++trial) {
    const double p_loss = rng.uniform(0.0, 0.3);
    const double variance = rng.uniform(1e-6, 1.0);
    const RelativeRequirements req{
        seconds(rng.uniform(1.0, 100.0)), seconds(rng.uniform(10.0, 1e7)),
        seconds(rng.uniform(0.5, 600.0))};
    const auto out = configure_nfd_u(req, p_loss, variance);
    ASSERT_TRUE(out.achievable());
    out.params->validate();
    // eta + (T - eta) can exceed T by one ULP; allow that much slack.
    EXPECT_LE((out.params->eta + out.params->alpha).seconds(),
              req.detection_time_upper_rel.seconds() * (1.0 + 1e-12));
    const auto b = nfd_u_bounds(*out.params, p_loss, variance);
    EXPECT_GE(b.mistake_recurrence_lower.seconds(),
              req.mistake_recurrence_lower.seconds() * (1.0 - 1e-9));
    EXPECT_LE(b.mistake_duration_upper.seconds(),
              req.mistake_duration_upper.seconds() * (1.0 + 1e-9));
  }
}

TEST_P(ConfiguratorProperties, ExactMaximizesEtaUpToProposition8) {
  Rng rng(GetParam().seed ^ 0xCAFE);
  const auto family = dist::standard_family_with_mean(0.02);
  for (int trial = 0; trial < 8; ++trial) {
    const auto& d = family[trial % family.size()];
    const double p_loss = rng.uniform(0.0, 0.2);
    const qos::Requirements req{seconds(rng.uniform(2.0, 60.0)),
                                seconds(rng.uniform(100.0, 1e6)),
                                seconds(rng.uniform(1.0, 120.0))};
    const auto out = configure_exact(req, p_loss, *d);
    ASSERT_TRUE(out.achievable());
    EXPECT_LE(out.params->eta.seconds(),
              max_eta_bound(req, p_loss, *d).seconds() * (1.0 + 1e-9))
        << d->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConfiguratorProperties,
    ::testing::Values(Scenario{"s1", 101}, Scenario{"s2", 202},
                      Scenario{"s3", 303}, Scenario{"s4", 404}),
    [](const auto& info) { return info.param.label; });

TEST(ConfiguratorEdges, VeryTightDetectionStillWorksWhenFeasible) {
  // T_D^U barely above typical delays: still configurable, just costly.
  dist::Exponential d(0.02);
  const qos::Requirements req{seconds(0.2), seconds(3600.0), seconds(1.0)};
  const auto out = configure_exact(req, 0.01, d);
  ASSERT_TRUE(out.achievable());
  NfdSAnalysis a(*out.params, 0.01, d);
  EXPECT_TRUE(a.figures().satisfies(req));
  EXPECT_LT(out.params->eta.seconds(), 0.2);
}

TEST(ConfiguratorEdges, ZeroLossMakesEverythingCheap) {
  dist::Constant d(0.001);
  const qos::Requirements req{seconds(1.0), days(365000.0), seconds(1.0)};
  const auto out = configure_exact(req, 0.0, d);
  ASSERT_TRUE(out.achievable());
  // With no loss and delays below delta, the detector never errs:
  NfdSAnalysis a(*out.params, 0.0, d);
  EXPECT_TRUE(a.e_tmr().is_infinite());
}

}  // namespace
}  // namespace chenfd::core
